//! The selection algorithm (§3.2, generalized per Appendix A.2).
//!
//! Given the votes collected during a view change, decide which value is
//! safe to propose. This is a *pure function* over an already-validated vote
//! set so that
//!
//! 1. the new leader can run it incrementally as votes arrive,
//! 2. every CertRequest verifier re-runs it bit-for-bit (§3.2: "simulating
//!    the selection process locally on the given set of votes"),
//! 3. the naive-certificate verifier and the property tests can fuzz it in
//!    isolation.
//!
//! **Callers must validate votes first** ([`SignedVote::is_valid`]); the
//! function trusts its input. Both the leader and the verifiers do so.

use std::collections::{BTreeMap, BTreeSet};

use fastbft_types::{Config, ProcessId, Value, View};

use crate::certs::SignedVote;

/// What the selection concluded about safe values.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome {
    /// Exactly this value is safe to propose.
    Constrained(Value),
    /// Any value is safe (the leader proposes its own input).
    Free,
}

/// Why the outcome is what it is — used by tests (to mirror the paper's
/// Lemmas 3.1–3.5 case analysis) and by trace explanations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rationale {
    /// All `n − f` votes were nil (Lemma 3.1): any value is safe.
    AllNil,
    /// A single value was voted at the highest view `w` and `leader(w)` is
    /// not a proven equivocator (Lemma 3.3).
    SingleValueAtW,
    /// Equivocation detected; a commit certificate for view `w` pinned the
    /// value (Appendix A.2 case 1).
    CommitCertAtW,
    /// Equivocation detected; `f + t` votes for one value at `w` pinned it
    /// (§3.2 case 1 / Appendix A.2 case 2; Lemma 3.4).
    QuorumAtW,
    /// Equivocation detected and nothing pinned a value: no value can have
    /// been decided at or below `w` (Lemma 3.5 / Appendix A.2 case 3).
    NoEvidence,
}

/// Result of a completed selection.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectionResult {
    /// The safe value (or freedom to choose).
    pub outcome: Outcome,
    /// Why.
    pub rationale: Rationale,
    /// The highest view seen in a (non-excluded) valid vote, if any.
    pub w: Option<View>,
    /// Processes excluded as proven equivocators during the run.
    pub excluded: BTreeSet<ProcessId>,
}

/// Selection could not complete yet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SelectionError {
    /// After excluding proven equivocators, fewer than `n − f` votes remain;
    /// the leader must wait for more votes from non-excluded processes
    /// (§3.2: "the leader may need to wait for exactly one more vote").
    NeedMoreVotes {
        /// The proven equivocators so far.
        excluded: BTreeSet<ProcessId>,
        /// Valid votes currently usable.
        have: usize,
        /// Votes required (`n − f`).
        need: usize,
    },
}

impl std::fmt::Display for SelectionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SelectionError::NeedMoreVotes {
                have,
                need,
                excluded,
            } => write!(
                f,
                "need {need} votes from non-equivocators, have {have} ({} excluded)",
                excluded.len()
            ),
        }
    }
}

impl std::error::Error for SelectionError {}

/// Runs the selection algorithm for a view change into `dest_view` over
/// `votes` (keyed by voter; **already validated** against `dest_view`).
///
/// # Errors
///
/// [`SelectionError::NeedMoreVotes`] if, after excluding proven
/// equivocators, fewer than `n − f` usable votes remain.
pub fn select(
    cfg: &Config,
    dest_view: View,
    votes: &BTreeMap<ProcessId, SignedVote>,
) -> Result<SelectionResult, SelectionError> {
    let mut excluded: BTreeSet<ProcessId> = BTreeSet::new();
    debug_assert!(votes
        .values()
        .all(|sv| sv.vote.as_ref().is_none_or(|vd| vd.view < dest_view)));

    loop {
        let active: Vec<&SignedVote> = votes
            .iter()
            .filter(|(p, _)| !excluded.contains(*p))
            .map(|(_, sv)| sv)
            .collect();

        if active.len() < cfg.vote_quorum() {
            return Err(SelectionError::NeedMoreVotes {
                excluded,
                have: active.len(),
                need: cfg.vote_quorum(),
            });
        }

        // Lemma 3.1: all-nil — any value is safe.
        let non_nil: Vec<(&ProcessId, &crate::certs::VoteData)> = votes
            .iter()
            .filter(|(p, _)| !excluded.contains(*p))
            .filter_map(|(p, sv)| sv.vote.as_ref().map(|vd| (p, vd)))
            .collect();
        let Some(w) = non_nil.iter().map(|(_, vd)| vd.view).max() else {
            return Ok(SelectionResult {
                outcome: Outcome::Free,
                rationale: Rationale::AllNil,
                w: None,
                excluded,
            });
        };

        // Values voted at the highest view w.
        let mut values_at_w: Vec<&Value> = Vec::new();
        for (_, vd) in non_nil.iter().filter(|(_, vd)| vd.view == w) {
            if !values_at_w.contains(&&vd.value) {
                values_at_w.push(&vd.value);
            }
        }

        let equivocator = cfg.leader(w);
        if values_at_w.len() >= 2 && !excluded.contains(&equivocator) {
            // Two valid votes for different values in the same view w: the
            // τ signatures inside them are undeniable evidence that
            // leader(w) equivocated. Exclude its vote and restart — the
            // restart recomputes w, because dropping the equivocator's vote
            // (or waiting for replacements) can change the maximum.
            excluded.insert(equivocator);
            continue;
        }

        if !excluded.contains(&equivocator) {
            // No equivocation at w: exactly one value is voted at w
            // (values_at_w.len() == 1 here), and it is safe (Lemma 3.3).
            let x = values_at_w[0].clone();
            return Ok(SelectionResult {
                outcome: Outcome::Constrained(x),
                rationale: Rationale::SingleValueAtW,
                w: Some(w),
                excluded,
            });
        }

        // Equivocation path: leader(w) is excluded and we hold ≥ n − f votes
        // from other processes (votes′ in the paper's notation).

        // Appendix A.2 case 1: a commit certificate for view w pins the value.
        if let Some(cc) = non_nil
            .iter()
            .filter_map(|(_, vd)| vd.commit_cert.as_ref())
            .find(|cc| cc.view == w)
        {
            return Ok(SelectionResult {
                outcome: Outcome::Constrained(cc.value.clone()),
                rationale: Rationale::CommitCertAtW,
                w: Some(w),
                excluded,
            });
        }

        // §3.2 case 1 / Appendix A.2 case 2: f + t votes for one value at w.
        // `Value`'s interior mutability is only its digest memo, which is
        // excluded from Eq/Ord/Hash — the key ordering cannot shift.
        #[allow(clippy::mutable_key_type)]
        let mut counts: BTreeMap<&Value, usize> = BTreeMap::new();
        for (_, vd) in non_nil.iter().filter(|(_, vd)| vd.view == w) {
            *counts.entry(&vd.value).or_insert(0) += 1;
        }
        if let Some((x, _)) = counts.iter().find(|(_, c)| **c >= cfg.selection_quorum()) {
            return Ok(SelectionResult {
                outcome: Outcome::Constrained((*x).clone()),
                rationale: Rationale::QuorumAtW,
                w: Some(w),
                excluded,
            });
        }

        // §3.2 case 2 / Appendix A.2 case 3: nothing pinned a value, so no
        // value was or will be decided in any view ≤ w (Lemma 3.5).
        return Ok(SelectionResult {
            outcome: Outcome::Free,
            rationale: Rationale::NoEvidence,
            w: Some(w),
            excluded,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certs::{CommitCert, ProgressCert, VoteData};
    use fastbft_crypto::{Signature, SignatureSet};

    /// Test fixture: votes are hand-built (selection trusts its input, so
    /// dummy signatures suffice — validation is certs.rs's job and is tested
    /// there).
    fn dummy_sig(p: ProcessId) -> Signature {
        Signature::from_parts(p, [0u8; 32])
    }

    fn nil_vote(p: u32) -> (ProcessId, SignedVote) {
        let p = ProcessId(p);
        (
            p,
            SignedVote {
                voter: p,
                vote: None,
                sig: dummy_sig(p),
            },
        )
    }

    fn vote(p: u32, value: u64, view: u64) -> (ProcessId, SignedVote) {
        vote_with_cc(p, value, view, None)
    }

    fn vote_with_cc(
        p: u32,
        value: u64,
        view: u64,
        cc: Option<(u64, u64)>, // (value, view)
    ) -> (ProcessId, SignedVote) {
        let p = ProcessId(p);
        (
            p,
            SignedVote {
                voter: p,
                vote: Some(VoteData {
                    value: Value::from_u64(value),
                    view: View(view),
                    progress_cert: ProgressCert::Genesis,
                    leader_sig: dummy_sig(p),
                    commit_cert: cc.map(|(v, u)| CommitCert {
                        value: Value::from_u64(v),
                        view: View(u),
                        sigs: SignatureSet::new(),
                    }),
                }),
                sig: dummy_sig(p),
            },
        )
    }

    fn cfg_n4() -> Config {
        Config::new(4, 1, 1).unwrap() // vote quorum 3, selection quorum 2
    }

    /// n = 9, f = t = 2 (vanilla 5f−1): vote quorum 7, selection quorum 4.
    fn cfg_n9() -> Config {
        Config::vanilla(9, 2).unwrap()
    }

    #[test]
    fn all_nil_is_free() {
        let votes: BTreeMap<_, _> = [nil_vote(1), nil_vote(2), nil_vote(3)].into();
        let r = select(&cfg_n4(), View(2), &votes).unwrap();
        assert_eq!(r.outcome, Outcome::Free);
        assert_eq!(r.rationale, Rationale::AllNil);
        assert_eq!(r.w, None);
    }

    #[test]
    fn too_few_votes_errors() {
        let votes: BTreeMap<_, _> = [nil_vote(1), nil_vote(2)].into();
        let err = select(&cfg_n4(), View(2), &votes).unwrap_err();
        assert_eq!(
            err,
            SelectionError::NeedMoreVotes {
                excluded: BTreeSet::new(),
                have: 2,
                need: 3
            }
        );
    }

    #[test]
    fn single_value_at_w_is_selected() {
        // One vote for 7 at view 1, others nil → 7 is pinned (Lemma 3.3).
        let votes: BTreeMap<_, _> = [vote(1, 7, 1), nil_vote(2), nil_vote(3)].into();
        let r = select(&cfg_n4(), View(2), &votes).unwrap();
        assert_eq!(r.outcome, Outcome::Constrained(Value::from_u64(7)));
        assert_eq!(r.rationale, Rationale::SingleValueAtW);
        assert_eq!(r.w, Some(View(1)));
    }

    #[test]
    fn highest_view_wins() {
        let votes: BTreeMap<_, _> = [vote(1, 7, 1), vote(2, 9, 3), nil_vote(3)].into();
        let r = select(&cfg_n4(), View(4), &votes).unwrap();
        assert_eq!(r.outcome, Outcome::Constrained(Value::from_u64(9)));
        assert_eq!(r.w, Some(View(3)));
    }

    #[test]
    fn equivocation_then_need_more_votes() {
        // Two values at view 1 prove leader(1) = p2 equivocated. Excluding
        // p2's vote leaves only 2 of the required 3 votes.
        let votes: BTreeMap<_, _> = [vote(1, 7, 1), vote(2, 8, 1), nil_vote(3)].into();
        let err = select(&cfg_n4(), View(2), &votes).unwrap_err();
        match err {
            SelectionError::NeedMoreVotes {
                excluded,
                have,
                need,
            } => {
                assert!(excluded.contains(&ProcessId(2)));
                assert_eq!((have, need), (2, 3));
            }
        }
    }

    #[test]
    fn equivocation_with_quorum_pins_value() {
        // n = 9, f = t = 2: selection quorum = 4. leader(1) = p2 equivocated;
        // 4 votes for value 7 at view 1 from non-p2 processes pin 7
        // (Lemma 3.4).
        let votes: BTreeMap<_, _> = [
            vote(1, 7, 1),
            vote(2, 8, 1), // equivocator's own vote (leader(1) = p2)
            vote(3, 7, 1),
            vote(4, 7, 1),
            vote(5, 7, 1),
            nil_vote(6),
            nil_vote(7),
            nil_vote(8),
        ]
        .into();
        let r = select(&cfg_n9(), View(2), &votes).unwrap();
        assert_eq!(r.outcome, Outcome::Constrained(Value::from_u64(7)));
        assert_eq!(r.rationale, Rationale::QuorumAtW);
        assert!(r.excluded.contains(&ProcessId(2)));
    }

    #[test]
    fn equivocation_without_quorum_is_free() {
        // Lemma 3.5: equivocation, no value reaches f + t = 4 votes → free.
        let votes: BTreeMap<_, _> = [
            vote(1, 7, 1),
            vote(2, 8, 1),
            vote(3, 7, 1),
            vote(4, 8, 1),
            nil_vote(5),
            nil_vote(6),
            nil_vote(7),
            nil_vote(8),
        ]
        .into();
        let r = select(&cfg_n9(), View(2), &votes).unwrap();
        assert_eq!(r.outcome, Outcome::Free);
        assert_eq!(r.rationale, Rationale::NoEvidence);
    }

    #[test]
    fn equivocation_with_commit_cert_pins_value() {
        // Appendix A.2 case 1: a commit certificate for view w beats vote
        // counting. Even though 8 has more votes, the cc pins 7.
        let votes: BTreeMap<_, _> = [
            vote_with_cc(1, 7, 1, Some((7, 1))),
            vote(2, 8, 1),
            vote(3, 8, 1),
            vote(4, 8, 1),
            vote(5, 8, 1),
            nil_vote(6),
            nil_vote(7),
            nil_vote(8),
        ]
        .into();
        let r = select(&cfg_n9(), View(2), &votes).unwrap();
        assert_eq!(r.outcome, Outcome::Constrained(Value::from_u64(7)));
        assert_eq!(r.rationale, Rationale::CommitCertAtW);
    }

    #[test]
    fn stale_commit_cert_does_not_pin() {
        // A cc from a view below w is not case-1 evidence.
        let votes: BTreeMap<_, _> = [
            vote_with_cc(1, 7, 2, Some((9, 1))),
            nil_vote(2),
            nil_vote(3),
        ]
        .into();
        let r = select(&cfg_n4(), View(3), &votes).unwrap();
        assert_eq!(r.outcome, Outcome::Constrained(Value::from_u64(7)));
        assert_eq!(r.rationale, Rationale::SingleValueAtW);
    }

    #[test]
    fn exclusion_can_lower_w_and_restart() {
        // p2 = leader(1) equivocates at view 1 via votes of p1/p2. After
        // excluding p2, the remaining votes still include two values at
        // view 1 (from p1 and p4) — but the equivocator is already excluded,
        // so the case analysis proceeds at w = 1.
        let votes: BTreeMap<_, _> =
            [vote(1, 7, 1), vote(2, 8, 1), vote(4, 8, 1), nil_vote(3)].into();
        let r = select(&cfg_n4(), View(2), &votes).unwrap();
        // selection quorum (f + t = 2): value 8 has 2 votes (p2 excluded →
        // p4 only)… p4's single vote is not enough; value 7 has 1. Free.
        assert_eq!(r.outcome, Outcome::Free);
        assert!(r.excluded.contains(&ProcessId(2)));
    }

    #[test]
    fn restart_when_exclusion_reveals_higher_view() {
        // Votes: equivocation at view 2 (leader(2) = p3); excluding p3's
        // vote, remaining at w=2: p1 votes 7. Case analysis at w = 2 with 1
        // vote < quorum → Free. The cc check and counting happen at the new
        // active set.
        let votes: BTreeMap<_, _> =
            [vote(1, 7, 2), vote(3, 8, 2), vote(4, 5, 1), nil_vote(2)].into();
        let r = select(&cfg_n4(), View(3), &votes).unwrap();
        assert!(r.excluded.contains(&ProcessId(3)));
        assert_eq!(r.w, Some(View(2)));
        assert_eq!(r.outcome, Outcome::Free);
    }

    #[test]
    fn selection_is_deterministic_under_insertion_order() {
        let mk = |order: &[u32]| {
            let mut votes = BTreeMap::new();
            for &p in order {
                let (k, v) = match p {
                    1 => vote(1, 7, 1),
                    2 => vote(2, 8, 1),
                    3 => vote(3, 7, 1),
                    _ => nil_vote(p),
                };
                votes.insert(k, v);
            }
            select(&cfg_n4(), View(2), &votes).unwrap()
        };
        let a = mk(&[1, 2, 3, 4]);
        let b = mk(&[4, 3, 2, 1]);
        assert_eq!(a, b);
    }

    #[test]
    fn error_display_nonempty() {
        let err = SelectionError::NeedMoreVotes {
            excluded: BTreeSet::new(),
            have: 1,
            need: 3,
        };
        assert!(!err.to_string().is_empty());
    }
}
