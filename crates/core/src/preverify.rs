//! Speculative out-of-band verification of inbound protocol messages.
//!
//! The runtime's verify pool (see `fastbft_runtime`) runs worker threads
//! that check signatures *before* a message reaches the replica's event
//! loop. [`Preverifier`] is the protocol-aware piece: given a decoded
//! [`Message`], it performs exactly the signature and certificate checks
//! the replica will later perform itself — as **pure functions of the
//! message** — so that the replica's own checks become memo hits instead
//! of HMAC computations.
//!
//! Nothing here makes accept/reject decisions; the replica remains the
//! sole authority and re-runs every check through its normal paths. The
//! preverifier only *warms caches*, through two layers that PR 5 put in
//! place:
//!
//! * **instance memos** — `SignatureSet`'s per-signer memo and the value
//!   digest `OnceLock` live inside the delivered message instance, so
//!   verifying the very instance the replica will receive transfers the
//!   work directly;
//! * **the shared directory memo** — `KeyDirectory::enable_shared_memo`
//!   (turned on by [`Preverifier::new`]) memoizes successful
//!   `(signer, statement, tag)` triples across clones and threads, so
//!   bare-`Signature` checks (propose/ack/certack shares) transfer too.
//!
//! Consequently a preverified message that is *invalid* is simply not
//! memoized anywhere and the replica rejects it exactly as before; a
//! preverifier that never runs (inline mode, `verify_workers = 0`) changes
//! nothing at all.

use fastbft_crypto::KeyDirectory;
use fastbft_types::Config;

use crate::message::Message;
use crate::payload::{ack_payload, certack_payload, propose_payload};

/// Protocol-aware cache warmer for inbound [`Message`]s (see the module
/// docs). Cheap to clone; one per verify-pool worker.
#[derive(Clone, Debug)]
pub struct Preverifier {
    cfg: Config,
    dir: KeyDirectory,
}

impl Preverifier {
    /// A preverifier for a system `cfg` whose keys live in `dir`.
    ///
    /// Enables the directory's shared verification memo (on `dir` and all
    /// its clones — including those already inside replicas), which is
    /// what lets a worker thread's successful checks be reused by the
    /// replica's inline ones.
    pub fn new(cfg: Config, dir: KeyDirectory) -> Self {
        dir.enable_shared_memo();
        Preverifier { cfg, dir }
    }

    /// Runs every signature/certificate check `msg` will face in the
    /// replica, discarding the verdicts (successes land in the memo
    /// layers; failures leave no trace). Never panics: all checks are
    /// total functions returning `bool`.
    pub fn preverify(&self, msg: &Message) {
        match msg {
            Message::Propose(p) => {
                let _ = self.dir.verify(&propose_payload(&p.value, p.view), &p.sig);
                let _ = p.cert.verify(&self.cfg, &self.dir, &p.value, p.view);
            }
            Message::Ack(a) => {
                if let Some(share) = &a.share {
                    let _ = self.dir.verify(&ack_payload(&a.value, a.view), share);
                }
            }
            Message::SigShare(s) => {
                let _ = self.dir.verify(&ack_payload(&s.value, s.view), &s.sig);
            }
            Message::Commit(c) => {
                let _ = c.cert.verify(&self.cfg, &self.dir);
            }
            Message::Vote(v) => {
                let _ = v.vote.is_valid(&self.cfg, &self.dir, v.view);
            }
            Message::CertRequest(cr) => {
                for vote in &cr.votes {
                    let _ = vote.is_valid(&self.cfg, &self.dir, cr.view);
                }
            }
            Message::CertAck(ca) => {
                let _ = self
                    .dir
                    .verify(&certack_payload(&ca.value, ca.view), &ca.sig);
            }
            // Wishes carry no signatures (view synchronizer messages are
            // authenticated by the session MAC at the transport layer).
            Message::Wish(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certs::{CommitCert, ProgressCert};
    use crate::message::{AckMsg, CommitMsg, ProposeMsg, SigShareMsg};
    use fastbft_crypto::KeyPair;
    use fastbft_types::{Value, View};

    fn setup() -> (Config, Vec<KeyPair>, KeyDirectory) {
        let cfg = Config::new(4, 1, 1).unwrap();
        let (pairs, dir) = KeyDirectory::generate(4, 1);
        (cfg, pairs, dir)
    }

    #[test]
    fn preverified_checks_become_memo_hits() {
        let (cfg, pairs, dir) = setup();
        let pre = Preverifier::new(cfg, dir.clone());
        assert!(dir.shared_memo_enabled());

        let x = Value::from_u64(7);
        let v = View(1);
        let leader = &pairs[cfg.leader(v).index()];
        let msg = Message::Propose(ProposeMsg {
            value: x.clone(),
            view: v,
            cert: ProgressCert::Genesis,
            sig: leader.sign(&propose_payload(&x, v)),
        });
        pre.preverify(&msg);

        // The replica-side check of the same message now costs no MAC.
        let before = dir.verifications_performed();
        if let Message::Propose(p) = &msg {
            assert!(dir.verify(&propose_payload(&p.value, p.view), &p.sig));
        }
        assert_eq!(dir.verifications_performed(), before);
    }

    #[test]
    fn invalid_messages_leave_no_trace() {
        let (cfg, pairs, dir) = setup();
        let pre = Preverifier::new(cfg, dir.clone());

        let x = Value::from_u64(7);
        let v = View(1);
        // Signed by the wrong process for this view's proposal.
        let sig = pairs[3].sign(&propose_payload(&x, View(9)));
        let msg = Message::Propose(ProposeMsg {
            value: x.clone(),
            view: v,
            cert: ProgressCert::Genesis,
            sig: sig.clone(),
        });
        pre.preverify(&msg);
        // Still rejected afterwards: failures are never memoized.
        assert!(!dir.verify(&propose_payload(&x, v), &sig));
    }

    #[test]
    fn every_variant_is_handled_without_panicking() {
        let (cfg, pairs, dir) = setup();
        let pre = Preverifier::new(cfg, dir.clone());
        let x = Value::from_u64(3);
        let v = View(1);
        let payload = ack_payload(&x, v);
        let cert = CommitCert {
            value: x.clone(),
            view: v,
            sigs: pairs[..3].iter().map(|p| p.sign(&payload)).collect(),
        };
        let msgs = [
            Message::Ack(AckMsg {
                value: x.clone(),
                view: v,
                share: Some(pairs[0].sign(&payload)),
            }),
            Message::Ack(AckMsg {
                value: x.clone(),
                view: v,
                share: None,
            }),
            Message::SigShare(SigShareMsg {
                value: x.clone(),
                view: v,
                sig: pairs[1].sign(&payload),
            }),
            Message::Commit(CommitMsg { cert: cert.clone() }),
            Message::Wish(crate::message::WishMsg { view: View(2) }),
        ];
        for m in &msgs {
            pre.preverify(m);
        }
        // The commit cert's shares went through ack_payload checks; the
        // replica-side re-check of the same cert instance is free.
        let before = dir.verifications_performed();
        assert!(cert.verify(&cfg, &dir));
        assert_eq!(dir.verifications_performed(), before);
    }
}
