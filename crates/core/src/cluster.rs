//! High-level harness: a simulated cluster of replicas.
//!
//! [`SimCluster`] wires replicas, keys, the network model and the invariant
//! checker together so examples, tests and benchmarks can express scenarios
//! in a few lines:
//!
//! ```
//! use fastbft_core::cluster::SimCluster;
//! use fastbft_types::{Config, Value};
//!
//! let cfg = Config::new(4, 1, 1)?;
//! let mut cluster = SimCluster::builder(cfg).inputs_u64([7, 7, 7, 7]).build();
//! let report = cluster.run_until_all_decide();
//! assert_eq!(report.unanimous_decision(), Some(Value::from_u64(7)));
//! assert_eq!(report.decision_delays_max(), 2); // the fast path: 2Δ
//! assert!(report.violations.is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::BTreeMap;

use fastbft_crypto::KeyDirectory;
use fastbft_obs::MetricsRegistry;
use fastbft_sim::{
    ConsensusChecker, MessageStats, Network, ScriptedActor, SimDuration, SimTime, Simulation,
    Trace, Violation,
};
use fastbft_types::{Config, ProcessId, Value};

use crate::byzantine::{EquivocatingLeader, RandomByzantine};
use crate::certs::CertMode;
use crate::message::Message;
use crate::replica::{Replica, ReplicaOptions};

/// How a given process behaves in the scenario.
#[derive(Clone, Debug, Default)]
pub enum Behavior {
    /// A correct replica.
    #[default]
    Honest,
    /// Runs the protocol honestly, then crashes (stops) at the given time.
    /// Crashing *is* a Byzantine behavior in the paper's model.
    CrashAt(SimTime),
    /// Sends nothing, ever.
    Silent,
    /// `leader(1)` equivocation: proposes `a` to `recipients_a`, `b` to the
    /// rest (only meaningful for the process that leads view 1).
    EquivocateView1 {
        /// First value.
        a: Value,
        /// Second value.
        b: Value,
        /// Who receives the first value.
        recipients_a: Vec<ProcessId>,
    },
    /// The message fuzzer ([`RandomByzantine`]).
    Random {
        /// Fuzzer seed.
        seed: u64,
    },
}

impl Behavior {
    /// Whether the behavior counts as Byzantine for the checker.
    pub fn is_byzantine(&self) -> bool {
        !matches!(self, Behavior::Honest)
    }
}

/// Builder for [`SimCluster`].
#[derive(Debug)]
pub struct SimClusterBuilder {
    cfg: Config,
    seed: u64,
    delta: SimDuration,
    gst: SimTime,
    pre_gst_max: SimDuration,
    inputs: Vec<Value>,
    behaviors: BTreeMap<ProcessId, Behavior>,
    options: ReplicaOptions,
    metrics: Option<MetricsRegistry>,
    horizon: Option<SimTime>,
}

impl SimClusterBuilder {
    fn new(cfg: Config) -> Self {
        SimClusterBuilder {
            cfg,
            seed: 0,
            delta: SimDuration::DELTA,
            gst: SimTime::ZERO,
            pre_gst_max: SimDuration(SimDuration::DELTA.0 * 10),
            inputs: (1..=cfg.n() as u64).map(Value::from_u64).collect(),
            behaviors: BTreeMap::new(),
            options: ReplicaOptions::default(),
            metrics: None,
            horizon: None,
        }
    }

    /// Sets all inputs from `u64` labels (length must equal `n`).
    ///
    /// # Panics
    ///
    /// Panics if the iterator length differs from `n`.
    #[must_use]
    pub fn inputs_u64(mut self, inputs: impl IntoIterator<Item = u64>) -> Self {
        self.inputs = inputs.into_iter().map(Value::from_u64).collect();
        assert_eq!(self.inputs.len(), self.cfg.n(), "one input per process");
        self
    }

    /// Sets one process's input value.
    #[must_use]
    pub fn input(mut self, p: ProcessId, value: Value) -> Self {
        self.inputs[p.index()] = value;
        self
    }

    /// Sets a process's behavior (default: honest).
    #[must_use]
    pub fn behavior(mut self, p: ProcessId, behavior: Behavior) -> Self {
        self.behaviors.insert(p, behavior);
        self
    }

    /// Sets the RNG seed (keys, network jitter, fuzzers).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the message-delay bound Δ.
    #[must_use]
    pub fn delta(mut self, delta: SimDuration) -> Self {
        self.delta = delta;
        self
    }

    /// Sets the global stabilization time; before it, delays are uniformly
    /// random up to `pre_gst_max`.
    #[must_use]
    pub fn gst(mut self, gst: SimTime, pre_gst_max: SimDuration) -> Self {
        self.gst = gst;
        self.pre_gst_max = pre_gst_max;
        self
    }

    /// Selects the progress-certificate mode (E7 ablation).
    #[must_use]
    pub fn cert_mode(mut self, mode: CertMode) -> Self {
        self.options.cert_mode = mode;
        self
    }

    /// Forces the slow path on or off (default: on iff `t < f`).
    #[must_use]
    pub fn slow_path(mut self, on: bool) -> Self {
        self.options.slow_path = Some(on);
        self
    }

    /// Sets the view-1 timeout (doubles per view).
    #[must_use]
    pub fn base_timeout(mut self, timeout: SimDuration) -> Self {
        self.options.base_timeout = timeout;
        self
    }

    /// Overrides the simulation horizon used by
    /// [`SimCluster::run_until_all_decide`].
    #[must_use]
    pub fn horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// Attaches a metrics plane: honest replica `p_{i+1}` records into
    /// `registry.replica(i)`, so a test can attribute each decision to the
    /// fast or slow path and count view changes per process. The registry
    /// (or a clone — the sinks are shared) stays with the caller for
    /// scraping after the run.
    ///
    /// # Panics
    ///
    /// `build` panics if the registry has fewer replicas than `n`.
    #[must_use]
    pub fn metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.metrics = Some(registry.clone());
        self
    }

    /// Assembles the cluster.
    pub fn build(self) -> SimCluster {
        let cfg = self.cfg;
        let (pairs, dir) = KeyDirectory::generate(cfg.n(), self.seed);
        let network = if self.gst == SimTime::ZERO {
            Network::synchronous(self.delta)
        } else {
            Network::partially_synchronous(self.delta, self.gst, self.pre_gst_max)
        };
        let mut sim = Simulation::new(network, self.seed.wrapping_add(1));
        let mut byzantine = Vec::new();
        let mut crashes = Vec::new();
        if let Some(registry) = &self.metrics {
            assert!(
                registry.len() >= cfg.n(),
                "metrics registry must cover all {} processes",
                cfg.n()
            );
        }
        for p in cfg.processes() {
            let behavior = self.behaviors.get(&p).cloned().unwrap_or_default();
            if behavior.is_byzantine() {
                byzantine.push(p);
            }
            let input = self.inputs[p.index()].clone();
            let keys = pairs[p.index()].clone();
            let mut options = self.options.clone();
            if let Some(registry) = &self.metrics {
                options.metrics = registry.replica(p.index());
            }
            match behavior {
                Behavior::Honest => {
                    sim.add_actor(Box::new(Replica::with_options(
                        cfg,
                        keys,
                        dir.clone(),
                        input,
                        options,
                    )));
                }
                Behavior::CrashAt(at) => {
                    sim.add_actor(Box::new(Replica::with_options(
                        cfg,
                        keys,
                        dir.clone(),
                        input,
                        options,
                    )));
                    crashes.push((p, at));
                }
                Behavior::Silent => {
                    sim.add_actor(Box::new(ScriptedActor::silent()));
                }
                Behavior::EquivocateView1 { a, b, recipients_a } => {
                    sim.add_actor(Box::new(EquivocatingLeader::new(keys, a, b, recipients_a)));
                }
                Behavior::Random { seed } => {
                    sim.add_actor(Box::new(RandomByzantine::new(cfg, keys, seed)));
                }
            }
        }
        for (p, at) in crashes {
            sim.schedule_crash(p, at);
        }
        let horizon = self.horizon.unwrap_or_else(|| {
            let gst_part = if self.gst == SimTime::NEVER {
                SimTime::ZERO
            } else {
                self.gst
            };
            gst_part + SimDuration(self.delta.0.saturating_mul(20_000))
        });
        SimCluster {
            sim,
            cfg,
            delta: self.delta,
            inputs: self.inputs,
            byzantine,
            horizon,
            started: false,
        }
    }
}

/// A ready-to-run simulated cluster. See module docs for an example.
pub struct SimCluster {
    sim: Simulation<Message>,
    cfg: Config,
    delta: SimDuration,
    inputs: Vec<Value>,
    byzantine: Vec<ProcessId>,
    horizon: SimTime,
    started: bool,
}

impl SimCluster {
    /// Starts building a cluster for `cfg`.
    pub fn builder(cfg: Config) -> SimClusterBuilder {
        SimClusterBuilder::new(cfg)
    }

    /// The system configuration.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Ids of the correct (non-Byzantine) processes.
    pub fn correct_processes(&self) -> Vec<ProcessId> {
        self.cfg
            .processes()
            .filter(|p| !self.byzantine.contains(p))
            .collect()
    }

    fn ensure_started(&mut self) {
        if !self.started {
            self.started = true;
            self.sim.start();
        }
    }

    /// Runs until every correct process decides (or the horizon passes) and
    /// returns the report.
    pub fn run_until_all_decide(&mut self) -> Report {
        self.ensure_started();
        let correct = self.correct_processes();
        let all = self.sim.run_until_all_decide(&correct, self.horizon);
        self.report(all)
    }

    /// Runs until virtual time `t`, then reports.
    pub fn run_until(&mut self, t: SimTime) -> Report {
        self.ensure_started();
        self.sim.run_until(t);
        let correct = self.correct_processes();
        let all = correct.iter().all(|p| self.sim.decision(*p).is_some());
        self.report(all)
    }

    /// Direct access to the underlying simulation (advanced scenarios).
    pub fn sim_mut(&mut self) -> &mut Simulation<Message> {
        &mut self.sim
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &Trace {
        self.sim.trace()
    }

    fn report(&self, all_decided: bool) -> Report {
        let checker = ConsensusChecker::new(
            self.cfg
                .processes()
                .map(|p| (p, self.inputs[p.index()].clone())),
        )
        .with_byzantine_set(self.byzantine.iter().copied());
        let mut violations = checker.check_safety(self.sim.trace());
        if all_decided {
            // Liveness holds; nothing to add.
        } else {
            violations.extend(checker.check_liveness(self.sim.trace(), self.horizon));
        }
        Report {
            decisions: self
                .sim
                .decisions()
                .into_iter()
                .filter(|(p, _, _)| !self.byzantine.contains(p))
                .collect(),
            violations,
            delta: self.delta,
            all_decided,
            stats: self.sim.trace().message_stats(SimTime::NEVER),
            final_time: self.sim.now(),
        }
    }
}

/// Outcome of a cluster run.
#[derive(Clone, Debug)]
pub struct Report {
    /// Decisions of correct processes: `(process, time, value)`.
    pub decisions: Vec<(ProcessId, SimTime, Value)>,
    /// Detected violations (empty in every valid-configuration run).
    pub violations: Vec<Violation>,
    /// The Δ used, for latency conversion.
    pub delta: SimDuration,
    /// Whether every correct process decided within the horizon.
    pub all_decided: bool,
    /// Message statistics for the whole run.
    pub stats: MessageStats,
    /// Virtual time when the run stopped.
    pub final_time: SimTime,
}

impl Report {
    /// The common decided value, if all correct deciders agree.
    pub fn unanimous_decision(&self) -> Option<Value> {
        let first = self.decisions.first()?.2.clone();
        self.decisions
            .iter()
            .all(|(_, _, v)| *v == first)
            .then_some(first)
    }

    /// Decision latency of the slowest correct process, in message delays
    /// (ceiling of time/Δ).
    pub fn decision_delays_max(&self) -> u64 {
        self.decisions
            .iter()
            .map(|(_, t, _)| t.0.div_ceil(self.delta.0.max(1)))
            .max()
            .unwrap_or(0)
    }

    /// Decision latency of the fastest correct process, in message delays.
    pub fn decision_delays_min(&self) -> u64 {
        self.decisions
            .iter()
            .map(|(_, t, _)| t.0.div_ceil(self.delta.0.max(1)))
            .min()
            .unwrap_or(0)
    }

    /// Decision time of a specific process, in ticks.
    pub fn decision_time(&self, p: ProcessId) -> Option<SimTime> {
        self.decisions
            .iter()
            .find(|(q, _, _)| *q == p)
            .map(|(_, t, _)| *t)
    }

    /// View the deciding propose belonged to is not tracked here; use the
    /// trace for fine-grained questions. This accessor answers the common
    /// one: did anything go wrong?
    pub fn is_safe(&self) -> bool {
        self.violations
            .iter()
            .all(|v| matches!(v, Violation::Undecided { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbft_types::View;

    #[test]
    fn four_processes_decide_in_two_steps() {
        let cfg = Config::new(4, 1, 1).unwrap();
        let mut cluster = SimCluster::builder(cfg).inputs_u64([7, 7, 7, 7]).build();
        let report = cluster.run_until_all_decide();
        assert!(report.all_decided, "violations: {:?}", report.violations);
        assert!(report.violations.is_empty());
        assert_eq!(report.unanimous_decision(), Some(Value::from_u64(7)));
        assert_eq!(report.decision_delays_max(), 2);
    }

    #[test]
    fn vanilla_nine_processes_decide_fast() {
        let cfg = Config::vanilla(9, 2).unwrap();
        let mut cluster = SimCluster::builder(cfg)
            .inputs_u64([3, 3, 3, 3, 3, 3, 3, 3, 3])
            .build();
        let report = cluster.run_until_all_decide();
        assert!(report.all_decided);
        assert!(report.violations.is_empty());
        assert_eq!(report.decision_delays_max(), 2);
    }

    #[test]
    fn leader_input_wins_with_distinct_inputs() {
        let cfg = Config::new(4, 1, 1).unwrap();
        let mut cluster = SimCluster::builder(cfg).inputs_u64([1, 2, 3, 4]).build();
        let report = cluster.run_until_all_decide();
        // leader(1) = p2, so its input 2 is decided.
        assert_eq!(report.unanimous_decision(), Some(Value::from_u64(2)));
        let leader = cfg.leader(View::FIRST);
        assert_eq!(leader, ProcessId(2));
    }

    #[test]
    fn crashed_leader_triggers_view_change_and_decision() {
        let cfg = Config::new(4, 1, 1).unwrap();
        let leader = cfg.leader(View::FIRST);
        let mut cluster = SimCluster::builder(cfg)
            .inputs_u64([5, 5, 5, 5])
            .behavior(leader, Behavior::Silent)
            .build();
        let report = cluster.run_until_all_decide();
        assert!(report.all_decided, "violations: {:?}", report.violations);
        assert!(report.violations.is_empty());
        // Decided later than the fast path, via view change.
        assert!(report.decision_delays_max() > 2);
        assert_eq!(report.unanimous_decision(), Some(Value::from_u64(5)));
    }

    #[test]
    fn equivocating_leader_cannot_break_agreement() {
        let cfg = Config::new(4, 1, 1).unwrap();
        let leader = cfg.leader(View::FIRST);
        let mut cluster = SimCluster::builder(cfg)
            .inputs_u64([9, 9, 9, 9])
            .behavior(
                leader,
                Behavior::EquivocateView1 {
                    a: Value::from_u64(100),
                    b: Value::from_u64(200),
                    recipients_a: vec![ProcessId(1)],
                },
            )
            .build();
        let report = cluster.run_until_all_decide();
        assert!(report.all_decided, "violations: {:?}", report.violations);
        assert!(report.violations.is_empty());
        assert!(report.unanimous_decision().is_some());
    }

    #[test]
    fn crash_behavior_counts_as_byzantine_for_checker() {
        let cfg = Config::new(4, 1, 1).unwrap();
        let cluster = SimCluster::builder(cfg)
            .behavior(ProcessId(3), Behavior::CrashAt(SimTime(150)))
            .build();
        assert_eq!(cluster.correct_processes().len(), 3);
    }
}
