//! Protocol messages.
//!
//! One message type per arrow in the paper's figures:
//!
//! * [`ProposeMsg`] / [`AckMsg`] — the fast path (Figure 1a);
//! * [`SigShareMsg`] / [`CommitMsg`] — the slow path (Figure 5);
//! * [`VoteMsg`] / [`CertRequestMsg`] / [`CertAckMsg`] — the view change
//!   (Figure 1b);
//! * [`WishMsg`] — the view synchronizer (the paper assumes one from the
//!   literature; ours is a wish/enter round synchronizer).

use fastbft_crypto::Signature;
use fastbft_sim::SimMessage;
use fastbft_types::wire::{Decode, Encode, WireError, WireReader};
use fastbft_types::{Value, View};

use crate::certs::{CommitCert, ProgressCert, SignedVote};

/// `propose(x̂, v, σ̂, τ̂)`: the leader of `v` proposes `x̂` with progress
/// certificate `σ̂` and its signature `τ̂` over `(propose, x̂, v)`.
#[derive(Clone, Debug, PartialEq)]
pub struct ProposeMsg {
    /// The proposed value `x̂`.
    pub value: Value,
    /// The view `v`.
    pub view: View,
    /// The progress certificate `σ̂` (Genesis in view 1).
    pub cert: ProgressCert,
    /// `τ̂ = sign_{leader(v)}((propose, x̂, v))`.
    pub sig: Signature,
}
fastbft_types::impl_wire_struct!(ProposeMsg {
    value,
    view,
    cert,
    sig
});

/// `ack(x̂, v)` with the slow-path share riding along: sent to every
/// process after accepting a proposal; `n − t` acks decide the value.
///
/// Appendix A.1 has the signature share *accompany* each ack; it was
/// historically a separate [`SigShareMsg`] broadcast so that signing the
/// (arbitrarily large) statement never delayed the fast path. Digest-
/// carried statements removed that reason — `φ_ack` now signs 41 fixed
/// bytes — so the share travels inside the ack and the value's bytes cross
/// the wire once per ack instead of twice. [`SigShareMsg`] remains for
/// share-only (re)transmission and fault-injection drivers; receivers
/// treat an ack-carried share and a standalone share identically.
#[derive(Clone, Debug, PartialEq)]
pub struct AckMsg {
    /// The acknowledged value.
    pub value: Value,
    /// The view.
    pub view: View,
    /// `φ_ack = sign_q((ack, x, v))`, present when the sender runs the
    /// slow path.
    pub share: Option<Signature>,
}
fastbft_types::impl_wire_struct!(AckMsg { value, view, share });

/// `sig(φ_ack)`: a standalone slow-path signature share (see [`AckMsg`] —
/// honest processes piggyback shares on their acks; this message remains
/// the share-only form).
#[derive(Clone, Debug, PartialEq)]
pub struct SigShareMsg {
    /// The acknowledged value.
    pub value: Value,
    /// The view.
    pub view: View,
    /// `φ_ack = sign_q((ack, x, v))`.
    pub sig: Signature,
}
fastbft_types::impl_wire_struct!(SigShareMsg { value, view, sig });

/// `Commit(x, v, cc)`: broadcast once a commit certificate is assembled;
/// `⌈(n+f+1)/2⌉` of these decide the value (slow path).
#[derive(Clone, Debug, PartialEq)]
pub struct CommitMsg {
    /// The commit certificate (carries value and view).
    pub cert: CommitCert,
}
fastbft_types::impl_wire_struct!(CommitMsg { cert });

/// `vote(vote_q, φ_vote)`: sent to the leader of the new view on every view
/// change.
#[derive(Clone, Debug, PartialEq)]
pub struct VoteMsg {
    /// The destination view.
    pub view: View,
    /// The signed vote.
    pub vote: SignedVote,
}
fastbft_types::impl_wire_struct!(VoteMsg { view, vote });

/// `CertReq(x̂, votes)`: the leader asks processes to confirm its selection
/// of `x̂` by re-running the selection algorithm on `votes`.
#[derive(Clone, Debug, PartialEq)]
pub struct CertRequestMsg {
    /// The view being certified.
    pub view: View,
    /// The selected value `x̂`.
    pub value: Value,
    /// The votes the selection ran over.
    pub votes: Vec<SignedVote>,
}
fastbft_types::impl_wire_struct!(CertRequestMsg { view, value, votes });

/// `CertAck(φ_ca)`: a signed confirmation that the leader's selection was
/// correct; `f + 1` of these form the progress certificate.
#[derive(Clone, Debug, PartialEq)]
pub struct CertAckMsg {
    /// The view being certified.
    pub view: View,
    /// The certified value.
    pub value: Value,
    /// `φ_ca = sign_q((CertAck, x̂, v))`.
    pub sig: Signature,
}
fastbft_types::impl_wire_struct!(CertAckMsg { view, value, sig });

/// View-synchronizer wish: "I want to enter view ≥ v".
#[derive(Clone, Debug, PartialEq)]
pub struct WishMsg {
    /// The wished-for view.
    pub view: View,
}
fastbft_types::impl_wire_struct!(WishMsg { view });

/// Every protocol message.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// Fast path: leader proposal.
    Propose(ProposeMsg),
    /// Fast path: acknowledgment.
    Ack(AckMsg),
    /// Slow path: signature share.
    SigShare(SigShareMsg),
    /// Slow path: commit certificate broadcast.
    Commit(CommitMsg),
    /// View change: vote.
    Vote(VoteMsg),
    /// View change: certification request.
    CertRequest(CertRequestMsg),
    /// View change: certification confirmation.
    CertAck(CertAckMsg),
    /// View synchronizer wish.
    Wish(WishMsg),
}

impl Encode for Message {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Message::Propose(m) => {
                buf.push(1);
                m.encode(buf);
            }
            Message::Ack(m) => {
                buf.push(2);
                m.encode(buf);
            }
            Message::SigShare(m) => {
                buf.push(3);
                m.encode(buf);
            }
            Message::Commit(m) => {
                buf.push(4);
                m.encode(buf);
            }
            Message::Vote(m) => {
                buf.push(5);
                m.encode(buf);
            }
            Message::CertRequest(m) => {
                buf.push(6);
                m.encode(buf);
            }
            Message::CertAck(m) => {
                buf.push(7);
                m.encode(buf);
            }
            Message::Wish(m) => {
                buf.push(8);
                m.encode(buf);
            }
        }
    }
}

impl Decode for Message {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.take_u8()? {
            1 => Message::Propose(ProposeMsg::decode(r)?),
            2 => Message::Ack(AckMsg::decode(r)?),
            3 => Message::SigShare(SigShareMsg::decode(r)?),
            4 => Message::Commit(CommitMsg::decode(r)?),
            5 => Message::Vote(VoteMsg::decode(r)?),
            6 => Message::CertRequest(CertRequestMsg::decode(r)?),
            7 => Message::CertAck(CertAckMsg::decode(r)?),
            8 => Message::Wish(WishMsg::decode(r)?),
            tag => {
                return Err(WireError::InvalidTag {
                    tag,
                    context: "Message",
                })
            }
        })
    }
}

impl SimMessage for Message {
    fn kind(&self) -> &'static str {
        match self {
            Message::Propose(_) => "propose",
            Message::Ack(_) => "ack",
            Message::SigShare(_) => "sig",
            Message::Commit(_) => "Commit",
            Message::Vote(_) => "vote",
            Message::CertRequest(_) => "CertReq",
            Message::CertAck(_) => "CertAck",
            Message::Wish(_) => "wish",
        }
    }

    fn wire_size(&self) -> usize {
        self.to_wire_bytes().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbft_crypto::KeyDirectory;
    use fastbft_types::wire::roundtrip;

    #[test]
    fn all_messages_roundtrip() {
        let (pairs, _) = KeyDirectory::generate(4, 2);
        let x = Value::from_u64(7);
        let v = View(3);
        let sig = pairs[0].sign(b"any");
        let sv = SignedVote::sign(&pairs[1], None, v);

        let msgs = vec![
            Message::Propose(ProposeMsg {
                value: x.clone(),
                view: v,
                cert: ProgressCert::Genesis,
                sig: sig.clone(),
            }),
            Message::Ack(AckMsg {
                value: x.clone(),
                view: v,
                share: None,
            }),
            Message::SigShare(SigShareMsg {
                value: x.clone(),
                view: v,
                sig: sig.clone(),
            }),
            Message::Commit(CommitMsg {
                cert: CommitCert {
                    value: x.clone(),
                    view: v,
                    sigs: [sig.clone()].into_iter().collect(),
                },
            }),
            Message::Vote(VoteMsg {
                view: v,
                vote: sv.clone(),
            }),
            Message::CertRequest(CertRequestMsg {
                view: v,
                value: x.clone(),
                votes: vec![sv],
            }),
            Message::CertAck(CertAckMsg {
                view: v,
                value: x,
                sig,
            }),
            Message::Wish(WishMsg { view: v }),
        ];
        for m in &msgs {
            roundtrip(m);
            assert!(!m.kind().is_empty());
            assert!(m.wire_size() > 0);
            assert_eq!(m.wire_size(), m.to_wire_bytes().len());
        }
    }

    #[test]
    fn kinds_are_distinct() {
        let (pairs, _) = KeyDirectory::generate(2, 2);
        let x = Value::from_u64(1);
        let sig = pairs[0].sign(b"s");
        let kinds = [
            Message::Ack(AckMsg {
                value: x.clone(),
                view: View(1),
                share: None,
            })
            .kind(),
            Message::Wish(WishMsg { view: View(1) }).kind(),
            Message::SigShare(SigShareMsg {
                value: x,
                view: View(1),
                sig,
            })
            .kind(),
        ];
        assert_eq!(
            kinds.len(),
            kinds
                .iter()
                .collect::<std::collections::BTreeSet<_>>()
                .len()
        );
    }

    #[test]
    fn decode_rejects_bad_tag() {
        assert!(matches!(
            fastbft_types::wire::from_bytes::<Message>(&[99]),
            Err(WireError::InvalidTag { tag: 99, .. })
        ));
    }
}
