//! Canonical byte strings for every signed statement in the protocol.
//!
//! The paper signs tuples like `(propose, x, v)`; here each tuple becomes a
//! domain-separated canonical byte string. Domain separation bytes guarantee
//! that a signature over one statement kind can never be replayed as another
//! (e.g. an ack share can't pose as a CertAck), and including the view binds
//! every statement to its view, which is what makes vote replay across views
//! impossible (§3.2).
//!
//! # Digest-carried statements (hash-then-sign)
//!
//! Statements embed the SHA-256 **digest** of the value (or vote encoding),
//! not the bytes themselves: every statement is the fixed-size
//! `tag ‖ H(m) ‖ v` ([`Statement`], [`STATEMENT_LEN`] bytes on the stack —
//! no per-call allocation). This is the standard hash-then-sign shape (PBFT
//! signs request digests; HotStuff-family certificates verify in O(sigs),
//! not O(sigs × payload)): signing and verifying cost the same for an
//! 8-byte label and a 1 KiB command batch, because the value is hashed once
//! per process ([`Value::digest_with`] memoizes it) while each signature
//! only ever touches the 32-byte digest. The paper's §3.2 replay and
//! domain-separation arguments carry over by collision resistance of
//! SHA-256: two distinct values (or votes) would need colliding digests to
//! alias a statement.
//!
//! **Compatibility note:** switching the signed bytes from
//! `tag ‖ m ‖ v` to `tag ‖ H(m) ‖ v` changes every signature and MAC-based
//! certificate **protocol-wide** — processes on the two formats cannot
//! validate each other's signatures. All in-tree signers and verifiers go
//! through this module, so the workspace switches atomically; anything
//! persisting or replaying signed traffic across versions would need a
//! protocol version bump.

use fastbft_crypto::{sha256::Sha256, value_digest, Digest};
use fastbft_types::{Value, View};

/// Byte length of every signed statement: 1 domain tag + 32 digest + 8 view.
pub const STATEMENT_LEN: usize = 41;

/// A fixed-size signed statement `tag ‖ H(m) ‖ v`, built on the stack.
pub type Statement = [u8; STATEMENT_LEN];

/// Domain tags for signed statements.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
enum Domain {
    /// `(propose, x, v)` — signed by `leader(v)`; the paper's `τ`.
    Propose = 1,
    /// `(vote, vote, v)` — signed by the voter; the paper's `φ_vote`.
    Vote = 2,
    /// `(CertAck, x, v)` — signed by certifiers; the paper's `φ_ca`.
    CertAck = 3,
    /// `(ack, x, v)` — the slow-path signature share; the paper's `φ_ack`.
    Ack = 4,
}

fn statement(domain: Domain, digest: &Digest, v: View) -> Statement {
    let mut s = [0u8; STATEMENT_LEN];
    s[0] = domain as u8;
    s[1..33].copy_from_slice(digest);
    s[33..41].copy_from_slice(&v.0.to_be_bytes());
    s
}

/// Bytes of the statement `(propose, H(x), v)` (signed by `leader(v)` → `τ`).
pub fn propose_payload(x: &Value, v: View) -> Statement {
    statement(Domain::Propose, value_digest(x), v)
}

/// Bytes of the statement `(vote, H(vote_bytes), v)` (signed by the voter →
/// `φ_vote`). `vote_bytes` is the canonical encoding of the vote
/// (`Option<VoteData>`), produced by the caller; this function is kept
/// byte-oriented to avoid a circular dependency with the vote types.
pub fn vote_payload(vote_bytes: &[u8], v: View) -> Statement {
    statement(Domain::Vote, &Sha256::digest_of(vote_bytes), v)
}

/// Bytes of the statement `(CertAck, H(x), v)` (signed by certifiers →
/// `φ_ca`; `f + 1` of these form a progress certificate).
pub fn certack_payload(x: &Value, v: View) -> Statement {
    statement(Domain::CertAck, value_digest(x), v)
}

/// Bytes of the statement `(ack, H(x), v)` (signed share sent alongside each
/// ack; `⌈(n+f+1)/2⌉` of these form a commit certificate, Appendix A).
pub fn ack_payload(x: &Value, v: View) -> Statement {
    statement(Domain::Ack, value_digest(x), v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbft_types::wire::Encode;

    #[test]
    fn domains_never_collide() {
        let x = Value::from_u64(7);
        let v = View(3);
        let payloads = [
            propose_payload(&x, v),
            certack_payload(&x, v),
            ack_payload(&x, v),
            vote_payload(&x.as_bytes().to_vec().to_wire_bytes(), v),
        ];
        for i in 0..payloads.len() {
            for j in i + 1..payloads.len() {
                assert_ne!(payloads[i], payloads[j], "payloads {i} and {j} collide");
            }
        }
    }

    #[test]
    fn payloads_bind_value_and_view() {
        let x = Value::from_u64(7);
        let y = Value::from_u64(8);
        assert_ne!(propose_payload(&x, View(1)), propose_payload(&y, View(1)));
        assert_ne!(propose_payload(&x, View(1)), propose_payload(&x, View(2)));
        assert_ne!(ack_payload(&x, View(1)), ack_payload(&x, View(2)));
        assert_ne!(certack_payload(&x, View(1)), certack_payload(&y, View(1)));
    }

    #[test]
    fn vote_payload_binds_destination_view() {
        // The same vote sent to leaders of different views signs different
        // bytes — the cross-view replay defence.
        let vote_bytes = vec![1u8, 2, 3];
        assert_ne!(
            vote_payload(&vote_bytes, View(5)),
            vote_payload(&vote_bytes, View(6))
        );
    }

    #[test]
    fn statements_are_fixed_size_regardless_of_payload() {
        // The whole point of digest-carried statements: a 1 KiB value signs
        // the same 41 bytes as an 8-byte one.
        let small = Value::from_u64(1);
        let large = Value::new(vec![0xAB; 1024]);
        assert_eq!(propose_payload(&small, View(1)).len(), STATEMENT_LEN);
        assert_eq!(propose_payload(&large, View(1)).len(), STATEMENT_LEN);
        assert_ne!(
            propose_payload(&small, View(1)),
            propose_payload(&large, View(1))
        );
    }
}
