//! Canonical byte strings for every signed statement in the protocol.
//!
//! The paper signs tuples like `(propose, x, v)`; here each tuple becomes a
//! domain-separated canonical byte string. Domain separation bytes guarantee
//! that a signature over one statement kind can never be replayed as another
//! (e.g. an ack share can't pose as a CertAck), and including the view binds
//! every statement to its view, which is what makes vote replay across views
//! impossible (§3.2).

use fastbft_types::wire::Encode;
use fastbft_types::{Value, View};

/// Domain tags for signed statements.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
enum Domain {
    /// `(propose, x, v)` — signed by `leader(v)`; the paper's `τ`.
    Propose = 1,
    /// `(vote, vote, v)` — signed by the voter; the paper's `φ_vote`.
    Vote = 2,
    /// `(CertAck, x, v)` — signed by certifiers; the paper's `φ_ca`.
    CertAck = 3,
    /// `(ack, x, v)` — the slow-path signature share; the paper's `φ_ack`.
    Ack = 4,
}

fn tagged(domain: Domain, build: impl FnOnce(&mut Vec<u8>)) -> Vec<u8> {
    let mut buf = vec![domain as u8];
    build(&mut buf);
    buf
}

/// Bytes of the statement `(propose, x, v)` (signed by `leader(v)` → `τ`).
pub fn propose_payload(x: &Value, v: View) -> Vec<u8> {
    tagged(Domain::Propose, |buf| {
        x.encode(buf);
        v.encode(buf);
    })
}

/// Bytes of the statement `(vote, vote_bytes, v)` (signed by the voter →
/// `φ_vote`). `vote_bytes` is the canonical encoding of the vote
/// (`Option<VoteData>`), produced by the caller; this function is kept
/// byte-oriented to avoid a circular dependency with the vote types.
pub fn vote_payload(vote_bytes: &[u8], v: View) -> Vec<u8> {
    tagged(Domain::Vote, |buf| {
        vote_bytes.encode(buf);
        v.encode(buf);
    })
}

/// Bytes of the statement `(CertAck, x, v)` (signed by certifiers → `φ_ca`;
/// `f + 1` of these form a progress certificate).
pub fn certack_payload(x: &Value, v: View) -> Vec<u8> {
    tagged(Domain::CertAck, |buf| {
        x.encode(buf);
        v.encode(buf);
    })
}

/// Bytes of the statement `(ack, x, v)` (signed share sent alongside each
/// ack; `⌈(n+f+1)/2⌉` of these form a commit certificate, Appendix A).
pub fn ack_payload(x: &Value, v: View) -> Vec<u8> {
    tagged(Domain::Ack, |buf| {
        x.encode(buf);
        v.encode(buf);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domains_never_collide() {
        let x = Value::from_u64(7);
        let v = View(3);
        let payloads = [
            propose_payload(&x, v),
            certack_payload(&x, v),
            ack_payload(&x, v),
            vote_payload(&x.as_bytes().to_vec().to_wire_bytes(), v),
        ];
        for i in 0..payloads.len() {
            for j in i + 1..payloads.len() {
                assert_ne!(payloads[i], payloads[j], "payloads {i} and {j} collide");
            }
        }
    }

    #[test]
    fn payloads_bind_value_and_view() {
        let x = Value::from_u64(7);
        let y = Value::from_u64(8);
        assert_ne!(propose_payload(&x, View(1)), propose_payload(&y, View(1)));
        assert_ne!(propose_payload(&x, View(1)), propose_payload(&x, View(2)));
        assert_ne!(ack_payload(&x, View(1)), ack_payload(&x, View(2)));
        assert_ne!(certack_payload(&x, View(1)), certack_payload(&y, View(1)));
    }

    #[test]
    fn vote_payload_binds_destination_view() {
        // The same vote sent to leaders of different views signs different
        // bytes — the cross-view replay defence.
        let vote_bytes = vec![1u8, 2, 3];
        assert_ne!(
            vote_payload(&vote_bytes, View(5)),
            vote_payload(&vote_bytes, View(6))
        );
    }
}
