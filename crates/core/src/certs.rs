//! Votes, progress certificates and commit certificates.
//!
//! * [`VoteData`] / [`Vote`] — the paper's `vote_q = (x, u, σ, τ)` (§3.2),
//!   extended with the latest commit certificate (Appendix A.2);
//! * [`SignedVote`] — a vote plus `φ_vote = sign_q((vote, vote_q, v))`,
//!   bound to the destination view `v`;
//! * [`ProgressCert`] — the paper's `σ`: proof that a value is safe in a
//!   view. Comes in the **bounded** form the paper contributes (`f + 1`
//!   CertAck signatures) and the **naive** form it discusses and rejects
//!   (the full vote set, verified by re-running the selection algorithm) —
//!   kept for the certificate-growth ablation (experiment E7);
//! * [`CommitCert`] — the paper's slow-path commit certificate:
//!   `⌈(n+f+1)/2⌉` signature shares over `(ack, x, v)`.

use std::cell::RefCell;
use std::collections::HashSet;

use fastbft_crypto::{
    sha256::Sha256, value_digest, Digest, KeyDirectory, KeyPair, SigVerifyStats, Signature,
    SignatureSet,
};
use fastbft_obs::MetricsHandle;
use fastbft_types::wire::{Decode, Encode, WireError, WireReader};
use fastbft_types::{Config, ProcessId, Value, View};

use crate::payload::{ack_payload, certack_payload, propose_payload, vote_payload, Statement};
use crate::selection::{select, Outcome, SelectionError};

thread_local! {
    /// Reused encode scratch for vote statements and certificate
    /// fingerprints: signing or validating a vote previously built a
    /// throwaway `to_wire_bytes()` `Vec` per call — the hot paths here are
    /// per-vote at every view change, so the allocation was pure overhead.
    static ENCODE_SCRATCH: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// The statement `φ_vote` signs for `vote` destined to `dest_view`,
/// built through the reused thread-local scratch buffer.
fn vote_statement(vote: &Vote, dest_view: View) -> Statement {
    ENCODE_SCRATCH.with(|cell| {
        let mut buf = cell.borrow_mut();
        buf.clear();
        vote.encode(&mut buf);
        vote_payload(&buf, dest_view)
    })
}

/// SHA-256 of a value's canonical encoding, via the reused scratch buffer.
fn encoded_digest(value: &impl Encode) -> Digest {
    ENCODE_SCRATCH.with(|cell| {
        let mut buf = cell.borrow_mut();
        buf.clear();
        value.encode(&mut buf);
        Sha256::digest_of(&buf)
    })
}

/// Which progress-certificate construction the protocol uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CertMode {
    /// The paper's contribution: constant-size certificates built from
    /// `f + 1` CertAck signatures via the extra view-change round-trip.
    #[default]
    Bounded,
    /// The naive scheme §3.2 discusses: the certificate is the whole vote
    /// set; verifiers re-run the selection algorithm. Certificate size (and
    /// verification time) grows with the view number — the ablation of E7.
    Naive,
}

/// A progress certificate: transferable proof that value `x` is safe in
/// view `v` (no other value was or will be decided in any view `< v`).
#[derive(Clone, Debug, PartialEq)]
pub enum ProgressCert {
    /// The trivial certificate for view 1, where any value is safe (`⊥`).
    Genesis,
    /// `f + 1` signatures over `(CertAck, x, v)` — at least one is from a
    /// correct process that re-ran the selection algorithm (§3.2).
    Bounded(SignatureSet),
    /// The full set of `≥ n − f` signed votes; verified by re-running the
    /// selection algorithm locally.
    Naive(Vec<SignedVote>),
}

impl ProgressCert {
    /// Verifies that this certificate proves `x` safe in `v`.
    pub fn verify(&self, cfg: &Config, dir: &KeyDirectory, x: &Value, v: View) -> bool {
        match self {
            ProgressCert::Genesis => v.is_first(),
            ProgressCert::Bounded(sigs) => {
                sigs.verify(&certack_payload(x, v), dir, cfg.cert_quorum())
            }
            ProgressCert::Naive(votes) => {
                // Re-run the selection algorithm on the presented votes, as a
                // CertRequest verifier would (the naive scheme makes *every*
                // propose recipient such a verifier).
                let mut map = std::collections::BTreeMap::new();
                for sv in votes {
                    if !sv.is_valid(cfg, dir, v) {
                        return false;
                    }
                    if map.insert(sv.voter, sv.clone()).is_some() {
                        return false; // duplicate voter
                    }
                }
                match select(cfg, v, &map) {
                    Ok(result) => match result.outcome {
                        Outcome::Constrained(ref y) => y == x,
                        Outcome::Free => true,
                    },
                    Err(SelectionError::NeedMoreVotes { .. }) => false,
                }
            }
        }
    }

    /// Encoded size in bytes (the E7 metric).
    pub fn wire_size(&self) -> usize {
        self.to_wire_bytes().len()
    }

    /// [`ProgressCert::verify`] through a [`CertCache`]: a certificate that
    /// already verified for `(x, v)` (e.g. re-delivered with a re-proposal,
    /// or embedded in several votes) is recognized by fingerprint and does
    /// no signature work.
    pub fn verify_cached(
        &self,
        cfg: &Config,
        dir: &KeyDirectory,
        x: &Value,
        v: View,
        cache: &mut CertCache,
    ) -> bool {
        match self {
            // The trivial certificate has nothing worth caching.
            ProgressCert::Genesis => v.is_first(),
            ProgressCert::Bounded(sigs) => {
                let key = (
                    CertKind::BoundedProgress,
                    v,
                    *value_digest(x),
                    encoded_digest(sigs),
                );
                cache.check(key, |metrics| {
                    let stats =
                        sigs.verify_with_stats(&certack_payload(x, v), dir, cfg.cert_quorum());
                    note_sig_stats(metrics, stats);
                    stats.ok
                })
            }
            ProgressCert::Naive(votes) => {
                let key = (
                    CertKind::NaiveProgress,
                    v,
                    *value_digest(x),
                    encoded_digest(votes),
                );
                // The naive scheme's per-vote signatures are not memoized
                // (E7 ablation path) — no signature-memo stats to record.
                cache.check(key, |_| self.verify(cfg, dir, x, v))
            }
        }
    }
}

/// Certificate kind discriminant for [`CertCache`] fingerprints.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum CertKind {
    BoundedProgress,
    NaiveProgress,
    Commit,
}

/// Fingerprint of a successfully verified certificate: kind, view, value
/// digest, and the digest of the certificate evidence's canonical encoding.
///
/// Hashing the evidence bytes (not just the signer set) is what makes the
/// cache sound: a Byzantine peer re-sending a cert with the right signers
/// but tampered signature tags produces a different fingerprint and is
/// re-verified (and rejected) instead of riding an earlier cert's success.
type CertFingerprint = (CertKind, View, Digest, Digest);

/// Memo of certificates that have already verified **successfully**.
///
/// Commit certificates are broadcast by every process and re-delivered with
/// every re-proposal and piggybacked vote, so the same `(view, value,
/// evidence)` certificate reaches a replica many times; this cache turns
/// each re-verification into one fingerprint hash (a few SHA-256 blocks
/// over the signature tags) instead of a full multi-signer HMAC walk.
/// Failures are never cached — garbage stays cheap to reject and cannot
/// poison the memo — so every entry corresponds to a certificate that
/// genuinely carried a quorum of valid signatures, which bounds the cache
/// by real protocol traffic (a capacity backstop guards the pathological
/// case anyway).
#[derive(Debug)]
pub struct CertCache {
    seen: HashSet<CertFingerprint>,
    /// Bound on memoized entries; on overflow the memo resets.
    capacity: usize,
    /// Observability handle: cache hits/misses and the signature-memo
    /// work of cache-missing verifications are recorded here (disabled by
    /// default — [`CertCache::with_metrics`] enables it).
    metrics: MetricsHandle,
}

/// Default backstop bound on [`CertCache`] entries; on overflow the memo
/// resets (correctness is unaffected — certificates are simply
/// re-verified). Deployments tune this through
/// `ReplicaOptions::cert_cache_capacity`.
pub const DEFAULT_CERT_CACHE_CAPACITY: usize = 4096;

impl Default for CertCache {
    fn default() -> Self {
        CertCache::new()
    }
}

impl CertCache {
    /// Creates an empty cache with the default capacity.
    pub fn new() -> Self {
        CertCache::with_capacity(DEFAULT_CERT_CACHE_CAPACITY, MetricsHandle::none())
    }

    /// An empty cache with the default capacity that records hits, misses
    /// and signature-memo stats into `metrics`.
    pub fn with_metrics(metrics: MetricsHandle) -> Self {
        CertCache::with_capacity(DEFAULT_CERT_CACHE_CAPACITY, metrics)
    }

    /// An empty cache bounded at `capacity` memoized certificates. A
    /// capacity of 0 disables memoization entirely (every certificate is
    /// re-verified); hit/miss metrics still flow.
    pub fn with_capacity(capacity: usize, metrics: MetricsHandle) -> Self {
        CertCache {
            seen: HashSet::new(),
            capacity,
            metrics,
        }
    }

    /// The configured entry bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of memoized certificates (for tests and monitoring).
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Returns `true` if `key` is memoized; otherwise runs `verify` and
    /// memoizes a success. The closure receives the cache's metrics
    /// handle so verifications can attribute their signature-memo work.
    fn check(&mut self, key: CertFingerprint, verify: impl FnOnce(&MetricsHandle) -> bool) -> bool {
        if self.seen.contains(&key) {
            if let Some(m) = self.metrics.get() {
                m.cert_cache_hit_total.inc();
            }
            return true;
        }
        if let Some(m) = self.metrics.get() {
            m.cert_cache_miss_total.inc();
        }
        let ok = verify(&self.metrics);
        if ok && self.capacity > 0 {
            if self.seen.len() >= self.capacity {
                self.seen.clear();
            }
            self.seen.insert(key);
        }
        ok
    }
}

/// Records one certificate verification's signature-memo split, if the
/// handle is live.
fn note_sig_stats(metrics: &MetricsHandle, stats: SigVerifyStats) {
    if let Some(m) = metrics.get() {
        m.sig_memo_hit_total.add(stats.memo_hits);
        m.sig_memo_miss_total.add(stats.fresh_checks);
    }
}

impl Encode for ProgressCert {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            ProgressCert::Genesis => buf.push(0),
            ProgressCert::Bounded(sigs) => {
                buf.push(1);
                sigs.encode(buf);
            }
            ProgressCert::Naive(votes) => {
                buf.push(2);
                votes.encode(buf);
            }
        }
    }
}

impl Decode for ProgressCert {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.take_u8()? {
            0 => Ok(ProgressCert::Genesis),
            1 => Ok(ProgressCert::Bounded(SignatureSet::decode(r)?)),
            2 => Ok(ProgressCert::Naive(Vec::<SignedVote>::decode(r)?)),
            tag => Err(WireError::InvalidTag {
                tag,
                context: "ProgressCert",
            }),
        }
    }
}

/// A commit certificate: `⌈(n+f+1)/2⌉` signature shares over `(ack, x, v)`
/// (Appendix A). Holding one proves no other value can be decided in `v`.
#[derive(Clone, Debug, PartialEq)]
pub struct CommitCert {
    /// The committed value.
    pub value: Value,
    /// The view the shares were produced in.
    pub view: View,
    /// The signature shares.
    pub sigs: SignatureSet,
}

impl CommitCert {
    /// Verifies the certificate against the slow-path quorum.
    pub fn verify(&self, cfg: &Config, dir: &KeyDirectory) -> bool {
        self.sigs
            .verify(&ack_payload(&self.value, self.view), dir, cfg.slow_quorum())
    }

    /// [`CommitCert::verify`] through a [`CertCache`]: the same certificate
    /// re-delivered (every process broadcasts its `Commit`, and votes
    /// piggyback the latest one) is recognized by fingerprint instead of
    /// re-walking its signature quorum.
    pub fn verify_cached(&self, cfg: &Config, dir: &KeyDirectory, cache: &mut CertCache) -> bool {
        let key = (
            CertKind::Commit,
            self.view,
            *value_digest(&self.value),
            encoded_digest(&self.sigs),
        );
        cache.check(key, |metrics| {
            let stats = self.sigs.verify_with_stats(
                &ack_payload(&self.value, self.view),
                dir,
                cfg.slow_quorum(),
            );
            note_sig_stats(metrics, stats);
            stats.ok
        })
    }

    /// Encoded size in bytes.
    pub fn wire_size(&self) -> usize {
        self.to_wire_bytes().len()
    }
}

fastbft_types::impl_wire_struct!(CommitCert { value, view, sigs });

/// The paper's `vote_q = (x, u, σ, τ)`, plus the piggybacked latest commit
/// certificate of the generalized protocol.
#[derive(Clone, Debug, PartialEq)]
pub struct VoteData {
    /// The value this process last acknowledged (`x`).
    pub value: Value,
    /// The view in which it acknowledged (`u`).
    pub view: View,
    /// The progress certificate from the propose it acknowledged (`σ`).
    pub progress_cert: ProgressCert,
    /// `τ = sign_{leader(u)}((propose, x, u))`.
    pub leader_sig: Signature,
    /// The most recent commit certificate this process has collected, if any
    /// (Appendix A.2: "each process will add to their vote the latest commit
    /// certificate that they have collected").
    pub commit_cert: Option<CommitCert>,
}

fastbft_types::impl_wire_struct!(VoteData {
    value,
    view,
    progress_cert,
    leader_sig,
    commit_cert
});

/// A vote: `nil` ([`None`]) until the process first acknowledges a proposal,
/// then the data of the latest acknowledged proposal.
pub type Vote = Option<VoteData>;

/// A vote signed for a specific destination view:
/// `(vote_q, φ_vote = sign_q((vote, vote_q, v)))`.
#[derive(Clone, Debug, PartialEq)]
pub struct SignedVote {
    /// The voting process.
    pub voter: ProcessId,
    /// Its vote.
    pub vote: Vote,
    /// `φ_vote`, binding the vote to the destination view.
    pub sig: Signature,
}

fastbft_types::impl_wire_struct!(SignedVote { voter, vote, sig });

impl SignedVote {
    /// Creates and signs a vote destined for the leader of `dest_view`.
    pub fn sign(keypair: &KeyPair, vote: Vote, dest_view: View) -> Self {
        let payload = vote_statement(&vote, dest_view);
        SignedVote {
            voter: keypair.id(),
            vote,
            sig: keypair.sign(&payload),
        }
    }

    /// Full validity check (the paper's "valid vote", §3.2): the vote
    /// signature is valid for `dest_view`, and — for non-nil votes — the
    /// embedded view precedes `dest_view`, `τ` is a valid signature by
    /// `leader(u)` over `(propose, x, u)`, the progress certificate proves
    /// `x` safe in `u`, and any piggybacked commit certificate is valid and
    /// no newer than `u`.
    pub fn is_valid(&self, cfg: &Config, dir: &KeyDirectory, dest_view: View) -> bool {
        self.validate(cfg, dir, dest_view, None)
    }

    /// [`SignedVote::is_valid`] with the embedded certificates checked
    /// through a [`CertCache`] — the same commit certificate is typically
    /// piggybacked by many voters, and a leader validates each vote both on
    /// arrival and (as a CertRequest verifier would) in snapshots.
    pub fn is_valid_cached(
        &self,
        cfg: &Config,
        dir: &KeyDirectory,
        dest_view: View,
        cache: &mut CertCache,
    ) -> bool {
        self.validate(cfg, dir, dest_view, Some(cache))
    }

    fn validate(
        &self,
        cfg: &Config,
        dir: &KeyDirectory,
        dest_view: View,
        mut cache: Option<&mut CertCache>,
    ) -> bool {
        if self.sig.signer != self.voter {
            return false;
        }
        let payload = vote_statement(&self.vote, dest_view);
        if !dir.verify(&payload, &self.sig) {
            return false;
        }
        let Some(vd) = &self.vote else {
            return true; // nil votes are valid by definition
        };
        if vd.view >= dest_view || vd.view.0 < 1 {
            return false;
        }
        if vd.leader_sig.signer != cfg.leader(vd.view) {
            return false;
        }
        if !dir.verify(&propose_payload(&vd.value, vd.view), &vd.leader_sig) {
            return false;
        }
        let pc_ok = match cache.as_deref_mut() {
            Some(c) => vd
                .progress_cert
                .verify_cached(cfg, dir, &vd.value, vd.view, c),
            None => vd.progress_cert.verify(cfg, dir, &vd.value, vd.view),
        };
        if !pc_ok {
            return false;
        }
        if let Some(cc) = &vd.commit_cert {
            if cc.view > vd.view {
                return false;
            }
            let cc_ok = match cache {
                Some(c) => cc.verify_cached(cfg, dir, c),
                None => cc.verify(cfg, dir),
            };
            if !cc_ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbft_types::wire::roundtrip;

    fn setup() -> (Config, Vec<KeyPair>, KeyDirectory) {
        let cfg = Config::new(4, 1, 1).unwrap();
        let (pairs, dir) = KeyDirectory::generate(4, 1);
        (cfg, pairs, dir)
    }

    /// A valid propose signature for view 1 by its leader (p2 under the
    /// paper's leader map).
    fn tau(pairs: &[KeyPair], cfg: &Config, x: &Value, v: View) -> Signature {
        pairs[cfg.leader(v).index()].sign(&propose_payload(x, v))
    }

    #[test]
    fn genesis_cert_only_valid_in_view_one() {
        let (cfg, _pairs, dir) = setup();
        let x = Value::from_u64(1);
        assert!(ProgressCert::Genesis.verify(&cfg, &dir, &x, View(1)));
        assert!(!ProgressCert::Genesis.verify(&cfg, &dir, &x, View(2)));
    }

    #[test]
    fn bounded_cert_requires_f_plus_one_signers() {
        let (cfg, pairs, dir) = setup();
        let x = Value::from_u64(1);
        let v = View(3);
        let payload = certack_payload(&x, v);
        let one: SignatureSet = [pairs[0].sign(&payload)].into_iter().collect();
        assert!(!ProgressCert::Bounded(one).verify(&cfg, &dir, &x, v));
        let two: SignatureSet = pairs[..2].iter().map(|p| p.sign(&payload)).collect();
        assert!(ProgressCert::Bounded(two).verify(&cfg, &dir, &x, v));
        // Signatures over the wrong value do not certify x.
        let wrong: SignatureSet = pairs[..2]
            .iter()
            .map(|p| p.sign(&certack_payload(&Value::from_u64(2), v)))
            .collect();
        assert!(!ProgressCert::Bounded(wrong).verify(&cfg, &dir, &x, v));
    }

    #[test]
    fn commit_cert_requires_slow_quorum() {
        let (cfg, pairs, dir) = setup();
        let x = Value::from_u64(5);
        let v = View(1);
        let payload = ack_payload(&x, v);
        // slow quorum for (4,1,1) is ceil(6/2) = 3.
        let cc = CommitCert {
            value: x.clone(),
            view: v,
            sigs: pairs[..3].iter().map(|p| p.sign(&payload)).collect(),
        };
        assert!(cc.verify(&cfg, &dir));
        let small = CommitCert {
            value: x.clone(),
            view: v,
            sigs: pairs[..2].iter().map(|p| p.sign(&payload)).collect(),
        };
        assert!(!small.verify(&cfg, &dir));
    }

    #[test]
    fn nil_votes_validate_and_roundtrip() {
        let (cfg, pairs, dir) = setup();
        let sv = SignedVote::sign(&pairs[2], None, View(4));
        assert!(sv.is_valid(&cfg, &dir, View(4)));
        // …but not for a different destination view (replay defence).
        assert!(!sv.is_valid(&cfg, &dir, View(5)));
        roundtrip(&sv);
    }

    #[test]
    fn real_vote_validates() {
        let (cfg, pairs, dir) = setup();
        let x = Value::from_u64(9);
        let vd = VoteData {
            value: x.clone(),
            view: View(1),
            progress_cert: ProgressCert::Genesis,
            leader_sig: tau(&pairs, &cfg, &x, View(1)),
            commit_cert: None,
        };
        let sv = SignedVote::sign(&pairs[0], Some(vd), View(2));
        assert!(sv.is_valid(&cfg, &dir, View(2)));
        roundtrip(&sv);
    }

    #[test]
    fn vote_with_forged_leader_sig_rejected() {
        let (cfg, pairs, dir) = setup();
        let x = Value::from_u64(9);
        // p3 signs instead of leader(1) = p2.
        let vd = VoteData {
            value: x.clone(),
            view: View(1),
            progress_cert: ProgressCert::Genesis,
            leader_sig: pairs[2].sign(&propose_payload(&x, View(1))),
            commit_cert: None,
        };
        let sv = SignedVote::sign(&pairs[0], Some(vd), View(2));
        assert!(!sv.is_valid(&cfg, &dir, View(2)));
    }

    #[test]
    fn vote_view_must_precede_destination() {
        let (cfg, pairs, dir) = setup();
        let x = Value::from_u64(9);
        let vd = VoteData {
            value: x.clone(),
            view: View(3),
            progress_cert: ProgressCert::Genesis, // also invalid for view 3
            leader_sig: tau(&pairs, &cfg, &x, View(3)),
            commit_cert: None,
        };
        // view 3 not < dest view 3
        let sv = SignedVote::sign(&pairs[0], Some(vd), View(3));
        assert!(!sv.is_valid(&cfg, &dir, View(3)));
    }

    #[test]
    fn vote_with_stale_commit_cert_ok_future_cc_rejected() {
        let (cfg, pairs, dir) = setup();
        let x = Value::from_u64(9);
        let cc = CommitCert {
            value: x.clone(),
            view: View(1),
            sigs: pairs[..3]
                .iter()
                .map(|p| p.sign(&ack_payload(&x, View(1))))
                .collect(),
        };
        let make = |cc_view: View| {
            let mut cc = cc.clone();
            cc.view = cc_view;
            VoteData {
                value: x.clone(),
                view: View(1),
                progress_cert: ProgressCert::Genesis,
                leader_sig: tau(&pairs, &cfg, &x, View(1)),
                commit_cert: Some(cc),
            }
        };
        let good = SignedVote::sign(&pairs[0], Some(make(View(1))), View(2));
        assert!(good.is_valid(&cfg, &dir, View(2)));
        // cc.view > vote.view is malformed.
        let bad = SignedVote::sign(&pairs[0], Some(make(View(2))), View(3));
        assert!(!bad.is_valid(&cfg, &dir, View(3)));
    }

    #[test]
    fn tampered_vote_rejected() {
        let (cfg, pairs, dir) = setup();
        let x = Value::from_u64(9);
        let vd = VoteData {
            value: x.clone(),
            view: View(1),
            progress_cert: ProgressCert::Genesis,
            leader_sig: tau(&pairs, &cfg, &x, View(1)),
            commit_cert: None,
        };
        let mut sv = SignedVote::sign(&pairs[0], Some(vd), View(2));
        // Tamper with the embedded value after signing.
        if let Some(vd) = &mut sv.vote {
            vd.value = Value::from_u64(10);
        }
        assert!(!sv.is_valid(&cfg, &dir, View(2)));
        // Claiming someone else's voter id also fails.
        let sv2 = SignedVote {
            voter: ProcessId(3),
            ..SignedVote::sign(&pairs[0], None, View(2))
        };
        assert!(!sv2.is_valid(&cfg, &dir, View(2)));
    }

    #[test]
    fn cert_cache_makes_redelivered_certs_free() {
        let (cfg, pairs, dir) = setup();
        let x = Value::from_u64(5);
        let payload = ack_payload(&x, View(1));
        let cc = CommitCert {
            value: x.clone(),
            view: View(1),
            sigs: pairs[..3].iter().map(|p| p.sign(&payload)).collect(),
        };
        let mut cache = CertCache::new();
        assert!(cc.verify_cached(&cfg, &dir, &mut cache));
        assert_eq!(cache.len(), 1);
        // A re-delivered copy arrives freshly decoded (no SignatureSet
        // memo): the replica-level cache must still skip every HMAC.
        let redelivered: CommitCert = fastbft_types::wire::from_bytes(&cc.to_wire_bytes()).unwrap();
        let before = dir.verifications_performed();
        assert!(redelivered.verify_cached(&cfg, &dir, &mut cache));
        assert_eq!(dir.verifications_performed(), before);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cert_cache_reverifies_tampered_evidence() {
        let (cfg, pairs, dir) = setup();
        let x = Value::from_u64(5);
        let payload = ack_payload(&x, View(1));
        let cc = CommitCert {
            value: x.clone(),
            view: View(1),
            sigs: pairs[..3].iter().map(|p| p.sign(&payload)).collect(),
        };
        let mut cache = CertCache::new();
        assert!(cc.verify_cached(&cfg, &dir, &mut cache));
        // Same (view, value, signer set) but one forged tag: the evidence
        // fingerprint differs, so the cache must NOT vouch for it.
        let mut forged = cc.clone();
        forged.sigs = cc
            .sigs
            .iter()
            .enumerate()
            .map(|(i, s)| {
                if i == 0 {
                    Signature::from_parts(s.signer, [0u8; 32])
                } else {
                    s.clone()
                }
            })
            .collect();
        let fresh: CommitCert = fastbft_types::wire::from_bytes(&forged.to_wire_bytes()).unwrap();
        assert!(!fresh.verify_cached(&cfg, &dir, &mut cache));
        // Failures are not memoized.
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cert_cache_capacity_bounds_and_evicts() {
        let (cfg, pairs, dir) = setup();
        let mut cache = CertCache::with_capacity(4, MetricsHandle::none());
        assert_eq!(cache.capacity(), 4);
        let cert_for = |view: u64| {
            let x = Value::from_u64(view);
            let payload = ack_payload(&x, View(view));
            CommitCert {
                value: x,
                view: View(view),
                sigs: pairs[..3].iter().map(|p| p.sign(&payload)).collect(),
            }
        };
        // Fill to capacity: all four distinct certs are memoized.
        for view in 1..=4 {
            assert!(cert_for(view).verify_cached(&cfg, &dir, &mut cache));
        }
        assert_eq!(cache.len(), 4);
        // A fifth distinct cert overflows: the memo resets wholesale and
        // only the newcomer remains …
        assert!(cert_for(5).verify_cached(&cfg, &dir, &mut cache));
        assert_eq!(cache.len(), 1);
        // … so an evicted cert re-verifies (paying its HMACs again) and is
        // re-admitted. Correctness is unaffected either way.
        let evicted: CommitCert =
            fastbft_types::wire::from_bytes(&cert_for(1).to_wire_bytes()).unwrap();
        let before = dir.verifications_performed();
        assert!(evicted.verify_cached(&cfg, &dir, &mut cache));
        #[cfg(debug_assertions)]
        assert!(dir.verifications_performed() > before);
        #[cfg(not(debug_assertions))]
        let _ = before;
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cert_cache_capacity_zero_disables_memoization() {
        let (cfg, pairs, dir) = setup();
        let x = Value::from_u64(5);
        let payload = ack_payload(&x, View(1));
        let cc = CommitCert {
            value: x.clone(),
            view: View(1),
            sigs: pairs[..3].iter().map(|p| p.sign(&payload)).collect(),
        };
        let mut cache = CertCache::with_capacity(0, MetricsHandle::none());
        assert!(cc.verify_cached(&cfg, &dir, &mut cache));
        assert!(cache.is_empty());
        // Nothing was memoized, but verification still succeeds.
        let fresh: CommitCert = fastbft_types::wire::from_bytes(&cc.to_wire_bytes()).unwrap();
        assert!(fresh.verify_cached(&cfg, &dir, &mut cache));
        assert!(cache.is_empty());
    }

    #[test]
    fn progress_cert_cache_hits_and_misses() {
        let (cfg, pairs, dir) = setup();
        let x = Value::from_u64(1);
        let v = View(3);
        let set: SignatureSet = pairs[..2]
            .iter()
            .map(|p| p.sign(&certack_payload(&x, v)))
            .collect();
        let cert = ProgressCert::Bounded(set);
        let mut cache = CertCache::new();
        assert!(cert.verify_cached(&cfg, &dir, &x, v, &mut cache));
        let fresh: ProgressCert = fastbft_types::wire::from_bytes(&cert.to_wire_bytes()).unwrap();
        let before = dir.verifications_performed();
        assert!(fresh.verify_cached(&cfg, &dir, &x, v, &mut cache));
        assert_eq!(dir.verifications_performed(), before);
        // The same evidence must not certify a different value or view.
        assert!(!fresh.verify_cached(&cfg, &dir, &Value::from_u64(2), v, &mut cache));
        assert!(!fresh.verify_cached(&cfg, &dir, &x, View(4), &mut cache));
        // Genesis stays view-1-only through the cache.
        assert!(ProgressCert::Genesis.verify_cached(&cfg, &dir, &x, View(1), &mut cache));
        assert!(!ProgressCert::Genesis.verify_cached(&cfg, &dir, &x, View(2), &mut cache));
    }

    #[test]
    fn progress_cert_wire_roundtrips() {
        let (_, pairs, _) = setup();
        roundtrip(&ProgressCert::Genesis);
        let set: SignatureSet = pairs[..2].iter().map(|p| p.sign(b"s")).collect();
        roundtrip(&ProgressCert::Bounded(set));
        let votes = vec![
            SignedVote::sign(&pairs[0], None, View(2)),
            SignedVote::sign(&pairs[1], None, View(2)),
        ];
        roundtrip(&ProgressCert::Naive(votes));
    }

    #[test]
    fn bounded_cert_size_is_constant_in_view() {
        let (_, pairs, _) = setup();
        let x = Value::from_u64(1);
        let size_at = |v: View| {
            let set: SignatureSet = pairs[..2]
                .iter()
                .map(|p| p.sign(&certack_payload(&x, v)))
                .collect();
            ProgressCert::Bounded(set).wire_size()
        };
        assert_eq!(size_at(View(2)), size_at(View(2_000_000)));
    }
}
