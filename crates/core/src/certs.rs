//! Votes, progress certificates and commit certificates.
//!
//! * [`VoteData`] / [`Vote`] — the paper's `vote_q = (x, u, σ, τ)` (§3.2),
//!   extended with the latest commit certificate (Appendix A.2);
//! * [`SignedVote`] — a vote plus `φ_vote = sign_q((vote, vote_q, v))`,
//!   bound to the destination view `v`;
//! * [`ProgressCert`] — the paper's `σ`: proof that a value is safe in a
//!   view. Comes in the **bounded** form the paper contributes (`f + 1`
//!   CertAck signatures) and the **naive** form it discusses and rejects
//!   (the full vote set, verified by re-running the selection algorithm) —
//!   kept for the certificate-growth ablation (experiment E7);
//! * [`CommitCert`] — the paper's slow-path commit certificate:
//!   `⌈(n+f+1)/2⌉` signature shares over `(ack, x, v)`.

use fastbft_crypto::{KeyDirectory, KeyPair, Signature, SignatureSet};
use fastbft_types::wire::{Decode, Encode, WireError, WireReader};
use fastbft_types::{Config, ProcessId, Value, View};

use crate::payload::{ack_payload, certack_payload, propose_payload, vote_payload};
use crate::selection::{select, Outcome, SelectionError};

/// Which progress-certificate construction the protocol uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CertMode {
    /// The paper's contribution: constant-size certificates built from
    /// `f + 1` CertAck signatures via the extra view-change round-trip.
    #[default]
    Bounded,
    /// The naive scheme §3.2 discusses: the certificate is the whole vote
    /// set; verifiers re-run the selection algorithm. Certificate size (and
    /// verification time) grows with the view number — the ablation of E7.
    Naive,
}

/// A progress certificate: transferable proof that value `x` is safe in
/// view `v` (no other value was or will be decided in any view `< v`).
#[derive(Clone, Debug, PartialEq)]
pub enum ProgressCert {
    /// The trivial certificate for view 1, where any value is safe (`⊥`).
    Genesis,
    /// `f + 1` signatures over `(CertAck, x, v)` — at least one is from a
    /// correct process that re-ran the selection algorithm (§3.2).
    Bounded(SignatureSet),
    /// The full set of `≥ n − f` signed votes; verified by re-running the
    /// selection algorithm locally.
    Naive(Vec<SignedVote>),
}

impl ProgressCert {
    /// Verifies that this certificate proves `x` safe in `v`.
    pub fn verify(&self, cfg: &Config, dir: &KeyDirectory, x: &Value, v: View) -> bool {
        match self {
            ProgressCert::Genesis => v.is_first(),
            ProgressCert::Bounded(sigs) => {
                sigs.verify(&certack_payload(x, v), dir, cfg.cert_quorum())
            }
            ProgressCert::Naive(votes) => {
                // Re-run the selection algorithm on the presented votes, as a
                // CertRequest verifier would (the naive scheme makes *every*
                // propose recipient such a verifier).
                let mut map = std::collections::BTreeMap::new();
                for sv in votes {
                    if !sv.is_valid(cfg, dir, v) {
                        return false;
                    }
                    if map.insert(sv.voter, sv.clone()).is_some() {
                        return false; // duplicate voter
                    }
                }
                match select(cfg, v, &map) {
                    Ok(result) => match result.outcome {
                        Outcome::Constrained(ref y) => y == x,
                        Outcome::Free => true,
                    },
                    Err(SelectionError::NeedMoreVotes { .. }) => false,
                }
            }
        }
    }

    /// Encoded size in bytes (the E7 metric).
    pub fn wire_size(&self) -> usize {
        self.to_wire_bytes().len()
    }
}

impl Encode for ProgressCert {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            ProgressCert::Genesis => buf.push(0),
            ProgressCert::Bounded(sigs) => {
                buf.push(1);
                sigs.encode(buf);
            }
            ProgressCert::Naive(votes) => {
                buf.push(2);
                votes.encode(buf);
            }
        }
    }
}

impl Decode for ProgressCert {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.take_u8()? {
            0 => Ok(ProgressCert::Genesis),
            1 => Ok(ProgressCert::Bounded(SignatureSet::decode(r)?)),
            2 => Ok(ProgressCert::Naive(Vec::<SignedVote>::decode(r)?)),
            tag => Err(WireError::InvalidTag {
                tag,
                context: "ProgressCert",
            }),
        }
    }
}

/// A commit certificate: `⌈(n+f+1)/2⌉` signature shares over `(ack, x, v)`
/// (Appendix A). Holding one proves no other value can be decided in `v`.
#[derive(Clone, Debug, PartialEq)]
pub struct CommitCert {
    /// The committed value.
    pub value: Value,
    /// The view the shares were produced in.
    pub view: View,
    /// The signature shares.
    pub sigs: SignatureSet,
}

impl CommitCert {
    /// Verifies the certificate against the slow-path quorum.
    pub fn verify(&self, cfg: &Config, dir: &KeyDirectory) -> bool {
        self.sigs
            .verify(&ack_payload(&self.value, self.view), dir, cfg.slow_quorum())
    }

    /// Encoded size in bytes.
    pub fn wire_size(&self) -> usize {
        self.to_wire_bytes().len()
    }
}

fastbft_types::impl_wire_struct!(CommitCert { value, view, sigs });

/// The paper's `vote_q = (x, u, σ, τ)`, plus the piggybacked latest commit
/// certificate of the generalized protocol.
#[derive(Clone, Debug, PartialEq)]
pub struct VoteData {
    /// The value this process last acknowledged (`x`).
    pub value: Value,
    /// The view in which it acknowledged (`u`).
    pub view: View,
    /// The progress certificate from the propose it acknowledged (`σ`).
    pub progress_cert: ProgressCert,
    /// `τ = sign_{leader(u)}((propose, x, u))`.
    pub leader_sig: Signature,
    /// The most recent commit certificate this process has collected, if any
    /// (Appendix A.2: "each process will add to their vote the latest commit
    /// certificate that they have collected").
    pub commit_cert: Option<CommitCert>,
}

fastbft_types::impl_wire_struct!(VoteData {
    value,
    view,
    progress_cert,
    leader_sig,
    commit_cert
});

/// A vote: `nil` ([`None`]) until the process first acknowledges a proposal,
/// then the data of the latest acknowledged proposal.
pub type Vote = Option<VoteData>;

/// A vote signed for a specific destination view:
/// `(vote_q, φ_vote = sign_q((vote, vote_q, v)))`.
#[derive(Clone, Debug, PartialEq)]
pub struct SignedVote {
    /// The voting process.
    pub voter: ProcessId,
    /// Its vote.
    pub vote: Vote,
    /// `φ_vote`, binding the vote to the destination view.
    pub sig: Signature,
}

fastbft_types::impl_wire_struct!(SignedVote { voter, vote, sig });

impl SignedVote {
    /// Creates and signs a vote destined for the leader of `dest_view`.
    pub fn sign(keypair: &KeyPair, vote: Vote, dest_view: View) -> Self {
        let payload = vote_payload(&vote.to_wire_bytes(), dest_view);
        SignedVote {
            voter: keypair.id(),
            vote,
            sig: keypair.sign(&payload),
        }
    }

    /// Full validity check (the paper's "valid vote", §3.2): the vote
    /// signature is valid for `dest_view`, and — for non-nil votes — the
    /// embedded view precedes `dest_view`, `τ` is a valid signature by
    /// `leader(u)` over `(propose, x, u)`, the progress certificate proves
    /// `x` safe in `u`, and any piggybacked commit certificate is valid and
    /// no newer than `u`.
    pub fn is_valid(&self, cfg: &Config, dir: &KeyDirectory, dest_view: View) -> bool {
        if self.sig.signer != self.voter {
            return false;
        }
        let payload = vote_payload(&self.vote.to_wire_bytes(), dest_view);
        if !dir.verify(&payload, &self.sig) {
            return false;
        }
        let Some(vd) = &self.vote else {
            return true; // nil votes are valid by definition
        };
        if vd.view >= dest_view || vd.view.0 < 1 {
            return false;
        }
        if vd.leader_sig.signer != cfg.leader(vd.view) {
            return false;
        }
        if !dir.verify(&propose_payload(&vd.value, vd.view), &vd.leader_sig) {
            return false;
        }
        if !vd.progress_cert.verify(cfg, dir, &vd.value, vd.view) {
            return false;
        }
        if let Some(cc) = &vd.commit_cert {
            if cc.view > vd.view || !cc.verify(cfg, dir) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbft_types::wire::roundtrip;

    fn setup() -> (Config, Vec<KeyPair>, KeyDirectory) {
        let cfg = Config::new(4, 1, 1).unwrap();
        let (pairs, dir) = KeyDirectory::generate(4, 1);
        (cfg, pairs, dir)
    }

    /// A valid propose signature for view 1 by its leader (p2 under the
    /// paper's leader map).
    fn tau(pairs: &[KeyPair], cfg: &Config, x: &Value, v: View) -> Signature {
        pairs[cfg.leader(v).index()].sign(&propose_payload(x, v))
    }

    #[test]
    fn genesis_cert_only_valid_in_view_one() {
        let (cfg, _pairs, dir) = setup();
        let x = Value::from_u64(1);
        assert!(ProgressCert::Genesis.verify(&cfg, &dir, &x, View(1)));
        assert!(!ProgressCert::Genesis.verify(&cfg, &dir, &x, View(2)));
    }

    #[test]
    fn bounded_cert_requires_f_plus_one_signers() {
        let (cfg, pairs, dir) = setup();
        let x = Value::from_u64(1);
        let v = View(3);
        let payload = certack_payload(&x, v);
        let one: SignatureSet = [pairs[0].sign(&payload)].into_iter().collect();
        assert!(!ProgressCert::Bounded(one).verify(&cfg, &dir, &x, v));
        let two: SignatureSet = pairs[..2].iter().map(|p| p.sign(&payload)).collect();
        assert!(ProgressCert::Bounded(two).verify(&cfg, &dir, &x, v));
        // Signatures over the wrong value do not certify x.
        let wrong: SignatureSet = pairs[..2]
            .iter()
            .map(|p| p.sign(&certack_payload(&Value::from_u64(2), v)))
            .collect();
        assert!(!ProgressCert::Bounded(wrong).verify(&cfg, &dir, &x, v));
    }

    #[test]
    fn commit_cert_requires_slow_quorum() {
        let (cfg, pairs, dir) = setup();
        let x = Value::from_u64(5);
        let v = View(1);
        let payload = ack_payload(&x, v);
        // slow quorum for (4,1,1) is ceil(6/2) = 3.
        let cc = CommitCert {
            value: x.clone(),
            view: v,
            sigs: pairs[..3].iter().map(|p| p.sign(&payload)).collect(),
        };
        assert!(cc.verify(&cfg, &dir));
        let small = CommitCert {
            value: x.clone(),
            view: v,
            sigs: pairs[..2].iter().map(|p| p.sign(&payload)).collect(),
        };
        assert!(!small.verify(&cfg, &dir));
    }

    #[test]
    fn nil_votes_validate_and_roundtrip() {
        let (cfg, pairs, dir) = setup();
        let sv = SignedVote::sign(&pairs[2], None, View(4));
        assert!(sv.is_valid(&cfg, &dir, View(4)));
        // …but not for a different destination view (replay defence).
        assert!(!sv.is_valid(&cfg, &dir, View(5)));
        roundtrip(&sv);
    }

    #[test]
    fn real_vote_validates() {
        let (cfg, pairs, dir) = setup();
        let x = Value::from_u64(9);
        let vd = VoteData {
            value: x.clone(),
            view: View(1),
            progress_cert: ProgressCert::Genesis,
            leader_sig: tau(&pairs, &cfg, &x, View(1)),
            commit_cert: None,
        };
        let sv = SignedVote::sign(&pairs[0], Some(vd), View(2));
        assert!(sv.is_valid(&cfg, &dir, View(2)));
        roundtrip(&sv);
    }

    #[test]
    fn vote_with_forged_leader_sig_rejected() {
        let (cfg, pairs, dir) = setup();
        let x = Value::from_u64(9);
        // p3 signs instead of leader(1) = p2.
        let vd = VoteData {
            value: x.clone(),
            view: View(1),
            progress_cert: ProgressCert::Genesis,
            leader_sig: pairs[2].sign(&propose_payload(&x, View(1))),
            commit_cert: None,
        };
        let sv = SignedVote::sign(&pairs[0], Some(vd), View(2));
        assert!(!sv.is_valid(&cfg, &dir, View(2)));
    }

    #[test]
    fn vote_view_must_precede_destination() {
        let (cfg, pairs, dir) = setup();
        let x = Value::from_u64(9);
        let vd = VoteData {
            value: x.clone(),
            view: View(3),
            progress_cert: ProgressCert::Genesis, // also invalid for view 3
            leader_sig: tau(&pairs, &cfg, &x, View(3)),
            commit_cert: None,
        };
        // view 3 not < dest view 3
        let sv = SignedVote::sign(&pairs[0], Some(vd), View(3));
        assert!(!sv.is_valid(&cfg, &dir, View(3)));
    }

    #[test]
    fn vote_with_stale_commit_cert_ok_future_cc_rejected() {
        let (cfg, pairs, dir) = setup();
        let x = Value::from_u64(9);
        let cc = CommitCert {
            value: x.clone(),
            view: View(1),
            sigs: pairs[..3]
                .iter()
                .map(|p| p.sign(&ack_payload(&x, View(1))))
                .collect(),
        };
        let make = |cc_view: View| {
            let mut cc = cc.clone();
            cc.view = cc_view;
            VoteData {
                value: x.clone(),
                view: View(1),
                progress_cert: ProgressCert::Genesis,
                leader_sig: tau(&pairs, &cfg, &x, View(1)),
                commit_cert: Some(cc),
            }
        };
        let good = SignedVote::sign(&pairs[0], Some(make(View(1))), View(2));
        assert!(good.is_valid(&cfg, &dir, View(2)));
        // cc.view > vote.view is malformed.
        let bad = SignedVote::sign(&pairs[0], Some(make(View(2))), View(3));
        assert!(!bad.is_valid(&cfg, &dir, View(3)));
    }

    #[test]
    fn tampered_vote_rejected() {
        let (cfg, pairs, dir) = setup();
        let x = Value::from_u64(9);
        let vd = VoteData {
            value: x.clone(),
            view: View(1),
            progress_cert: ProgressCert::Genesis,
            leader_sig: tau(&pairs, &cfg, &x, View(1)),
            commit_cert: None,
        };
        let mut sv = SignedVote::sign(&pairs[0], Some(vd), View(2));
        // Tamper with the embedded value after signing.
        if let Some(vd) = &mut sv.vote {
            vd.value = Value::from_u64(10);
        }
        assert!(!sv.is_valid(&cfg, &dir, View(2)));
        // Claiming someone else's voter id also fails.
        let sv2 = SignedVote {
            voter: ProcessId(3),
            ..SignedVote::sign(&pairs[0], None, View(2))
        };
        assert!(!sv2.is_valid(&cfg, &dir, View(2)));
    }

    #[test]
    fn progress_cert_wire_roundtrips() {
        let (_, pairs, _) = setup();
        roundtrip(&ProgressCert::Genesis);
        let set: SignatureSet = pairs[..2].iter().map(|p| p.sign(b"s")).collect();
        roundtrip(&ProgressCert::Bounded(set));
        let votes = vec![
            SignedVote::sign(&pairs[0], None, View(2)),
            SignedVote::sign(&pairs[1], None, View(2)),
        ];
        roundtrip(&ProgressCert::Naive(votes));
    }

    #[test]
    fn bounded_cert_size_is_constant_in_view() {
        let (_, pairs, _) = setup();
        let x = Value::from_u64(1);
        let size_at = |v: View| {
            let set: SignatureSet = pairs[..2]
                .iter()
                .map(|p| p.sign(&certack_payload(&x, v)))
                .collect();
            ProgressCert::Bounded(set).wire_size()
        };
        assert_eq!(size_at(View(2)), size_at(View(2_000_000)));
    }
}
