//! The replica: one process's complete protocol state machine.
//!
//! Implements the generalized protocol of Appendix A (the vanilla `5f − 1`
//! protocol of §3 is the special case `t = f`, which disables the slow
//! path):
//!
//! * **fast path** — leader proposes; every process acks to everyone;
//!   `n − t` acks for the same `(x, v)` decide `x` (two message delays);
//! * **slow path** — each ack is accompanied by a signature share;
//!   `⌈(n+f+1)/2⌉` shares form a commit certificate, which is broadcast in a
//!   `Commit` message; `⌈(n+f+1)/2⌉` `Commit`s decide (three delays);
//! * **view change** — on entering view `v`, every process sends its signed
//!   vote to `leader(v)`; the leader collects `n − f` valid votes, runs the
//!   selection algorithm, has its choice certified by `f + 1` processes
//!   (bounded certificates) and proposes;
//! * **view synchronization** — a wish/enter synchronizer with doubling
//!   timeouts providing the three properties the paper requires (§3).
//!
//! The replica is an I/O-free [`Actor`]: all effects go through
//! [`Effects`], so the same code runs under the simulator, the thread
//! runtime and the property tests.

use std::collections::{BTreeMap, BTreeSet};

use fastbft_crypto::{KeyDirectory, KeyPair, Signature, SignatureSet};
use fastbft_obs::MetricsHandle;
use fastbft_sim::{Actor, Effects, SimDuration, TimerId};
use fastbft_types::{Config, ProcessId, Value, View};

use crate::certs::{CertCache, CertMode, CommitCert, ProgressCert, SignedVote, Vote, VoteData};
use crate::message::{
    AckMsg, CertAckMsg, CertRequestMsg, CommitMsg, Message, ProposeMsg, SigShareMsg, VoteMsg,
    WishMsg,
};
use crate::payload::{ack_payload, certack_payload, propose_payload};
use crate::selection::{select, Outcome};

/// Tuning knobs for a [`Replica`].
#[derive(Clone, Debug)]
pub struct ReplicaOptions {
    /// Progress-certificate construction (bounded vs naive; E7 ablation).
    pub cert_mode: CertMode,
    /// Whether the slow path runs. `None` (default) enables it exactly when
    /// `t < f` — the vanilla protocol (`t = f`) has no slow path in the
    /// paper, and the generalized protocol needs it.
    pub slow_path: Option<bool>,
    /// View-1 timeout; doubles on every view change (view synchronizer).
    pub base_timeout: SimDuration,
    /// Observability handle. Disabled by default; wire one up from a
    /// [`fastbft_obs::MetricsRegistry`] to record commit paths, view
    /// changes and certificate-cache traffic. Carried by `ReplicaOptions`
    /// so it threads unchanged through every construction path (the SMR
    /// multiplexer clones the options into each per-slot replica).
    pub metrics: MetricsHandle,
    /// Entry bound for the certificate-verification cache
    /// ([`CertCache`]); on overflow the cache resets and certificates are
    /// simply re-verified. 0 disables memoization.
    pub cert_cache_capacity: usize,
    /// Worker threads for the runtime's inbound verify/decode pool. This
    /// is a *runtime* knob — the replica itself never spawns threads; it
    /// rides here so it threads through every construction path the same
    /// way `metrics` does. `0` (the value every simulator path uses) means
    /// fully inline verification: bit-for-bit the single-threaded
    /// datapath. Defaults to
    /// [`default_verify_workers`](ReplicaOptions::default_verify_workers)
    /// — cores − 1, which is 0 on a single-core host.
    pub verify_workers: usize,
    /// Whether the SMR layer executes decided commands on a dedicated
    /// apply worker thread instead of inline on the event loop. Like
    /// [`verify_workers`](ReplicaOptions::verify_workers) this is a
    /// *runtime* knob riding here so it threads through every construction
    /// path: the per-slot replica never touches it. `0` (the default, and
    /// the value every simulator path uses) keeps apply inline —
    /// bit-for-bit the single-threaded datapath; any non-zero value runs
    /// **one** dedicated in-order apply worker (apply is sequential by
    /// definition, so more threads could not help).
    pub apply_workers: usize,
}

impl Default for ReplicaOptions {
    fn default() -> Self {
        ReplicaOptions {
            cert_mode: CertMode::Bounded,
            slow_path: None,
            base_timeout: SimDuration(SimDuration::DELTA.0 * 8),
            metrics: MetricsHandle::none(),
            cert_cache_capacity: crate::certs::DEFAULT_CERT_CACHE_CAPACITY,
            verify_workers: Self::default_verify_workers(),
            apply_workers: 0,
        }
    }
}

impl ReplicaOptions {
    /// The default verify-pool width for a multicore deployment: every
    /// available core except the one the event loop occupies. On a
    /// single-core host this is 0 — fully inline, no pool.
    pub fn default_verify_workers() -> usize {
        std::thread::available_parallelism()
            .map(|p| p.get().saturating_sub(1))
            .unwrap_or(0)
    }
}

/// Which of the paper's two commit paths decided a value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommitPath {
    /// Two message delays: `n − t` matching acks (§3, the headline path).
    Fast,
    /// Three message delays: a commit certificate of `⌈(n+f+1)/2⌉` shares
    /// followed by a quorum of `Commit`s (Appendix A).
    Slow,
}

/// Leader-side state for the view currently led.
#[derive(Debug)]
struct LeaderState {
    view: View,
    /// Value selected and awaiting certification.
    selected: Option<Value>,
    /// Snapshot of votes the selection ran over (sent in CertRequest).
    snapshot: Vec<SignedVote>,
    /// Collected CertAck signatures.
    certacks: SignatureSet,
    /// CertRequest already sent.
    requested: bool,
    /// Propose already sent.
    proposed: bool,
}

/// A correct process running the protocol. See module docs.
#[derive(Debug)]
pub struct Replica {
    cfg: Config,
    id: ProcessId,
    keys: KeyPair,
    dir: KeyDirectory,
    input: Value,
    cert_mode: CertMode,
    slow_path: bool,
    base_timeout: SimDuration,

    view: View,
    /// The paper's `vote_q`: the last proposal acknowledged.
    vote: Vote,
    /// Highest view in which this process acknowledged a proposal.
    acked_view: Option<View>,
    /// Latest commit certificate collected (piggybacked on votes).
    latest_cc: Option<CommitCert>,
    decided: Option<Value>,

    /// Distinct ack senders per `(view, value)`.
    ack_tally: BTreeMap<(View, Value), BTreeSet<ProcessId>>,
    /// Slow path: signature shares per `(view, value)`.
    share_tally: BTreeMap<(View, Value), SignatureSet>,
    /// Slow path: distinct `Commit` senders per `(view, value)`.
    commit_tally: BTreeMap<(View, Value), BTreeSet<ProcessId>>,
    /// `(view, value)` pairs whose `Commit` we already broadcast.
    commit_sent: BTreeSet<(View, Value)>,

    /// Valid proposals for views we have not entered yet.
    pending_proposes: BTreeMap<View, ProposeMsg>,
    /// Votes received per destination view (we may lead that view later).
    votes_in: BTreeMap<View, BTreeMap<ProcessId, SignedVote>>,
    leader: Option<LeaderState>,

    /// View synchronizer: highest wish seen per process.
    wishes: BTreeMap<ProcessId, View>,
    /// Highest wish we have broadcast.
    my_wish: Option<View>,
    /// Timer generation; stale timers are ignored.
    timer_gen: u64,
    /// Backoff relief earned by successful commits: each decision shaves
    /// one doubling off the view-timeout exponent, so a cluster that
    /// escalated through views during a fault window shrinks back toward
    /// `base_timeout` once progress resumes instead of keeping
    /// multi-second timers forever (see [`Replica::timeout_for`]).
    backoff_relief: u32,

    /// Canonical instances of values seen in messages. Every statement
    /// embeds the value's memoized digest, but a value decoded from the
    /// wire arrives as a fresh allocation with a cold cache — interning
    /// swaps it for the first-seen instance so the bytes are hashed once
    /// per replica (and duplicate copies of a hot value share storage).
    ///
    /// Values land here **before** validation, so the set is bounded
    /// against Byzantine value spray two ways: a count *and* total-bytes
    /// cap (beyond either, new values pass through uninterned), and a
    /// full reset at every view change — hostile garbage is held for at
    /// most one view, and honest traffic re-warms at one hash per value.
    interned: BTreeSet<Value>,
    /// Total bytes held by `interned` (see [`INTERN_BYTES_CAP`]).
    interned_bytes: usize,
    /// Memo of certificates already verified (commit certs are broadcast
    /// by everyone and piggybacked on votes; progress certs ride every
    /// re-proposal).
    cert_cache: CertCache,
    /// Observability handle (see [`ReplicaOptions::metrics`]).
    metrics: MetricsHandle,
    /// Which path produced the first decision, for path attribution.
    decided_path: Option<CommitPath>,
}

/// Backstop bound on the value interner; beyond it new values pass through
/// uninterned (correctness unaffected — their digests are just per-copy).
/// Correct executions see a handful of distinct values per view, so honest
/// traffic sits far below both caps.
const INTERN_CAP: usize = 1024;

/// Total-bytes bound on the value interner: values are interned from
/// messages *before* signature checks, so without a byte cap a Byzantine
/// peer could pin `INTERN_CAP × MAX_FRAME_LEN` of garbage. With it (plus
/// the per-view reset in `enter_view`) hostile spray is bounded to a few
/// MiB for at most one view.
const INTERN_BYTES_CAP: usize = 4 << 20;

impl Replica {
    /// Creates a replica with default options.
    pub fn new(cfg: Config, keys: KeyPair, dir: KeyDirectory, input: Value) -> Self {
        Replica::with_options(cfg, keys, dir, input, ReplicaOptions::default())
    }

    /// Creates a replica with explicit options.
    pub fn with_options(
        cfg: Config,
        keys: KeyPair,
        dir: KeyDirectory,
        input: Value,
        opts: ReplicaOptions,
    ) -> Self {
        let slow_path = opts.slow_path.unwrap_or(cfg.t() < cfg.f());
        Replica {
            id: keys.id(),
            cfg,
            keys,
            dir,
            input,
            cert_mode: opts.cert_mode,
            slow_path,
            base_timeout: opts.base_timeout,
            view: View::FIRST,
            vote: None,
            acked_view: None,
            latest_cc: None,
            decided: None,
            ack_tally: BTreeMap::new(),
            share_tally: BTreeMap::new(),
            commit_tally: BTreeMap::new(),
            commit_sent: BTreeSet::new(),
            pending_proposes: BTreeMap::new(),
            votes_in: BTreeMap::new(),
            leader: None,
            wishes: BTreeMap::new(),
            my_wish: None,
            timer_gen: 0,
            backoff_relief: 0,
            interned: BTreeSet::new(),
            interned_bytes: 0,
            cert_cache: CertCache::with_capacity(opts.cert_cache_capacity, opts.metrics.clone()),
            metrics: opts.metrics,
            decided_path: None,
        }
    }

    /// This replica's id.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// Current view.
    pub fn view(&self) -> View {
        self.view
    }

    /// The decided value, if any.
    pub fn decided(&self) -> Option<&Value> {
        self.decided.as_ref()
    }

    /// The current vote (`vote_q`).
    pub fn vote(&self) -> &Vote {
        &self.vote
    }

    /// Whether the slow path is active.
    pub fn slow_path_enabled(&self) -> bool {
        self.slow_path
    }

    /// Which commit path produced the decision, if this replica decided.
    pub fn decided_path(&self) -> Option<CommitPath> {
        self.decided_path
    }

    // -- internals -----------------------------------------------------------

    /// Returns the canonical instance of `value` (see the `interned` field).
    fn intern(&mut self, value: Value) -> Value {
        if let Some(canonical) = self.interned.get(&value) {
            return canonical.clone();
        }
        if self.interned.len() < INTERN_CAP
            && self.interned_bytes.saturating_add(value.len()) <= INTERN_BYTES_CAP
        {
            self.interned_bytes += value.len();
            self.interned.insert(value.clone());
        }
        value
    }

    fn timeout_for(&self, view: View) -> SimDuration {
        // Doubling timeouts: after GST some view's timeout exceeds the time a
        // correct leader needs, giving it the paper's required ≥ 5Δ of quiet.
        // Commits earn relief (see `backoff_relief`): escalation is driven by
        // *failed* views, so resumed progress walks the exponent back down —
        // liveness is unaffected, because while no commits happen relief
        // stays put and the timeouts still double without bound (to the cap).
        let exp = ((view.0.saturating_sub(1)).min(12) as u32).saturating_sub(self.backoff_relief);
        SimDuration(self.base_timeout.0.saturating_mul(1 << exp))
    }

    /// The view-change timeout this replica would arm right now — the
    /// doubling schedule at the current view, minus any commit-earned
    /// backoff relief.
    pub fn current_timeout(&self) -> SimDuration {
        self.timeout_for(self.view)
    }

    fn arm_timer(&mut self, fx: &mut Effects<Message>) {
        self.timer_gen += 1;
        fx.set_timer(self.timeout_for(self.view), TimerId(self.timer_gen));
    }

    fn try_decide(&mut self, value: &Value, path: CommitPath, fx: &mut Effects<Message>) {
        match &self.decided {
            None => {
                self.decided = Some(value.clone());
                self.decided_path = Some(path);
                self.backoff_relief = (self.backoff_relief + 1).min(12);
                if let Some(m) = self.metrics.get() {
                    match path {
                        CommitPath::Fast => m.commit_fast_total.inc(),
                        CommitPath::Slow => m.commit_slow_total.inc(),
                    }
                    m.recorder.record(
                        match path {
                            CommitPath::Fast => "commit-fast",
                            CommitPath::Slow => "commit-slow",
                        },
                        format!("p{} decided in view {}", self.id.0, self.view.0),
                    );
                }
                fx.decide(value.clone());
            }
            Some(prev) if prev != value => {
                // Should be unreachable for n ≥ 3f + 2t − 1; surfacing the
                // second decision lets the checker catch safety violations in
                // deliberately under-provisioned runs (lower-bound demo).
                fx.decide(value.clone());
            }
            Some(_) => {}
        }
    }

    /// The vote we send to the leader of `dest_view`, with the freshest
    /// eligible commit certificate piggybacked (Appendix A.2).
    fn current_vote_for(&self, dest_view: View) -> Vote {
        let mut vote = self.vote.clone();
        if let Some(vd) = &mut vote {
            vd.commit_cert = self.latest_cc.clone().filter(|cc| cc.view < dest_view);
        }
        vote
    }

    fn enter_view(&mut self, v: View, fx: &mut Effects<Message>) {
        debug_assert!(v > self.view);
        if let Some(m) = self.metrics.get() {
            m.view_change_total.inc();
            m.recorder.record(
                "view-change",
                format!("p{} entered view {} (leader p{})", self.id.0, v.0, {
                    self.cfg.leader(v).0
                }),
            );
        }
        self.view = v;
        self.leader = None;
        // Reset the interner: any Byzantine garbage it absorbed is released
        // here, and the handful of honest hot values re-warm at one hash
        // each (their clones elsewhere keep their memoized digests).
        self.interned.clear();
        self.interned_bytes = 0;
        self.arm_timer(fx);

        // Send our vote to the new leader (§3.2: "Whenever a correct process
        // changes its current view, it sends vote(vote_q, φ_vote)").
        let leader = self.cfg.leader(v);
        let signed = SignedVote::sign(&self.keys, self.current_vote_for(v), v);
        if leader == self.id {
            self.votes_in.entry(v).or_default().insert(self.id, signed);
            self.leader = Some(LeaderState {
                view: v,
                selected: None,
                snapshot: Vec::new(),
                certacks: SignatureSet::new(),
                requested: false,
                proposed: false,
            });
            self.try_leader_progress(fx);
        } else {
            fx.send(
                leader,
                Message::Vote(VoteMsg {
                    view: v,
                    vote: signed,
                }),
            );
        }

        // A proposal for this view may have arrived while we lagged behind.
        if let Some(p) = self.pending_proposes.remove(&v) {
            self.accept_proposal(p, fx);
        }
        // Old buffered proposals are useless now.
        self.pending_proposes = self.pending_proposes.split_off(&v);
    }

    /// Handles a verified proposal for the **current** view.
    fn accept_proposal(&mut self, p: ProposeMsg, fx: &mut Effects<Message>) {
        if self.acked_view == Some(self.view) {
            return; // only the first proposal per view is acknowledged
        }
        debug_assert_eq!(p.view, self.view);
        self.acked_view = Some(p.view);
        self.vote = Some(VoteData {
            value: p.value.clone(),
            view: p.view,
            progress_cert: p.cert,
            leader_sig: p.sig,
            commit_cert: None,
        });
        // The slow-path share rides inside the ack (one copy of the value
        // on the wire, not two): signing is 41 fixed bytes now, so it no
        // longer needs the separate broadcast that kept it off the fast
        // path (see `AckMsg`).
        let share = self
            .slow_path
            .then(|| self.keys.sign(&ack_payload(&p.value, p.view)));
        fx.broadcast(Message::Ack(AckMsg {
            value: p.value,
            view: p.view,
            share,
        }));
    }

    fn on_propose(&mut self, from: ProcessId, p: ProposeMsg, fx: &mut Effects<Message>) {
        // Authentication and validity (§3.1): correct leader id, valid τ,
        // valid progress certificate for (x̂, v).
        if from != self.cfg.leader(p.view) || p.sig.signer != from {
            return;
        }
        if p.view < View::FIRST {
            return;
        }
        if !self.dir.verify(&propose_payload(&p.value, p.view), &p.sig) {
            return;
        }
        if !p
            .cert
            .verify_cached(&self.cfg, &self.dir, &p.value, p.view, &mut self.cert_cache)
        {
            return;
        }
        if p.view > self.view {
            // We are behind; keep the proposal for when the synchronizer
            // catches us up (the leader sends it exactly once).
            self.pending_proposes.entry(p.view).or_insert(p);
        } else if p.view == self.view {
            self.accept_proposal(p, fx);
        }
        // p.view < self.view: stale, ignore.
    }

    fn on_ack(&mut self, from: ProcessId, a: AckMsg, fx: &mut Effects<Message>) {
        if let Some(sig) = a.share {
            self.on_share(from, a.value.clone(), a.view, sig, fx);
        }
        let senders = self.ack_tally.entry((a.view, a.value.clone())).or_default();
        senders.insert(from);
        if senders.len() >= self.cfg.fast_quorum() {
            let value = a.value.clone();
            self.try_decide(&value, CommitPath::Fast, fx);
        }
    }

    fn on_sig_share(&mut self, from: ProcessId, s: SigShareMsg, fx: &mut Effects<Message>) {
        self.on_share(from, s.value, s.view, s.sig, fx);
    }

    /// Handles one slow-path share `φ_ack`, whether it rode inside an ack
    /// or arrived as a standalone [`SigShareMsg`].
    fn on_share(
        &mut self,
        from: ProcessId,
        value: Value,
        view: View,
        sig: Signature,
        fx: &mut Effects<Message>,
    ) {
        if !self.slow_path {
            return;
        }
        let payload = ack_payload(&value, view);
        if sig.signer != from || !self.dir.verify(&payload, &sig) {
            return;
        }
        let key = (view, value);
        let shares = self.share_tally.entry(key.clone()).or_default();
        // The share just verified over `payload`: record that, so verifying
        // the assembled commit certificate re-does none of the HMAC work.
        shares.insert_verified(sig, &payload);
        if shares.len() >= self.cfg.slow_quorum() && !self.commit_sent.contains(&key) {
            self.commit_sent.insert(key.clone());
            let cert = CommitCert {
                value: key.1.clone(),
                view,
                sigs: self.share_tally[&key].clone(),
            };
            self.store_cc(cert.clone());
            fx.broadcast(Message::Commit(CommitMsg { cert }));
        }
    }

    fn store_cc(&mut self, cc: CommitCert) {
        let newer = self
            .latest_cc
            .as_ref()
            .is_none_or(|have| cc.view > have.view);
        if newer {
            self.latest_cc = Some(cc);
        }
    }

    fn on_commit(&mut self, from: ProcessId, c: CommitMsg, fx: &mut Effects<Message>) {
        if !self.slow_path {
            return;
        }
        if !c
            .cert
            .verify_cached(&self.cfg, &self.dir, &mut self.cert_cache)
        {
            return;
        }
        self.store_cc(c.cert.clone());
        let senders = self
            .commit_tally
            .entry((c.cert.view, c.cert.value.clone()))
            .or_default();
        senders.insert(from);
        if senders.len() >= self.cfg.slow_quorum() {
            let value = c.cert.value.clone();
            self.try_decide(&value, CommitPath::Slow, fx);
        }
    }

    fn on_vote(&mut self, from: ProcessId, v: VoteMsg, fx: &mut Effects<Message>) {
        if v.vote.voter != from {
            return; // votes travel directly from their signer
        }
        if v.view < self.view && self.cfg.leader(v.view) != self.id {
            return; // stale and not ours to lead
        }
        if !v
            .vote
            .is_valid_cached(&self.cfg, &self.dir, v.view, &mut self.cert_cache)
        {
            return;
        }
        if self.cfg.leader(v.view) != self.id {
            return;
        }
        self.votes_in
            .entry(v.view)
            .or_default()
            .insert(v.vote.voter, v.vote);
        self.try_leader_progress(fx);
    }

    fn try_leader_progress(&mut self, fx: &mut Effects<Message>) {
        let Some(ls) = &self.leader else { return };
        if ls.proposed || ls.requested {
            return;
        }
        let view = ls.view;
        debug_assert_eq!(view, self.view);
        let votes = self.votes_in.entry(view).or_default();
        let Ok(result) = select(&self.cfg, view, votes) else {
            return; // need more votes
        };
        let value = match result.outcome {
            Outcome::Constrained(x) => x,
            Outcome::Free => self.input.clone(),
        };
        let snapshot: Vec<SignedVote> = votes.values().cloned().collect();

        match self.cert_mode {
            CertMode::Bounded => {
                // Ask 2f + 1 processes (the smallest ids other than ourself)
                // to confirm the selection; certify it ourselves right away.
                let ls = self.leader.as_mut().expect("leader state checked above");
                ls.selected = Some(value.clone());
                ls.snapshot = snapshot.clone();
                ls.requested = true;
                let payload = certack_payload(&value, view);
                ls.certacks
                    .insert_verified(self.keys.sign(&payload), &payload);
                let targets: Vec<ProcessId> = self
                    .cfg
                    .processes()
                    .filter(|p| *p != self.id)
                    .take(self.cfg.cert_request_targets())
                    .collect();
                for to in targets {
                    fx.send(
                        to,
                        Message::CertRequest(CertRequestMsg {
                            view,
                            value: value.clone(),
                            votes: snapshot.clone(),
                        }),
                    );
                }
                // f + 1 = 2 can already be satisfied by self + nobody only
                // when f = 0, which Config forbids; still, check.
                self.try_propose_certified(fx);
            }
            CertMode::Naive => {
                // The certificate is the vote set itself; propose directly.
                let ls = self.leader.as_mut().expect("leader state checked above");
                ls.proposed = true;
                let sig = self.keys.sign(&propose_payload(&value, view));
                fx.broadcast(Message::Propose(ProposeMsg {
                    value,
                    view,
                    cert: ProgressCert::Naive(snapshot),
                    sig,
                }));
            }
        }
    }

    fn try_propose_certified(&mut self, fx: &mut Effects<Message>) {
        let Some(ls) = &mut self.leader else { return };
        if ls.proposed || !ls.requested {
            return;
        }
        let Some(value) = ls.selected.clone() else {
            return;
        };
        if ls.certacks.len() < self.cfg.cert_quorum() {
            return;
        }
        ls.proposed = true;
        let view = ls.view;
        let cert = ProgressCert::Bounded(ls.certacks.clone());
        let sig = self.keys.sign(&propose_payload(&value, view));
        fx.broadcast(Message::Propose(ProposeMsg {
            value,
            view,
            cert,
            sig,
        }));
    }

    fn on_cert_request(&mut self, from: ProcessId, req: CertRequestMsg, fx: &mut Effects<Message>) {
        // The statement we are asked to sign is self-contained: "the
        // selection algorithm over these (valid, view-v) votes permits x̂".
        // Verifying it does not depend on our current view.
        if from != self.cfg.leader(req.view) {
            return;
        }
        let mut map = BTreeMap::new();
        for sv in &req.votes {
            if !sv.is_valid_cached(&self.cfg, &self.dir, req.view, &mut self.cert_cache) {
                return;
            }
            if map.insert(sv.voter, sv.clone()).is_some() {
                return; // duplicate voter: malformed request
            }
        }
        let Ok(result) = select(&self.cfg, req.view, &map) else {
            return;
        };
        let acceptable = match result.outcome {
            Outcome::Constrained(x) => x == req.value,
            Outcome::Free => true,
        };
        if !acceptable {
            return;
        }
        let sig = self.keys.sign(&certack_payload(&req.value, req.view));
        fx.send(
            from,
            Message::CertAck(CertAckMsg {
                view: req.view,
                value: req.value,
                sig,
            }),
        );
    }

    fn on_cert_ack(&mut self, from: ProcessId, ack: CertAckMsg, fx: &mut Effects<Message>) {
        let Some(ls) = &mut self.leader else { return };
        if ls.view != ack.view || ls.selected.as_ref() != Some(&ack.value) {
            return;
        }
        if ack.sig.signer != from
            || !self
                .dir
                .verify(&certack_payload(&ack.value, ack.view), &ack.sig)
        {
            return;
        }
        // Verified just above: pre-memoize it in the assembling certificate.
        ls.certacks
            .insert_verified(ack.sig, &certack_payload(&ack.value, ack.view));
        self.try_propose_certified(fx);
    }

    // -- view synchronizer ----------------------------------------------------

    fn on_wish(&mut self, from: ProcessId, w: WishMsg, fx: &mut Effects<Message>) {
        let entry = self.wishes.entry(from).or_insert(w.view);
        if w.view > *entry {
            *entry = w.view;
        }
        self.sync_check(fx);
    }

    /// `k`-th largest wish (1-based) across processes, if at least `k`
    /// processes have wished.
    fn kth_largest_wish(&self, k: usize) -> Option<View> {
        let mut views: Vec<View> = self.wishes.values().copied().collect();
        views.sort_unstable_by(|a, b| b.cmp(a));
        views.get(k - 1).copied()
    }

    fn sync_check(&mut self, fx: &mut Effects<Message>) {
        // Adopt: f + 1 processes wish ≥ W ⇒ at least one is correct, so a
        // correct process timed out; join the wish so laggards cannot stall.
        if let Some(w1) = self.kth_largest_wish(self.cfg.f() + 1) {
            if self.my_wish.is_none_or(|mine| w1 > mine) && w1 > self.view {
                self.my_wish = Some(w1);
                self.broadcast_wish(w1, fx);
            }
        }
        // Enter: 2f + 1 processes wish ≥ W ⇒ f + 1 correct processes agreed
        // to move; entering is safe and all correct processes will follow.
        if let Some(w2) = self.kth_largest_wish(2 * self.cfg.f() + 1) {
            if w2 > self.view {
                self.enter_view(w2, fx);
            }
        }
    }

    fn broadcast_wish(&mut self, view: View, fx: &mut Effects<Message>) {
        // Record our own wish immediately (our broadcast also reaches us,
        // but counting it now avoids an extra Δ of latency).
        let entry = self.wishes.entry(self.id).or_insert(view);
        if view > *entry {
            *entry = view;
        }
        fx.broadcast_others(Message::Wish(WishMsg { view }));
        self.sync_check(fx);
    }
}

impl Actor<Message> for Replica {
    fn on_start(&mut self, fx: &mut Effects<Message>) {
        self.arm_timer(fx);
        if self.cfg.leader(View::FIRST) == self.id {
            // View 1: any value is safe; propose our input with the trivial
            // certificate (§3.1).
            let value = self.input.clone();
            let sig = self.keys.sign(&propose_payload(&value, View::FIRST));
            fx.broadcast(Message::Propose(ProposeMsg {
                value,
                view: View::FIRST,
                cert: ProgressCert::Genesis,
                sig,
            }));
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: Message, fx: &mut Effects<Message>) {
        // Swap each carried value for its canonical interned instance
        // before handling: statement building needs the value digest, and
        // interning is what makes that digest memoized per replica rather
        // than recomputed for every decoded copy.
        match msg {
            Message::Propose(mut p) => {
                p.value = self.intern(p.value);
                self.on_propose(from, p, fx);
            }
            Message::Ack(mut a) => {
                a.value = self.intern(a.value);
                self.on_ack(from, a, fx);
            }
            Message::SigShare(mut s) => {
                s.value = self.intern(s.value);
                self.on_sig_share(from, s, fx);
            }
            Message::Commit(mut c) => {
                c.cert.value = self.intern(c.cert.value);
                self.on_commit(from, c, fx);
            }
            Message::Vote(v) => self.on_vote(from, v, fx),
            Message::CertRequest(mut r) => {
                r.value = self.intern(r.value);
                self.on_cert_request(from, r, fx);
            }
            Message::CertAck(mut a) => {
                a.value = self.intern(a.value);
                self.on_cert_ack(from, a, fx);
            }
            Message::Wish(w) => self.on_wish(from, w, fx),
        }
    }

    fn on_timer(&mut self, timer: TimerId, fx: &mut Effects<Message>) {
        if timer.0 != self.timer_gen {
            return; // stale timer from an earlier view
        }
        if self.decided.is_some() {
            return; // nothing left to synchronize for
        }
        // Timeout: wish to move past the current view.
        let target = self.view.next();
        let wish = match self.my_wish {
            Some(mine) if mine >= target => mine,
            _ => target,
        };
        self.my_wish = Some(wish);
        self.broadcast_wish(wish, fx);
        // Re-arm so we keep escalating if the next leader stalls too.
        self.arm_timer(fx);
    }

    fn label(&self) -> &'static str {
        "replica"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbft_sim::SimMessage;

    fn fixture(n: usize, f: usize, t: usize) -> (Config, Vec<KeyPair>, KeyDirectory) {
        let cfg = Config::new(n, f, t).unwrap();
        let (pairs, dir) = KeyDirectory::generate(n, 7);
        (cfg, pairs, dir)
    }

    fn replica(
        cfg: &Config,
        pairs: &[KeyPair],
        dir: &KeyDirectory,
        i: usize,
        input: u64,
    ) -> Replica {
        Replica::new(*cfg, pairs[i].clone(), dir.clone(), Value::from_u64(input))
    }

    fn fx(id: u32, n: usize) -> Effects<Message> {
        Effects::new(ProcessId(id), n, fastbft_sim::SimTime::ZERO)
    }

    #[test]
    fn leader_of_view_one_proposes_on_start() {
        let (cfg, pairs, dir) = fixture(4, 1, 1);
        let leader_id = cfg.leader(View::FIRST);
        let mut r = replica(&cfg, &pairs, &dir, leader_id.index(), 42);
        let mut buf = fx(leader_id.0, 4);
        r.on_start(&mut buf);
        assert_eq!(r.view(), View::FIRST);
        assert_eq!(r.decided(), None);
        // A propose went to every process (broadcast includes self).
        let proposes = buf
            .sent()
            .iter()
            .filter(|(_, m)| matches!(m, Message::Propose(_)))
            .count();
        assert_eq!(proposes, 4);
        // Non-leaders send nothing at start.
        let mut r2 = replica(&cfg, &pairs, &dir, 0, 1); // p1 ≠ leader(1)
        let mut buf2 = fx(1, 4);
        r2.on_start(&mut buf2);
        assert!(buf2.sent().is_empty());
        assert_eq!(buf2.timers_set().len(), 1);
    }

    #[test]
    fn first_valid_proposal_is_adopted() {
        let (cfg, pairs, dir) = fixture(4, 1, 1);
        let leader = cfg.leader(View::FIRST);
        let mut r = replica(&cfg, &pairs, &dir, 0, 1); // p1, not leader(1)=p2
        let x = Value::from_u64(9);
        let p = ProposeMsg {
            value: x.clone(),
            view: View::FIRST,
            cert: ProgressCert::Genesis,
            sig: pairs[leader.index()].sign(&propose_payload(&x, View::FIRST)),
        };
        let mut buf = fx(1, 4);
        r.on_message(leader, Message::Propose(p.clone()), &mut buf);
        assert_eq!(r.vote().as_ref().map(|vd| vd.value.clone()), Some(x));
        // A second (equivocating) proposal in the same view is not adopted.
        let y = Value::from_u64(10);
        let p2 = ProposeMsg {
            value: y.clone(),
            view: View::FIRST,
            cert: ProgressCert::Genesis,
            sig: pairs[leader.index()].sign(&propose_payload(&y, View::FIRST)),
        };
        let mut buf2 = fx(1, 4);
        r.on_message(leader, Message::Propose(p2), &mut buf2);
        assert_ne!(r.vote().as_ref().map(|vd| vd.value.clone()), Some(y));
    }

    #[test]
    fn proposal_from_non_leader_rejected() {
        let (cfg, pairs, dir) = fixture(4, 1, 1);
        let mut r = replica(&cfg, &pairs, &dir, 0, 1);
        let x = Value::from_u64(9);
        // p3 is not leader(1); even with its own valid signature the
        // proposal must be ignored.
        let p = ProposeMsg {
            value: x.clone(),
            view: View::FIRST,
            cert: ProgressCert::Genesis,
            sig: pairs[2].sign(&propose_payload(&x, View::FIRST)),
        };
        let mut buf = fx(1, 4);
        r.on_message(ProcessId(3), Message::Propose(p), &mut buf);
        assert!(r.vote().is_none());
    }

    #[test]
    fn fast_quorum_of_acks_decides() {
        let (cfg, pairs, dir) = fixture(4, 1, 1);
        let mut r = replica(&cfg, &pairs, &dir, 0, 1);
        let x = Value::from_u64(5);
        let mut buf = fx(1, 4);
        for sender in [2u32, 3, 4] {
            r.on_message(
                ProcessId(sender),
                Message::Ack(AckMsg {
                    value: x.clone(),
                    view: View::FIRST,
                    share: None,
                }),
                &mut buf,
            );
        }
        // fast quorum for (4,1,1) is 3.
        assert_eq!(r.decided(), Some(&x));
    }

    #[test]
    fn view_timeout_shrinks_back_after_a_commit() {
        let (cfg, pairs, dir) = fixture(4, 1, 1);
        let mut r = replica(&cfg, &pairs, &dir, 0, 1);
        let base = r.current_timeout();
        assert_eq!(base, r.timeout_for(View::FIRST));
        // The doubling schedule, untouched while nothing commits.
        assert_eq!(r.timeout_for(View(4)).0, base.0 * 8);

        // A fast-quorum decision earns one doubling of relief.
        let x = Value::from_u64(5);
        let mut buf = fx(1, 4);
        for sender in [2u32, 3, 4] {
            r.on_message(
                ProcessId(sender),
                Message::Ack(AckMsg {
                    value: x.clone(),
                    view: View::FIRST,
                    share: None,
                }),
                &mut buf,
            );
        }
        assert_eq!(r.decided(), Some(&x));
        assert_eq!(r.timeout_for(View(4)).0, base.0 * 4, "one doubling shaved");

        // Relief never pushes the timeout below the base schedule floor,
        // even when it exceeds the view's own exponent.
        r.backoff_relief = 50;
        assert_eq!(r.timeout_for(View(4)), base);
        assert_eq!(r.timeout_for(View::FIRST), base);
        // And the escalation cap still binds above it.
        r.backoff_relief = 0;
        assert_eq!(r.timeout_for(View(40)).0, base.0 * (1 << 12));
    }

    #[test]
    fn duplicate_acks_do_not_double_count() {
        let (cfg, pairs, dir) = fixture(4, 1, 1);
        let mut r = replica(&cfg, &pairs, &dir, 0, 1);
        let x = Value::from_u64(5);
        let mut buf = fx(1, 4);
        for _ in 0..5 {
            r.on_message(
                ProcessId(2),
                Message::Ack(AckMsg {
                    value: x.clone(),
                    view: View::FIRST,
                    share: None,
                }),
                &mut buf,
            );
        }
        assert_eq!(r.decided(), None);
    }

    #[test]
    fn acks_for_different_values_do_not_mix() {
        let (cfg, pairs, dir) = fixture(4, 1, 1);
        let mut r = replica(&cfg, &pairs, &dir, 0, 1);
        let mut buf = fx(1, 4);
        for (sender, val) in [(2u32, 5u64), (3, 6), (4, 7)] {
            r.on_message(
                ProcessId(sender),
                Message::Ack(AckMsg {
                    value: Value::from_u64(val),
                    view: View::FIRST,
                    share: None,
                }),
                &mut buf,
            );
        }
        assert_eq!(r.decided(), None);
    }

    #[test]
    fn slow_path_disabled_for_vanilla_config() {
        // t = f ⇒ vanilla protocol: no slow path by default.
        let (cfg, pairs, dir) = fixture(9, 2, 2);
        let r = replica(&cfg, &pairs, &dir, 0, 1);
        assert!(!r.slow_path_enabled());
        // t < f ⇒ generalized: slow path on.
        let (cfg, pairs, dir) = fixture(8, 2, 1);
        let r = replica(&cfg, &pairs, &dir, 0, 1);
        assert!(r.slow_path_enabled());
    }

    #[test]
    fn sig_shares_assemble_commit_cert() {
        let (cfg, pairs, dir) = fixture(8, 2, 1); // slow quorum ceil(11/2)=6
        let mut r = replica(&cfg, &pairs, &dir, 0, 1);
        let x = Value::from_u64(3);
        let mut buf = fx(1, 8);
        for (i, pair) in pairs.iter().enumerate().take(6) {
            let sig = pair.sign(&ack_payload(&x, View::FIRST));
            r.on_message(
                ProcessId::from_index(i),
                Message::SigShare(SigShareMsg {
                    value: x.clone(),
                    view: View::FIRST,
                    sig,
                }),
                &mut buf,
            );
        }
        // The replica stored the assembled commit certificate.
        assert!(r.latest_cc.as_ref().is_some_and(|cc| cc.value == x));
    }

    #[test]
    fn forged_sig_share_ignored() {
        let (cfg, pairs, dir) = fixture(8, 2, 1);
        let mut r = replica(&cfg, &pairs, &dir, 0, 1);
        let x = Value::from_u64(3);
        let mut buf = fx(1, 8);
        for (i, pair) in pairs.iter().enumerate().take(6) {
            // Signature by i but claimed from sender i+1: must be dropped.
            let sig = pair.sign(&ack_payload(&x, View::FIRST));
            r.on_message(
                ProcessId::from_index((i + 1) % 8),
                Message::SigShare(SigShareMsg {
                    value: x.clone(),
                    view: View::FIRST,
                    sig,
                }),
                &mut buf,
            );
        }
        assert!(r.latest_cc.is_none());
    }

    #[test]
    fn commit_quorum_decides_slow() {
        let (cfg, pairs, dir) = fixture(8, 2, 1);
        let mut r = replica(&cfg, &pairs, &dir, 0, 1);
        let x = Value::from_u64(4);
        let cc = CommitCert {
            value: x.clone(),
            view: View::FIRST,
            sigs: pairs[..6]
                .iter()
                .map(|p| p.sign(&ack_payload(&x, View::FIRST)))
                .collect(),
        };
        let mut buf = fx(1, 8);
        for sender in 1..=6u32 {
            r.on_message(
                ProcessId(sender),
                Message::Commit(CommitMsg { cert: cc.clone() }),
                &mut buf,
            );
        }
        assert_eq!(r.decided(), Some(&x));
    }

    #[test]
    fn invalid_commit_cert_rejected() {
        let (cfg, pairs, dir) = fixture(8, 2, 1);
        let mut r = replica(&cfg, &pairs, &dir, 0, 1);
        let x = Value::from_u64(4);
        // Only 3 shares: below the slow quorum of 6.
        let cc = CommitCert {
            value: x.clone(),
            view: View::FIRST,
            sigs: pairs[..3]
                .iter()
                .map(|p| p.sign(&ack_payload(&x, View::FIRST)))
                .collect(),
        };
        let mut buf = fx(1, 8);
        for sender in 1..=6u32 {
            r.on_message(
                ProcessId(sender),
                Message::Commit(CommitMsg { cert: cc.clone() }),
                &mut buf,
            );
        }
        assert_eq!(r.decided(), None);
    }

    #[test]
    fn future_proposal_buffered_until_view_entered() {
        let (cfg, pairs, dir) = fixture(4, 1, 1);
        let mut r = replica(&cfg, &pairs, &dir, 0, 1);
        let x = Value::from_u64(8);
        let v2 = View(2);
        let leader2 = cfg.leader(v2);
        // A valid view-2 proposal needs a progress certificate; build one
        // from f + 1 = 2 CertAck signatures.
        let cert: SignatureSet = pairs[..2]
            .iter()
            .map(|p| p.sign(&certack_payload(&x, v2)))
            .collect();
        let p = ProposeMsg {
            value: x.clone(),
            view: v2,
            cert: ProgressCert::Bounded(cert),
            sig: pairs[leader2.index()].sign(&propose_payload(&x, v2)),
        };
        let mut buf = fx(1, 4);
        r.on_message(leader2, Message::Propose(p), &mut buf);
        assert!(r.vote().is_none(), "not adopted while still in view 1");

        // Drive the synchronizer: 2f + 1 = 3 wishes for view 2.
        let mut buf2 = fx(1, 4);
        for sender in [2u32, 3, 4] {
            r.on_message(
                ProcessId(sender),
                Message::Wish(WishMsg { view: v2 }),
                &mut buf2,
            );
        }
        assert_eq!(r.view(), v2);
        assert_eq!(r.vote().as_ref().map(|vd| vd.value.clone()), Some(x));
    }

    #[test]
    fn wish_quorum_enters_view() {
        let (cfg, pairs, dir) = fixture(4, 1, 1);
        let mut r = replica(&cfg, &pairs, &dir, 0, 1);
        let mut buf = fx(1, 4);
        // f + 1 = 2 wishes adopt, 2f + 1 = 3 enter.
        r.on_message(
            ProcessId(2),
            Message::Wish(WishMsg { view: View(5) }),
            &mut buf,
        );
        assert_eq!(r.view(), View::FIRST);
        r.on_message(
            ProcessId(3),
            Message::Wish(WishMsg { view: View(5) }),
            &mut buf,
        );
        // Now we adopted the wish ourselves (counts as the third).
        assert_eq!(r.view(), View(5));
    }

    #[test]
    fn byzantine_wishes_alone_cannot_move_view() {
        let (cfg, pairs, dir) = fixture(9, 2, 2); // f = 2
        let mut r = replica(&cfg, &pairs, &dir, 0, 1);
        let mut buf = fx(1, 9);
        // Only f = 2 wishes: below the f + 1 echo threshold.
        for sender in [2u32, 3] {
            r.on_message(
                ProcessId(sender),
                Message::Wish(WishMsg { view: View(9) }),
                &mut buf,
            );
        }
        assert_eq!(r.view(), View::FIRST);
        assert_eq!(r.my_wish, None);
    }

    #[test]
    fn message_kind_labels_cover_all_variants() {
        // Exercised here to keep labels stable for the figure renderers.
        let (cfg, pairs, dir) = fixture(4, 1, 1);
        let _ = (cfg, dir);
        let x = Value::from_u64(1);
        assert_eq!(
            Message::Ack(AckMsg {
                value: x.clone(),
                view: View(1),
                share: None,
            })
            .kind(),
            "ack"
        );
        assert_eq!(
            Message::Propose(ProposeMsg {
                value: x,
                view: View(1),
                cert: ProgressCert::Genesis,
                sig: pairs[0].sign(b"x"),
            })
            .kind(),
            "propose"
        );
    }

    /// The interner absorbs unvalidated message values, so Byzantine value
    /// spray must be bounded by bytes (not just count) and released at the
    /// next view change.
    #[test]
    fn interner_is_byte_bounded_and_resets_on_view_change() {
        let (cfg, pairs, dir) = fixture(4, 1, 1);
        let mut r = replica(&cfg, &pairs, &dir, 0, 1);
        // Spray large distinct values: interned bytes must never exceed the
        // cap even though the count cap is far away.
        let big = 1 << 20; // 1 MiB each
        for i in 0..16u8 {
            r.intern(Value::new(vec![i; big]));
        }
        assert!(r.interned_bytes <= INTERN_BYTES_CAP);
        assert!(r.interned.len() < 16, "byte cap did not bite");
        // Values beyond the cap still pass through unharmed.
        let v = Value::new(vec![0xEE; big]);
        assert_eq!(r.intern(v.clone()), v);
        // A view change releases everything.
        let mut buf = fx(1, 4);
        r.enter_view(View(2), &mut buf);
        assert!(r.interned.is_empty());
        assert_eq!(r.interned_bytes, 0);
        // …and the interner works again afterwards.
        let w = Value::from_u64(9);
        r.intern(w.clone());
        assert_eq!(r.interned.len(), 1);
        assert_eq!(r.interned_bytes, 8);
    }
}
