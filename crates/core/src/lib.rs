//! Fast Byzantine consensus with optimal resilience `n = 3f + 2t − 1`.
//!
//! A complete implementation of the protocol from *"Revisiting Optimal
//! Resilience of Fast Byzantine Consensus"* (Petr Kuznetsov, Andrei Tonkikh,
//! Yan X Zhang — PODC 2021, arXiv:2102.12825):
//!
//! * the **vanilla protocol** (§3): `n ≥ 5f − 1` processes, decisions in two
//!   message delays whenever the leader is correct — obtained here as the
//!   generalized protocol with `t = f`;
//! * the **generalized protocol** (Appendix A): `n ≥ 3f + 2t − 1`, fast
//!   (two-delay) decisions while at most `t` processes are faulty, plus a
//!   PBFT-like slow path (three delays) for up to `f` faults;
//! * the **two-phase view change** (§3.2) with the selection algorithm,
//!   equivocation-evidence handling and *bounded* progress certificates —
//!   the paper's key mechanism (`f + 1` CertAck signatures instead of
//!   ever-growing vote sets);
//! * a **view synchronizer** satisfying the three properties the paper
//!   requires of it (§3).
//!
//! Headline configuration: `f = t = 1` runs on **4 processes** — optimal for
//! any partially synchronous Byzantine consensus — and still decides in two
//! message delays with one faulty process, where FaB Paxos needs 6.
//!
//! # Quick start
//!
//! ```
//! use fastbft_core::cluster::SimCluster;
//! use fastbft_types::{Config, Value};
//!
//! let cfg = Config::new(4, 1, 1)?;
//! let mut cluster = SimCluster::builder(cfg).inputs_u64([7, 7, 7, 7]).build();
//! let report = cluster.run_until_all_decide();
//! assert_eq!(report.unanimous_decision(), Some(Value::from_u64(7)));
//! assert_eq!(report.decision_delays_max(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Crate layout
//!
//! | module | paper section | contents |
//! |---|---|---|
//! | [`replica`] | §3.1, A.1 | the per-process state machine (fast + slow path, synchronizer) |
//! | [`selection`] | §3.2, A.2 | the selection algorithm as a pure function |
//! | [`certs`] | §3.2, A | votes, progress certificates (bounded + naive), commit certificates |
//! | [`message`] | Fig. 1, 5 | the message vocabulary |
//! | [`payload`] | §3.1–3.2 | canonical bytes for every signed statement |
//! | [`byzantine`] | §2.1 | adversarial actors (equivocator, fuzzer) |
//! | [`cluster`] | — | the simulated-cluster harness used by tests/experiments |
//! | [`lower_bound`] | §4 | the executable lower-bound construction (Fig. 2–4) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod byzantine;
pub mod certs;
pub mod cluster;
pub mod lower_bound;
pub mod message;
pub mod payload;
pub mod preverify;
pub mod replica;
pub mod selection;
pub mod theory;

pub use certs::{CertMode, CommitCert, ProgressCert, SignedVote, Vote, VoteData};
pub use cluster::{Behavior, Report, SimCluster, SimClusterBuilder};
pub use message::Message;
pub use preverify::Preverifier;
pub use replica::{CommitPath, Replica, ReplicaOptions};
pub use selection::{select, Outcome, Rationale, SelectionError, SelectionResult};
