//! Byzantine behaviors for testing and experiments.
//!
//! The paper's adversary controls up to `f` processes completely, subject
//! only to cryptography: it cannot forge other processes' signatures. These
//! actors model the attack repertoire the protocol must survive:
//!
//! * [`EquivocatingLeader`] — `leader(1)` sends conflicting, individually
//!   valid proposals to different halves of the system (the equivocation
//!   the selection algorithm's evidence handling exists for);
//! * [`RandomByzantine`] — a fuzzer that emits structurally valid but
//!   semantically hostile messages of every kind, with real signatures
//!   (a Byzantine process *can* sign anything as itself);
//! * silence and crashes are modeled by [`fastbft_sim::ScriptedActor::silent`]
//!   and [`fastbft_sim::Simulation::schedule_crash`] respectively.

use fastbft_crypto::{KeyDirectory, KeyPair, Signature, SignatureSet};
use fastbft_sim::{Actor, Effects, SimDuration, TimerId};
use fastbft_types::{Config, ProcessId, Value, View};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::certs::{CommitCert, ProgressCert, SignedVote, VoteData};
use crate::message::{
    AckMsg, CertAckMsg, CommitMsg, Message, ProposeMsg, SigShareMsg, VoteMsg, WishMsg,
};
use crate::payload::{ack_payload, certack_payload, propose_payload};

/// A Byzantine `leader(1)` that equivocates: proposes `value_a` to the
/// processes in `recipients_a` and `value_b` to everyone else, both with
/// valid signatures and Genesis certificates, then goes silent.
#[derive(Debug)]
pub struct EquivocatingLeader {
    keys: KeyPair,
    value_a: Value,
    value_b: Value,
    recipients_a: Vec<ProcessId>,
}

impl EquivocatingLeader {
    /// Creates the equivocator. `keys` must belong to `leader(1)` for the
    /// proposals to pass verification.
    pub fn new(
        keys: KeyPair,
        value_a: Value,
        value_b: Value,
        recipients_a: impl IntoIterator<Item = ProcessId>,
    ) -> Self {
        EquivocatingLeader {
            keys,
            value_a,
            value_b,
            recipients_a: recipients_a.into_iter().collect(),
        }
    }

    fn propose(&self, value: &Value) -> Message {
        Message::Propose(ProposeMsg {
            value: value.clone(),
            view: View::FIRST,
            cert: ProgressCert::Genesis,
            sig: self.keys.sign(&propose_payload(value, View::FIRST)),
        })
    }
}

impl Actor<Message> for EquivocatingLeader {
    fn on_start(&mut self, fx: &mut Effects<Message>) {
        let a = self.propose(&self.value_a);
        let b = self.propose(&self.value_b);
        for to in ProcessId::all(fx.n()) {
            if self.recipients_a.contains(&to) {
                fx.send(to, a.clone());
            } else {
                fx.send(to, b.clone());
            }
        }
    }

    fn on_message(&mut self, _from: ProcessId, _msg: Message, _fx: &mut Effects<Message>) {}

    fn label(&self) -> &'static str {
        "equivocating-leader"
    }
}

/// A fuzzing adversary: periodically emits randomized protocol messages of
/// every kind to random processes. All signatures it produces are its own
/// and genuine — like a real Byzantine process, it can sign any *statement*
/// but cannot forge anyone else's signature.
///
/// Used by the property tests: for any `n ≥ 3f + 2t − 1`, no combination of
/// up to `f` fuzzers and pre-GST chaos may break agreement.
#[derive(Debug)]
pub struct RandomByzantine {
    cfg: Config,
    keys: KeyPair,
    rng: StdRng,
    burst: usize,
    period: SimDuration,
    /// Values the fuzzer plays with.
    palette: Vec<Value>,
}

impl RandomByzantine {
    /// Creates a fuzzer for the process owning `keys`.
    pub fn new(cfg: Config, keys: KeyPair, seed: u64) -> Self {
        RandomByzantine {
            cfg,
            keys,
            rng: StdRng::seed_from_u64(seed),
            burst: 6,
            period: SimDuration(SimDuration::DELTA.0 / 2),
            palette: (0..4).map(Value::from_u64).collect(),
        }
    }

    fn random_value(&mut self) -> Value {
        let i = self.rng.gen_range(0..self.palette.len());
        self.palette[i].clone()
    }

    fn random_view(&mut self) -> View {
        View(self.rng.gen_range(1..=6))
    }

    fn random_target(&mut self, n: usize) -> ProcessId {
        ProcessId(self.rng.gen_range(1..=n as u32))
    }

    fn random_message(&mut self, n: usize) -> Message {
        let value = self.random_value();
        let view = self.random_view();
        match self.rng.gen_range(0..8) {
            0 => {
                // Exercise the ack-carried share path too: no share, a
                // valid own share, or a share whose claimed signer doesn't
                // match the sender (receivers must drop that one).
                let share = match self.rng.gen_range(0..3) {
                    0 => None,
                    1 => Some(self.keys.sign(&ack_payload(&value, view))),
                    _ => Some(Signature::from_parts(
                        self.random_target(n),
                        *self.keys.sign(&ack_payload(&value, view)).tag(),
                    )),
                };
                Message::Ack(AckMsg { value, view, share })
            }
            1 => Message::Wish(WishMsg { view }),
            2 => {
                let sig = self.keys.sign(&ack_payload(&value, view));
                Message::SigShare(SigShareMsg { value, view, sig })
            }
            3 => {
                // A commit certificate made only of our own signature: it
                // will fail quorum verification — receivers must reject it.
                let sigs: SignatureSet = [self.keys.sign(&ack_payload(&value, view))]
                    .into_iter()
                    .collect();
                Message::Commit(CommitMsg {
                    cert: CommitCert { value, view, sigs },
                })
            }
            4 => {
                // A propose: only valid if we actually lead `view` and the
                // certificate checks out (Genesis only works for view 1).
                let sig = self.keys.sign(&propose_payload(&value, view));
                Message::Propose(ProposeMsg {
                    value,
                    view,
                    cert: ProgressCert::Genesis,
                    sig,
                })
            }
            5 => {
                // A nil vote for a random view — validly signed.
                let vote = SignedVote::sign(&self.keys, None, view);
                Message::Vote(VoteMsg { view, vote })
            }
            6 => {
                // A fabricated non-nil vote. The leader signature inside is
                // our own, so it only verifies if we led that view.
                let vd = VoteData {
                    value: value.clone(),
                    view: View(view.0.saturating_sub(1).max(1)),
                    progress_cert: ProgressCert::Genesis,
                    leader_sig: self.keys.sign(&propose_payload(
                        &value,
                        View(view.0.saturating_sub(1).max(1)),
                    )),
                    commit_cert: None,
                };
                let dest = View(vd.view.0 + 1);
                let vote = SignedVote::sign(&self.keys, Some(vd), dest);
                Message::Vote(VoteMsg { view: dest, vote })
            }
            _ => {
                let sig = self.keys.sign(&certack_payload(&value, view));
                Message::CertAck(CertAckMsg { view, value, sig })
            }
        }
    }

    fn burst(&mut self, fx: &mut Effects<Message>) {
        let n = fx.n();
        for _ in 0..self.burst {
            let to = self.random_target(n);
            let msg = self.random_message(n);
            fx.send(to, msg);
        }
    }
}

impl Actor<Message> for RandomByzantine {
    fn on_start(&mut self, fx: &mut Effects<Message>) {
        // If we happen to lead view 1, equivocate right away.
        if self.cfg.leader(View::FIRST) == self.keys.id() {
            let a = self.random_value();
            let b = self.random_value();
            for to in ProcessId::all(fx.n()) {
                let v = if to.0 % 2 == 0 { &a } else { &b };
                fx.send(
                    to,
                    Message::Propose(ProposeMsg {
                        value: v.clone(),
                        view: View::FIRST,
                        cert: ProgressCert::Genesis,
                        sig: self.keys.sign(&propose_payload(v, View::FIRST)),
                    }),
                );
            }
        }
        self.burst(fx);
        fx.set_timer(self.period, TimerId(0));
    }

    fn on_message(&mut self, _from: ProcessId, _msg: Message, fx: &mut Effects<Message>) {
        // React to roughly one message in four with hostile noise.
        if self.rng.gen_bool(0.25) {
            let to = self.random_target(fx.n());
            let msg = self.random_message(fx.n());
            fx.send(to, msg);
        }
    }

    fn on_timer(&mut self, _timer: TimerId, fx: &mut Effects<Message>) {
        self.burst(fx);
        fx.set_timer(self.period, TimerId(0));
    }

    fn label(&self) -> &'static str {
        "random-byzantine"
    }
}

/// Builds per-process keys plus a directory and wraps common setup used by
/// tests and experiments.
pub fn keyed_system(cfg: &Config, seed: u64) -> (Vec<KeyPair>, KeyDirectory) {
    KeyDirectory::generate(cfg.n(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbft_sim::{SimMessage, SimTime};

    #[test]
    fn equivocator_sends_conflicting_but_valid_proposals() {
        let cfg = Config::new(4, 1, 1).unwrap();
        let (pairs, dir) = keyed_system(&cfg, 3);
        let leader = cfg.leader(View::FIRST);
        let mut eq = EquivocatingLeader::new(
            pairs[leader.index()].clone(),
            Value::from_u64(0),
            Value::from_u64(1),
            [ProcessId(1), ProcessId(3)],
        );
        let mut fx = Effects::new(leader, 4, SimTime::ZERO);
        eq.on_start(&mut fx);
        assert_eq!(fx.sent().len(), 4);
        let mut zeros = 0;
        let mut ones = 0;
        for (to, m) in fx.sent() {
            let Message::Propose(p) = m else {
                panic!("non-propose")
            };
            // Each proposal individually verifies.
            assert!(dir.verify(&propose_payload(&p.value, p.view), &p.sig));
            match p.value.as_u64() {
                Some(0) => {
                    zeros += 1;
                    assert!(matches!(to.0, 1 | 3));
                }
                Some(1) => ones += 1,
                _ => panic!("unexpected value"),
            }
        }
        assert_eq!((zeros, ones), (2, 2));
    }

    #[test]
    fn fuzzer_is_deterministic_per_seed() {
        let cfg = Config::new(4, 1, 1).unwrap();
        let (pairs, _) = keyed_system(&cfg, 3);
        let run = |seed| {
            let mut fz = RandomByzantine::new(cfg, pairs[0].clone(), seed);
            let mut fx = Effects::new(ProcessId(1), 4, SimTime::ZERO);
            fz.on_start(&mut fx);
            fx.sent()
                .iter()
                .map(|(to, m)| format!("{to}:{}", m.kind()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn fuzzer_covers_many_message_kinds() {
        let cfg = Config::new(4, 1, 1).unwrap();
        let (pairs, _) = keyed_system(&cfg, 3);
        let mut fz = RandomByzantine::new(cfg, pairs[0].clone(), 5);
        let mut kinds = std::collections::BTreeSet::new();
        let mut fx = Effects::new(ProcessId(1), 4, SimTime::ZERO);
        for _ in 0..100 {
            fz.on_timer(TimerId(0), &mut fx);
        }
        for (_, m) in fx.sent() {
            kinds.insert(m.kind());
        }
        assert!(kinds.len() >= 6, "only saw kinds {kinds:?}");
    }
}
