//! The lower bound of Section 4, executable (Figures 2–4, Theorem 4.5).
//!
//! The paper proves that no `f`-resilient `t`-two-step consensus protocol
//! exists on `3f + 2t − 2` processes, by constructing five executions
//! `ρ1 … ρ5` around an *influential process* `p` and showing every adjacent
//! pair is indistinguishable to some correct process. This module turns that
//! proof into a runnable adversary:
//!
//! * with `f = t = 2`, it instantiates the protocol on `n = 8 = 3f + 2t − 2`
//!   processes (one below the bound, via `Config::new_unchecked`) and
//!   plays the execution `ρ2` of the proof — the influential leader
//!   equivocates, the group `P2` lies selectively, and the network delays
//!   exactly the messages the proof delays. Result: the lone process in
//!   `P3` decides one value after two message delays while the rest of the
//!   system later agrees on the other — **disagreement**, reproducing the
//!   theorem's contradiction as a concrete safety violation;
//! * on `n = 9 = 3f + 2t − 1` processes (the paper's tight bound), the *same
//!   adversary* is powerless: quorum intersection (QI2) forces the new
//!   leader's selection to return exactly the fast-decided value, and
//!   agreement survives.
//!
//! Process cast (paper's groups → process ids, with `p = leader(1) = p2`):
//!
//! | group | paper size | ids (n = 8) | ids (n = 9) | role in ρ2 |
//! |---|---|---|---|---|
//! | `{p}` | 1 | 2 | 2 | Byzantine influential leader: equivocates |
//! | `P1`  | t = 2 | 1, 3 | 1, 3 | correct; received value 0 |
//! | `P2`  | f−1 = 1 | 4 | 4 | Byzantine: mimics state `t2` to `P3`, `s2` to others |
//! | `P3`  | f−1 = 1 | 5 | 5 | correct; decides fast on value 1 |
//! | `P4`  | f−1 = 1 | 6 | 6 | correct; received value 1 |
//! | `P5`  | t = 2 | 7, 8 | 7, 8, 9 | correct; received value 1 |

use fastbft_crypto::KeyDirectory;
use fastbft_sim::{
    ConsensusChecker, Network, ScriptedActor, SimDuration, SimTime, Simulation, Violation,
};
use fastbft_types::{Config, ProcessId, Value, View};

use crate::certs::{ProgressCert, SignedVote, VoteData};
use crate::message::{AckMsg, Message, ProposeMsg, VoteMsg};
use crate::payload::propose_payload;
use crate::replica::{Replica, ReplicaOptions};

/// Message-delay bound used by the attack timeline.
pub const DELTA: SimDuration = SimDuration(100);
/// When the proof's "delayed until a finite time `T`" messages land.
pub const T_LATE: SimTime = SimTime(30_000); // 300 Δ
/// Simulation horizon (after `T_LATE`, with slack for the flood).
pub const HORIZON: SimTime = SimTime(200_000);

/// Result of one attack run.
#[derive(Clone, Debug)]
pub struct AttackOutcome {
    /// Number of processes.
    pub n: usize,
    /// `f = t` used (always 2 here).
    pub f: usize,
    /// First decision of the fast decider `P3` (process 5).
    pub fast_decision: Option<(SimTime, Value)>,
    /// First decision of every correct process.
    pub decisions: Vec<(ProcessId, SimTime, Value)>,
    /// Safety violations detected by the checker.
    pub violations: Vec<Violation>,
    /// Whether two correct processes decided different values.
    pub disagreement: bool,
}

/// The Byzantine processes of execution ρ2: `{p} ∪ P2`.
pub const BYZANTINE: [ProcessId; 2] = [ProcessId(2), ProcessId(4)];
/// The fast decider (the paper's group `P3`).
pub const FAST_DECIDER: ProcessId = ProcessId(5);

const F: usize = 2;
const T: usize = 2;

/// `3f + 2t − 2`: one process below the bound — the attack succeeds here.
pub fn below_bound_n() -> usize {
    3 * F + 2 * T - 2
}

/// `3f + 2t − 1`: the paper's tight bound — the attack fails here.
pub fn at_bound_n() -> usize {
    3 * F + 2 * T - 1
}

/// Runs execution ρ2 of the lower-bound construction against the protocol
/// on `n` processes (`n` must be [`below_bound_n`] or [`at_bound_n`]).
///
/// # Panics
///
/// Panics if `n` is not one of the two supported sizes.
pub fn run_attack(n: usize, seed: u64) -> AttackOutcome {
    assert!(
        n == below_bound_n() || n == at_bound_n(),
        "attack is parameterized for n = 8 or n = 9 (f = t = 2)"
    );
    let cfg = Config::new_unchecked(n, F, T);
    let (pairs, dir) = KeyDirectory::generate(n, seed);
    let delta = DELTA;

    let zero = Value::from_u64(0);
    let one = Value::from_u64(1);
    let v1 = View::FIRST;
    let v2 = View(2);

    // -- the scripted network: the proof's delivery schedule ---------------
    //
    // * everything takes exactly Δ (the T-faulty two-step timing), except
    // * P1 = {1, 3}'s round-2 messages to P3 = {5} arrive at T (Fig. 3a), and
    // * everything P3 = {5} sends from round 2 on arrives at T ("P3 is slow:
    //   it sends the same messages but they are not received until T").
    let network = Network::scripted(delta, move |info| {
        if info.from == info.to {
            // Self-delivery models local state, not a channel; a process
            // always "hears itself" on time.
            return info.sent_at + delta;
        }
        let round2 = info.sent_at >= SimTime(delta.0) && info.sent_at < SimTime(2 * delta.0);
        let from_p1 = info.from == ProcessId(1) || info.from == ProcessId(3);
        if from_p1 && info.to == FAST_DECIDER && round2 {
            return T_LATE;
        }
        if info.from == FAST_DECIDER && info.sent_at >= SimTime(delta.0) {
            return T_LATE;
        }
        info.sent_at + delta
    });

    let mut sim = Simulation::new(network, seed.wrapping_add(1));

    // -- actors -------------------------------------------------------------
    let opts = ReplicaOptions {
        base_timeout: SimDuration(delta.0 * 8),
        ..ReplicaOptions::default()
    };

    // τ signatures of the equivocating leader p = p2 over both proposals.
    let p_keys = &pairs[ProcessId(2).index()];
    let tau_zero = p_keys.sign(&propose_payload(&zero, v1));
    let tau_one = p_keys.sign(&propose_payload(&one, v1));
    let propose_zero = Message::Propose(ProposeMsg {
        value: zero.clone(),
        view: v1,
        cert: ProgressCert::Genesis,
        sig: tau_zero.clone(),
    });
    let propose_one = Message::Propose(ProposeMsg {
        value: one.clone(),
        view: v1,
        cert: ProgressCert::Genesis,
        sig: tau_one.clone(),
    });

    let p1_group = [ProcessId(1), ProcessId(3)];
    let rest: Vec<ProcessId> = (5..=n as u32).map(ProcessId).collect();
    let all: Vec<ProcessId> = (1..=n as u32).map(ProcessId).collect();

    // p = p2: equivocate in round 1 (m5 to P1, m1 to P3/P4/P5); in round 2,
    // send ack(1) to P3 only, exactly as the correct p of ρ1 would have
    // looked *to P3*; silence to everyone else. In the ρ3 continuation it
    // helps steer the decision to 0 by acking the new proposal.
    let ack_one_v1 = Message::Ack(AckMsg {
        value: one.clone(),
        view: v1,
        share: None,
    });
    let ack_zero_v2 = Message::Ack(AckMsg {
        value: zero.clone(),
        view: v2,
        share: None,
    });
    let p_script = ScriptedActor::silent()
        .with_multicast_at(SimTime::ZERO, p1_group, propose_zero.clone())
        .with_multicast_at(SimTime::ZERO, rest.iter().copied(), propose_one.clone())
        .with_send_at(SimTime(delta.0), FAST_DECIDER, ack_one_v1.clone())
        .with_multicast_at(
            SimTime(13 * delta.0),
            all.iter().copied(),
            ack_zero_v2.clone(),
        );

    // P2 = p4: pretend state t2 (acked 1) to P3, state s2 (acked 0) to the
    // others; vote for (0, view 1) in the view change with p's genuine τ;
    // ack the new proposal.
    let p4_keys = &pairs[ProcessId(4).index()];
    let p4_vote = SignedVote::sign(
        p4_keys,
        Some(VoteData {
            value: zero.clone(),
            view: v1,
            progress_cert: ProgressCert::Genesis,
            leader_sig: tau_zero.clone(),
            commit_cert: None,
        }),
        v2,
    );
    let others_not_5: Vec<ProcessId> = all
        .iter()
        .copied()
        .filter(|p| *p != FAST_DECIDER && !BYZANTINE.contains(p))
        .collect();
    let leader_v2 = cfg.leader(v2);
    let p4_script = ScriptedActor::silent()
        .with_send_at(SimTime(delta.0), FAST_DECIDER, ack_one_v1.clone())
        .with_multicast_at(
            SimTime(delta.0),
            others_not_5.iter().copied(),
            Message::Ack(AckMsg {
                value: zero.clone(),
                view: v1,
                share: None,
            }),
        )
        .with_send_at(
            SimTime(9 * delta.0),
            leader_v2,
            Message::Vote(VoteMsg {
                view: v2,
                vote: p4_vote,
            }),
        )
        .with_multicast_at(
            SimTime(13 * delta.0),
            all.iter().copied(),
            ack_zero_v2.clone(),
        );

    for p in cfg.processes() {
        if p == ProcessId(2) {
            sim.add_actor(Box::new(p_script.clone()));
        } else if p == ProcessId(4) {
            sim.add_actor(Box::new(p4_script.clone()));
        } else {
            // Correct processes run the real protocol, unmodified. Inputs:
            // the new leader (p3) has input 0, matching the proof's steering
            // of ρ3 toward consensus value 0; other inputs are irrelevant.
            sim.add_actor(Box::new(Replica::with_options(
                cfg,
                pairs[p.index()].clone(),
                dir.clone(),
                zero.clone(),
                opts.clone(),
            )));
        }
    }

    sim.start();
    let correct: Vec<ProcessId> = cfg.processes().filter(|p| !BYZANTINE.contains(p)).collect();
    sim.run_until_all_decide(&correct, HORIZON);
    // Let the T_LATE flood settle so duplicate decisions surface.
    sim.run_until(HORIZON);

    let checker = ConsensusChecker::new(cfg.processes().map(|p| (p, zero.clone())))
        .with_byzantine_set(BYZANTINE);
    let violations = checker.check_safety(sim.trace());

    let decisions: Vec<(ProcessId, SimTime, Value)> = sim
        .decisions()
        .into_iter()
        .filter(|(p, _, _)| !BYZANTINE.contains(p))
        .collect();
    let fast_decision = sim.decision(FAST_DECIDER).map(|(t, v)| (*t, v.clone()));
    let disagreement = decisions
        .iter()
        .any(|(_, _, v)| decisions.first().is_some_and(|(_, _, v0)| v != v0));

    AttackOutcome {
        n,
        f: F,
        fast_decision,
        decisions,
        violations,
        disagreement,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Theorem 4.5, experimentally: one process below the bound, the
    /// five-execution adversary forces disagreement.
    #[test]
    fn attack_breaks_safety_below_the_bound() {
        let outcome = run_attack(below_bound_n(), 1);
        // P3 (process 5) decided value 1 after exactly two message delays…
        let (t, v) = outcome.fast_decision.clone().expect("P3 must decide fast");
        assert_eq!(v, Value::from_u64(1));
        assert_eq!(t, SimTime(2 * DELTA.0), "two-step decision at 2Δ");
        // …while the rest of the system agreed on 0.
        assert!(outcome.disagreement, "decisions: {:?}", outcome.decisions);
        assert!(
            outcome
                .violations
                .iter()
                .any(|v| matches!(v, Violation::Disagreement { .. })),
            "checker must flag disagreement, got {:?}",
            outcome.violations
        );
        let zeros = outcome
            .decisions
            .iter()
            .filter(|(_, _, v)| *v == Value::from_u64(0))
            .count();
        assert!(
            zeros >= 5,
            "the ρ3 continuation decides 0: {:?}",
            outcome.decisions
        );
    }

    /// The same adversary at n = 3f + 2t − 1: the fast decision still
    /// happens, but quorum intersection forces every later view to stick to
    /// it — safety holds (the bound is tight).
    #[test]
    fn attack_fails_at_the_bound() {
        let outcome = run_attack(at_bound_n(), 1);
        let (t, v) = outcome
            .fast_decision
            .clone()
            .expect("P3 still decides fast");
        assert_eq!(v, Value::from_u64(1));
        assert_eq!(t, SimTime(2 * DELTA.0));
        assert!(!outcome.disagreement, "decisions: {:?}", outcome.decisions);
        assert!(
            outcome.violations.is_empty(),
            "no safety violation at the bound: {:?}",
            outcome.violations
        );
        // Everyone agreed on the fast-decided value 1.
        for (_, _, value) in &outcome.decisions {
            assert_eq!(*value, Value::from_u64(1));
        }
        // All 7 correct processes decided.
        assert_eq!(outcome.decisions.len(), 7);
    }

    #[test]
    #[should_panic(expected = "parameterized")]
    fn unsupported_n_panics() {
        let _ = run_attack(10, 1);
    }
}
