//! The paper's boundary discussions (§4.3, §4.4), as executable claims.
//!
//! Nothing here runs in the protocol; this module pins down the *shape* of
//! the theory so regressions in the arithmetic are caught by tests, and the
//! narrative is browsable in rustdoc next to the code it governs.
//!
//! # §4.3 — weakening the two-step assumption
//!
//! The lower bound assumes a `T`-faulty two-step execution exists for every
//! `t`-subset `T ⊂ Π`. Protocols whose fast path depends on specific
//! processes (beyond round 1) are covered by restricting `T` to a suspect
//! set `M` with `|M| ≥ 2t + 2` — the proof of Lemma 4.4 then needs
//! `|M \ ({p_j, p_{j−1}} ∪ T_1)| ≥ t`, i.e. `|M| ≥ 2t + 2`
//! ([`min_suspect_set`]). Since `n ≥ 3f + 1 ≥ 2t + 3` whenever `f ≥ 2`,
//! there is always at least one non-suspect process.
//!
//! # §4.4 — why FaB's bound is right *for split roles*
//!
//! The equivocation-exclusion trick requires the proposer (whose signature
//! is the evidence) to also be an acceptor (whose vote gets excluded). With
//! proposers disjoint from acceptors, the influential process `p` is not an
//! acceptor: the five-group partition loses the `{p}` cell and the groups
//! `P2, P3, P4` grow from `f − 1` to `f`, pushing the impossibility to
//! `n = |P1| + … + |P5| = 3f + 2t` acceptors — making FaB's `3f + 2t + 1`
//! optimal in that model ([`split_role_bound`]).

use fastbft_types::Config;

/// Minimum size of the suspect set `M` for the §4.3 relaxation: `2t + 2`.
pub fn min_suspect_set(t: usize) -> usize {
    2 * t + 2
}

/// The §4.4 lower bound for proposer/acceptor-split protocols:
/// `3f + 2t + 1` acceptors (the group sizes `t + f + f + f + t`, plus one
/// to break the impossibility at `3f + 2t`).
pub fn split_role_bound(f: usize, t: usize) -> usize {
    3 * f + 2 * t + 1
}

/// The integrated-role bound this paper proves tight:
/// `max(3f + 2t − 1, 3f + 1)`.
pub fn integrated_role_bound(f: usize, t: usize) -> usize {
    Config::min_n(f, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbft_types::ProtocolKind;

    /// §4.3: some non-suspect always exists when f ≥ 2.
    #[test]
    fn non_suspect_exists() {
        for f in 2..=8 {
            for t in 1..=f {
                let n = integrated_role_bound(f, t);
                assert!(
                    n > min_suspect_set(t),
                    "f={f}, t={t}: n={n} leaves no non-suspect"
                );
            }
        }
    }

    /// §4.4: the split-role bound is FaB's bound, and exceeds the
    /// integrated-role bound by exactly 2 (for t ≥ 1).
    #[test]
    fn split_vs_integrated_gap_is_two() {
        for f in 1..=8 {
            for t in 1..=f {
                assert_eq!(split_role_bound(f, t), ProtocolKind::FabPaxos.min_n(f, t));
                assert_eq!(
                    split_role_bound(f, t) - integrated_role_bound(f, t),
                    2,
                    "f={f}, t={t}"
                );
            }
        }
    }

    /// The impossibility frontier: the executable attack (lower_bound
    /// module) runs at integrated_role_bound − 1.
    #[test]
    fn attack_size_sits_one_below_the_bound() {
        assert_eq!(
            crate::lower_bound::below_bound_n() + 1,
            integrated_role_bound(2, 2)
        );
        assert_eq!(
            crate::lower_bound::at_bound_n(),
            integrated_role_bound(2, 2)
        );
    }
}
