//! White-box view-change tests: drive a single replica through the leader
//! and verifier sides of the certification round-trip, exercising the
//! rejection paths that end-to-end runs only hit under live adversaries.

use fastbft_core::certs::{ProgressCert, SignedVote, VoteData};
use fastbft_core::message::{CertAckMsg, CertRequestMsg, Message, VoteMsg, WishMsg};
use fastbft_core::payload::{certack_payload, propose_payload};
use fastbft_core::replica::Replica;
use fastbft_crypto::{KeyDirectory, KeyPair, Signature};
use fastbft_sim::{Actor, Effects, SimTime};
use fastbft_types::{Config, ProcessId, Value, View};

fn fixture() -> (Config, Vec<KeyPair>, KeyDirectory) {
    let cfg = Config::new(4, 1, 1).unwrap();
    let (pairs, dir) = KeyDirectory::generate(4, 21);
    (cfg, pairs, dir)
}

fn fx(id: u32) -> Effects<Message> {
    Effects::new(ProcessId(id), 4, SimTime(1000))
}

/// Drives `replica` into view 2 via 2f + 1 wishes.
fn enter_view2(replica: &mut Replica, buf: &mut Effects<Message>) {
    for sender in [1u32, 2, 4] {
        if ProcessId(sender) != replica.id() {
            replica.on_message(
                ProcessId(sender),
                Message::Wish(WishMsg { view: View(2) }),
                buf,
            );
        }
    }
    // Own wish counted via broadcast_wish when f+1 seen; ensure view moved.
    assert_eq!(replica.view(), View(2), "failed to enter view 2");
}

fn nil_vote(pairs: &[KeyPair], voter: usize, dest: View) -> Message {
    Message::Vote(VoteMsg {
        view: dest,
        vote: SignedVote::sign(&pairs[voter], None, dest),
    })
}

fn value_vote(
    cfg: &Config,
    pairs: &[KeyPair],
    voter: usize,
    value: u64,
    view: View,
    dest: View,
) -> Message {
    let x = Value::from_u64(value);
    Message::Vote(VoteMsg {
        view: dest,
        vote: SignedVote::sign(
            &pairs[voter],
            Some(VoteData {
                value: x.clone(),
                view,
                progress_cert: ProgressCert::Genesis,
                leader_sig: pairs[cfg.leader(view).index()].sign(&propose_payload(&x, view)),
                commit_cert: None,
            }),
            dest,
        ),
    })
}

/// The leader of view 2 (p3 for n = 4) collects votes, self-certifies, asks
/// 2f + 1 others, and proposes once f + 1 CertAcks arrive.
#[test]
fn leader_certification_roundtrip() {
    let (cfg, pairs, dir) = fixture();
    let leader = cfg.leader(View(2));
    assert_eq!(leader, ProcessId(3));
    let mut r = Replica::new(cfg, pairs[2].clone(), dir.clone(), Value::from_u64(30));

    let mut buf = fx(3);
    enter_view2(&mut r, &mut buf);

    // Two more votes complete the n − f = 3 quorum (own vote is automatic).
    let mut buf = fx(3);
    r.on_message(ProcessId(1), nil_vote(&pairs, 0, View(2)), &mut buf);
    r.on_message(ProcessId(4), nil_vote(&pairs, 3, View(2)), &mut buf);

    // CertRequests went out to 2f + 1 = 3 non-self processes.
    let sent = buf.sent();
    let cert_reqs: Vec<ProcessId> = sent
        .iter()
        .filter(|(_, m)| matches!(m, Message::CertRequest(_)))
        .map(|(to, _)| *to)
        .collect();
    assert_eq!(cert_reqs.len(), 3);
    assert!(
        !cert_reqs.contains(&ProcessId(3)),
        "no self request (self-certified)"
    );

    // An invalid CertAck — wrong value — must not complete the certificate.
    let wrong = Value::from_u64(999);
    let mut buf2 = fx(3);
    r.on_message(
        ProcessId(1),
        Message::CertAck(CertAckMsg {
            view: View(2),
            value: wrong.clone(),
            sig: pairs[0].sign(&certack_payload(&wrong, View(2))),
        }),
        &mut buf2,
    );
    assert!(buf2.sent().is_empty(), "wrong-value ack must be ignored");

    // A forged CertAck (signature by someone else) is also ignored.
    let x = Value::from_u64(30); // leader's own input (all votes nil → Free)
    let mut buf3 = fx(3);
    r.on_message(
        ProcessId(1),
        Message::CertAck(CertAckMsg {
            view: View(2),
            value: x.clone(),
            sig: pairs[1].sign(&certack_payload(&x, View(2))), // signer p2 ≠ sender p1
        }),
        &mut buf3,
    );
    assert!(buf3.sent().is_empty(), "forged ack must be ignored");

    // One genuine CertAck reaches f + 1 = 2 with the self-signature →
    // propose broadcast with a Bounded certificate.
    let mut buf4 = fx(3);
    r.on_message(
        ProcessId(1),
        Message::CertAck(CertAckMsg {
            view: View(2),
            value: x.clone(),
            sig: pairs[0].sign(&certack_payload(&x, View(2))),
        }),
        &mut buf4,
    );
    let sent4 = buf4.sent();
    let proposes: Vec<&Message> = sent4
        .iter()
        .map(|(_, m)| m)
        .filter(|m| matches!(m, Message::Propose(_)))
        .collect();
    assert_eq!(proposes.len(), 4, "propose broadcast to all");
    if let Message::Propose(p) = proposes[0] {
        assert_eq!(p.value, x);
        assert_eq!(p.view, View(2));
        assert!(
            p.cert.verify(&cfg, &dir, &x, View(2)),
            "certificate must verify"
        );
        assert!(matches!(p.cert, ProgressCert::Bounded(_)));
    }
}

/// Verifier side: CertRequests are answered only when authentic, complete
/// and consistent with the selection algorithm.
#[test]
fn cert_request_verifier_paths() {
    let (cfg, pairs, dir) = fixture();
    // p1 verifies requests for view 2 (leader p3).
    let mut r = Replica::new(cfg, pairs[0].clone(), dir.clone(), Value::from_u64(1));

    let votes: Vec<SignedVote> = vec![
        SignedVote::sign(&pairs[0], None, View(2)),
        SignedVote::sign(&pairs[2], None, View(2)),
        SignedVote::sign(&pairs[3], None, View(2)),
    ];

    // 1. Valid request from the leader: answered with a CertAck.
    let mut buf = fx(1);
    r.on_message(
        ProcessId(3),
        Message::CertRequest(CertRequestMsg {
            view: View(2),
            value: Value::from_u64(5),
            votes: votes.clone(),
        }),
        &mut buf,
    );
    assert_eq!(buf.sent().len(), 1);
    assert!(matches!(buf.sent()[0].1, Message::CertAck(_)));
    assert_eq!(buf.sent()[0].0, ProcessId(3), "reply goes to the requester");

    // 2. Same request from a non-leader: silence.
    let mut buf = fx(1);
    r.on_message(
        ProcessId(4),
        Message::CertRequest(CertRequestMsg {
            view: View(2),
            value: Value::from_u64(5),
            votes: votes.clone(),
        }),
        &mut buf,
    );
    assert!(buf.sent().is_empty());

    // 3. Too few votes: silence.
    let mut buf = fx(1);
    r.on_message(
        ProcessId(3),
        Message::CertRequest(CertRequestMsg {
            view: View(2),
            value: Value::from_u64(5),
            votes: votes[..2].to_vec(),
        }),
        &mut buf,
    );
    assert!(buf.sent().is_empty());

    // 4. Constrained selection with a mismatched value: silence.
    let constrained: Vec<SignedVote> = vec![
        match value_vote(&cfg, &pairs, 0, 7, View::FIRST, View(2)) {
            Message::Vote(v) => v.vote,
            _ => unreachable!(),
        },
        SignedVote::sign(&pairs[2], None, View(2)),
        SignedVote::sign(&pairs[3], None, View(2)),
    ];
    let mut buf = fx(1);
    r.on_message(
        ProcessId(3),
        Message::CertRequest(CertRequestMsg {
            view: View(2),
            value: Value::from_u64(8), // selection pins 7, not 8
            votes: constrained.clone(),
        }),
        &mut buf,
    );
    assert!(
        buf.sent().is_empty(),
        "must refuse to certify an unsafe value"
    );

    // 5. The same votes with the *pinned* value: certified.
    let mut buf = fx(1);
    r.on_message(
        ProcessId(3),
        Message::CertRequest(CertRequestMsg {
            view: View(2),
            value: Value::from_u64(7),
            votes: constrained,
        }),
        &mut buf,
    );
    assert_eq!(buf.sent().len(), 1);

    // 6. Duplicate voters in the set: silence.
    let dup = vec![votes[0].clone(), votes[0].clone(), votes[1].clone()];
    let mut buf = fx(1);
    r.on_message(
        ProcessId(3),
        Message::CertRequest(CertRequestMsg {
            view: View(2),
            value: Value::from_u64(5),
            votes: dup,
        }),
        &mut buf,
    );
    assert!(buf.sent().is_empty());
}

/// Vote handling on the leader: relayed votes (sender ≠ voter) and invalid
/// signatures never enter the collection.
#[test]
fn leader_rejects_bad_votes() {
    let (cfg, pairs, dir) = fixture();
    let mut r = Replica::new(cfg, pairs[2].clone(), dir.clone(), Value::from_u64(30));
    let mut buf = fx(3);
    enter_view2(&mut r, &mut buf);

    // Relay: p4 forwards p1's genuine vote — rejected (votes travel
    // directly; accepting relays would let Byzantine processes replay).
    let genuine = SignedVote::sign(&pairs[0], None, View(2));
    let mut buf = fx(3);
    r.on_message(
        ProcessId(4),
        Message::Vote(VoteMsg {
            view: View(2),
            vote: genuine,
        }),
        &mut buf,
    );
    // Vote for the wrong destination view: rejected.
    let stale = SignedVote::sign(&pairs[0], None, View(3));
    r.on_message(
        ProcessId(1),
        Message::Vote(VoteMsg {
            view: View(2),
            vote: stale,
        }),
        &mut buf,
    );
    // Tampered signature: rejected.
    let mut forged = SignedVote::sign(&pairs[0], None, View(2));
    forged.sig = Signature::from_parts(ProcessId(1), [9u8; 32]);
    r.on_message(
        ProcessId(1),
        Message::Vote(VoteMsg {
            view: View(2),
            vote: forged,
        }),
        &mut buf,
    );
    // None of those advanced the leader past vote collection: only the
    // leader's own vote is in, so no CertRequest went out.
    assert!(
        !buf.sent()
            .iter()
            .any(|(_, m)| matches!(m, Message::CertRequest(_))),
        "leader must still be waiting for valid votes"
    );
}
