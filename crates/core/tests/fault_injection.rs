//! Systematic fault injection: crash every process at every interesting
//! phase boundary and combine faults — safety must hold in every cell of
//! the sweep.

use fastbft_core::cluster::{Behavior, SimCluster};
use fastbft_sim::{SimTime, Violation};
use fastbft_types::{Config, ProcessId, Value, View};

fn assert_safe_and_live(report: &fastbft_core::Report, label: &str) {
    let safety: Vec<&Violation> = report
        .violations
        .iter()
        .filter(|v| !matches!(v, Violation::Undecided { .. }))
        .collect();
    assert!(safety.is_empty(), "{label}: safety violations {safety:?}");
    assert!(
        report.all_decided,
        "{label}: liveness failed {:?}",
        report.violations
    );
}

/// Crash each single process at each phase boundary of the fast path
/// (before start, at propose delivery, at ack delivery, after decision).
#[test]
fn crash_sweep_single_process() {
    let cfg = Config::new(4, 1, 1).unwrap();
    for victim in cfg.processes() {
        for crash_at in [0u64, 100, 200, 300] {
            let mut cluster = SimCluster::builder(cfg)
                .inputs_u64([7, 7, 7, 7])
                .behavior(victim, Behavior::CrashAt(SimTime(crash_at)))
                .build();
            let report = cluster.run_until_all_decide();
            assert_safe_and_live(&report, &format!("crash {victim} at t={crash_at}"));
            assert_eq!(report.unanimous_decision(), Some(Value::from_u64(7)));
        }
    }
}

/// Crash pairs at staggered times in the f = 2 vanilla system, including
/// both leaders of the first two views.
#[test]
fn crash_sweep_pairs() {
    let cfg = Config::vanilla(9, 2).unwrap();
    let l1 = cfg.leader(View(1));
    let l2 = cfg.leader(View(2));
    let pairs = [
        (l1, 0u64, l2, 0u64),                   // both early leaders dead from the start
        (l1, 100, l2, 900),                     // leader dies at Δ, next leader later
        (ProcessId(5), 100, ProcessId(8), 100), // two followers at Δ
        (l1, 200, ProcessId(6), 150),           // leader after propose, follower mid-ack
    ];
    for (a, ta, b, tb) in pairs {
        let mut cluster = SimCluster::builder(cfg)
            .inputs_u64(vec![4; 9])
            .behavior(a, Behavior::CrashAt(SimTime(ta)))
            .behavior(b, Behavior::CrashAt(SimTime(tb)))
            .build();
        let report = cluster.run_until_all_decide();
        assert_safe_and_live(&report, &format!("crash {a}@{ta} + {b}@{tb}"));
    }
}

/// Equivocation at every possible split of the recipients.
#[test]
fn equivocation_split_sweep() {
    let cfg = Config::new(4, 1, 1).unwrap();
    let leader = cfg.leader(View::FIRST);
    let others: Vec<ProcessId> = cfg.processes().filter(|p| *p != leader).collect();
    // All 8 subsets of the 3 non-leader processes receive value A.
    for mask in 0u8..8 {
        let recipients_a: Vec<ProcessId> = others
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, p)| *p)
            .collect();
        let mut cluster = SimCluster::builder(cfg)
            .inputs_u64([9, 9, 9, 9])
            .behavior(
                leader,
                Behavior::EquivocateView1 {
                    a: Value::from_u64(100),
                    b: Value::from_u64(200),
                    recipients_a,
                },
            )
            .build();
        let report = cluster.run_until_all_decide();
        assert_safe_and_live(&report, &format!("equivocation mask {mask:03b}"));
    }
}

/// The full Byzantine budget as fuzzers in the generalized configuration,
/// paired with a slow network start.
#[test]
fn fuzzers_with_chaotic_network() {
    for seed in 0..6 {
        let cfg = Config::new(8, 2, 1).unwrap();
        let mut cluster = SimCluster::builder(cfg)
            .inputs_u64(vec![6; 8])
            .gst(SimTime(1_500), fastbft_sim::SimDuration(1_200))
            .behavior(ProcessId(3), Behavior::Random { seed })
            .behavior(ProcessId(6), Behavior::Random { seed: seed + 50 })
            .seed(seed)
            .build();
        let report = cluster.run_until_all_decide();
        assert_safe_and_live(&report, &format!("fuzzers seed {seed}"));
    }
}

/// Fuzzer + crash + equivocating leader would exceed f; instead verify the
/// worst legal combination at f = 2: equivocating leader + fuzzer.
#[test]
fn equivocator_plus_fuzzer() {
    for seed in 0..4 {
        let cfg = Config::vanilla(9, 2).unwrap();
        let leader = cfg.leader(View::FIRST);
        let mut cluster = SimCluster::builder(cfg)
            .inputs_u64(vec![2; 9])
            .behavior(
                leader,
                Behavior::EquivocateView1 {
                    a: Value::from_u64(10),
                    b: Value::from_u64(20),
                    recipients_a: vec![ProcessId(1), ProcessId(4), ProcessId(5), ProcessId(6)],
                },
            )
            .behavior(ProcessId(9), Behavior::Random { seed })
            .seed(seed)
            .build();
        let report = cluster.run_until_all_decide();
        assert_safe_and_live(&report, &format!("equivocator+fuzzer seed {seed}"));
    }
}

/// The leader crashes at Δ *after* its proposal is in flight, together with
/// a follower (f = 2 faults, t = 1): the fast path is dead (only 6 of the
/// required 7 acks), but the proposal survives via the slow path's commit
/// certificates — no view change needed.
#[test]
fn dead_leader_proposal_survives_via_slow_path() {
    let cfg = Config::new(8, 2, 1).unwrap();
    let leader = cfg.leader(View::FIRST);
    let mut cluster = SimCluster::builder(cfg)
        .inputs_u64(vec![5; 8])
        .behavior(leader, Behavior::CrashAt(SimTime(100)))
        .behavior(ProcessId(7), Behavior::CrashAt(SimTime(100)))
        .build();
    let report = cluster.run_until_all_decide();
    assert_safe_and_live(&report, "dead leader + follower at Δ");
    // Decided the dead leader's proposal, on the slow path's schedule.
    assert_eq!(report.unanimous_decision(), Some(Value::from_u64(5)));
    assert_eq!(
        report.decision_delays_max(),
        3,
        "slow path, not view change"
    );
}

/// Decisions are stable: once the first process decides, later traffic
/// (including the adversary's) never changes any correct process's value.
#[test]
fn decisions_stable_under_late_traffic() {
    let cfg = Config::new(4, 1, 1).unwrap();
    let mut cluster = SimCluster::builder(cfg)
        .inputs_u64([3, 3, 3, 3])
        .behavior(ProcessId(4), Behavior::Random { seed: 5 })
        .build();
    // Run in two stages: to first decision, then to the horizon.
    let mid = cluster.run_until(SimTime(200));
    let early: Vec<_> = mid.decisions.clone();
    let fin = cluster.run_until_all_decide();
    for (p, _, v) in &early {
        let late = fin
            .decisions
            .iter()
            .find(|(q, _, _)| q == p)
            .map(|(_, _, v)| v.clone());
        assert_eq!(late, Some(v.clone()), "{p} changed decision");
    }
    assert!(fin.violations.is_empty());
}
