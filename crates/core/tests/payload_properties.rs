//! Property tests for digest-carried signed statements.
//!
//! PR 5 changed every signed statement from `tag ‖ m ‖ v` to the fixed-size
//! `tag ‖ H(m) ‖ v`. These properties restate the invariants the protocol's
//! replay/domain-separation arguments (§3.2) rest on, over the new format:
//! statements are domain-separated, bind the value and the view, and two
//! distinct values can never alias one statement.

use fastbft_core::payload::{
    ack_payload, certack_payload, propose_payload, vote_payload, STATEMENT_LEN,
};
use fastbft_types::wire::Encode;
use fastbft_types::{Value, View};
use proptest::prelude::*;

/// Strategy: arbitrary value bytes across the interesting size range
/// (empty, shorter and longer than a digest, around the SHA-256 block
/// boundary).
fn value_bytes() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..96)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    /// The four statement kinds never collide for the same `(value, view)`
    /// — a signature over one can never replay as another.
    #[test]
    fn statements_are_domain_separated(bytes in value_bytes(), view in 1u64..=1_000_000) {
        let x = Value::new(bytes);
        let v = View(view);
        let payloads = [
            propose_payload(&x, v),
            certack_payload(&x, v),
            ack_payload(&x, v),
            vote_payload(&x.as_bytes().to_vec().to_wire_bytes(), v),
        ];
        for i in 0..payloads.len() {
            prop_assert_eq!(payloads[i].len(), STATEMENT_LEN);
            for j in i + 1..payloads.len() {
                prop_assert_ne!(payloads[i], payloads[j], "kinds {} and {} collide", i, j);
            }
        }
    }

    /// The old `payloads_bind_value_and_view` invariants over the new
    /// format: different value ⇒ different statement, different view ⇒
    /// different statement, for every statement kind.
    #[test]
    fn statements_bind_value_and_view(
        a in value_bytes(),
        b in value_bytes(),
        v1 in 1u64..=1_000_000,
        v2 in 1u64..=1_000_000,
    ) {
        let x = Value::new(a.clone());
        let y = Value::new(b.clone());
        if a != b {
            prop_assert_ne!(propose_payload(&x, View(v1)), propose_payload(&y, View(v1)));
            prop_assert_ne!(certack_payload(&x, View(v1)), certack_payload(&y, View(v1)));
            prop_assert_ne!(ack_payload(&x, View(v1)), ack_payload(&y, View(v1)));
        }
        if v1 != v2 {
            prop_assert_ne!(propose_payload(&x, View(v1)), propose_payload(&x, View(v2)));
            prop_assert_ne!(certack_payload(&x, View(v1)), certack_payload(&x, View(v2)));
            prop_assert_ne!(ack_payload(&x, View(v1)), ack_payload(&x, View(v2)));
            prop_assert_ne!(
                vote_payload(x.as_bytes(), View(v1)),
                vote_payload(x.as_bytes(), View(v2))
            );
        }
    }

    /// The statement is deterministic in the value *bytes*: a clone, a
    /// re-decoded copy and a cold-cache reconstruction all produce the
    /// identical statement (the memoized digest is pure metadata).
    #[test]
    fn statements_are_stable_across_copies(bytes in value_bytes(), view in 1u64..=1_000_000) {
        let x = Value::new(bytes.clone());
        let v = View(view);
        let first = propose_payload(&x, v);
        prop_assert_eq!(propose_payload(&x.clone(), v), first);
        prop_assert_eq!(propose_payload(&Value::new(bytes), v), first);
    }
}

/// Regression: two distinct `Value`s must never alias a statement. The
/// digest-carried format makes this a collision-resistance argument;
/// exercise it densely over adversarially similar values (prefixes,
/// extensions, single-bit flips) where a buggy truncation or padding scheme
/// would break first.
#[test]
fn distinct_values_never_alias_a_statement() {
    let v = View(7);
    let base: Vec<u8> = (0..64u8).collect();
    let mut variants: Vec<Vec<u8>> = vec![Vec::new()];
    for len in 1..=base.len() {
        variants.push(base[..len].to_vec()); // every prefix
    }
    for bit in 0..8 {
        let mut flipped = base.clone();
        flipped[0] ^= 1 << bit; // single-bit flips of the first byte
        variants.push(flipped);
    }
    let mut extended = base.clone();
    extended.push(0);
    variants.push(extended); // zero-extension (a naive padding collision)

    let statements: Vec<_> = variants
        .iter()
        .map(|bytes| ack_payload(&Value::new(bytes.clone()), v))
        .collect();
    for i in 0..statements.len() {
        for j in i + 1..statements.len() {
            assert_ne!(
                statements[i], statements[j],
                "values {i} and {j} alias one statement"
            );
        }
    }
}
