//! Path attribution: the metrics plane must agree with the protocol about
//! *how* each decision was reached.
//!
//! The paper's headline claim is the fast path — two message delays while
//! at most `t` processes are faulty — with a PBFT-like slow path behind it
//! when `t < f` (Appendix A). The per-replica counters
//! (`commit_fast_total`, `commit_slow_total`, `view_change_total`) exist so
//! a deployment can *see* which regime it is in; these tests pin the
//! attribution to scenarios where the correct answer is forced:
//!
//! * a clean synchronous run decides on the fast path, every replica, no
//!   view changes;
//! * with fewer than `n − t` live processes the fast quorum is
//!   unreachable, so every decision must be attributed to the slow path;
//! * a silent first leader forces a view change on every live replica
//!   before any decision.

use fastbft_core::cluster::{Behavior, SimCluster};
use fastbft_obs::MetricsRegistry;
use fastbft_types::{Config, ProcessId, View};

#[test]
fn clean_run_attributes_every_decision_to_the_fast_path() {
    let cfg = Config::new(4, 1, 1).unwrap();
    let registry = MetricsRegistry::new(cfg.n());
    let mut cluster = SimCluster::builder(cfg)
        .inputs_u64([7, 7, 7, 7])
        .metrics(&registry)
        .build();
    let report = cluster.run_until_all_decide();
    assert!(report.all_decided, "violations: {:?}", report.violations);
    assert_eq!(report.decision_delays_max(), 2);

    for i in 0..cfg.n() {
        let m = registry.metrics(i);
        assert_eq!(
            m.commit_fast_total.get(),
            1,
            "p{} must decide exactly once, on the fast path",
            i + 1
        );
        assert_eq!(
            m.commit_slow_total.get(),
            0,
            "p{} used the slow path",
            i + 1
        );
        assert_eq!(m.view_change_total.get(), 0, "p{} changed views", i + 1);
    }
    // The scrape agrees with the raw counters.
    let text = registry.render_text();
    assert!(text.contains("fastbft_commit_fast_total{replica=\"p1\"} 1"));
    assert!(text.contains("fastbft_commit_slow_total{replica=\"p1\"} 0"));
}

#[test]
fn unreachable_fast_quorum_attributes_decisions_to_the_slow_path() {
    // n = 7, f = 2, t = 1: fast quorum n − t = 6, slow quorum
    // ⌈(n+f+1)/2⌉ = 5, slow path on (t < f). Two silent processes leave 5
    // live — the fast quorum is unreachable, the slow quorum is exactly
    // reachable, so the slow path is the *only* way to decide.
    let cfg = Config::new(7, 2, 1).unwrap();
    let leader = cfg.leader(View::FIRST);
    // Silence two non-leader seats so no view change is needed.
    let silent: Vec<ProcessId> = cfg.processes().filter(|p| *p != leader).take(2).collect();
    let registry = MetricsRegistry::new(cfg.n());
    let mut builder = SimCluster::builder(cfg)
        .inputs_u64([4; 7])
        .metrics(&registry);
    for p in &silent {
        builder = builder.behavior(*p, Behavior::Silent);
    }
    let mut cluster = builder.build();
    let report = cluster.run_until_all_decide();
    assert!(report.all_decided, "violations: {:?}", report.violations);

    assert_eq!(
        registry.total(|m| &m.commit_fast_total),
        0,
        "a fast-path decision with only n − t − 1 live processes is impossible"
    );
    assert_eq!(
        registry.total(|m| &m.commit_slow_total),
        (cfg.n() - silent.len()) as u64,
        "every live replica must decide via the slow path"
    );
    for p in cfg.processes() {
        let m = registry.metrics(p.index());
        let expected = u64::from(!silent.contains(&p));
        assert_eq!(
            m.commit_slow_total.get(),
            expected,
            "slow-path attribution for p{}",
            p.0
        );
    }
}

#[test]
fn silent_leader_is_visible_as_view_changes_before_the_decision() {
    let cfg = Config::new(4, 1, 1).unwrap();
    let leader = cfg.leader(View::FIRST);
    let registry = MetricsRegistry::new(cfg.n());
    let mut cluster = SimCluster::builder(cfg)
        .inputs_u64([5, 5, 5, 5])
        .behavior(leader, Behavior::Silent)
        .metrics(&registry)
        .build();
    let report = cluster.run_until_all_decide();
    assert!(report.all_decided, "violations: {:?}", report.violations);
    assert!(report.decision_delays_max() > 2);

    let live: Vec<ProcessId> = cfg.processes().filter(|p| *p != leader).collect();
    let first_count = registry.metrics(live[0].index()).view_change_total.get();
    assert!(
        first_count >= 1,
        "the silent leader must force a view change"
    );
    for p in &live {
        let m = registry.metrics(p.index());
        assert_eq!(
            m.view_change_total.get(),
            first_count,
            "live replicas advance through the same views (p{})",
            p.0
        );
        // Once past the dead leader, n = 4 still has its full fast quorum
        // (n − t = 3 live), so the decision itself is a fast-path one.
        assert_eq!(m.commit_fast_total.get(), 1);
        assert_eq!(m.commit_slow_total.get(), 0);
    }
    // The silent seat recorded nothing: its Metrics slice exists but was
    // never handed to a replica.
    assert_eq!(registry.metrics(leader.index()).view_change_total.get(), 0);

    // View-change events landed in the flight recorder with the entering
    // process attributed.
    let events = registry.metrics(live[0].index()).recorder.snapshot();
    assert!(
        events.iter().any(|e| e.kind == "view-change"),
        "flight recorder must hold the view-change event; got {events:?}"
    );
}
