//! Property tests for the selection algorithm: determinism, the safety
//! cases of Lemmas 3.1–3.5, and leader/verifier agreement.

use std::collections::BTreeMap;

use fastbft_core::certs::{ProgressCert, SignedVote, VoteData};
use fastbft_core::payload::propose_payload;
use fastbft_core::selection::{select, Outcome, Rationale};
use fastbft_crypto::{KeyDirectory, KeyPair, Signature};
use fastbft_types::{Config, ProcessId, Value, View};
use proptest::prelude::*;

/// Builds an (unvalidated) vote — selection trusts its input, so dummy
/// signatures keep generation fast; validation is covered separately.
fn raw_vote(p: u32, vote: Option<(u64, u64)>) -> (ProcessId, SignedVote) {
    let pid = ProcessId(p);
    let sig = Signature::from_parts(pid, [0u8; 32]);
    (
        pid,
        SignedVote {
            voter: pid,
            vote: vote.map(|(value, view)| VoteData {
                value: Value::from_u64(value),
                view: View(view),
                progress_cert: ProgressCert::Genesis,
                leader_sig: sig.clone(),
                commit_cert: None,
            }),
            sig,
        },
    )
}

/// Strategy: a random vote set for `n = 9, f = t = 2`, destination view 4.
/// Values in 0..3, views in 1..=3.
fn vote_sets() -> impl Strategy<Value = BTreeMap<ProcessId, SignedVote>> {
    proptest::collection::vec(proptest::option::of((0u64..3, 1u64..=3)), 9).prop_map(|votes| {
        votes
            .into_iter()
            .enumerate()
            .map(|(i, v)| raw_vote(i as u32 + 1, v))
            .collect()
    })
}

fn cfg9() -> Config {
    Config::vanilla(9, 2).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, .. ProptestConfig::default() })]

    /// Selection never panics and is deterministic on arbitrary vote sets.
    #[test]
    fn selection_total_and_deterministic(votes in vote_sets()) {
        let a = select(&cfg9(), View(4), &votes);
        let b = select(&cfg9(), View(4), &votes);
        prop_assert_eq!(a, b);
    }

    /// Lemma 3.1: with ≥ n − f votes all nil, selection is Free.
    #[test]
    fn all_nil_is_free(extra in 7usize..=9) {
        let votes: BTreeMap<_, _> =
            (1..=extra as u32).map(|p| raw_vote(p, None)).collect();
        let r = select(&cfg9(), View(2), &votes).unwrap();
        prop_assert_eq!(r.outcome, Outcome::Free);
        prop_assert_eq!(r.rationale, Rationale::AllNil);
    }

    /// The QI2-backed safety case: if some value has ≥ f + t votes at the
    /// maximum view among non-excluded voters, selection never returns Free
    /// and never returns a different value voted at that view.
    #[test]
    fn quorum_at_w_is_never_overridden(votes in vote_sets()) {
        let cfg = cfg9();
        if let Ok(result) = select(&cfg, View(4), &votes) {
            let Some(w) = result.w else { return Ok(()); };
            // Count votes per value at w among non-excluded voters.
            let mut counts: BTreeMap<u64, usize> = BTreeMap::new();
            for (p, sv) in &votes {
                if result.excluded.contains(p) { continue; }
                if let Some(vd) = &sv.vote {
                    if vd.view == w {
                        *counts.entry(vd.value.as_u64().unwrap()).or_insert(0) += 1;
                    }
                }
            }
            for (value, count) in counts {
                if count >= cfg.selection_quorum() {
                    prop_assert_eq!(
                        &result.outcome,
                        &Outcome::Constrained(Value::from_u64(value)),
                        "value {} had {} >= f+t votes at {:?} but outcome was {:?}",
                        value, count, w, result.outcome
                    );
                }
            }
        }
    }

    /// The selected value (when constrained) was voted at w by someone, or
    /// was pinned by a commit certificate.
    #[test]
    fn constrained_values_come_from_votes(votes in vote_sets()) {
        if let Ok(result) = select(&cfg9(), View(4), &votes) {
            if let Outcome::Constrained(x) = &result.outcome {
                let supported = votes.values().any(|sv| {
                    sv.vote.as_ref().is_some_and(|vd| {
                        vd.value == *x
                            || vd.commit_cert.as_ref().is_some_and(|cc| cc.value == *x)
                    })
                });
                prop_assert!(supported, "selected {x} appears in no vote");
            }
        }
    }

    /// Excluded processes are always leaders of some view seen in the votes
    /// (only provable equivocators are excluded).
    #[test]
    fn only_view_leaders_get_excluded(votes in vote_sets()) {
        let cfg = cfg9();
        if let Ok(result) = select(&cfg, View(4), &votes) {
            for p in &result.excluded {
                let leads_some_view = (1u64..=3).any(|v| cfg.leader(View(v)) == *p);
                prop_assert!(leads_some_view, "{p} excluded but leads no voted view");
            }
        }
    }
}

/// Leader/verifier agreement: a CertRequest verifier re-running selection on
/// the same (now *validated*) votes reaches the same conclusion as the
/// leader. This is the property that makes `f + 1` CertAcks sufficient.
#[test]
fn leader_and_verifier_agree_on_real_votes() {
    let cfg = Config::new(4, 1, 1).unwrap();
    let (pairs, dir) = KeyDirectory::generate(4, 8);
    let x = Value::from_u64(3);
    let leader1 = cfg.leader(View::FIRST);

    let mk_vote = |p: &KeyPair, value: &Value| {
        SignedVote::sign(
            p,
            Some(VoteData {
                value: value.clone(),
                view: View::FIRST,
                progress_cert: ProgressCert::Genesis,
                leader_sig: pairs[leader1.index()].sign(&propose_payload(value, View::FIRST)),
                commit_cert: None,
            }),
            View(2),
        )
    };

    let votes: BTreeMap<ProcessId, SignedVote> = [
        (pairs[0].id(), mk_vote(&pairs[0], &x)),
        (pairs[2].id(), SignedVote::sign(&pairs[2], None, View(2))),
        (pairs[3].id(), SignedVote::sign(&pairs[3], None, View(2))),
    ]
    .into();

    // Leader side.
    for sv in votes.values() {
        assert!(sv.is_valid(&cfg, &dir, View(2)));
    }
    let leader_result = select(&cfg, View(2), &votes).unwrap();
    assert_eq!(leader_result.outcome, Outcome::Constrained(x.clone()));

    // Verifier side: identical set, identical conclusion.
    let verifier_result = select(&cfg, View(2), &votes).unwrap();
    assert_eq!(leader_result, verifier_result);

    // And the naive certificate built from this very set verifies for x
    // (and only x among voted values).
    let cert = ProgressCert::Naive(votes.values().cloned().collect());
    assert!(cert.verify(&cfg, &dir, &x, View(2)));
    assert!(!cert.verify(&cfg, &dir, &Value::from_u64(99), View(2)));
}
