//! The replicated state machine over real loopback TCP: identical KV state
//! on all correct replicas, live client submission, silent-leader
//! recovery mid-log, and deadlock-free shutdown with slots in flight.

use std::time::{Duration, Instant};

use fastbft_core::replica::ReplicaOptions;
use fastbft_crypto::KeyDirectory;
use fastbft_net::{tcp_reseat, tcp_seats, tcp_seats_retaining};
use fastbft_runtime::spawn_with;
use fastbft_sim::{Actor, ScriptedActor};
use fastbft_smr::runtime::{
    as_smr_node, smr_actors, smr_actors_configured, smr_actors_snapshotting, SmrClusterHandle,
};
use fastbft_smr::{AdaptiveBatch, Batching, KvCommand, KvStore, SlotMessage, SmrNode};
use fastbft_types::{Config, ProcessId, Value};

const TICK: Duration = Duration::from_micros(50);

fn put(i: usize) -> Value {
    KvCommand::Put {
        key: format!("k{i}"),
        value: format!("v{i}"),
    }
    .to_value()
}

/// Spawns an n=4 SMR-over-TCP cluster; seat `i` is replaced by a silent
/// actor for every process id in `silent`.
fn spawn_kv_tcp(seed: u64, silent: &[u32]) -> SmrClusterHandle {
    let cfg = Config::new(4, 1, 1).unwrap();
    let (pairs, dir) = KeyDirectory::generate(cfg.n(), seed);
    let idle = KvCommand::Noop.to_value();
    let actors: Vec<Box<dyn Actor<SlotMessage> + Send>> = smr_actors(
        cfg,
        &pairs,
        &dir,
        KvStore::new(),
        vec![Vec::new(); cfg.n()],
        idle.clone(),
        ReplicaOptions::default(),
        1,
    )
    .into_iter()
    .enumerate()
    .map(|(i, node)| -> Box<dyn Actor<SlotMessage> + Send> {
        if silent.contains(&(i as u32 + 1)) {
            Box::new(ScriptedActor::silent())
        } else {
            node
        }
    })
    .collect();
    let (seats, _addrs) = tcp_seats(actors, pairs, dir, Default::default()).expect("loopback bind");
    SmrClusterHandle::new(spawn_with(seats, TICK), cfg.n(), idle)
}

/// All-correct run: commands submitted to the *running* cluster commit on
/// every replica, each exactly once, leaving identical KV state.
#[test]
fn kv_replicates_identically_over_tcp() {
    let cfg = Config::new(4, 1, 1).unwrap();
    let mut cluster = spawn_kv_tcp(31, &[]);
    let commands: Vec<Value> = (0..10).map(put).collect();
    for cmd in &commands {
        cluster.submit(cmd.clone());
    }
    assert!(
        cluster.await_commands(cfg.processes(), 10, Duration::from_secs(60)),
        "cluster did not apply all 10 commands: logs {:?}",
        cluster.logs()
    );
    assert!(cluster.logs_agree(), "log divergence: {:?}", cluster.logs());
    for log in cluster.logs() {
        for cmd in &commands {
            assert_eq!(
                log.values().filter(|v| *v == cmd).count(),
                1,
                "command applied other than exactly once"
            );
        }
    }

    // Final state straight from the actors: identical stores everywhere.
    let actors = cluster.shutdown();
    let digests: Vec<_> = actors
        .iter()
        .map(|a| {
            let node = as_smr_node::<KvStore>(a.as_ref()).expect("SMR seat");
            assert_eq!(node.machine().get("k3"), Some(&"v3".to_string()));
            node.machine().state_digest()
        })
        .collect();
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "replica state diverged"
    );
}

/// A silent leader (p2 leads slot 0 — and every fourth slot — under
/// rotation) must not stall the log: the correct replicas view-change past
/// it mid-log and still commit every command consistently.
#[test]
fn silent_leader_recovers_mid_log_over_tcp() {
    let mut cluster = spawn_kv_tcp(32, &[2]);
    let correct = [ProcessId(1), ProcessId(3), ProcessId(4)];
    let commands: Vec<Value> = (0..5).map(put).collect();
    for cmd in &commands {
        cluster.submit(cmd.clone());
    }
    // Five commands span slots led by every process, including two led by
    // the silent p2 — each recovered by a real-time view change over TCP.
    assert!(
        cluster.await_commands(correct, 5, Duration::from_secs(120)),
        "correct replicas did not recover past the silent leader: logs {:?}",
        cluster.logs()
    );
    assert!(cluster.logs_agree(), "log divergence: {:?}", cluster.logs());

    let actors = cluster.shutdown();
    let digests: Vec<_> = correct
        .iter()
        .map(|p| {
            let node = as_smr_node::<KvStore>(actors[p.index()].as_ref()).expect("SMR seat");
            assert_eq!(node.machine().len(), 5, "missing keys at {p}");
            node.machine().state_digest()
        })
        .collect();
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "correct replica state diverged"
    );
}

/// The kill-and-rejoin chaos path over real TCP: a replica is stopped
/// mid-log (thread joined, transport dropped), the survivors keep
/// committing past it with a short snapshot cadence, and a *fresh* node —
/// empty log, empty store, fresh transport state on the retained port —
/// rejoins by installing an attested snapshot plus the committed suffix,
/// ending with byte-identical state on all four replicas.
#[test]
fn killed_replica_rejoins_via_snapshot_over_tcp() {
    const INTERVAL: u64 = 16;
    let cfg = Config::new(4, 1, 1).unwrap();
    let (pairs, dir) = KeyDirectory::generate(cfg.n(), 34);
    let idle = KvCommand::Noop.to_value();
    let actors = smr_actors_snapshotting(
        cfg,
        &pairs,
        &dir,
        KvStore::new(),
        vec![Vec::new(); cfg.n()],
        idle.clone(),
        ReplicaOptions::default(),
        1,
        Some(INTERVAL),
    );
    let (seats, addrs, listeners) =
        tcp_seats_retaining(actors, pairs.clone(), dir.clone(), Default::default())
            .expect("loopback bind");
    let mut cluster = SmrClusterHandle::new(spawn_with(seats, TICK), cfg.n(), idle.clone());

    // Phase 1: a common prefix on all four replicas.
    for i in 0..10 {
        cluster.submit(put(i));
    }
    assert!(
        cluster.await_commands(cfg.processes(), 10, Duration::from_secs(60)),
        "initial prefix did not commit: logs {:?}",
        cluster.logs()
    );

    // Kill p2 mid-log: event loop joined, sockets torn down. The retained
    // listener clone keeps its port bound while the seat is dead.
    drop(cluster.stop_node(1));

    // Phase 2: the survivors commit well past p2's death; at interval 16
    // they take (and mutually attest) several snapshots along the way.
    let survivors = [ProcessId(1), ProcessId(3), ProcessId(4)];
    for i in 10..40 {
        cluster.submit(put(i));
    }
    assert!(
        cluster.await_commands(survivors, 40, Duration::from_secs(120)),
        "survivors stalled without p2: logs {:?}",
        cluster.logs()
    );

    // Phase 3: revive seat 1 with a fresh node and fresh transport state
    // on the same port. It knows nothing — catch-up is entirely snapshot
    // recovery's job.
    let node = SmrNode::new(
        cfg,
        pairs[1].clone(),
        dir.clone(),
        KvStore::new(),
        Vec::new(),
        idle.clone(),
    )
    .with_snapshot_interval(INTERVAL);
    let seat = tcp_reseat(
        Box::new(node),
        pairs[1].clone(),
        dir,
        &listeners[1],
        addrs,
        Default::default(),
    )
    .expect("reseat on retained port");
    cluster.restart_node(1, seat);

    // Fresh traffic both advances the cluster and carries the peer tips
    // that tell the revived p2 how far behind it is.
    for i in 40..60 {
        cluster.submit(put(i));
    }
    assert!(
        cluster.await_commands(survivors, 60, Duration::from_secs(120)),
        "cluster stalled after the restart: logs {:?}",
        cluster.logs()
    );
    // p2's first applied event implies it installed the snapshot and is
    // voting again (peers ignore consensus for slots below their applied
    // index, so a fresh node cannot commit anything *without* recovering).
    assert!(
        cluster.await_commands([ProcessId(2)], 1, Duration::from_secs(120)),
        "revived replica never applied a command: log {:?}",
        cluster.logs()[1]
    );

    // A marker wave submitted after p2 is live again: every marker lands in
    // a slot p2 applies itself, so waiting for all of them in p2's (sparse,
    // snapshot-truncated) log proves it fully caught up.
    let markers: Vec<Value> = (60..70).map(put).collect();
    for cmd in &markers {
        cluster.submit(cmd.clone());
    }
    let deadline = Instant::now() + Duration::from_secs(120);
    while !markers
        .iter()
        .all(|m| cluster.logs()[1].values().any(|v| v == m))
    {
        assert!(
            Instant::now() < deadline,
            "revived replica never saw the marker wave: log {:?}",
            cluster.logs()[1]
        );
        cluster.await_commands([ProcessId(2)], u64::MAX, Duration::from_millis(200));
    }
    assert!(cluster.logs_agree(), "log divergence: {:?}", cluster.logs());

    // Byte-identical stores on all four — including the seat that died.
    let actors = cluster.shutdown();
    let revived = as_smr_node::<KvStore>(actors[1].as_ref()).expect("SMR seat");
    assert_eq!(revived.machine().len(), 70, "revived replica missing keys");
    assert!(
        revived.snapshot_upto().is_some(),
        "revived replica rejoined without installing a snapshot"
    );
    let digests: Vec<_> = actors
        .iter()
        .map(|a| {
            as_smr_node::<KvStore>(a.as_ref())
                .expect("SMR seat")
                .machine()
                .state_digest()
        })
        .collect();
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "replica state diverged after kill/restart"
    );
}

/// Shutdown must join every thread even while slots are mid-consensus and
/// sockets carry traffic (mirrors `shutdown_semantics.rs` for SMR + TCP).
#[test]
fn shutdown_with_inflight_slots_joins() {
    let cluster = spawn_kv_tcp(33, &[]);
    for i in 0..50 {
        cluster.submit(put(i));
    }
    // Tear down mid-pipeline.
    std::thread::sleep(Duration::from_millis(30));
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        cluster.shutdown();
        let _ = done_tx.send(());
    });
    done_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("SMR-over-TCP shutdown deadlocked");
}

/// Off-loop apply survives the full chaos cycle: with `apply_workers = 1`
/// on every seat, a replica is killed mid-log (its apply worker joined and
/// drained by the seat's shutdown hook), the survivors keep committing
/// through snapshots, and the revived seat — also running an apply worker
/// — rejoins via snapshot recovery. Final state must be byte-identical to
/// what the inline path produces: the worker never leaks into the
/// protocol.
#[test]
fn off_loop_apply_survives_kill_and_restart_over_tcp() {
    const INTERVAL: u64 = 8;
    let cfg = Config::new(4, 1, 1).unwrap();
    let (pairs, dir) = KeyDirectory::generate(cfg.n(), 35);
    let idle = KvCommand::Noop.to_value();
    let opts = ReplicaOptions {
        apply_workers: 1,
        ..ReplicaOptions::default()
    };
    let actors = smr_actors_configured(
        cfg,
        &pairs,
        &dir,
        KvStore::new(),
        vec![Vec::new(); cfg.n()],
        idle.clone(),
        opts.clone(),
        Batching::Adaptive(AdaptiveBatch::default()),
        Some(INTERVAL),
        None,
    );
    let (seats, addrs, listeners) =
        tcp_seats_retaining(actors, pairs.clone(), dir.clone(), Default::default())
            .expect("loopback bind");
    let mut cluster = SmrClusterHandle::new(spawn_with(seats, TICK), cfg.n(), idle.clone());

    // Phase 1: a common prefix, applied off-loop on all four.
    for i in 0..10 {
        cluster.submit(put(i));
    }
    assert!(
        cluster.await_commands(cfg.processes(), 10, Duration::from_secs(60)),
        "initial prefix did not commit: logs {:?}",
        cluster.logs()
    );

    // Kill p2: stop_node joins its event loop, whose shutdown hook joins
    // the apply worker — the dead actor owns its machine again.
    let dead = cluster.stop_node(1);
    assert!(
        !as_smr_node::<KvStore>(dead.as_ref())
            .expect("SMR seat")
            .machine()
            .is_empty(),
        "killed seat's apply worker was not drained on stop"
    );
    drop(dead);

    // Phase 2: survivors commit past several snapshot boundaries.
    let survivors = [ProcessId(1), ProcessId(3), ProcessId(4)];
    for i in 10..30 {
        cluster.submit(put(i));
    }
    assert!(
        cluster.await_commands(survivors, 30, Duration::from_secs(120)),
        "survivors stalled without p2: logs {:?}",
        cluster.logs()
    );

    // Phase 3: revive seat 1 — fresh node, fresh transport, same port,
    // and its own apply worker. Catch-up (snapshot install + committed
    // suffix) must route the restore through the off-loop stage.
    let node = SmrNode::new(
        cfg,
        pairs[1].clone(),
        dir.clone(),
        KvStore::new(),
        Vec::new(),
        idle.clone(),
    )
    .with_batching(Batching::Adaptive(AdaptiveBatch::default()))
    .with_snapshot_interval(INTERVAL)
    .with_options(opts);
    let seat = tcp_reseat(
        Box::new(node),
        pairs[1].clone(),
        dir,
        &listeners[1],
        addrs,
        Default::default(),
    )
    .expect("reseat on retained port");
    cluster.restart_node(1, seat);

    for i in 30..40 {
        cluster.submit(put(i));
    }
    assert!(
        cluster.await_commands(survivors, 40, Duration::from_secs(120)),
        "cluster stalled after the restart: logs {:?}",
        cluster.logs()
    );
    assert!(
        cluster.await_commands([ProcessId(2)], 1, Duration::from_secs(120)),
        "revived replica never applied a command: log {:?}",
        cluster.logs()[1]
    );

    // Catch-up: keep filler traffic flowing until p2 applies a command
    // submitted in the *previous* round. Two things force this shape:
    // peer tips only outrun the recovery gap (which re-triggers state
    // transfer) while new slots keep opening, and commands that commit
    // below p2's installed snapshot boundary never surface in its event
    // log — only a freshly submitted command proves it reached the tip.
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut filler = 40;
    let mut last_round: Vec<Value> = Vec::new();
    loop {
        let caught_up = last_round
            .iter()
            .any(|m| cluster.logs()[1].values().any(|v| v == m));
        if caught_up {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "revived replica never reached the tip: log {:?}",
            cluster.logs()[1]
        );
        last_round = (0..4)
            .map(|_| {
                let cmd = put(filler);
                filler += 1;
                cmd
            })
            .collect();
        for cmd in &last_round {
            cluster.submit(cmd.clone());
        }
        cluster.await_commands([ProcessId(2)], u64::MAX, Duration::from_millis(200));
    }

    // Marker wave, submitted while p2 is at the tip: every marker commits
    // above its installed boundary, so p2 must apply each one itself.
    let markers: Vec<Value> = (filler..filler + 8).map(put).collect();
    for cmd in &markers {
        cluster.submit(cmd.clone());
    }
    let deadline = Instant::now() + Duration::from_secs(120);
    while !markers
        .iter()
        .all(|m| cluster.logs()[1].values().any(|v| v == m))
    {
        assert!(
            Instant::now() < deadline,
            "revived replica never saw the marker wave: log {:?}",
            cluster.logs()[1]
        );
        cluster.await_commands([ProcessId(2)], u64::MAX, Duration::from_millis(200));
    }
    assert!(cluster.logs_agree(), "log divergence: {:?}", cluster.logs());

    // Shutdown joins every apply worker; the stores are byte-identical.
    let actors = cluster.shutdown();
    let revived = as_smr_node::<KvStore>(actors[1].as_ref()).expect("SMR seat");
    assert!(
        revived.machine().len() >= 48,
        "revived replica missing keys: {}",
        revived.machine().len()
    );
    assert!(
        revived.snapshot_upto().is_some(),
        "revived replica rejoined without installing a snapshot"
    );
    let digests: Vec<_> = actors
        .iter()
        .map(|a| {
            as_smr_node::<KvStore>(a.as_ref())
                .expect("SMR seat")
                .machine()
                .state_digest()
        })
        .collect();
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "replica state diverged after off-loop kill/restart"
    );
}
