//! Sharded SMR over real sockets: two consensus groups multiplexed over
//! one authenticated loopback-TCP mesh, with verify pools attached —
//! the full multicore datapath (ingress → verify workers → protocol →
//! apply) end to end.

use std::time::Duration;

use fastbft_crypto::KeyDirectory;
use fastbft_net::{tcp_shard_mesh, TcpOptions};
use fastbft_runtime::{spawn_with, NodeSeat};
use fastbft_sim::Actor;
use fastbft_smr::runtime::as_smr_node;
use fastbft_smr::{
    kv_shard_of, kv_shard_router, with_verify_pools, KvCommand, KvStore, ShardedKvHandle,
    SlotMessage, SmrClusterHandle, SmrNode,
};
use fastbft_types::{Config, ShardMap, Value};

fn put(key: &str, value: &str) -> Value {
    KvCommand::Put {
        key: key.into(),
        value: value.into(),
    }
    .to_value()
}

#[test]
fn sharded_smr_over_tcp_with_verify_pools() {
    let n = 4;
    let shards = 2;
    let cfg = Config::new(n, 1, 1).unwrap();
    let map = ShardMap::new(shards);
    let (pairs, dir) = KeyDirectory::generate(n, 23);
    let idle = KvCommand::Noop.to_value();

    let (per_node, _addrs, pumps) = tcp_shard_mesh::<SlotMessage, _>(
        pairs.clone(),
        dir.clone(),
        TcpOptions::default(),
        shards,
        kv_shard_router(map),
    )
    .expect("loopback mesh binds");

    // Group `g`'s cluster takes element `g` of every node's split.
    let mut per_node: Vec<_> = per_node.into_iter().map(Vec::into_iter).collect();
    let mut groups = Vec::with_capacity(shards);
    for g in 0..shards {
        let mut seats = Vec::with_capacity(n);
        for (i, node) in per_node.iter_mut().enumerate() {
            let (transport, control) = node.next().expect("one transport per group");
            let actor: Box<dyn Actor<SlotMessage> + Send> = Box::new(
                SmrNode::new(
                    cfg,
                    pairs[i].clone(),
                    dir.clone(),
                    KvStore::new(),
                    Vec::new(),
                    idle.clone(),
                )
                .with_leader_stagger(g as u64),
            );
            seats.push(NodeSeat {
                actor,
                transport,
                control,
                verify: None,
            });
        }
        // Two verify workers per seat: inbound frames take the staged
        // path (submit → worker preverify → in-order redeem).
        let seats = with_verify_pools(seats, cfg, &dir, 2);
        groups.push(SmrClusterHandle::new(
            spawn_with(seats, Duration::from_micros(50)),
            n,
            idle.clone(),
        ));
    }
    let mut cluster = ShardedKvHandle::assemble(groups, map, pumps, idle, n);

    // Enough keys that both shards order commands.
    let keys: Vec<String> = (0..8).map(|i| format!("key-{i}")).collect();
    let mut hit = vec![false; shards];
    for (i, key) in keys.iter().enumerate() {
        let g = cluster.submit(put(key, &format!("v{i}")));
        assert_eq!(g, kv_shard_of(map, key));
        hit[g] = true;
    }
    assert!(hit.iter().all(|h| *h), "both shards saw traffic");
    assert!(
        cluster.await_submitted(Duration::from_secs(30)),
        "all groups commit over TCP"
    );
    assert!(cluster.logs_agree());

    let group_actors = cluster.shutdown();
    for (g, actors) in group_actors.iter().enumerate() {
        for actor in actors {
            let node = as_smr_node::<KvStore>(actor.as_ref()).expect("KV node");
            for key in &keys {
                assert_eq!(
                    node.machine().get(key).is_some(),
                    kv_shard_of(map, key) == g,
                    "key {key} lives exactly in its owning group"
                );
            }
        }
    }
}
