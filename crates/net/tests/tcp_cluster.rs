//! Loopback TCP cluster integration: real replicas over real sockets.
//!
//! Pins the acceptance criteria of the transport subsystem: an `n = 4,
//! f = t = 1` cluster reaches a unanimous decision over 127.0.0.1, hostile
//! bytes (bad MACs, spoofed senders, truncation, oversized lengths, random
//! garbage) are rejected without panicking any replica thread, and
//! shutdown joins every thread even with undelivered traffic in flight.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use fastbft_core::replica::Replica;
use fastbft_core::Message;
use fastbft_crypto::session::{frame_preimage, SessionMac};
use fastbft_crypto::{KeyDirectory, KeyPair, Signature};
use fastbft_net::frame::{read_msg, write_msg, Frame, Hello, HelloAck};
use fastbft_net::spawn_tcp;
use fastbft_sim::{Actor, Effects, SimDuration, SimMessage, TimerId};
use fastbft_types::wire::to_bytes;
use fastbft_types::{Config, ProcessId, Value};

fn replicas(
    cfg: Config,
    input: u64,
    seed: u64,
) -> (
    Vec<Box<dyn Actor<Message> + Send>>,
    Vec<KeyPair>,
    KeyDirectory,
) {
    let (pairs, dir) = KeyDirectory::generate(cfg.n(), seed);
    let actors = (0..cfg.n())
        .map(|i| -> Box<dyn Actor<Message> + Send> {
            Box::new(Replica::new(
                cfg,
                pairs[i].clone(),
                dir.clone(),
                Value::from_u64(input),
            ))
        })
        .collect();
    (actors, pairs, dir)
}

#[test]
fn four_replicas_decide_unanimously_over_loopback() {
    let cfg = Config::new(4, 1, 1).unwrap();
    let (actors, pairs, dir) = replicas(cfg, 7, 41);
    let (cluster, addrs) = spawn_tcp(actors, pairs, dir, Duration::from_micros(50)).unwrap();
    assert_eq!(addrs.len(), 4);
    let decisions = cluster.await_decisions(4, Duration::from_secs(20));
    cluster.shutdown();
    assert_eq!(decisions.len(), 4, "all four replicas must decide");
    for d in &decisions {
        assert_eq!(d.value, Value::from_u64(7), "{} decided wrongly", d.process);
    }
}

/// Every class of hostile input from the acceptance criteria, fired at a
/// live cluster which must still decide unanimously — proving the frames
/// were rejected without panicking or wedging any replica thread.
#[test]
fn hostile_frames_are_rejected_without_breaking_consensus() {
    let cfg = Config::new(4, 1, 1).unwrap();
    let (actors, pairs, dir) = replicas(cfg, 9, 43);
    // Keep an "attacker" copy of p4's key: a *member* key, used to probe
    // that even a legitimate key cannot spoof someone else's identity.
    let p4 = pairs[3].clone();
    let (cluster, addrs) = spawn_tcp(actors, pairs, dir, Duration::from_micros(50)).unwrap();
    let target = addrs[0]; // everything below attacks p1

    // (a) Pure garbage: not even a handshake.
    {
        let mut s = TcpStream::connect(target).unwrap();
        s.write_all(&[0xAB; 64]).unwrap();
    }

    // (b) Oversized declared frame length, first thing on the wire.
    {
        let mut s = TcpStream::connect(target).unwrap();
        s.write_all(&u32::MAX.to_be_bytes()).unwrap();
    }

    // (c) Truncated frame: a length prefix promising more than is sent.
    {
        let mut s = TcpStream::connect(target).unwrap();
        s.write_all(&100u32.to_be_bytes()).unwrap();
        s.write_all(&[1, 2, 3]).unwrap();
        // connection drops here, mid-frame
    }

    // (d) Valid handshake as p4, then a frame with a corrupted MAC.
    {
        let mut s = TcpStream::connect(target).unwrap();
        let session = 0xBAD_0001;
        write_msg(&mut s, &Hello::signed(&p4, session)).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let _ack: HelloAck = read_msg(&mut s).unwrap().expect("ack");
        let payload = to_bytes(&Message::Wish(fastbft_core::message::WishMsg {
            view: fastbft_types::View(2),
        }));
        let mut mac = SessionMac::new(p4.clone(), session);
        let (seq, sig) = mac.tag_next(&payload);
        let mut bad_tag = *sig.tag();
        bad_tag[0] ^= 0xFF;
        let frame = Frame {
            sender: p4.id(),
            seq,
            payload,
            mac: Signature::from_parts(p4.id(), bad_tag),
        };
        write_msg(&mut s, &frame).unwrap();
    }

    // (e) Valid handshake as p4, then a frame claiming to be from p2 —
    // a wrong claimed sender under a genuine member key.
    {
        let mut s = TcpStream::connect(target).unwrap();
        let session = 0xBAD_0002;
        write_msg(&mut s, &Hello::signed(&p4, session)).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let _ack: HelloAck = read_msg(&mut s).unwrap().expect("ack");
        let payload = to_bytes(&Message::Wish(fastbft_core::message::WishMsg {
            view: fastbft_types::View(3),
        }));
        // p4 signs honestly, but stamps p2 as the frame sender.
        let sig = p4.sign(&frame_preimage(session, 1, &payload));
        let frame = Frame {
            sender: ProcessId(2),
            seq: 1,
            payload,
            mac: sig,
        };
        write_msg(&mut s, &frame).unwrap();
    }

    // (f) Handshake claiming an identity the dialer has no key for.
    {
        let mut s = TcpStream::connect(target).unwrap();
        let mut hello = Hello::signed(&p4, 0xBAD_0003);
        hello.sender = ProcessId(2); // signature is p4's: must be refused
        write_msg(&mut s, &hello).unwrap();
    }

    // Despite all of the above, the protocol proceeds to a unanimous
    // decision and no replica thread has panicked.
    let decisions = cluster.await_decisions(4, Duration::from_secs(20));
    cluster.shutdown();
    assert_eq!(
        decisions.len(),
        4,
        "hostile frames must not block consensus"
    );
    for d in &decisions {
        assert_eq!(d.value, Value::from_u64(9));
    }
}

/// Replaying a recorded connection cannot work: the listener contributes a
/// fresh signed nonce per connection, so an identical replayed `Hello`
/// yields a different ack nonce — and frame MACs are bound to the mix of
/// both contributions (`mix_session`), so every recorded frame dies with
/// the old nonce (`SessionVerifier` rejection pinned in `fastbft_crypto`).
#[test]
fn replayed_handshake_gets_a_fresh_listener_nonce() {
    let cfg = Config::new(4, 1, 1).unwrap();
    let (actors, pairs, dir) = replicas(cfg, 2, 59);
    let p4 = pairs[3].clone();
    let (cluster, addrs) = spawn_tcp(actors, pairs, dir, Duration::from_micros(50)).unwrap();

    let hello = Hello::signed(&p4, 0xCAFE); // the "recording"
    let mut nonces = Vec::new();
    for _ in 0..2 {
        let mut s = TcpStream::connect(addrs[0]).unwrap();
        write_msg(&mut s, &hello).unwrap(); // identical bytes both times
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let ack: HelloAck = read_msg(&mut s).unwrap().expect("ack");
        nonces.push(ack.nonce);
    }
    cluster.shutdown();
    assert_ne!(
        nonces[0], nonces[1],
        "listener must contribute fresh freshness per connection"
    );
}

/// An actor that floods peers with messages and arms far-future timers —
/// shutdown must still join every thread promptly. Echoing is bounded so
/// the traffic is lively but finite.
#[derive(Debug)]
struct Flooder {
    echoes_left: u32,
}

impl Actor<Message> for Flooder {
    fn on_start(&mut self, fx: &mut Effects<Message>) {
        for _ in 0..50 {
            fx.broadcast(Message::Wish(fastbft_core::message::WishMsg {
                view: fastbft_types::View(2),
            }));
        }
        for i in 0..20 {
            fx.set_timer(SimDuration(1_000_000 + i), TimerId(i));
        }
    }

    fn on_message(&mut self, _from: ProcessId, _msg: Message, fx: &mut Effects<Message>) {
        // Keep traffic flowing so shutdown races against live deliveries.
        if self.echoes_left > 0 {
            self.echoes_left -= 1;
            fx.broadcast_others(Message::Wish(fastbft_core::message::WishMsg {
                view: fastbft_types::View(2),
            }));
        }
    }
}

#[test]
fn shutdown_joins_with_inflight_timers_and_messages_tcp() {
    let n = 4;
    let (pairs, dir) = KeyDirectory::generate(n, 47);
    let actors: Vec<Box<dyn Actor<Message> + Send>> = (0..n)
        .map(|_| -> Box<dyn Actor<Message> + Send> { Box::new(Flooder { echoes_left: 500 }) })
        .collect();
    let (cluster, _addrs) = spawn_tcp(actors, pairs, dir, Duration::from_micros(50)).unwrap();
    // Let the flood start, then tear down mid-traffic with timers armed.
    std::thread::sleep(Duration::from_millis(100));
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        cluster.shutdown();
        let _ = done_tx.send(());
    });
    done_rx
        .recv_timeout(Duration::from_secs(20))
        .expect("TCP cluster shutdown deadlocked");
}

/// The generalized configuration also runs over TCP (exercises 8 listeners
/// and 56 authenticated connections).
#[test]
fn generalized_config_decides_over_loopback() {
    let cfg = Config::new(8, 2, 1).unwrap();
    let (actors, pairs, dir) = replicas(cfg, 5, 53);
    let (cluster, _addrs) = spawn_tcp(actors, pairs, dir, Duration::from_micros(50)).unwrap();
    let decisions = cluster.await_decisions(8, Duration::from_secs(30));
    cluster.shutdown();
    assert_eq!(decisions.len(), 8);
    for d in &decisions {
        assert_eq!(d.value, Value::from_u64(5));
    }
}

/// `SimMessage::wire_size` (used by the message-complexity experiment)
/// agrees with what the transport actually puts in a frame payload.
#[test]
fn frame_payload_matches_wire_size() {
    let msg = Message::Wish(fastbft_core::message::WishMsg {
        view: fastbft_types::View(1),
    });
    assert_eq!(to_bytes(&msg).len(), msg.wire_size());
}
