//! The send pipeline's two load-bearing invariants, asserted directly:
//!
//! 1. **Encode-once broadcast** — a broadcast of one protocol message
//!    encodes the payload exactly once regardless of cluster size
//!    (instrumented encoder), sharing the bytes across every peer queue.
//! 2. **Non-blocking sends** — no `send`/`broadcast` on the TCP transport
//!    ever blocks on connect, redial or handshake: the event-loop thread
//!    does no socket work. A blackholed peer costs its own writer thread,
//!    a bounded queue, and counted drops — never the actor's time.

use std::net::TcpListener;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use fastbft_crypto::KeyDirectory;
use fastbft_net::{TcpOptions, TcpTransport};
use fastbft_runtime::{Polled, Transport};
use fastbft_sim::SimMessage;
use fastbft_types::wire::{Decode, Encode, WireError, WireReader};
use fastbft_types::ProcessId;

/// How many times any [`Probe`] was encoded, across the test process.
static ENCODES: AtomicUsize = AtomicUsize::new(0);

/// The test harness runs `#[test]`s of one binary in parallel, and every
/// test here sends `Probe`s — serialize them so the ENCODES deltas the
/// encode-once assertions read cannot be inflated by a concurrent test.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// A probe message whose encoder counts invocations.
#[derive(Clone, Debug, PartialEq)]
struct Probe(u64);

impl SimMessage for Probe {
    fn kind(&self) -> &'static str {
        "probe"
    }
    fn wire_size(&self) -> usize {
        8
    }
}

impl Encode for Probe {
    fn encode(&self, buf: &mut Vec<u8>) {
        ENCODES.fetch_add(1, Ordering::SeqCst);
        self.0.encode(buf);
    }
}

impl Decode for Probe {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Probe(u64::decode(r)?))
    }
}

/// Fast-failure options so the teardown of deliberately-hostile topologies
/// stays quick.
fn fast_opts() -> TcpOptions {
    TcpOptions {
        handshake_timeout: Duration::from_millis(200),
        connect_retries: 2,
        connect_backoff: Duration::from_millis(10),
        connect_timeout: Duration::from_millis(200),
        redial_cooldown: Duration::from_millis(50),
        ..TcpOptions::default()
    }
}

/// One transport for process `p1` in an `n`-process cluster whose other
/// listeners exist but are never served (bound, never accepted from).
fn lone_transport(n: usize) -> (TcpTransport<Probe>, Vec<TcpListener>) {
    let (pairs, dir) = KeyDirectory::generate(n, 71);
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind(("127.0.0.1", 0)).unwrap())
        .collect();
    let addrs = listeners.iter().map(|l| l.local_addr().unwrap()).collect();
    let mine = listeners[0].try_clone().unwrap();
    let (transport, _control) =
        TcpTransport::start(pairs[0].clone(), dir, mine, addrs, fast_opts()).unwrap();
    (transport, listeners)
}

#[test]
fn broadcast_encodes_the_payload_exactly_once_regardless_of_n() {
    let _serial = serial();
    for n in [4usize, 7] {
        let (mut transport, _listeners) = lone_transport(n);
        let before = ENCODES.load(Ordering::SeqCst);
        transport.broadcast(Probe(99));
        let encodes = ENCODES.load(Ordering::SeqCst) - before;
        assert_eq!(
            encodes, 1,
            "broadcast to n = {n} must encode once, encoded {encodes} times"
        );
        // The self-copy is delivered without any socket or re-encode.
        match transport.recv(Some(Duration::from_secs(2))) {
            Polled::Delivered(from, Probe(99)) => assert_eq!(from, ProcessId(1)),
            other => panic!("self-delivery missing: {other:?}"),
        }
    }
}

#[test]
fn point_to_point_send_also_encodes_exactly_once() {
    let _serial = serial();
    let (mut transport, _listeners) = lone_transport(4);
    let before = ENCODES.load(Ordering::SeqCst);
    transport.send(ProcessId(3), Probe(5));
    assert_eq!(ENCODES.load(Ordering::SeqCst) - before, 1);
}

#[test]
fn sends_to_unreachable_and_blackholed_peers_never_block() {
    let _serial = serial();
    // Peer 2's address refuses connections (listener bound then dropped),
    // peer 3's accepts but never handshakes (blackhole), peer 4's is a
    // live-but-unserved listener. Every failure mode lives on the writer
    // threads; `send` must return in microseconds throughout.
    let (mut transport, listeners) = lone_transport(4);
    let stats = transport.stats();
    drop(listeners); // now even the TCP accepts stop
    let start = Instant::now();
    const SENDS: u32 = 300;
    for i in 0..SENDS {
        transport.send(ProcessId(2), Probe(u64::from(i)));
        transport.send(ProcessId(3), Probe(u64::from(i)));
        transport.broadcast(Probe(u64::from(i)));
    }
    let elapsed = start.elapsed();
    // 1200 sends against dead peers: the old write-on-event-loop design
    // stalled up to connect_timeout × retries per send; the pipeline only
    // pays an enqueue. Generous bound for slow shared-core runners.
    assert!(
        elapsed < Duration::from_millis(500),
        "sends must not block on dead peers: {SENDS} rounds took {elapsed:?}"
    );
    // The writers eventually give up and count the drops.
    let deadline = Instant::now() + Duration::from_secs(10);
    while stats.total_dropped() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        stats.total_dropped() > 0,
        "undeliverable frames must be counted as dropped"
    );
}

#[test]
fn full_queue_drops_are_counted_not_blocking() {
    let _serial = serial();
    let (pairs, dir) = KeyDirectory::generate(2, 72);
    let listeners: Vec<TcpListener> = (0..2)
        .map(|_| TcpListener::bind(("127.0.0.1", 0)).unwrap())
        .collect();
    let addrs = listeners.iter().map(|l| l.local_addr().unwrap()).collect();
    let mine = listeners[0].try_clone().unwrap();
    let opts = TcpOptions {
        // Tiny queue so the bound is hit deterministically while the
        // writer is stuck courting the blackholed peer.
        outbound_queue_frames: 4,
        handshake_timeout: Duration::from_secs(2),
        connect_timeout: Duration::from_secs(2),
        ..fast_opts()
    };
    let (mut transport, _control) =
        TcpTransport::<Probe>::start(pairs[0].clone(), dir, mine, addrs, opts).unwrap();
    let stats = transport.stats();
    // Peer 2 accepts (kernel backlog) but never handshakes: the writer
    // blocks in its handshake read, the queue fills, and every further
    // send drops instantly.
    for i in 0..200u64 {
        transport.send(ProcessId(2), Probe(i));
    }
    assert!(
        stats.dropped_to(ProcessId(2)) >= 150,
        "full bounded queue must shed load: only {} drops",
        stats.dropped_to(ProcessId(2))
    );
    // Nothing was dropped toward self (self-delivery bypasses queues).
    assert_eq!(stats.dropped_to(ProcessId(1)), 0);
}
