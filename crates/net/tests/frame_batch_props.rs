//! Property tests for frame coalescing: `k` messages packed by the writer
//! path (batch payload → one MAC → one appended frame, frames concatenated
//! into one write buffer) must read back as exactly the same `k` messages,
//! across frame boundaries and mixed batch sizes.

use std::io::Cursor;

use fastbft_crypto::session::{SessionMac, SessionVerifier};
use fastbft_crypto::KeyDirectory;
use fastbft_net::frame::{
    append_frame, decode_batch_payload, encode_batch_payload, read_msg, Frame,
};
use fastbft_types::wire::to_bytes;
use fastbft_types::{ProcessId, Value};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// encode → decode of a batch payload is the identity, through a dirty
    /// reused scratch buffer.
    #[test]
    fn batch_payload_roundtrips(
        msgs in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..128), 0..32),
        garbage in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let values: Vec<Value> = msgs.iter().map(|m| Value::new(m.clone())).collect();
        let encoded: Vec<Vec<u8>> = values.iter().map(to_bytes).collect();
        let mut payload = garbage; // reused scratch starts dirty
        encode_batch_payload(&mut payload, &encoded);
        let back: Vec<Value> = decode_batch_payload(&payload).unwrap();
        prop_assert_eq!(back, values);
    }

    /// The full writer-drain shape: several frames (each carrying a batch,
    /// each MAC'd once) appended into ONE write buffer; the reader side
    /// (frame reader + session verifier + batch decoder) recovers exactly
    /// the original message sequence, in order.
    #[test]
    fn coalesced_frames_decode_to_the_same_messages(
        batches in proptest::collection::vec(
            proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..64), 1..8),
            1..8),
    ) {
        let (pairs, dir) = KeyDirectory::generate(2, 5);
        let mut mac = SessionMac::new(pairs[0].clone(), 77);
        let mut verifier = SessionVerifier::new(dir, pairs[0].id(), 77);

        let all_values: Vec<Value> = batches
            .iter()
            .flatten()
            .map(|m| Value::new(m.clone()))
            .collect();

        // Writer side: one buffer, one frame per batch, one MAC per frame.
        let mut wire = Vec::new();
        let mut payload = Vec::new();
        for batch in &batches {
            let encoded: Vec<Vec<u8>> = batch.iter().map(|m| to_bytes(&Value::new(m.clone()))).collect();
            encode_batch_payload(&mut payload, &encoded);
            let (seq, tag) = mac.tag_next(&payload);
            append_frame(&mut wire, ProcessId(1), seq, &payload, &tag).unwrap();
        }

        // Reader side: sequential frames off one stream.
        let mut r = Cursor::new(wire);
        let mut recovered: Vec<Value> = Vec::new();
        while let Some(frame) = read_msg::<Frame>(&mut r).unwrap() {
            prop_assert_eq!(frame.sender, ProcessId(1));
            verifier.verify(frame.seq, &frame.payload, &frame.mac).unwrap();
            recovered.extend(decode_batch_payload::<Value>(&frame.payload).unwrap());
        }
        prop_assert_eq!(recovered, all_values);
    }

    /// Tampering with any byte of the coalesced buffer kills the MAC (or
    /// the framing) — never yields a different accepted message.
    #[test]
    fn tampered_coalesced_frames_never_verify(
        msgs in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..32), 1..4),
        flip_pos in any::<u64>(),
        flip_xor in any::<u8>(),
    ) {
        let (pairs, dir) = KeyDirectory::generate(2, 6);
        let mut mac = SessionMac::new(pairs[0].clone(), 9);
        let encoded: Vec<Vec<u8>> = msgs.iter().map(|m| to_bytes(&Value::new(m.clone()))).collect();
        let mut payload = Vec::new();
        encode_batch_payload(&mut payload, &encoded);
        let (seq, tag) = mac.tag_next(&payload);
        let mut wire = Vec::new();
        append_frame(&mut wire, ProcessId(1), seq, &payload, &tag).unwrap();

        let pos = (flip_pos as usize) % wire.len();
        let xor = if flip_xor == 0 { 1 } else { flip_xor };
        wire[pos] ^= xor;

        let mut verifier = SessionVerifier::new(dir, pairs[0].id(), 9);
        let mut r = Cursor::new(wire);
        // Either the frame no longer parses, or the MAC/sender check fails;
        // under no flip does a *different* payload get accepted.
        if let Ok(Some(frame)) = read_msg::<Frame>(&mut r) {
            if frame.sender == ProcessId(1)
                && verifier.verify(frame.seq, &frame.payload, &frame.mac).is_ok()
            {
                prop_assert_eq!(&frame.payload, &payload, "accepted frame must be the original");
            }
        }
    }
}
