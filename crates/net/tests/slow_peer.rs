//! Hostile-peer isolation: a blackholed replica (its listener accepts TCP
//! connections at the kernel but its process never handshakes or reads)
//! must cost the three correct replicas **nothing** but one writer thread
//! each and some counted frame drops — their decision throughput must not
//! collapse. Before the per-peer send pipeline, every send to the
//! blackholed peer stalled the sender's event loop for up to
//! `connect/handshake` timeouts, freezing timers and multiplying the run
//! time by orders of magnitude.

use std::net::TcpListener;
use std::time::{Duration, Instant};

use fastbft_core::replica::ReplicaOptions;
use fastbft_crypto::KeyDirectory;
use fastbft_net::{TcpOptions, TcpTransport};
use fastbft_runtime::chaos::Scenario;
use fastbft_runtime::{spawn_with, NodeSeat};
use fastbft_sim::{Actor, SimDuration};
use fastbft_smr::runtime::{smr_actors, SmrClusterHandle};
use fastbft_smr::{CountingMachine, SlotMessage};
use fastbft_types::{Config, ProcessId, Value};

const COMMANDS: u64 = 64;
const TICK: Duration = Duration::from_micros(50);
/// The repo-wide default view-1 timeout, in ticks (8·Δ) — the no-fault
/// floor the scenario derivation starts from.
const FLOOR_TICKS: u64 = 800;

/// The fault under test, as a chaos scenario: p4 is dead to the network.
/// The blackhole is staged at the kernel level below (no `FaultPlan`
/// shaping), but the view-1 timeout and the time budget are *derived*
/// from the scenario — the same way every plan-shaped chaos test derives
/// them — instead of being hand-tuned constants.
fn blackhole_scenario() -> Scenario {
    Scenario::unreachable_peer(ProcessId(4))
}

fn hostile_opts() -> TcpOptions {
    TcpOptions {
        handshake_timeout: Duration::from_millis(300),
        connect_retries: 2,
        connect_backoff: Duration::from_millis(10),
        connect_timeout: Duration::from_millis(300),
        redial_cooldown: Duration::from_millis(100),
        // The queue bound stays at its (ample) default: correct links must
        // never shed load — the model makes them reliable. Frames toward
        // the blackholed peer drop via the unreachable/cooldown path and
        // the count proves it; the full-queue drop path is pinned by
        // `send_pipeline.rs`.
        ..TcpOptions::default()
    }
}

fn smr_opts() -> ReplicaOptions {
    // The blackholed replica *leads* every fourth slot, so those slots
    // must recover via the view synchronizer. The blackhole adds no
    // latency to the live links (`timeout_covers` is zero), so the
    // derived timeout is exactly the no-fault floor — brisk recovery.
    ReplicaOptions {
        base_timeout: SimDuration(blackhole_scenario().base_timeout_ticks(TICK, FLOOR_TICKS)),
        ..ReplicaOptions::default()
    }
}

fn actors(cfg: Config, seed: u64) -> (Vec<Box<dyn Actor<SlotMessage> + Send>>, KeyState) {
    let (pairs, dir) = KeyDirectory::generate(cfg.n(), seed);
    let idle = Value::from_u64(u64::MAX);
    let queue: Vec<Value> = (0..COMMANDS).map(Value::from_u64).collect();
    let actors = smr_actors(
        cfg,
        &pairs,
        &dir,
        CountingMachine::new(),
        vec![queue; cfg.n()],
        idle.clone(),
        smr_opts(),
        1,
    );
    (actors, KeyState { pairs, dir, idle })
}

struct KeyState {
    pairs: Vec<fastbft_crypto::KeyPair>,
    dir: KeyDirectory,
    idle: Value,
}

/// Wall-clock seconds for the three correct replicas (p1–p3) to commit and
/// apply all commands. When `blackhole` is set, p4's listener is bound but
/// its transport, actor and handlers never exist.
fn run(seed: u64, blackhole: bool) -> (f64, u64) {
    let cfg = Config::new(4, 1, 1).unwrap();
    let (mut all_actors, keys) = actors(cfg, seed);
    let live = if blackhole {
        all_actors.truncate(3);
        3
    } else {
        4
    };

    let listeners: Vec<TcpListener> = (0..4)
        .map(|_| TcpListener::bind(("127.0.0.1", 0)).unwrap())
        .collect();
    let addrs: Vec<_> = listeners.iter().map(|l| l.local_addr().unwrap()).collect();

    let mut seats: Vec<NodeSeat<SlotMessage, TcpTransport<SlotMessage>>> = Vec::new();
    let mut stats = Vec::new();
    for (i, actor) in all_actors.into_iter().enumerate() {
        let (transport, control) = TcpTransport::start(
            keys.pairs[i].clone(),
            keys.dir.clone(),
            listeners[i].try_clone().unwrap(),
            addrs.clone(),
            hostile_opts(),
        )
        .unwrap();
        stats.push(transport.stats());
        seats.push(NodeSeat {
            actor,
            transport,
            control,
            verify: None,
        });
    }
    // In the blackhole run, listeners[3] stays bound (SYNs are accepted by
    // the kernel backlog) but is never served — the worst non-crash shape:
    // dials "succeed", then handshakes hang until timeout.

    let inner = spawn_with(seats, TICK);
    let mut cluster = SmrClusterHandle::new(inner, live, keys.idle.clone());
    let start = Instant::now();
    let correct = (0..3).map(ProcessId::from_index);
    let ok = cluster.await_commands(correct, COMMANDS, Duration::from_secs(60));
    let elapsed = start.elapsed().as_secs_f64();
    assert!(
        ok,
        "correct replicas must keep committing (blackhole: {blackhole})"
    );
    assert!(cluster.logs_agree(), "log divergence");
    cluster.shutdown();
    let dropped = stats.iter().map(|s| s.dropped_to(ProcessId(4))).sum();
    (elapsed, dropped)
}

#[test]
fn blackholed_replica_does_not_reduce_correct_replicas_throughput() {
    // Warm run first (page cache, allocator, loopback state), and sanity:
    // the healthy cluster must be quick.
    let (healthy, _) = run(41, false);
    // Budget for the hostile run: the protocol must view-change past the
    // blackholed replica's ~16 dead-leader slots (one derived timeout
    // each, overlapping under the 16-deep pipeline) — the scenario's
    // recovery window bounds that comfortably. The *failure mode this
    // guards against* is categorically slower: when sends dialed and
    // handshook on the event-loop thread, every send toward the
    // blackhole froze the sender's timers for up to 600 ms, so
    // dead-leader slots could not even time out promptly and the run
    // took minutes.
    let scenario = blackhole_scenario();
    let base = TICK * u32::try_from(scenario.base_timeout_ticks(TICK, FLOOR_TICKS)).unwrap();
    let budget = scenario.recovery_window(base).as_secs_f64();
    let (blackholed, dropped) = run(42, true);
    assert!(
        blackholed < budget,
        "blackholed peer must not stall the cluster: healthy {healthy:.3}s, \
         blackholed {blackholed:.3}s, budget {budget:.1}s"
    );
    // The bounded queues shed load toward the blackhole, and counted it.
    assert!(
        dropped > 0,
        "frames toward the blackholed replica must be dropped and counted"
    );
}
