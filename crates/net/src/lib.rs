//! Real TCP transport for `fastbft`: the paper's reliable authenticated
//! point-to-point links (§2.1) over actual sockets.
//!
//! The in-process runtime enforces "a process cannot spoof its identity" by
//! construction — the channel transport attaches the true sender id to
//! every delivery. Across a socket nothing is attached for free, so this
//! crate enforces the same invariant *cryptographically*:
//!
//! * every connection opens with a signed [`Hello`](frame::Hello) /
//!   [`HelloAck`](frame::HelloAck) handshake proving each side holds the
//!   key of the process it claims to be;
//! * every frame carries an HMAC-SHA256 session MAC
//!   ([`fastbft_crypto::session`]) binding sender key, session id, sequence
//!   number and payload, so frames cannot be spoofed, replayed or
//!   reordered;
//! * every declared length is capped
//!   ([`MAX_FRAME_LEN`](fastbft_types::wire::MAX_FRAME_LEN)) before any
//!   allocation, and any malformed, truncated or MAC-invalid frame drops
//!   the connection — never a panic, never an unauthenticated delivery.
//!
//! The transport plugs into `fastbft_runtime`'s [`Transport`] abstraction,
//! so the exact same event loop (timer heap, decision reporting, shutdown)
//! drives replicas over channels and over TCP. [`spawn_tcp`] builds the
//! loopback cluster used by the integration tests, the `tcp_cluster`
//! example and the `tcp_latency` benchmark:
//!
//! ```
//! use std::time::Duration;
//! use fastbft_core::{Message, Replica};
//! use fastbft_crypto::KeyDirectory;
//! use fastbft_net::spawn_tcp;
//! use fastbft_sim::Actor;
//! use fastbft_types::{Config, Value};
//!
//! let cfg = Config::new(4, 1, 1)?;
//! let (pairs, dir) = KeyDirectory::generate(4, 1);
//! let actors: Vec<Box<dyn Actor<Message> + Send>> = pairs
//!     .iter()
//!     .map(|keys| -> Box<dyn Actor<Message> + Send> {
//!         Box::new(Replica::new(cfg, keys.clone(), dir.clone(), Value::from_u64(7)))
//!     })
//!     .collect();
//! let (cluster, _addrs) = spawn_tcp(actors, pairs, dir, Duration::from_micros(50))?;
//! let decisions = cluster.await_decisions(4, Duration::from_secs(10));
//! assert_eq!(decisions.len(), 4);
//! cluster.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod frame;
mod tcp;

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::time::Duration;

use crossbeam::channel::Sender;
use fastbft_crypto::{KeyDirectory, KeyPair};
use fastbft_runtime::{
    spawn_with, split_groups, ClusterHandle, GroupMessage, GroupTransport, Inbound, NodeSeat,
    ShardPump, Transport,
};
use fastbft_sim::{Actor, SimMessage};
use fastbft_types::wire::{Decode, Encode};
use fastbft_types::Value;

pub use tcp::{TcpOptions, TcpSender, TcpStats, TcpTransport};

/// Spawns a thread-per-replica cluster whose replicas talk over loopback
/// TCP with authenticated frames — the socket-backed sibling of
/// [`fastbft_runtime::spawn`], with the same `tick` semantics and the same
/// [`ClusterHandle`].
///
/// Each replica gets an ephemeral `127.0.0.1` listener (bound before any
/// thread starts, so no startup races) and dials its peers lazily on first
/// send. `pairs[i]` must be the key pair of process `p_{i+1}`, matching
/// `actors[i]`. Also returns the per-replica listener addresses, so tests
/// and external (possibly Byzantine) drivers can reach the cluster.
///
/// # Errors
///
/// An [`io::Error`] if binding the loopback listeners fails.
///
/// # Panics
///
/// Panics if `pairs` does not line up with `actors` (wrong length or a key
/// pair whose process id is not `p_{i+1}`).
pub fn spawn_tcp<M: SimMessage + Encode + Decode>(
    actors: Vec<Box<dyn Actor<M> + Send>>,
    pairs: Vec<KeyPair>,
    dir: KeyDirectory,
    tick: Duration,
) -> io::Result<(ClusterHandle<M>, Vec<SocketAddr>)> {
    spawn_tcp_with(actors, pairs, dir, tick, TcpOptions::default())
}

/// [`spawn_tcp`] with explicit [`TcpOptions`].
///
/// # Errors
///
/// An [`io::Error`] if binding the loopback listeners fails.
///
/// # Panics
///
/// Panics if `pairs` does not line up with `actors`.
pub fn spawn_tcp_with<M: SimMessage + Encode + Decode>(
    actors: Vec<Box<dyn Actor<M> + Send>>,
    pairs: Vec<KeyPair>,
    dir: KeyDirectory,
    tick: Duration,
    opts: TcpOptions,
) -> io::Result<(ClusterHandle<M>, Vec<SocketAddr>)> {
    let (seats, addrs) = tcp_seats(actors, pairs, dir, opts)?;
    Ok((spawn_with(seats, tick), addrs))
}

/// Builds the loopback-TCP [`NodeSeat`]s for a cluster *without* spawning
/// it: one ephemeral `127.0.0.1` listener per replica (bound before
/// returning, so no startup races), transports dialing lazily on first
/// send. This is the building block behind [`spawn_tcp`] and the way to
/// run non-consensus actors — e.g. `fastbft_smr`'s slot-multiplexed SMR
/// nodes — over authenticated TCP: pass the seats to
/// [`fastbft_runtime::spawn_with`].
///
/// # Errors
///
/// An [`io::Error`] if binding the loopback listeners fails.
///
/// # Panics
///
/// Panics if `pairs` does not line up with `actors` (wrong length or a key
/// pair whose process id is not `p_{i+1}`).
#[allow(clippy::type_complexity)]
pub fn tcp_seats<M: SimMessage + Encode + Decode>(
    actors: Vec<Box<dyn Actor<M> + Send>>,
    pairs: Vec<KeyPair>,
    dir: KeyDirectory,
    opts: TcpOptions,
) -> io::Result<(Vec<NodeSeat<M, TcpTransport<M>>>, Vec<SocketAddr>)> {
    let n = actors.len();
    assert_eq!(pairs.len(), n, "one key pair per actor");
    for (i, pair) in pairs.iter().enumerate() {
        assert_eq!(
            pair.id().index(),
            i,
            "pairs[{i}] must belong to process p{}",
            i + 1
        );
    }

    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind(("127.0.0.1", 0)))
        .collect::<io::Result<_>>()?;
    let addrs: Vec<SocketAddr> = listeners
        .iter()
        .map(TcpListener::local_addr)
        .collect::<io::Result<_>>()?;

    let mut seats: Vec<NodeSeat<M, TcpTransport<M>>> = Vec::with_capacity(n);
    for ((actor, pair), listener) in actors.into_iter().zip(pairs).zip(listeners) {
        let (transport, control) =
            TcpTransport::start(pair, dir.clone(), listener, addrs.clone(), opts.clone())?;
        seats.push(NodeSeat {
            actor,
            transport,
            control,
            verify: None,
        });
    }
    Ok((seats, addrs))
}

/// [`tcp_seats`] with a metrics plane: seat `i`'s transport reports its
/// wire-level counters (frames/bytes in and out, MAC rejections,
/// reconnects, send drops, peak writer-queue depth) into
/// `registry.replica(i)` — the same per-replica sinks the actors should be
/// built with, so one scrape shows a replica's protocol and transport
/// counters side by side.
///
/// # Errors
///
/// An [`io::Error`] if binding the loopback listeners fails.
///
/// # Panics
///
/// Panics if `pairs` does not line up with `actors`, or if the registry
/// has fewer replicas than there are actors.
#[allow(clippy::type_complexity)]
pub fn tcp_seats_metered<M: SimMessage + Encode + Decode>(
    actors: Vec<Box<dyn Actor<M> + Send>>,
    pairs: Vec<KeyPair>,
    dir: KeyDirectory,
    opts: TcpOptions,
    registry: &fastbft_obs::MetricsRegistry,
) -> io::Result<(Vec<NodeSeat<M, TcpTransport<M>>>, Vec<SocketAddr>)> {
    let n = actors.len();
    assert_eq!(pairs.len(), n, "one key pair per actor");
    assert!(
        registry.len() >= n,
        "metrics registry must cover all {n} seats"
    );
    for (i, pair) in pairs.iter().enumerate() {
        assert_eq!(
            pair.id().index(),
            i,
            "pairs[{i}] must belong to process p{}",
            i + 1
        );
    }

    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind(("127.0.0.1", 0)))
        .collect::<io::Result<_>>()?;
    let addrs: Vec<SocketAddr> = listeners
        .iter()
        .map(TcpListener::local_addr)
        .collect::<io::Result<_>>()?;

    let mut seats: Vec<NodeSeat<M, TcpTransport<M>>> = Vec::with_capacity(n);
    for (i, ((actor, pair), listener)) in actors.into_iter().zip(pairs).zip(listeners).enumerate() {
        let (transport, control) = TcpTransport::start_metered(
            pair,
            dir.clone(),
            listener,
            addrs.clone(),
            opts.clone(),
            registry.replica(i),
        )?;
        seats.push(NodeSeat {
            actor,
            transport,
            control,
            verify: None,
        });
    }
    Ok((seats, addrs))
}

/// [`tcp_seats`] that also hands back a clone of each replica's bound
/// listener. Restart tests keep the clones: the file descriptor keeps the
/// port bound while a seat is down (peer redials queue in the accept
/// backlog — no rebind race, no address reuse window), and
/// [`tcp_reseat`] builds the replacement seat on it.
///
/// # Errors
///
/// An [`io::Error`] if binding or cloning the loopback listeners fails.
///
/// # Panics
///
/// Panics if `pairs` does not line up with `actors`.
#[allow(clippy::type_complexity)]
pub fn tcp_seats_retaining<M: SimMessage + Encode + Decode>(
    actors: Vec<Box<dyn Actor<M> + Send>>,
    pairs: Vec<KeyPair>,
    dir: KeyDirectory,
    opts: TcpOptions,
) -> io::Result<(
    Vec<NodeSeat<M, TcpTransport<M>>>,
    Vec<SocketAddr>,
    Vec<TcpListener>,
)> {
    let n = actors.len();
    assert_eq!(pairs.len(), n, "one key pair per actor");
    for (i, pair) in pairs.iter().enumerate() {
        assert_eq!(
            pair.id().index(),
            i,
            "pairs[{i}] must belong to process p{}",
            i + 1
        );
    }

    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind(("127.0.0.1", 0)))
        .collect::<io::Result<_>>()?;
    let addrs: Vec<SocketAddr> = listeners
        .iter()
        .map(TcpListener::local_addr)
        .collect::<io::Result<_>>()?;
    let retained: Vec<TcpListener> = listeners
        .iter()
        .map(TcpListener::try_clone)
        .collect::<io::Result<_>>()?;

    let mut seats: Vec<NodeSeat<M, TcpTransport<M>>> = Vec::with_capacity(n);
    for ((actor, pair), listener) in actors.into_iter().zip(pairs).zip(listeners) {
        let (transport, control) =
            TcpTransport::start(pair, dir.clone(), listener, addrs.clone(), opts.clone())?;
        seats.push(NodeSeat {
            actor,
            transport,
            control,
            verify: None,
        });
    }
    Ok((seats, addrs, retained))
}

/// Builds a replacement [`NodeSeat`] for a stopped replica on its retained
/// listener (see [`tcp_seats_retaining`]): fresh transport state — new
/// sessions, new sequence numbers — on the *same* port, so peers' redial
/// loops find the revived node without reconfiguration. Pass the result to
/// [`fastbft_runtime::ClusterHandle::restart_node`].
///
/// # Errors
///
/// An [`io::Error`] if cloning the retained listener fails.
pub fn tcp_reseat<M: SimMessage + Encode + Decode>(
    actor: Box<dyn Actor<M> + Send>,
    pair: KeyPair,
    dir: KeyDirectory,
    listener: &TcpListener,
    addrs: Vec<SocketAddr>,
    opts: TcpOptions,
) -> io::Result<NodeSeat<M, TcpTransport<M>>> {
    let (transport, control) = TcpTransport::start(pair, dir, listener.try_clone()?, addrs, opts)?;
    Ok(NodeSeat {
        actor,
        transport,
        control,
        verify: None,
    })
}

/// One node's slice of a sharded TCP mesh: its per-group transports (and
/// their control senders) plus the pump that routes the shared socket
/// mesh's inbound traffic to them (see
/// [`fastbft_runtime::shard`]).
pub type TcpGroupSeats<M> = Vec<(
    GroupTransport<M, TcpSender<GroupMessage<M>>>,
    Sender<Inbound<M>>,
)>;

/// Builds a sharded loopback-TCP mesh: one socket mesh (one listener and
/// one set of writer threads per node), multiplexing `groups` independent
/// consensus groups over group-tagged frames. For each node this returns
/// its per-group `(transport, control)` pairs — assemble group `g`'s
/// cluster by taking element `g` from every node and pairing it with that
/// group's actors in [`NodeSeat`]s. `router` maps a client command to the
/// group that must order it.
///
/// **Teardown order:** shut the group clusters down first, then drop the
/// returned [`ShardPump`]s — each pump owns its node's underlying
/// [`TcpTransport`], whose teardown waits for the groups' sender clones
/// to be gone.
///
/// # Errors
///
/// An [`io::Error`] if binding the loopback listeners fails.
///
/// # Panics
///
/// Panics if a key pair is out of place (`pairs[i]` must belong to
/// process `p_{i+1}`) or `groups == 0`.
#[allow(clippy::type_complexity)]
pub fn tcp_shard_mesh<M, R>(
    pairs: Vec<KeyPair>,
    dir: KeyDirectory,
    opts: TcpOptions,
    groups: usize,
    router: R,
) -> io::Result<(Vec<TcpGroupSeats<M>>, Vec<SocketAddr>, Vec<ShardPump>)>
where
    M: SimMessage + Encode + Decode,
    R: Fn(&Value) -> usize + Send + Clone + 'static,
{
    let n = pairs.len();
    assert!(groups > 0, "at least one group");
    for (i, pair) in pairs.iter().enumerate() {
        assert_eq!(
            pair.id().index(),
            i,
            "pairs[{i}] must belong to process p{}",
            i + 1
        );
    }

    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind(("127.0.0.1", 0)))
        .collect::<io::Result<_>>()?;
    let addrs: Vec<SocketAddr> = listeners
        .iter()
        .map(TcpListener::local_addr)
        .collect::<io::Result<_>>()?;

    let mut nodes = Vec::with_capacity(n);
    let mut pumps = Vec::with_capacity(n);
    for (pair, listener) in pairs.into_iter().zip(listeners) {
        let (transport, _control) = TcpTransport::<GroupMessage<M>>::start(
            pair,
            dir.clone(),
            listener,
            addrs.clone(),
            opts.clone(),
        )?;
        let sender = transport.sender();
        let (group_seats, pump) = split_groups(transport, sender, groups, router.clone());
        nodes.push(group_seats);
        pumps.push(pump);
    }
    Ok((nodes, addrs, pumps))
}

/// Compile-time proof that [`TcpTransport`] satisfies the runtime's
/// [`Transport`] abstraction for the protocol message type (referenced by
/// the workspace smoke test).
pub fn transport_is_pluggable<M: SimMessage + Encode + Decode>() {
    fn assert_transport<M: SimMessage, T: Transport<M>>() {}
    assert_transport::<M, TcpTransport<M>>();
}
