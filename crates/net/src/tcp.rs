//! The TCP transport: authenticated loopback/LAN links for the runtime.
//!
//! Topology: every node binds one listener and dials one *outbound*
//! connection per peer (used only for sending); the `n·(n−1)` resulting
//! streams are each one-directional after the handshake. Accepted
//! connections are served by a handler thread that performs the handshake,
//! then MAC-verifies and decodes frames into the node's inbound queue —
//! the same queue the [`ChannelTransport`](fastbft_runtime::ChannelTransport)
//! uses, so the runtime event loop is identical on both transports.
//!
//! # The send pipeline (hot path)
//!
//! The event-loop thread never touches a socket. [`Transport::send`] and
//! [`Transport::broadcast`] encode the payload **once** (into a shared,
//! reference-counted [`bytes::Bytes`] — a broadcast to `n−1` peers is one
//! encode and `n−1` reference bumps) and enqueue it on the destination's
//! **bounded** outbound queue. One writer thread per peer owns that peer's
//! socket, dialing, redialing and per-connection [`SessionMac`]: each drain
//! pops every queued frame at once, MACs and appends them into a single
//! reused buffer, and issues **one** `write_all` — one syscall per drain
//! instead of two per frame. A dead, slow or blackholed peer therefore
//! stalls only its own writer thread; when its queue fills, further frames
//! to it are dropped and counted ([`TcpStats`]), never blocking the actor.
//! The model permits the drops: only links between *correct* (live) peers
//! promise delivery.
//!
//! Failure handling: a frame that is truncated, oversized, malformed,
//! mis-sequenced or MAC-invalid causes the *connection* to be dropped —
//! never a panic, and never an unauthenticated delivery. A failed write
//! triggers one immediate redial (fresh session); if that also fails the
//! batch is dropped and the peer enters a redial cooldown.

use std::collections::HashMap;
use std::io::{self, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use fastbft_crypto::session::{derive_nonce, mix_session, SessionMac, SessionVerifier};
use fastbft_crypto::{KeyDirectory, KeyPair};
use fastbft_obs::MetricsHandle;
use fastbft_runtime::transport::{poll_queue, poll_queue_batch, Inbound, Polled, Transport};
use fastbft_sim::SimMessage;
use fastbft_types::wire::{encode_into, Decode, Encode, MAX_FRAME_LEN};
use fastbft_types::ProcessId;

use crate::frame::{
    append_frame, decode_batch_payload, decode_frame_borrowed, encode_batch_payload,
    read_frame_into, read_msg, write_msg, Hello, HelloAck, FRAME_OVERHEAD,
};

/// Tunables for the TCP transport.
#[derive(Clone, Debug)]
pub struct TcpOptions {
    /// How long each side of the handshake may take before the connection
    /// is abandoned (guards the handler threads against stalled or hostile
    /// dialers, and bounds how long a writer thread courts a peer that
    /// accepts but never answers).
    pub handshake_timeout: Duration,
    /// Dial attempts per (re)connect before giving up on a peer for the
    /// current drain. Listeners are bound before any replica thread starts,
    /// so retries only matter for mid-run reconnects, not startup.
    pub connect_retries: u32,
    /// Pause between dial attempts.
    pub connect_backoff: Duration,
    /// Per-attempt TCP connect timeout. Bounds how long a drain toward a
    /// blackholed peer (SYNs silently dropped) can stall *that peer's
    /// writer thread* — the event loop is never on this path.
    pub connect_timeout: Duration,
    /// After a (re)connect gives up, the minimum time frames to that peer
    /// are dropped immediately instead of redialing, so a dead peer costs
    /// one dial budget per cooldown rather than one per frame.
    pub redial_cooldown: Duration,
    /// Maximum concurrently-accepted inbound connections. Beyond this the
    /// accept loop drops new connections immediately, bounding the fd and
    /// thread cost a connect-and-hold peer can impose. A full mesh uses
    /// one inbound connection per peer, so anything ≳ `4·n` is generous.
    pub max_connections: usize,
    /// Capacity, in frames, of each peer's outbound queue. When a peer's
    /// queue is full (it is dead, slow, or blackholed), new frames to it
    /// are dropped and counted ([`TcpStats`]) instead of blocking the
    /// event loop.
    pub outbound_queue_frames: usize,
}

impl Default for TcpOptions {
    fn default() -> Self {
        TcpOptions {
            handshake_timeout: Duration::from_secs(5),
            connect_retries: 3,
            connect_backoff: Duration::from_millis(20),
            connect_timeout: Duration::from_secs(1),
            redial_cooldown: Duration::from_millis(250),
            max_connections: 256,
            outbound_queue_frames: 1024,
        }
    }
}

/// State shared between the transport, its listener thread, its handler
/// threads and its writer threads, used to tear everything down without
/// deadlock.
struct NetShared {
    shutdown: AtomicBool,
    /// Clones of live sockets (accepted inbound connections *and* dialed
    /// outbound streams), keyed by connection id; shut down on drop to
    /// unblock any thread parked in a socket read or write. Each owner
    /// removes its own entry when its connection ends, so dead connections
    /// don't leak fds.
    streams: Mutex<HashMap<u64, TcpStream>>,
    /// Handler threads (handshake + frame reading). Finished ones are
    /// reaped by the accept loop; the rest are joined on drop.
    handlers: Mutex<Vec<JoinHandle<()>>>,
    /// Source of ids for `streams` entries registered by writer threads
    /// (the accept loop numbers its own).
    next_stream_id: AtomicU64,
}

impl NetShared {
    fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn register_stream(&self, stream: &TcpStream) -> Option<u64> {
        let id = self.next_stream_id.fetch_add(1, Ordering::SeqCst);
        let clone = stream.try_clone().ok()?;
        self.streams.lock().expect("not poisoned").insert(id, clone);
        Some(id)
    }

    fn unregister_stream(&self, id: u64) {
        self.streams.lock().expect("not poisoned").remove(&id);
    }
}

/// One established outbound link to a peer, owned by its writer thread.
struct Outbound {
    stream: TcpStream,
    mac: SessionMac,
    /// Registry key of the stream clone held in [`NetShared::streams`].
    stream_id: Option<u64>,
}

/// Cumulative send-side counters (drops, wire frames, messages),
/// cloneable and readable while the cluster runs — grab it with
/// [`TcpTransport::stats`] *before* handing the transport to `spawn_with`.
#[derive(Clone)]
pub struct TcpStats {
    dropped: Vec<Arc<AtomicU64>>,
    frames: Arc<AtomicU64>,
    messages: Arc<AtomicU64>,
}

impl TcpStats {
    /// Messages dropped toward `peer` so far (always 0 for the node itself
    /// — self-delivery never touches a queue).
    pub fn dropped_to(&self, peer: ProcessId) -> u64 {
        self.dropped[peer.index()].load(Ordering::Relaxed)
    }

    /// Messages dropped toward all peers so far.
    pub fn total_dropped(&self) -> u64 {
        self.dropped.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Wire frames written so far, across all peers. One frame carries a
    /// whole writer drain, so `messages_sent / frames_sent` is the send
    /// pipeline's coalescing factor (≥ 1; ~5 under load on one core).
    pub fn frames_sent(&self) -> u64 {
        self.frames.load(Ordering::Relaxed)
    }

    /// Protocol messages successfully written so far, across all peers.
    pub fn messages_sent(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }
}

/// The send side of one peer: the bounded queue feeding its writer thread.
struct PeerHandle {
    tx: Sender<Bytes>,
    /// Frames currently queued (only the event-loop thread increments, so
    /// the bound check is exact).
    depth: Arc<AtomicUsize>,
    dropped: Arc<AtomicU64>,
    writer: JoinHandle<()>,
}

/// A clone of one peer's send side, held by a [`TcpSender`].
#[derive(Clone)]
struct PeerSend {
    tx: Sender<Bytes>,
    depth: Arc<AtomicUsize>,
    dropped: Arc<AtomicU64>,
}

/// The detachable, cloneable send half of a [`TcpTransport`] — what a
/// sharded deployment hands each consensus group so all groups on a
/// process send over the *same* mesh concurrently (it implements
/// `fastbft_runtime`'s [`RawSender`](fastbft_runtime::RawSender)).
///
/// Safe to use from several threads at once: frames are enqueued on the
/// peers' bounded queues exactly like [`Transport::send`], and the
/// per-peer writer thread assigns session sequence numbers at drain time,
/// so interleaved senders can never produce a sequence gap. With multiple
/// senders the queue-bound check becomes approximate (concurrent
/// increments may briefly overshoot by the number of senders) — the bound
/// still holds within that slack.
///
/// **Teardown order matters:** the writer threads exit when *every*
/// sender clone is gone. Drop all `TcpSender`s (and the transports built
/// on them) *before* dropping the originating [`TcpTransport`], or its
/// `Drop` will wait on writers that are still owed frames.
pub struct TcpSender<M> {
    id: ProcessId,
    n: usize,
    outbound_queue_frames: usize,
    peers: Vec<Option<PeerSend>>,
    inbound_tx: Sender<Inbound<M>>,
    /// Per-clone encode buffer (each clone starts fresh), preserving the
    /// encode-once broadcast without sharing mutable state.
    scratch: Vec<u8>,
    metrics: MetricsHandle,
}

impl<M> Clone for TcpSender<M> {
    fn clone(&self) -> Self {
        TcpSender {
            id: self.id,
            n: self.n,
            outbound_queue_frames: self.outbound_queue_frames,
            peers: self.peers.clone(),
            inbound_tx: self.inbound_tx.clone(),
            scratch: Vec::new(),
            metrics: self.metrics.clone(),
        }
    }
}

impl<M: SimMessage + Encode> TcpSender<M> {
    /// Sends `msg` to `to` ([`Transport::send`] semantics: self-delivery
    /// bypasses the sockets, full queues drop and count).
    pub fn send(&mut self, to: ProcessId, msg: M) {
        if to == self.id {
            let _ = self.inbound_tx.send(Inbound::Peer(self.id, msg));
            return;
        }
        encode_into(&msg, &mut self.scratch);
        let payload = Bytes::copy_from_slice(&self.scratch);
        self.enqueue(to.index(), payload);
    }

    /// Broadcasts `msg` to every process including this one
    /// ([`Transport::broadcast`] semantics — one encode, `n−1` reference
    /// bumps).
    pub fn broadcast(&mut self, msg: M) {
        encode_into(&msg, &mut self.scratch);
        let payload = Bytes::copy_from_slice(&self.scratch);
        for peer in 0..self.n {
            if peer != self.id.index() {
                self.enqueue(peer, payload.clone());
            }
        }
        let _ = self.inbound_tx.send(Inbound::Peer(self.id, msg));
    }

    /// Number of processes in the mesh.
    pub fn mesh_size(&self) -> usize {
        self.n
    }

    fn enqueue(&self, peer: usize, payload: Bytes) {
        let Some(handle) = self.peers[peer].as_ref() else {
            return;
        };
        if payload.len() + FRAME_OVERHEAD + 8 > MAX_FRAME_LEN
            || handle.depth.load(Ordering::Relaxed) >= self.outbound_queue_frames
        {
            handle.dropped.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = self.metrics.get() {
                m.send_drop_total.inc();
            }
            return;
        }
        let depth = handle.depth.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(m) = self.metrics.get() {
            m.writer_queue_depth_peak.set_max(depth as u64);
        }
        if handle.tx.send(payload).is_err() {
            handle.depth.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

impl<M: SimMessage + Encode> fastbft_runtime::RawSender<M> for TcpSender<M> {
    fn send_raw(&mut self, to: ProcessId, msg: M) {
        self.send(to, msg);
    }
    fn broadcast_raw(&mut self, msg: M) {
        self.broadcast(msg);
    }
    fn mesh_size(&self) -> usize {
        TcpSender::mesh_size(self)
    }
}

impl<M> std::fmt::Debug for TcpSender<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpSender")
            .field("id", &self.id)
            .field("n", &self.n)
            .finish()
    }
}

/// Everything a writer thread needs to own its peer's link.
struct WriterSeat {
    me: ProcessId,
    peer: ProcessId,
    addr: SocketAddr,
    pair: KeyPair,
    dir: KeyDirectory,
    opts: TcpOptions,
    session_counter: Arc<AtomicU64>,
    shared: Arc<NetShared>,
    depth: Arc<AtomicUsize>,
    dropped: Arc<AtomicU64>,
    frames: Arc<AtomicU64>,
    messages: Arc<AtomicU64>,
    /// Peer links of this node currently down (dial failed, cooling
    /// down) — shared across the node's writer threads so the
    /// `peer_links_down` gauge reflects the whole node.
    links_down: Arc<AtomicU64>,
    metrics: MetricsHandle,
}

/// [`Transport`] implementation over real TCP sockets with authenticated
/// frames. Build a full cluster with [`spawn_tcp`](crate::spawn_tcp), or
/// one node's transport with [`TcpTransport::start`] for custom topologies
/// (separate processes, real machines).
pub struct TcpTransport<M> {
    id: ProcessId,
    n: usize,
    opts: TcpOptions,
    /// Send queues, indexed by peer; `None` at this node's own index.
    peers: Vec<Option<PeerHandle>>,
    dropped: Vec<Arc<AtomicU64>>,
    frames: Arc<AtomicU64>,
    messages: Arc<AtomicU64>,
    /// Reused encode buffer: one payload encode per send/broadcast, zero
    /// steady-state allocations besides the shared `Bytes` itself.
    scratch: Vec<u8>,
    inbound_tx: Sender<Inbound<M>>,
    inbound_rx: Receiver<Inbound<M>>,
    listener_addr: SocketAddr,
    listener: Option<JoinHandle<()>>,
    shared: Arc<NetShared>,
    metrics: MetricsHandle,
}

impl<M: SimMessage + Encode + Decode> TcpTransport<M> {
    /// Starts one node's transport: takes ownership of its bound
    /// `listener`, spawns the accept loop and the per-peer writer threads,
    /// and returns the transport together with the control sender that
    /// feeds its inbound queue (for [`fastbft_runtime::NodeSeat::control`]).
    ///
    /// `addrs[i]` must be the listener address of process `p_{i+1}`; `pair`
    /// is this node's key, `dir` the cluster directory used to authenticate
    /// peers.
    ///
    /// # Errors
    ///
    /// An [`io::Error`] if the listener's local address cannot be read.
    pub fn start(
        pair: KeyPair,
        dir: KeyDirectory,
        listener: TcpListener,
        addrs: Vec<SocketAddr>,
        opts: TcpOptions,
    ) -> io::Result<(Self, Sender<Inbound<M>>)> {
        Self::start_metered(pair, dir, listener, addrs, opts, MetricsHandle::none())
    }

    /// [`start`](TcpTransport::start) with a metrics sink: the transport
    /// reports wire-level counters (frames/bytes in and out, MAC
    /// rejections, reconnects, send drops, peak writer-queue depth) into
    /// `metrics` — typically one replica's slice of a
    /// [`fastbft_obs::MetricsRegistry`]. A disabled handle
    /// ([`MetricsHandle::none`]) makes this identical to `start`.
    ///
    /// # Errors
    ///
    /// An [`io::Error`] if the listener's local address cannot be read.
    pub fn start_metered(
        pair: KeyPair,
        dir: KeyDirectory,
        listener: TcpListener,
        addrs: Vec<SocketAddr>,
        opts: TcpOptions,
        metrics: MetricsHandle,
    ) -> io::Result<(Self, Sender<Inbound<M>>)> {
        let listener_addr = listener.local_addr()?;
        let (inbound_tx, inbound_rx) = unbounded();
        let shared = Arc::new(NetShared {
            shutdown: AtomicBool::new(false),
            streams: Mutex::new(HashMap::new()),
            handlers: Mutex::new(Vec::new()),
            // Writer-registered streams get ids disjoint from the accept
            // loop's (which counts up from 1).
            next_stream_id: AtomicU64::new(1 << 32),
        });

        let accept_shared = Arc::clone(&shared);
        let accept_tx = inbound_tx.clone();
        let accept_pair = pair.clone();
        let accept_dir = dir.clone();
        let accept_metrics = metrics.clone();
        let my_id = pair.id();
        let handshake_timeout = opts.handshake_timeout;
        let max_connections = opts.max_connections;
        let listener_thread = std::thread::spawn(move || {
            accept_loop(
                listener,
                accept_pair,
                accept_dir,
                my_id,
                accept_tx,
                accept_shared,
                handshake_timeout,
                max_connections,
                accept_metrics,
            );
        });

        // One writer thread per peer: session ids stay unique per
        // (process, connection) via the shared counter.
        let session_counter = Arc::new(AtomicU64::new(0));
        let frames = Arc::new(AtomicU64::new(0));
        let messages = Arc::new(AtomicU64::new(0));
        let links_down = Arc::new(AtomicU64::new(0));
        let n = addrs.len();
        let mut peers: Vec<Option<PeerHandle>> = Vec::with_capacity(n);
        let mut dropped: Vec<Arc<AtomicU64>> = Vec::with_capacity(n);
        for (i, addr) in addrs.iter().enumerate() {
            let counter = Arc::new(AtomicU64::new(0));
            dropped.push(Arc::clone(&counter));
            if i == my_id.index() {
                peers.push(None);
                continue;
            }
            let depth = Arc::new(AtomicUsize::new(0));
            let (tx, rx) = unbounded();
            let seat = WriterSeat {
                me: my_id,
                peer: ProcessId::from_index(i),
                addr: *addr,
                pair: pair.clone(),
                dir: dir.clone(),
                opts: opts.clone(),
                session_counter: Arc::clone(&session_counter),
                shared: Arc::clone(&shared),
                depth: Arc::clone(&depth),
                dropped: counter,
                frames: Arc::clone(&frames),
                messages: Arc::clone(&messages),
                links_down: Arc::clone(&links_down),
                metrics: metrics.clone(),
            };
            let writer = std::thread::spawn(move || peer_writer(seat, rx));
            peers.push(Some(PeerHandle {
                tx,
                depth,
                dropped: Arc::clone(&dropped[i]),
                writer,
            }));
        }

        let control = inbound_tx.clone();
        Ok((
            TcpTransport {
                id: my_id,
                n,
                opts,
                peers,
                dropped,
                frames,
                messages,
                scratch: Vec::new(),
                inbound_tx,
                inbound_rx,
                listener_addr,
                listener: Some(listener_thread),
                shared,
                metrics,
            },
            control,
        ))
    }

    /// The address this node's listener is bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.listener_addr
    }

    /// Detaches a cloneable send half (see [`TcpSender`] — including its
    /// teardown-order contract). The transport keeps working unchanged;
    /// the sender feeds the same writer queues and inbound queue.
    pub fn sender(&self) -> TcpSender<M> {
        TcpSender {
            id: self.id,
            n: self.n,
            outbound_queue_frames: self.opts.outbound_queue_frames,
            peers: self
                .peers
                .iter()
                .map(|p| {
                    p.as_ref().map(|h| PeerSend {
                        tx: h.tx.clone(),
                        depth: Arc::clone(&h.depth),
                        dropped: Arc::clone(&h.dropped),
                    })
                })
                .collect(),
            inbound_tx: self.inbound_tx.clone(),
            scratch: Vec::new(),
            metrics: self.metrics.clone(),
        }
    }

    /// Handle to this node's send-side drop counters; clone it out before
    /// spawning the cluster to observe slow-peer drops while it runs.
    pub fn stats(&self) -> TcpStats {
        TcpStats {
            dropped: self.dropped.clone(),
            frames: Arc::clone(&self.frames),
            messages: Arc::clone(&self.messages),
        }
    }

    /// Enqueues one encoded payload toward `peer` without ever blocking:
    /// full queue (or oversized payload) ⇒ drop and count.
    fn enqueue(&self, peer: usize, payload: Bytes) {
        let Some(handle) = self.peers[peer].as_ref() else {
            return;
        };
        if payload.len() + FRAME_OVERHEAD + 8 > MAX_FRAME_LEN
            || handle.depth.load(Ordering::Relaxed) >= self.opts.outbound_queue_frames
        {
            handle.dropped.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = self.metrics.get() {
                m.send_drop_total.inc();
            }
            return;
        }
        let depth = handle.depth.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(m) = self.metrics.get() {
            m.writer_queue_depth_peak.set_max(depth as u64);
        }
        if handle.tx.send(payload).is_err() {
            handle.depth.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

impl<M: SimMessage + Encode + Decode> Transport<M> for TcpTransport<M> {
    fn send(&mut self, to: ProcessId, msg: M) {
        if to == self.id {
            // Self-delivery never touches a socket.
            let _ = self.inbound_tx.send(Inbound::Peer(self.id, msg));
            return;
        }
        encode_into(&msg, &mut self.scratch);
        let payload = Bytes::copy_from_slice(&self.scratch);
        self.enqueue(to.index(), payload);
    }

    fn cluster_size(&self) -> usize {
        self.n
    }

    fn broadcast(&mut self, msg: M) {
        // Encode-once: one canonical encoding shared (by reference count)
        // across every peer's queue. The per-connection session MACs are
        // computed over these same shared bytes by the writer threads.
        encode_into(&msg, &mut self.scratch);
        let payload = Bytes::copy_from_slice(&self.scratch);
        for peer in 0..self.n {
            if peer != self.id.index() {
                self.enqueue(peer, payload.clone());
            }
        }
        let _ = self.inbound_tx.send(Inbound::Peer(self.id, msg));
    }

    fn recv(&mut self, timeout: Option<Duration>) -> Polled<M> {
        poll_queue(&self.inbound_rx, timeout)
    }

    fn recv_batch(&mut self, max: usize, timeout: Option<Duration>) -> Vec<Polled<M>> {
        poll_queue_batch(&self.inbound_rx, max, timeout)
    }
}

impl<M> Drop for TcpTransport<M> {
    /// Tears the node's networking down without deadlock: flag shutdown,
    /// unblock every socket-parked thread by shutting its stream, close the
    /// writer queues, wake the accept loop with a throwaway connection,
    /// then join all threads. Frames still queued toward peers are dropped
    /// — the whole cluster is stopping, and the model only promises
    /// delivery between correct (live) processes.
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for conn in self.shared.streams.lock().expect("not poisoned").values() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        // Closing the queues lets each writer finish its current drain and
        // exit; a writer parked mid-dial observes the shutdown flag between
        // attempts (its connect itself is bounded by `connect_timeout`).
        let handles: Vec<PeerHandle> = self.peers.iter_mut().filter_map(Option::take).collect();
        let writers: Vec<JoinHandle<()>> = handles
            .into_iter()
            .map(|h| {
                drop(h.tx);
                h.writer
            })
            .collect();
        for w in writers {
            let _ = w.join();
        }
        // Wake the accept loop; it observes the flag and exits.
        let _ = TcpStream::connect(self.listener_addr);
        if let Some(listener) = self.listener.take() {
            let _ = listener.join();
        }
        // Second sweep: a connection accepted concurrently with the first
        // sweep registered its clone before its handler spawned, and the
        // listener is joined now, so this one is exhaustive — every handler
        // blocked on a socket gets unblocked before being joined.
        for conn in self.shared.streams.lock().expect("not poisoned").values() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let handlers: Vec<_> = self
            .shared
            .handlers
            .lock()
            .expect("not poisoned")
            .drain(..)
            .collect();
        for h in handlers {
            let _ = h.join();
        }
    }
}

/// The per-peer writer loop: drains the bounded queue in batches, owns the
/// socket and its per-connection [`SessionMac`], and coalesces every drain
/// into one buffer → one `write_all`. All dialing, redialing and cooldown
/// bookkeeping happens here — never on the event-loop thread.
fn peer_writer(seat: WriterSeat, rx: Receiver<Bytes>) {
    let mut link: Option<Outbound> = None;
    let mut dead_until: Option<Instant> = None;
    let mut ever_linked = false;
    let mut is_down = false;
    let mut batch: Vec<Bytes> = Vec::new();
    let mut payload: Vec<u8> = Vec::new();
    let mut wire: Vec<u8> = Vec::new();
    // The loop ends when the queue is closed *and* empty (`recv` errors):
    // the transport is shutting down.
    while let Ok(first) = rx.recv() {
        batch.clear();
        batch.push(first);
        while batch.len() < seat.opts.outbound_queue_frames {
            match rx.try_recv() {
                Some(payload) => batch.push(payload),
                None => break,
            }
        }
        seat.depth.fetch_sub(batch.len(), Ordering::Relaxed);
        if seat.shared.stopping() {
            break;
        }
        if let Some(deadline) = dead_until {
            if Instant::now() < deadline {
                // Cooling down after a failed (re)connect: drop the batch.
                seat.dropped
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                if let Some(m) = seat.metrics.get() {
                    m.send_drop_total.add(batch.len() as u64);
                    m.send_drop_unreachable_total.add(batch.len() as u64);
                }
                continue;
            }
            dead_until = None;
        }
        let had_link = link.is_some();
        if link.is_none() {
            link = dial(&seat).ok();
            if link.is_some() {
                // Redials only: the first link of the run is a connect,
                // not a reconnect.
                if ever_linked {
                    if let Some(m) = seat.metrics.get() {
                        m.reconnect_total.inc();
                    }
                }
                ever_linked = true;
                mark_link_up(&seat, &mut is_down);
            }
        }
        let wrote = match link.as_mut() {
            Some(out) => write_batch(&seat, out, &batch, &mut payload, &mut wire).is_ok(),
            None => false,
        };
        if wrote {
            continue;
        }
        drop_link(&seat, link.take());
        // Retry once on a fresh connection only if an *established* link
        // broke mid-write; a failed fresh dial already burned the whole
        // dial budget.
        if had_link {
            if let Ok(mut out) = dial(&seat) {
                if let Some(m) = seat.metrics.get() {
                    m.reconnect_total.inc();
                }
                if write_batch(&seat, &mut out, &batch, &mut payload, &mut wire).is_ok() {
                    link = Some(out);
                    continue;
                }
                drop_link(&seat, Some(out));
            }
        }
        // Peer unreachable: drop the batch and back off.
        seat.dropped
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        if let Some(m) = seat.metrics.get() {
            m.send_drop_total.add(batch.len() as u64);
            m.send_drop_unreachable_total.add(batch.len() as u64);
        }
        mark_link_down(&seat, &mut is_down);
        dead_until = Some(Instant::now() + seat.opts.redial_cooldown);
    }
    drop_link(&seat, link.take());
    // Shutdown: this writer no longer watches the peer, so its down state
    // must leave the node-wide gauge (a dangling "link down" after the
    // cluster stops would read as an outage).
    if is_down {
        let down = seat.links_down.fetch_sub(1, Ordering::Relaxed) - 1;
        if let Some(m) = seat.metrics.get() {
            m.peer_links_down.set(down);
        }
    }
}

/// Marks this writer's peer link down (first failure only): bumps the
/// node-wide `peer_links_down` gauge and logs a flight-recorder event, so
/// a dead peer is visible in a live scrape — not only via
/// [`TcpStats::dropped_to`] grabbed before spawn.
fn mark_link_down(seat: &WriterSeat, is_down: &mut bool) {
    if *is_down {
        return;
    }
    *is_down = true;
    let down = seat.links_down.fetch_add(1, Ordering::Relaxed) + 1;
    if let Some(m) = seat.metrics.get() {
        m.peer_links_down.set(down);
        m.recorder.record(
            "peer-link-down",
            format!(
                "p{} -> p{} unreachable, cooling down {:?}",
                seat.me.0, seat.peer.0, seat.opts.redial_cooldown
            ),
        );
    }
}

/// Clears the down state once a dial succeeds again.
fn mark_link_up(seat: &WriterSeat, is_down: &mut bool) {
    if !*is_down {
        return;
    }
    *is_down = false;
    let down = seat.links_down.fetch_sub(1, Ordering::Relaxed) - 1;
    if let Some(m) = seat.metrics.get() {
        m.peer_links_down.set(down);
        m.recorder.record(
            "peer-link-up",
            format!("p{} -> p{} link restored", seat.me.0, seat.peer.0),
        );
    }
}

/// Releases an outbound link's registry entry (and thereby its fd clone).
fn drop_link(seat: &WriterSeat, link: Option<Outbound>) {
    if let Some(out) = link {
        if let Some(id) = out.stream_id {
            seat.shared.unregister_stream(id);
        }
    }
}

/// Packs the drain into as few frames as fit under [`MAX_FRAME_LEN`]
/// (usually exactly one), MACs each **frame** — not each message — and
/// writes everything with a single `write_all`: per drain, one MAC, one
/// syscall. Oversized messages were filtered at enqueue time, so every
/// emitted frame consumes exactly one sequence number — the receiver's
/// strict FIFO check sees no gaps.
fn write_batch(
    seat: &WriterSeat,
    out: &mut Outbound,
    batch: &[Bytes],
    payload: &mut Vec<u8>,
    wire: &mut Vec<u8>,
) -> io::Result<()> {
    wire.clear();
    let mut rest = batch;
    let mut frames = 0u64;
    while !rest.is_empty() {
        // Greedy packing: take messages while the batch payload stays a
        // legal frame.
        let mut take = 0;
        let mut bytes = 4; // the u32 count prefix
        while take < rest.len() && bytes + rest[take].len() + FRAME_OVERHEAD <= MAX_FRAME_LEN {
            bytes += rest[take].len();
            take += 1;
        }
        let (chunk, tail) = rest.split_at(take.max(1));
        rest = tail;
        encode_batch_payload(payload, chunk);
        let (seq, mac) = out.mac.tag_next(payload);
        append_frame(wire, seat.me, seq, payload, &mac)
            .map_err(|e| io::Error::other(e.to_string()))?;
        frames += 1;
    }
    out.stream.write_all(wire)?;
    out.stream.flush()?;
    seat.frames.fetch_add(frames, Ordering::Relaxed);
    seat.messages
        .fetch_add(batch.len() as u64, Ordering::Relaxed);
    if let Some(m) = seat.metrics.get() {
        m.frames_out_total.add(frames);
        m.bytes_out_total.add(wire.len() as u64);
    }
    Ok(())
}

/// Dials the seat's peer, performs the mutual handshake, and returns the
/// authenticated outbound link. Aborts between attempts on shutdown.
fn dial(seat: &WriterSeat) -> Result<Outbound, io::Error> {
    // Session ids are unique per (process, connection) within a run: the
    // MAC key is per-process, so a counter suffices to keep frames from
    // one connection unreplayable on any other.
    let session = (u64::from(seat.me.0) << 32)
        | (seat.session_counter.fetch_add(1, Ordering::SeqCst) & 0xFFFF_FFFF);
    let mut last_err = io::Error::other("no dial attempts made");
    for attempt in 0..seat.opts.connect_retries.max(1) {
        if seat.shared.stopping() {
            return Err(io::Error::other("shutting down"));
        }
        if attempt > 0 {
            std::thread::sleep(seat.opts.connect_backoff);
        }
        let stream = match TcpStream::connect_timeout(&seat.addr, seat.opts.connect_timeout) {
            Ok(s) => s,
            Err(e) => {
                last_err = e;
                continue;
            }
        };
        let _ = stream.set_nodelay(true);
        // Register before the handshake so Drop can unblock a writer
        // parked waiting for a HelloAck that never comes.
        let stream_id = seat.shared.register_stream(&stream);
        match handshake_as_dialer(seat, stream, session) {
            Ok(mut out) => {
                out.stream_id = stream_id;
                return Ok(out);
            }
            Err(e) => {
                if let Some(id) = stream_id {
                    seat.shared.unregister_stream(id);
                }
                last_err = e;
            }
        }
    }
    Err(last_err)
}

fn handshake_as_dialer(
    seat: &WriterSeat,
    mut stream: TcpStream,
    session: u64,
) -> Result<Outbound, io::Error> {
    write_msg(&mut stream, &Hello::signed(&seat.pair, session))
        .map_err(|e| io::Error::other(e.to_string()))?;
    stream.set_read_timeout(Some(seat.opts.handshake_timeout))?;
    let ack: HelloAck = read_msg(&mut stream)
        .map_err(|e| io::Error::other(e.to_string()))?
        .ok_or_else(|| io::Error::other("peer closed during handshake"))?;
    ack.verify(&seat.dir, seat.peer, session)
        .map_err(|e| io::Error::other(e.to_string()))?;
    stream.set_read_timeout(None)?;
    // Frame MACs bind both sides' freshness: the dialer's session id and
    // the listener's signed nonce. A recorded connection replayed later
    // meets a fresh listener nonce, so its frames never verify.
    Ok(Outbound {
        stream,
        mac: SessionMac::new(seat.pair.clone(), mix_session(session, ack.nonce)),
        stream_id: None,
    })
}

/// Accepts connections until shutdown; each accepted stream gets a handler
/// thread so a stalled handshake can never block other peers.
#[allow(clippy::too_many_arguments)]
fn accept_loop<M: SimMessage + Decode>(
    listener: TcpListener,
    pair: KeyPair,
    dir: KeyDirectory,
    my_id: ProcessId,
    inbound_tx: Sender<Inbound<M>>,
    shared: Arc<NetShared>,
    handshake_timeout: Duration,
    max_connections: usize,
    metrics: MetricsHandle,
) {
    let mut next_conn_id: u64 = 0;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.stopping() {
                    return;
                }
                // Transient accept errors (e.g. fd pressure) must not spin.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if shared.stopping() {
            return;
        }
        // Reap handlers whose connections already ended, so a reconnecting
        // (or hostile connect-and-drop) peer cannot grow the thread list
        // without bound; the live-connection cap below bounds
        // connect-and-hold peers too.
        {
            let mut handlers = shared.handlers.lock().expect("not poisoned");
            let (finished, live): (Vec<_>, Vec<_>) =
                handlers.drain(..).partition(|h| h.is_finished());
            *handlers = live;
            for h in finished {
                let _ = h.join();
            }
        }
        next_conn_id += 1;
        let conn_id = next_conn_id;
        {
            let mut streams = shared.streams.lock().expect("not poisoned");
            // Count only accept-side entries (ids below the writer range)
            // against the inbound cap.
            if streams.keys().filter(|id| **id < (1 << 32)).count() >= max_connections {
                // At capacity: refuse by dropping. Correct peers redial.
                continue;
            }
            // Without the registered clone, Drop could never unblock this
            // connection's handler and shutdown would hang on its join —
            // so no clone, no handler.
            match stream.try_clone() {
                Ok(clone) => streams.insert(conn_id, clone),
                Err(_) => continue,
            };
        }
        let pair = pair.clone();
        let dir = dir.clone();
        let inbound_tx = inbound_tx.clone();
        let handler_shared = Arc::clone(&shared);
        let handler_metrics = metrics.clone();
        let handle = std::thread::spawn(move || {
            serve_connection(
                stream,
                pair,
                dir,
                my_id,
                conn_id,
                inbound_tx,
                Arc::clone(&handler_shared),
                handshake_timeout,
                handler_metrics,
            );
            // The connection is over: release its fd clone immediately.
            handler_shared.unregister_stream(conn_id);
        });
        shared.handlers.lock().expect("not poisoned").push(handle);
    }
}

/// Runs one accepted connection: handshake, then verified frames into the
/// inbound queue. Every failure path returns (dropping the connection);
/// nothing here panics on peer-controlled input.
#[allow(clippy::too_many_arguments)]
fn serve_connection<M: SimMessage + Decode>(
    mut stream: TcpStream,
    pair: KeyPair,
    dir: KeyDirectory,
    my_id: ProcessId,
    conn_id: u64,
    inbound_tx: Sender<Inbound<M>>,
    shared: Arc<NetShared>,
    handshake_timeout: Duration,
    metrics: MetricsHandle,
) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(handshake_timeout)).is_err() {
        return;
    }
    let hello: Hello = match read_msg(&mut stream) {
        Ok(Some(h)) => h,
        _ => return,
    };
    if hello.verify(&dir, my_id).is_err() {
        return;
    }
    // The listener's freshness contribution: unpredictable without this
    // process's key, unique per connection — what defeats replays of whole
    // recorded connections.
    let now_nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    let nonce = derive_nonce(&pair, conn_id, now_nanos);
    if write_msg(&mut stream, &HelloAck::signed(&pair, hello.session, nonce)).is_err() {
        return;
    }
    if stream.set_read_timeout(None).is_err() {
        return;
    }
    let mut verifier = SessionVerifier::new(dir, hello.sender, mix_session(hello.session, nonce));
    let mut reader = BufReader::new(stream);
    // One body buffer for the connection's lifetime: frames are read into
    // it and decoded in place (`FrameRef`), so the steady state does zero
    // per-frame allocations and never copies a payload.
    let mut body = Vec::new();
    loop {
        if shared.stopping() {
            return;
        }
        let len = match read_frame_into(&mut reader, &mut body) {
            Ok(Some(len)) => len,
            // Clean close, truncation, oversized length, malformed body,
            // socket error: in every case, stop serving this connection.
            _ => return,
        };
        let Ok(frame) = decode_frame_borrowed(&body[..len]) else {
            return;
        };
        // The sender field must match the handshake-authenticated peer and
        // the MAC must verify (which also pins signer and sequence): the
        // claimed identity is checked cryptographically, never trusted.
        if frame.sender != verifier.peer()
            || verifier
                .verify(frame.seq, frame.payload, &frame.mac)
                .is_err()
        {
            if let Some(m) = metrics.get() {
                m.mac_reject_total.inc();
            }
            return;
        }
        if let Some(m) = metrics.get() {
            m.frames_in_total.inc();
            m.bytes_in_total.add(len as u64);
        }
        // One verified frame carries a whole writer drain: decode the
        // batch and hand it to the event loop as one queue operation.
        match decode_batch_payload::<M>(frame.payload) {
            Ok(mut msgs) if msgs.len() == 1 => {
                let msg = msgs.pop().expect("len checked");
                let _ = inbound_tx.send(Inbound::Peer(frame.sender, msg));
            }
            Ok(msgs) => {
                let _ = inbound_tx.send(Inbound::PeerBatch(frame.sender, msgs));
            }
            Err(_) => return,
        }
    }
}
