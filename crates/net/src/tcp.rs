//! The TCP transport: authenticated loopback/LAN links for the runtime.
//!
//! Topology: every node binds one listener and dials one *outbound*
//! connection per peer (used only for sending); the `n·(n−1)` resulting
//! streams are each one-directional after the handshake. Accepted
//! connections are served by a handler thread that performs the handshake,
//! then MAC-verifies and decodes frames into the node's inbound queue —
//! the same queue the [`ChannelTransport`](fastbft_runtime::ChannelTransport)
//! uses, so the runtime event loop is identical on both transports.
//!
//! Failure handling: a frame that is truncated, oversized, malformed,
//! mis-sequenced or MAC-invalid causes the *connection* to be dropped —
//! never a panic, and never an unauthenticated delivery. A failed send
//! triggers one immediate redial (fresh session); if that also fails the
//! message is dropped, which the model permits: only links between correct
//! processes are reliable, and a correct-but-restarted peer re-establishes
//! on the next send.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use crossbeam::channel::{unbounded, Receiver, Sender};
use fastbft_crypto::session::{derive_nonce, mix_session, SessionMac, SessionVerifier};
use fastbft_crypto::{KeyDirectory, KeyPair};
use fastbft_runtime::transport::{poll_queue, Inbound, Polled, Transport};
use fastbft_sim::SimMessage;
use fastbft_types::wire::{from_bytes, to_bytes, Decode, Encode};
use fastbft_types::ProcessId;

use crate::frame::{encode_frame_body, read_msg, write_body, write_msg, Frame, Hello, HelloAck};

/// Tunables for the TCP transport.
#[derive(Clone, Debug)]
pub struct TcpOptions {
    /// How long each side of the handshake may take before the connection
    /// is abandoned (guards the handler threads against stalled or hostile
    /// dialers).
    pub handshake_timeout: Duration,
    /// Dial attempts per (re)connect before giving up on a peer for the
    /// current send. Listeners are bound before any replica thread starts,
    /// so retries only matter for mid-run reconnects, not startup.
    pub connect_retries: u32,
    /// Pause between dial attempts.
    pub connect_backoff: Duration,
    /// Per-attempt TCP connect timeout. Bounds how long a send to a
    /// blackholed peer (SYNs silently dropped) can stall the event loop —
    /// without it the OS default (minutes) would freeze timers too.
    pub connect_timeout: Duration,
    /// After a (re)connect gives up, the *minimum* time sends to that peer
    /// are dropped immediately instead of redialing. The actual cooldown
    /// scales with how long the failed attempt stalled the event loop
    /// (several times the stall), so a peer that accepts but never
    /// completes handshakes cannot keep a correct replica's timers frozen:
    /// the loop is guaranteed the large majority of wall time regardless
    /// of how slow the failure path is.
    pub redial_cooldown: Duration,
    /// Maximum concurrently-accepted inbound connections. Beyond this the
    /// accept loop drops new connections immediately, bounding the fd and
    /// thread cost a connect-and-hold peer can impose. A full mesh uses
    /// one inbound connection per peer, so anything ≳ `4·n` is generous.
    pub max_connections: usize,
}

impl Default for TcpOptions {
    fn default() -> Self {
        TcpOptions {
            handshake_timeout: Duration::from_secs(5),
            connect_retries: 3,
            connect_backoff: Duration::from_millis(20),
            connect_timeout: Duration::from_secs(1),
            redial_cooldown: Duration::from_millis(250),
            max_connections: 256,
        }
    }
}

/// State shared between the transport, its listener thread and its handler
/// threads, used to tear everything down without deadlock.
struct NetShared {
    shutdown: AtomicBool,
    /// Clones of live accepted streams, keyed by connection id; shut down
    /// on drop to unblock readers. Each handler removes its own entry when
    /// its connection ends, so dead connections don't leak fds.
    accepted: Mutex<HashMap<u64, TcpStream>>,
    /// Handler threads (handshake + frame reading). Finished ones are
    /// reaped by the accept loop; the rest are joined on drop.
    handlers: Mutex<Vec<JoinHandle<()>>>,
}

impl NetShared {
    fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// One established outbound link to a peer.
struct Outbound {
    writer: BufWriter<TcpStream>,
    mac: SessionMac,
}

/// [`Transport`] implementation over real TCP sockets with authenticated
/// frames. Build a full cluster with [`spawn_tcp`](crate::spawn_tcp), or
/// one node's transport with [`TcpTransport::start`] for custom topologies
/// (separate processes, real machines).
pub struct TcpTransport<M> {
    id: ProcessId,
    pair: KeyPair,
    dir: KeyDirectory,
    addrs: Vec<SocketAddr>,
    opts: TcpOptions,
    outbound: Vec<Option<Outbound>>,
    /// Per-peer cooldown deadline after a failed (re)connect.
    dead_until: Vec<Option<Instant>>,
    next_session: u64,
    inbound_tx: Sender<Inbound<M>>,
    inbound_rx: Receiver<Inbound<M>>,
    listener_addr: SocketAddr,
    listener: Option<JoinHandle<()>>,
    shared: Arc<NetShared>,
}

impl<M: SimMessage + Encode + Decode> TcpTransport<M> {
    /// Starts the receive side of one node's transport: takes ownership of
    /// its bound `listener`, spawns the accept loop, and returns the
    /// transport together with the control sender that feeds its inbound
    /// queue (for [`fastbft_runtime::NodeSeat::control`]).
    ///
    /// `addrs[i]` must be the listener address of process `p_{i+1}`; `pair`
    /// is this node's key, `dir` the cluster directory used to authenticate
    /// peers.
    ///
    /// # Errors
    ///
    /// An [`io::Error`] if the listener's local address cannot be read.
    pub fn start(
        pair: KeyPair,
        dir: KeyDirectory,
        listener: TcpListener,
        addrs: Vec<SocketAddr>,
        opts: TcpOptions,
    ) -> io::Result<(Self, Sender<Inbound<M>>)> {
        let listener_addr = listener.local_addr()?;
        let (inbound_tx, inbound_rx) = unbounded();
        let shared = Arc::new(NetShared {
            shutdown: AtomicBool::new(false),
            accepted: Mutex::new(HashMap::new()),
            handlers: Mutex::new(Vec::new()),
        });

        let accept_shared = Arc::clone(&shared);
        let accept_tx = inbound_tx.clone();
        let accept_pair = pair.clone();
        let accept_dir = dir.clone();
        let my_id = pair.id();
        let handshake_timeout = opts.handshake_timeout;
        let max_connections = opts.max_connections;
        let n_outbound = addrs.len();
        let listener_thread = std::thread::spawn(move || {
            accept_loop(
                listener,
                accept_pair,
                accept_dir,
                my_id,
                accept_tx,
                accept_shared,
                handshake_timeout,
                max_connections,
            );
        });

        let control = inbound_tx.clone();
        Ok((
            TcpTransport {
                id: my_id,
                pair,
                dir,
                addrs,
                opts,
                outbound: (0..n_outbound).map(|_| None).collect(),
                dead_until: vec![None; n_outbound],
                next_session: 0,
                inbound_tx,
                inbound_rx,
                listener_addr,
                listener: Some(listener_thread),
                shared,
            },
            control,
        ))
    }

    /// The address this node's listener is bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.listener_addr
    }

    /// Dials `to`, performs the mutual handshake, and returns the
    /// authenticated outbound link.
    fn dial(&mut self, to: ProcessId) -> Result<Outbound, io::Error> {
        // Session ids are unique per (process, connection) within a run:
        // the MAC key is per-process, so a counter suffices to keep frames
        // from one connection unreplayable on any other.
        self.next_session += 1;
        let session = (u64::from(self.id.0) << 32) | self.next_session;
        let addr = self.addrs[to.index()];
        let mut last_err = io::Error::other("no dial attempts made");
        for attempt in 0..self.opts.connect_retries.max(1) {
            if attempt > 0 {
                std::thread::sleep(self.opts.connect_backoff);
            }
            let stream = match TcpStream::connect_timeout(&addr, self.opts.connect_timeout) {
                Ok(s) => s,
                Err(e) => {
                    last_err = e;
                    continue;
                }
            };
            let _ = stream.set_nodelay(true);
            match self.handshake_as_dialer(stream, to, session) {
                Ok(out) => return Ok(out),
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    fn handshake_as_dialer(
        &self,
        mut stream: TcpStream,
        to: ProcessId,
        session: u64,
    ) -> Result<Outbound, io::Error> {
        write_msg(&mut stream, &Hello::signed(&self.pair, session))
            .map_err(|e| io::Error::other(e.to_string()))?;
        stream.set_read_timeout(Some(self.opts.handshake_timeout))?;
        let ack: HelloAck = read_msg(&mut stream)
            .map_err(|e| io::Error::other(e.to_string()))?
            .ok_or_else(|| io::Error::other("peer closed during handshake"))?;
        ack.verify(&self.dir, to, session)
            .map_err(|e| io::Error::other(e.to_string()))?;
        stream.set_read_timeout(None)?;
        // Frame MACs bind both sides' freshness: the dialer's session id
        // and the listener's signed nonce. A recorded connection replayed
        // later meets a fresh listener nonce, so its frames never verify.
        Ok(Outbound {
            writer: BufWriter::new(stream),
            mac: SessionMac::new(self.pair.clone(), mix_session(session, ack.nonce)),
        })
    }

    /// Writes one framed, MAC-tagged message on an (if needed, freshly
    /// dialed) outbound link.
    fn write_to(&mut self, to: ProcessId, payload: &[u8]) -> Result<(), io::Error> {
        if self.outbound[to.index()].is_none() {
            let out = self.dial(to)?;
            self.outbound[to.index()] = Some(out);
        }
        let out = self.outbound[to.index()].as_mut().expect("just dialed");
        let (seq, mac) = out.mac.tag_next(payload);
        // Encode the frame body around the borrowed payload instead of
        // copying it into a `Frame` first (byte-identical; pinned by a
        // frame-module test).
        let body = encode_frame_body(self.id, seq, payload, &mac);
        write_body(&mut out.writer, &body).map_err(|e| io::Error::other(e.to_string()))
    }
}

impl<M: SimMessage + Encode + Decode> Transport<M> for TcpTransport<M> {
    fn send(&mut self, to: ProcessId, msg: M) {
        if to == self.id {
            // Self-delivery never touches a socket.
            let _ = self.inbound_tx.send(Inbound::Peer(self.id, msg));
            return;
        }
        if let Some(deadline) = self.dead_until[to.index()] {
            if Instant::now() < deadline {
                // Peer recently unreachable: drop without redialing, as
                // the model allows for faulty peers.
                return;
            }
            self.dead_until[to.index()] = None;
        }
        // The encoding is per-message, so a broadcast encodes the same
        // payload once per peer. Deliberate: the per-peer session MAC must
        // be computed per connection anyway and dominates the encode of
        // these small messages, and deduplicating would need message
        // identity the `Effects` batch doesn't carry.
        let payload = to_bytes(&msg);
        let had_link = self.outbound[to.index()].is_some();
        let before = Instant::now();
        if self.write_to(to, &payload).is_ok() {
            return;
        }
        self.outbound[to.index()] = None;
        // Retry once only if an *established* link broke mid-write; a
        // failed fresh dial has already burned the whole dial budget.
        if had_link && self.write_to(to, &payload).is_ok() {
            return;
        }
        self.outbound[to.index()] = None;
        // Peer unreachable: drop the message and back off. The cooldown
        // scales with the stall so the event loop keeps ≥ 80% of wall
        // time even against a peer engineered to make dials slow.
        let stalled = before.elapsed();
        let cooldown = self.opts.redial_cooldown.max(stalled * 4);
        self.dead_until[to.index()] = Some(Instant::now() + cooldown);
    }

    fn recv(&mut self, timeout: Option<Duration>) -> Polled<M> {
        poll_queue(&self.inbound_rx, timeout)
    }
}

impl<M> Drop for TcpTransport<M> {
    /// Tears the node's networking down without deadlock: flag shutdown,
    /// unblock every reader by shutting its socket, wake the accept loop
    /// with a throwaway connection, then join all threads.
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for out in self.outbound.iter_mut().flatten() {
            let _ = out.writer.flush();
            let _ = out.writer.get_ref().shutdown(Shutdown::Both);
        }
        for conn in self.shared.accepted.lock().expect("not poisoned").values() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        // Wake the accept loop; it observes the flag and exits.
        let _ = TcpStream::connect(self.listener_addr);
        if let Some(listener) = self.listener.take() {
            let _ = listener.join();
        }
        // Second sweep: a connection accepted concurrently with the first
        // sweep registered its clone before its handler spawned, and the
        // listener is joined now, so this one is exhaustive — every handler
        // blocked on a socket gets unblocked before being joined.
        for conn in self.shared.accepted.lock().expect("not poisoned").values() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let handlers: Vec<_> = self
            .shared
            .handlers
            .lock()
            .expect("not poisoned")
            .drain(..)
            .collect();
        for h in handlers {
            let _ = h.join();
        }
    }
}

/// Accepts connections until shutdown; each accepted stream gets a handler
/// thread so a stalled handshake can never block other peers.
#[allow(clippy::too_many_arguments)]
fn accept_loop<M: SimMessage + Decode>(
    listener: TcpListener,
    pair: KeyPair,
    dir: KeyDirectory,
    my_id: ProcessId,
    inbound_tx: Sender<Inbound<M>>,
    shared: Arc<NetShared>,
    handshake_timeout: Duration,
    max_connections: usize,
) {
    let mut next_conn_id: u64 = 0;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.stopping() {
                    return;
                }
                // Transient accept errors (e.g. fd pressure) must not spin.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if shared.stopping() {
            return;
        }
        // Reap handlers whose connections already ended, so a reconnecting
        // (or hostile connect-and-drop) peer cannot grow the thread list
        // without bound; the live-connection cap below bounds
        // connect-and-hold peers too.
        {
            let mut handlers = shared.handlers.lock().expect("not poisoned");
            let (finished, live): (Vec<_>, Vec<_>) =
                handlers.drain(..).partition(|h| h.is_finished());
            *handlers = live;
            for h in finished {
                let _ = h.join();
            }
        }
        next_conn_id += 1;
        let conn_id = next_conn_id;
        {
            let mut accepted = shared.accepted.lock().expect("not poisoned");
            if accepted.len() >= max_connections {
                // At capacity: refuse by dropping. Correct peers redial.
                continue;
            }
            // Without the registered clone, Drop could never unblock this
            // connection's handler and shutdown would hang on its join —
            // so no clone, no handler.
            match stream.try_clone() {
                Ok(clone) => accepted.insert(conn_id, clone),
                Err(_) => continue,
            };
        }
        let pair = pair.clone();
        let dir = dir.clone();
        let inbound_tx = inbound_tx.clone();
        let handler_shared = Arc::clone(&shared);
        let handle = std::thread::spawn(move || {
            serve_connection(
                stream,
                pair,
                dir,
                my_id,
                conn_id,
                inbound_tx,
                Arc::clone(&handler_shared),
                handshake_timeout,
            );
            // The connection is over: release its fd clone immediately.
            handler_shared
                .accepted
                .lock()
                .expect("not poisoned")
                .remove(&conn_id);
        });
        shared.handlers.lock().expect("not poisoned").push(handle);
    }
}

/// Runs one accepted connection: handshake, then verified frames into the
/// inbound queue. Every failure path returns (dropping the connection);
/// nothing here panics on peer-controlled input.
#[allow(clippy::too_many_arguments)]
fn serve_connection<M: SimMessage + Decode>(
    mut stream: TcpStream,
    pair: KeyPair,
    dir: KeyDirectory,
    my_id: ProcessId,
    conn_id: u64,
    inbound_tx: Sender<Inbound<M>>,
    shared: Arc<NetShared>,
    handshake_timeout: Duration,
) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(handshake_timeout)).is_err() {
        return;
    }
    let hello: Hello = match read_msg(&mut stream) {
        Ok(Some(h)) => h,
        _ => return,
    };
    if hello.verify(&dir, my_id).is_err() {
        return;
    }
    // The listener's freshness contribution: unpredictable without this
    // process's key, unique per connection — what defeats replays of whole
    // recorded connections.
    let now_nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    let nonce = derive_nonce(&pair, conn_id, now_nanos);
    if write_msg(&mut stream, &HelloAck::signed(&pair, hello.session, nonce)).is_err() {
        return;
    }
    if stream.set_read_timeout(None).is_err() {
        return;
    }
    let mut verifier = SessionVerifier::new(dir, hello.sender, mix_session(hello.session, nonce));
    let mut reader = BufReader::new(stream);
    loop {
        if shared.stopping() {
            return;
        }
        let frame: Frame = match read_msg(&mut reader) {
            Ok(Some(frame)) => frame,
            // Clean close, truncation, oversized length, malformed body,
            // socket error: in every case, stop serving this connection.
            _ => return,
        };
        // The sender field must match the handshake-authenticated peer and
        // the MAC must verify (which also pins signer and sequence): the
        // claimed identity is checked cryptographically, never trusted.
        if frame.sender != verifier.peer()
            || verifier
                .verify(frame.seq, &frame.payload, &frame.mac)
                .is_err()
        {
            return;
        }
        match from_bytes::<M>(&frame.payload) {
            Ok(msg) => {
                let _ = inbound_tx.send(Inbound::Peer(frame.sender, msg));
            }
            Err(_) => return,
        }
    }
}
