//! The fault-injection plane over TCP: re-exports of
//! [`fastbft_runtime::faults`] plus seat builders that wrap the
//! authenticated socket transport in a [`FaultTransport`].
//!
//! The shaping layer itself lives in the runtime crate (it is
//! transport-agnostic — the same wrapper shapes the in-process channel
//! mesh); this module is the TCP entry point: [`fault_tcp_seats`] builds
//! a loopback cluster whose sockets are real and authenticated, but whose
//! *deliveries* obey a shared [`FaultPlan`]. Because shaping happens on
//! the receive side, above frame decode and MAC verification, the wire
//! protocol is untouched: what gets delayed or dropped is an
//! authenticated message, exactly as a WAN or a misbehaving switch would
//! delay or drop it.

use std::io;
use std::net::SocketAddr;

use fastbft_crypto::{KeyDirectory, KeyPair};
use fastbft_obs::MetricsRegistry;
use fastbft_runtime::NodeSeat;
use fastbft_sim::{Actor, SimMessage};
use fastbft_types::wire::{Decode, Encode};

pub use fastbft_runtime::faults::{
    wrap_seats, wrap_seats_metered, FaultPlan, FaultTransport, LinkProfile,
};

use crate::{tcp_seats, tcp_seats_metered, TcpOptions, TcpTransport};

/// [`tcp_seats`] with every seat's transport wrapped in
/// a [`FaultTransport`] on the shared `plan` (seeded with `seed`; see the
/// runtime module's determinism contract).
///
/// # Errors
///
/// An [`io::Error`] if binding the loopback listeners fails.
///
/// # Panics
///
/// Panics if `pairs` does not line up with `actors`.
#[allow(clippy::type_complexity)]
pub fn fault_tcp_seats<M: SimMessage + Encode + Decode>(
    actors: Vec<Box<dyn Actor<M> + Send>>,
    pairs: Vec<KeyPair>,
    dir: KeyDirectory,
    opts: TcpOptions,
    plan: &FaultPlan,
    seed: u64,
) -> io::Result<(
    Vec<NodeSeat<M, FaultTransport<M, TcpTransport<M>>>>,
    Vec<SocketAddr>,
)> {
    let (seats, addrs) = tcp_seats(actors, pairs, dir, opts)?;
    Ok((wrap_seats(seats, plan, seed), addrs))
}

/// [`fault_tcp_seats`] with a metrics plane: seat `i` reports both its
/// wire-level counters *and* its injected-fault counters into
/// `registry.replica(i)`.
///
/// # Errors
///
/// An [`io::Error`] if binding the loopback listeners fails.
///
/// # Panics
///
/// Panics if `pairs` does not line up with `actors`, or if the registry
/// has fewer replicas than there are actors.
#[allow(clippy::type_complexity)]
pub fn fault_tcp_seats_metered<M: SimMessage + Encode + Decode>(
    actors: Vec<Box<dyn Actor<M> + Send>>,
    pairs: Vec<KeyPair>,
    dir: KeyDirectory,
    opts: TcpOptions,
    registry: &MetricsRegistry,
    plan: &FaultPlan,
    seed: u64,
) -> io::Result<(
    Vec<NodeSeat<M, FaultTransport<M, TcpTransport<M>>>>,
    Vec<SocketAddr>,
)> {
    let (seats, addrs) = tcp_seats_metered(actors, pairs, dir, opts, registry)?;
    Ok((wrap_seats_metered(seats, plan, seed, registry), addrs))
}
