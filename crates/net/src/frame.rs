//! The TCP wire format: length-prefixed frames and the handshake structs.
//!
//! Everything on a socket is a **frame**: a big-endian `u32` length (capped
//! at [`MAX_FRAME_LEN`] *before* any allocation) followed by that many body
//! bytes, which are the canonical [`fastbft_types::wire`] encoding of one
//! struct. Three structs travel this way:
//!
//! ```text
//! ┌──────────┬───────────────────────────────────────────────┐
//! │ u32 len  │ body (canonical wire encoding, ≤ MAX_FRAME_LEN)│
//! └──────────┴───────────────────────────────────────────────┘
//!
//! body of a data frame  = Frame    { sender, seq, payload, mac }
//! body of handshake (→) = Hello    { magic, version, sender, session, sig }
//! body of handshake (←) = HelloAck { magic, version, responder, session, nonce, sig }
//! ```
//!
//! The `payload` of a [`Frame`] is itself the canonical encoding of a
//! protocol message; `mac` is an HMAC-SHA256 session MAC over
//! `(session, seq, payload)` (see [`fastbft_crypto::session`]), which is
//! what makes the link *authenticated*: the receiver accepts a frame only
//! if the MAC verifies under the key of the peer that authenticated at
//! handshake time, so a `sender` field can never be spoofed.
//!
//! Reading is defensive by construction: oversized declared lengths are
//! rejected before allocating, truncated frames and malformed bodies are
//! errors (the caller drops the connection), and EOF exactly on a frame
//! boundary is a clean close.

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

use fastbft_crypto::session::{hello_preimage, HelloRole};

use fastbft_crypto::{KeyDirectory, KeyPair, Signature};
use fastbft_types::wire::{from_bytes, to_bytes, Decode, Encode, WireError, MAX_FRAME_LEN};
use fastbft_types::ProcessId;

/// Frame magic: `"FBN1"` as a big-endian `u32`. A connection that does not
/// open with a handshake carrying this value is not speaking this protocol.
pub const MAGIC: u32 = 0x4642_4E31;

/// Wire-format version. Bumped on any incompatible frame or handshake
/// change; peers with a different version are rejected at handshake.
/// Version 2 made the data-frame payload a message *batch* (`u32` count
/// followed by that many back-to-back canonical message encodings) so one
/// frame — and one session MAC — carries a writer thread's whole drain.
pub const VERSION: u16 = 2;

/// A data frame: one protocol message from an authenticated peer.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    /// The sending process. Must match the peer authenticated at handshake
    /// time *and* the MAC's signer — checked, not trusted.
    pub sender: ProcessId,
    /// Connection-local sequence number, strictly increasing from 1.
    pub seq: u64,
    /// The message batch: a `u32` count, then that many back-to-back
    /// canonical message encodings (see [`decode_batch_payload`]).
    pub payload: Vec<u8>,
    /// Session MAC over `(session, seq, payload)`.
    pub mac: Signature,
}
fastbft_types::impl_wire_struct!(Frame {
    sender,
    seq,
    payload,
    mac
});

/// First handshake message, dialer → listener: "I am `sender`, let us speak
/// session `session`".
#[derive(Clone, Debug, PartialEq)]
pub struct Hello {
    /// Must equal [`MAGIC`].
    pub magic: u32,
    /// Must equal [`VERSION`].
    pub version: u16,
    /// The dialing process's claimed identity.
    pub sender: ProcessId,
    /// Fresh session id chosen by the dialer; all frame MACs on this
    /// connection are bound to it.
    pub session: u64,
    /// Signature over the hello preimage — proves the dialer holds
    /// `sender`'s key.
    pub sig: Signature,
}
fastbft_types::impl_wire_struct!(Hello {
    magic,
    version,
    sender,
    session,
    sig
});

/// Second handshake message, listener → dialer: the mirror-image proof of
/// the listener's identity, echoing the session id and contributing the
/// listener's freshness nonce.
#[derive(Clone, Debug, PartialEq)]
pub struct HelloAck {
    /// Must equal [`MAGIC`].
    pub magic: u32,
    /// Must equal [`VERSION`].
    pub version: u16,
    /// The accepting process's claimed identity.
    pub responder: ProcessId,
    /// Echo of the dialer's session id.
    pub session: u64,
    /// The listener's unpredictable freshness contribution. Frame MACs are
    /// bound to `mix_session(session, nonce)`, so replaying a recorded
    /// connection dies at the first frame: the fresh ack carries a new
    /// nonce and every recorded MAC stops verifying.
    pub nonce: u64,
    /// Signature over the (listener-role) hello preimage, covering both
    /// `session` and `nonce`.
    pub sig: Signature,
}
fastbft_types::impl_wire_struct!(HelloAck {
    magic,
    version,
    responder,
    session,
    nonce,
    sig
});

/// Why a handshake was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HandshakeError {
    /// The magic number was wrong — not this protocol.
    BadMagic {
        /// The value received.
        got: u32,
    },
    /// Incompatible wire-format version.
    BadVersion {
        /// The version received.
        got: u16,
    },
    /// The claimed identity is not a member of this cluster (or is the
    /// receiving process itself).
    UnknownPeer {
        /// The claimed process id.
        claimed: ProcessId,
    },
    /// The signature's signer differs from the claimed identity, or the
    /// signature does not verify — the peer does not hold the claimed key.
    BadSignature,
    /// The ack did not come from the process that was dialed, or echoed a
    /// different session id.
    WrongResponder,
}

impl fmt::Display for HandshakeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HandshakeError::BadMagic { got } => write!(f, "bad handshake magic {got:#010x}"),
            HandshakeError::BadVersion { got } => write!(f, "unsupported wire version {got}"),
            HandshakeError::UnknownPeer { claimed } => {
                write!(f, "handshake from unknown peer {claimed}")
            }
            HandshakeError::BadSignature => write!(f, "handshake signature does not verify"),
            HandshakeError::WrongResponder => {
                write!(f, "handshake ack from wrong responder or session")
            }
        }
    }
}

impl Error for HandshakeError {}

impl Hello {
    /// Builds a signed hello for `pair`'s process on session `session`.
    /// The dialer's freshness contribution *is* its session id, so the
    /// preimage nonce slot is zero.
    pub fn signed(pair: &KeyPair, session: u64) -> Hello {
        let sig = pair.sign(&hello_preimage(HelloRole::Dialer, pair.id(), session, 0));
        Hello {
            magic: MAGIC,
            version: VERSION,
            sender: pair.id(),
            session,
            sig,
        }
    }

    /// Verifies this hello as received by process `me` in a cluster whose
    /// keys are in `dir`.
    ///
    /// # Errors
    ///
    /// The first [`HandshakeError`] check that fails.
    pub fn verify(&self, dir: &KeyDirectory, me: ProcessId) -> Result<(), HandshakeError> {
        if self.magic != MAGIC {
            return Err(HandshakeError::BadMagic { got: self.magic });
        }
        if self.version != VERSION {
            return Err(HandshakeError::BadVersion { got: self.version });
        }
        let member = (1..=dir.len() as u32).contains(&self.sender.0);
        if !member || self.sender == me {
            return Err(HandshakeError::UnknownPeer {
                claimed: self.sender,
            });
        }
        let preimage = hello_preimage(HelloRole::Dialer, self.sender, self.session, 0);
        if self.sig.signer != self.sender || !dir.verify(&preimage, &self.sig) {
            return Err(HandshakeError::BadSignature);
        }
        Ok(())
    }
}

impl HelloAck {
    /// Builds a signed ack for `pair`'s process, echoing `session` and
    /// contributing the listener's freshness `nonce`.
    pub fn signed(pair: &KeyPair, session: u64, nonce: u64) -> HelloAck {
        let sig = pair.sign(&hello_preimage(
            HelloRole::Listener,
            pair.id(),
            session,
            nonce,
        ));
        HelloAck {
            magic: MAGIC,
            version: VERSION,
            responder: pair.id(),
            session,
            nonce,
            sig,
        }
    }

    /// Verifies this ack as received by the dialer that dialed `expected`
    /// on session `session`.
    ///
    /// # Errors
    ///
    /// The first [`HandshakeError`] check that fails.
    pub fn verify(
        &self,
        dir: &KeyDirectory,
        expected: ProcessId,
        session: u64,
    ) -> Result<(), HandshakeError> {
        if self.magic != MAGIC {
            return Err(HandshakeError::BadMagic { got: self.magic });
        }
        if self.version != VERSION {
            return Err(HandshakeError::BadVersion { got: self.version });
        }
        if self.responder != expected || self.session != session {
            return Err(HandshakeError::WrongResponder);
        }
        let preimage = hello_preimage(
            HelloRole::Listener,
            self.responder,
            self.session,
            self.nonce,
        );
        if self.sig.signer != self.responder || !dir.verify(&preimage, &self.sig) {
            return Err(HandshakeError::BadSignature);
        }
        Ok(())
    }
}

/// Why a frame could not be read or written.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying socket failed.
    Io(io::Error),
    /// The stream ended mid-frame (mid-length-prefix or mid-body).
    Truncated,
    /// A declared frame length exceeded [`MAX_FRAME_LEN`]; rejected before
    /// allocating.
    Oversized {
        /// The declared length.
        len: usize,
    },
    /// The frame body was not a canonical encoding of the expected struct.
    Malformed(WireError),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "socket error: {e}"),
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::Oversized { len } => {
                write!(f, "declared frame length {len} exceeds MAX_FRAME_LEN")
            }
            FrameError::Malformed(e) => write!(f, "malformed frame body: {e}"),
        }
    }
}

impl Error for FrameError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            FrameError::Malformed(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> Self {
        FrameError::Malformed(e)
    }
}

/// Writes one length-prefixed frame carrying `msg`'s canonical encoding.
///
/// # Errors
///
/// [`FrameError::Oversized`] if the encoding exceeds [`MAX_FRAME_LEN`]
/// (nothing is written), or [`FrameError::Io`] from the socket.
pub fn write_msg<T: Encode>(w: &mut impl Write, msg: &T) -> Result<(), FrameError> {
    write_body(w, &to_bytes(msg))
}

/// Writes one length-prefixed frame from a pre-encoded body — the
/// zero-extra-copy sibling of [`write_msg`] used by the transport's send
/// path (see [`encode_frame_body`]).
///
/// # Errors
///
/// [`FrameError::Oversized`] if `body` exceeds [`MAX_FRAME_LEN`] (nothing
/// is written), or [`FrameError::Io`] from the socket.
pub fn write_body(w: &mut impl Write, body: &[u8]) -> Result<(), FrameError> {
    if body.len() > MAX_FRAME_LEN {
        return Err(FrameError::Oversized { len: body.len() });
    }
    w.write_all(&(body.len() as u32).to_be_bytes())?;
    w.write_all(body)?;
    w.flush()?;
    Ok(())
}

/// Worst-case bytes a data frame adds around its payload: the `u32` length
/// prefix plus the encoded sender id, sequence number, payload length
/// prefix and session MAC. Used to reject oversized payloads *before* they
/// consume a sequence number (a tagged-but-unsent frame would leave a gap
/// the receiver treats as a drop).
pub const FRAME_OVERHEAD: usize = 4 + 4 + 8 + 4 + 40;

/// Encodes a data-frame body directly from borrowed parts — byte-identical
/// to encoding a [`Frame`] struct (pinned by a unit test), without first
/// copying `payload` into one.
pub fn encode_frame_body(sender: ProcessId, seq: u64, payload: &[u8], mac: &Signature) -> Vec<u8> {
    let mut body = Vec::with_capacity(4 + 8 + 4 + payload.len() + 36);
    sender.encode(&mut body);
    seq.encode(&mut body);
    payload.encode(&mut body);
    mac.encode(&mut body);
    body
}

/// Appends one complete length-prefixed data frame to `buf` — the
/// coalescing building block of the send pipeline: a writer thread appends
/// every queued frame of a drain into one buffer and hands the whole thing
/// to a single `write_all` (one syscall per drain instead of per frame).
/// Byte-identical to [`write_body`] of [`encode_frame_body`]'s output
/// (pinned by tests), and `k` appended frames read back as the same `k`
/// frames (pinned by a property test).
///
/// # Errors
///
/// [`FrameError::Oversized`] if the frame body would exceed
/// [`MAX_FRAME_LEN`]; `buf` is left exactly as it was.
pub fn append_frame(
    buf: &mut Vec<u8>,
    sender: ProcessId,
    seq: u64,
    payload: &[u8],
    mac: &Signature,
) -> Result<(), FrameError> {
    if payload.len() + FRAME_OVERHEAD > MAX_FRAME_LEN {
        return Err(FrameError::Oversized {
            len: payload.len() + FRAME_OVERHEAD,
        });
    }
    let start = buf.len();
    buf.extend_from_slice(&[0u8; 4]); // length prefix, patched below
    sender.encode(buf);
    seq.encode(buf);
    payload.encode(buf);
    mac.encode(buf);
    let body_len = buf.len() - start - 4;
    if body_len > MAX_FRAME_LEN {
        buf.truncate(start);
        return Err(FrameError::Oversized { len: body_len });
    }
    buf[start..start + 4].copy_from_slice(&(body_len as u32).to_be_bytes());
    Ok(())
}

/// Encodes a batch payload into a caller-owned scratch buffer (cleared
/// first): a `u32` count followed by the already-encoded messages back to
/// back. The sender MACs this buffer once per drain.
pub fn encode_batch_payload<B: AsRef<[u8]>>(buf: &mut Vec<u8>, msgs: &[B]) {
    buf.clear();
    (msgs.len() as u32).encode(buf);
    for msg in msgs {
        buf.extend_from_slice(msg.as_ref());
    }
}

/// Decodes a (MAC-verified) batch payload back into its messages. Strict:
/// the count is validated against the remaining bytes before any decoding
/// (every message encodes to ≥ 1 byte), and the payload must be consumed
/// exactly. Round-trip with [`encode_batch_payload`] is pinned by a
/// property test.
///
/// # Errors
///
/// A [`WireError`] if the count lies about the remaining input or any
/// message is malformed.
pub fn decode_batch_payload<M: Decode>(payload: &[u8]) -> Result<Vec<M>, WireError> {
    let mut r = fastbft_types::wire::WireReader::new(payload);
    let count = u32::decode(&mut r)? as usize;
    if count > r.remaining() {
        return Err(WireError::UnexpectedEnd {
            needed: count,
            remaining: r.remaining(),
        });
    }
    let mut msgs = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        msgs.push(M::decode(&mut r)?);
    }
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes {
            remaining: r.remaining(),
        });
    }
    Ok(msgs)
}

/// Reads one length-prefixed frame body. `Ok(None)` means the stream
/// closed cleanly on a frame boundary.
///
/// Partial reads are handled (the length prefix and body are both read to
/// completion or diagnosed as [`FrameError::Truncated`]); a declared length
/// above [`MAX_FRAME_LEN`] is rejected before any allocation.
///
/// # Errors
///
/// [`FrameError`] on truncation, oversized declarations, or socket errors.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < len_buf.len() {
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Ok(None), // clean EOF between frames
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized { len });
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e)
        }
    })?;
    Ok(Some(body))
}

/// Reads one frame and decodes its body as `T`. `Ok(None)` on clean EOF.
///
/// # Errors
///
/// [`FrameError`] on read failure or a non-canonical body.
pub fn read_msg<T: Decode>(r: &mut impl Read) -> Result<Option<T>, FrameError> {
    match read_frame(r)? {
        None => Ok(None),
        Some(body) => Ok(Some(from_bytes(&body)?)),
    }
}

/// [`read_frame`] into a caller-owned body buffer — the
/// per-frame-allocation-free form the reader thread uses. Returns the
/// frame's body length (the frame occupies `body[..len]`), or `None` on
/// clean EOF.
///
/// The buffer is a high-water mark: it grows to the largest frame seen and
/// never shrinks, so once warm there is no per-frame zero-fill or
/// allocation even when small and large frames alternate — `read_exact`
/// overwrites exactly the `len` bytes the caller is handed.
///
/// # Errors
///
/// [`FrameError`] on truncation, oversized declarations, or socket errors.
pub fn read_frame_into(r: &mut impl Read, body: &mut Vec<u8>) -> Result<Option<usize>, FrameError> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < len_buf.len() {
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Ok(None), // clean EOF between frames
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized { len });
    }
    if body.len() < len {
        body.resize(len, 0);
    }
    r.read_exact(&mut body[..len]).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e)
        }
    })?;
    Ok(Some(len))
}

/// A data frame decoded **in place**: `payload` borrows the body buffer
/// instead of copying into an owned `Vec` — together with
/// [`read_frame_into`], the reader thread touches each payload byte only
/// for the MAC and the message decode, with zero per-frame allocations.
#[derive(Debug, PartialEq)]
pub struct FrameRef<'a> {
    /// See [`Frame::sender`].
    pub sender: ProcessId,
    /// See [`Frame::seq`].
    pub seq: u64,
    /// The message batch, borrowed from the frame body.
    pub payload: &'a [u8],
    /// See [`Frame::mac`].
    pub mac: Signature,
}

/// Decodes a data-frame body without copying the payload (see
/// [`FrameRef`]). Strict like every decode: the body must be consumed
/// exactly.
///
/// # Errors
///
/// A [`WireError`] for truncated or non-canonical bodies.
pub fn decode_frame_borrowed(body: &[u8]) -> Result<FrameRef<'_>, WireError> {
    let mut r = fastbft_types::wire::WireReader::new(body);
    let sender = ProcessId::decode(&mut r)?;
    let seq = u64::decode(&mut r)?;
    let len = r.take_len()?;
    let payload = r.take(len)?;
    let mac = Signature::decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes {
            remaining: r.remaining(),
        });
    }
    Ok(FrameRef {
        sender,
        seq,
        payload,
        mac,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbft_types::wire::roundtrip;

    fn keys() -> (Vec<KeyPair>, KeyDirectory) {
        KeyDirectory::generate(4, 33)
    }

    #[test]
    fn structs_roundtrip_on_the_wire() {
        let (pairs, _) = keys();
        roundtrip(&Hello::signed(&pairs[0], 7));
        roundtrip(&HelloAck::signed(&pairs[1], 7, 99));
        roundtrip(&Frame {
            sender: ProcessId(2),
            seq: 9,
            payload: vec![1, 2, 3],
            mac: pairs[1].sign(b"x"),
        });
    }

    #[test]
    fn borrowed_frame_decode_matches_owned() {
        let (pairs, _) = keys();
        let frame = Frame {
            sender: ProcessId(2),
            seq: 9,
            payload: vec![1, 2, 3],
            mac: pairs[1].sign(b"x"),
        };
        let body = to_bytes(&frame);
        let fr = decode_frame_borrowed(&body).unwrap();
        assert_eq!(fr.sender, frame.sender);
        assert_eq!(fr.seq, frame.seq);
        assert_eq!(fr.payload, frame.payload.as_slice());
        assert_eq!(fr.mac, frame.mac);
        // Trailing bytes are rejected, same as the owned decode.
        let mut extended = body.clone();
        extended.push(0);
        assert!(decode_frame_borrowed(&extended).is_err());
        // read_frame_into sees the identical body, and clean EOF after.
        let mut wire = Vec::new();
        write_msg(&mut wire, &frame).unwrap();
        let mut cur = io::Cursor::new(wire.clone());
        let mut buf = vec![0xFF; 3]; // dirty: frame bytes must be overwritten
        assert_eq!(
            read_frame_into(&mut cur, &mut buf).unwrap(),
            Some(body.len())
        );
        assert_eq!(&buf[..body.len()], &body[..]);
        assert_eq!(read_frame_into(&mut cur, &mut buf).unwrap(), None);
        // High-water buffer: an oversized dirty buffer keeps its length and
        // only the frame's span is touched.
        let mut cur = io::Cursor::new(wire);
        let mut buf = vec![0xFF; body.len() + 5];
        assert_eq!(
            read_frame_into(&mut cur, &mut buf).unwrap(),
            Some(body.len())
        );
        assert_eq!(&buf[..body.len()], &body[..]);
        assert_eq!(&buf[body.len()..], [0xFF; 5]);
    }

    #[test]
    fn write_read_roundtrip_over_a_buffer() {
        let (pairs, _) = keys();
        let hello = Hello::signed(&pairs[2], 42);
        let mut buf = Vec::new();
        write_msg(&mut buf, &hello).unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_msg::<Hello>(&mut r).unwrap(), Some(hello));
        // Clean EOF after the frame.
        assert_eq!(read_msg::<Hello>(&mut r).unwrap(), None);
    }

    #[test]
    fn oversized_declared_length_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_be_bytes());
        let mut r = io::Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut r),
            Err(FrameError::Oversized { .. })
        ));
    }

    #[test]
    fn truncated_prefix_and_body_rejected() {
        // Two bytes of a length prefix.
        let mut r = io::Cursor::new(vec![0u8, 1]);
        assert!(matches!(read_frame(&mut r), Err(FrameError::Truncated)));
        // Full prefix declaring 8 bytes, only 3 present.
        let mut bytes = 8u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(&[1, 2, 3]);
        let mut r = io::Cursor::new(bytes);
        assert!(matches!(read_frame(&mut r), Err(FrameError::Truncated)));
    }

    #[test]
    fn garbage_body_is_malformed_not_a_panic() {
        let mut bytes = 5u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(&[0xFF; 5]);
        let mut r = io::Cursor::new(bytes);
        assert!(matches!(
            read_msg::<Hello>(&mut r),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn hello_verifies_and_rejects_spoofing() {
        let (pairs, dir) = keys();
        let me = ProcessId(1);
        let good = Hello::signed(&pairs[2], 5);
        good.verify(&dir, me).unwrap();

        // Wrong magic / version.
        let mut h = good.clone();
        h.magic = 0xDEAD_BEEF;
        assert!(matches!(
            h.verify(&dir, me),
            Err(HandshakeError::BadMagic { .. })
        ));
        let mut h = good.clone();
        h.version = 99;
        assert!(matches!(
            h.verify(&dir, me),
            Err(HandshakeError::BadVersion { .. })
        ));

        // p3 claiming to be p2: signature binds the claimed identity.
        let mut h = good.clone();
        h.sender = ProcessId(2);
        assert_eq!(h.verify(&dir, me), Err(HandshakeError::BadSignature));

        // Not a cluster member, or the receiver itself.
        let mut h = good.clone();
        h.sender = ProcessId(9);
        assert!(matches!(
            h.verify(&dir, me),
            Err(HandshakeError::UnknownPeer { .. })
        ));
        assert!(matches!(
            good.verify(&dir, ProcessId(3)),
            Err(HandshakeError::UnknownPeer { .. })
        ));

        // Session tampering invalidates the signature.
        let mut h = good.clone();
        h.session = 6;
        assert_eq!(h.verify(&dir, me), Err(HandshakeError::BadSignature));
    }

    #[test]
    fn hello_ack_verifies_and_rejects_substitution() {
        let (pairs, dir) = keys();
        let ack = HelloAck::signed(&pairs[1], 5, 77);
        ack.verify(&dir, ProcessId(2), 5).unwrap();
        // Ack from a different process than the one dialed.
        assert_eq!(
            ack.verify(&dir, ProcessId(3), 5),
            Err(HandshakeError::WrongResponder)
        );
        // Session mismatch.
        assert_eq!(
            ack.verify(&dir, ProcessId(2), 6),
            Err(HandshakeError::WrongResponder)
        );
        // Tampering with the listener nonce invalidates the signature: the
        // freshness contribution cannot be stripped or substituted.
        let mut tampered = ack.clone();
        tampered.nonce = 78;
        assert_eq!(
            tampered.verify(&dir, ProcessId(2), 5),
            Err(HandshakeError::BadSignature)
        );
        // A dialer-role hello signature cannot be replayed as an ack.
        let hello = Hello::signed(&pairs[1], 5);
        let forged = HelloAck {
            magic: MAGIC,
            version: VERSION,
            responder: hello.sender,
            session: 5,
            nonce: 0,
            sig: hello.sig,
        };
        assert_eq!(
            forged.verify(&dir, ProcessId(2), 5),
            Err(HandshakeError::BadSignature)
        );
    }

    #[test]
    fn frame_body_from_parts_matches_struct_encoding() {
        let (pairs, _) = keys();
        let mac = pairs[0].sign(b"m");
        let payload = vec![7u8; 33];
        let via_struct = to_bytes(&Frame {
            sender: ProcessId(3),
            seq: 12,
            payload: payload.clone(),
            mac: mac.clone(),
        });
        let via_parts = encode_frame_body(ProcessId(3), 12, &payload, &mac);
        assert_eq!(via_struct, via_parts);
    }

    #[test]
    fn error_display_nonempty() {
        let errs: Vec<Box<dyn Error>> = vec![
            Box::new(FrameError::Truncated),
            Box::new(FrameError::Oversized { len: 1 << 30 }),
            Box::new(FrameError::Io(io::Error::other("x"))),
            Box::new(FrameError::Malformed(WireError::Invalid("x"))),
            Box::new(HandshakeError::BadMagic { got: 0 }),
            Box::new(HandshakeError::BadVersion { got: 0 }),
            Box::new(HandshakeError::UnknownPeer {
                claimed: ProcessId(9),
            }),
            Box::new(HandshakeError::BadSignature),
            Box::new(HandshakeError::WrongResponder),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
