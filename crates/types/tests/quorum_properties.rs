//! Property tests over the whole `(n, f, t)` configuration lattice: every
//! quorum-intersection inequality the correctness proofs rely on must hold
//! for every valid configuration (not just the minimal ones).

use fastbft_types::{Config, ProcessId, View};
use proptest::prelude::*;

fn valid_configs() -> impl Strategy<Value = Config> {
    (1usize..=8, 0usize..=8, 0usize..=10).prop_map(|(f, t_off, extra)| {
        let t = 1 + t_off % f.max(1);
        let t = t.min(f);
        Config::new(Config::min_n(f, t) + extra, f, t).expect("valid by construction")
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    /// (QI1): two (n−f)-quorums intersect in more than f processes.
    #[test]
    fn qi1_all_valid_configs(cfg in valid_configs()) {
        prop_assert!(cfg.qi1_intersection() > cfg.f() as isize, "{cfg}");
    }

    /// (QI3): an (n−f)-quorum and a 2f-set with ≤ f−1 Byzantine members
    /// share a correct process.
    #[test]
    fn qi3_all_valid_configs(cfg in valid_configs()) {
        prop_assert!(cfg.qi3_correct_intersection() >= 1, "{cfg}");
    }

    /// (QI2), vanilla flavor: for t = f the intersection provides 2f correct
    /// processes — this is exactly where n ≥ 5f − 1 is needed.
    #[test]
    fn qi2_vanilla_configs(f in 1usize..=8, extra in 0usize..=10) {
        let cfg = Config::new(Config::min_n(f, f) + extra, f, f).unwrap();
        prop_assert!(cfg.qi2_correct_intersection() >= 2 * f as isize, "{cfg}");
    }

    /// Appendix A intersection: any (n−f) vote set and (n−t) ack set share
    /// at least (f−1) + (f+t) processes, i.e. f+t correct ones.
    #[test]
    fn generalized_fast_vote_intersection(cfg in valid_configs()) {
        let inter = (cfg.vote_quorum() + cfg.fast_quorum()) as isize - cfg.n() as isize;
        prop_assert!(
            inter >= (cfg.f() as isize - 1) + cfg.selection_quorum() as isize,
            "{cfg}: intersection {inter}"
        );
    }

    /// Slow-path quorums: any two slow quorums intersect in a correct
    /// process; a slow quorum meets any fast quorum in a correct process;
    /// a slow quorum meets any (n−f) vote set in a correct process.
    #[test]
    fn slow_quorum_intersections(cfg in valid_configs()) {
        let n = cfg.n() as isize;
        let f = cfg.f() as isize;
        let s = cfg.slow_quorum() as isize;
        prop_assert!(2 * s - n > f, "{cfg}: slow/slow");
        prop_assert!(s + cfg.fast_quorum() as isize - n > f, "{cfg}: slow/fast");
        prop_assert!(s + cfg.vote_quorum() as isize - n > f, "{cfg}: slow/vote");
    }

    /// The cert-request fan-out always contains f + 1 correct processes.
    #[test]
    fn cert_request_targets_suffice(cfg in valid_configs()) {
        prop_assert!(cfg.cert_request_targets() >= cfg.f() + cfg.cert_quorum());
        prop_assert!(cfg.cert_request_targets() <= cfg.n(), "{cfg}");
    }

    /// The resilience bound itself: min_n is exactly max(3f+2t−1, 3f+1),
    /// one below it is rejected, and FaB's bound is always two higher.
    #[test]
    fn bound_shape(f in 1usize..=8) {
        for t in 1..=f {
            let min = Config::min_n(f, t);
            prop_assert_eq!(min, (3 * f + 2 * t - 1).max(3 * f + 1));
            prop_assert!(Config::new(min, f, t).is_ok());
            prop_assert!(Config::new(min - 1, f, t).is_err());
            prop_assert_eq!(
                fastbft_types::ProtocolKind::FabPaxos.min_n(f, t),
                3 * f + 2 * t + 1
            );
        }
    }

    /// Leader rotation: every process leads infinitely often (within any
    /// window of n consecutive views each process leads exactly once), for
    /// any offset.
    #[test]
    fn leader_round_robin(cfg in valid_configs(), start in 1u64..1000, offset in 0u64..100) {
        let cfg = cfg.with_leader_offset(offset);
        let leaders: std::collections::BTreeSet<ProcessId> =
            (start..start + cfg.n() as u64).map(|v| cfg.leader(View(v))).collect();
        prop_assert_eq!(leaders.len(), cfg.n());
    }

    /// Offsets change only *who* leads, never the quorum arithmetic.
    #[test]
    fn offset_preserves_quorums(cfg in valid_configs(), offset in 0u64..1000) {
        let rotated = cfg.with_leader_offset(offset);
        prop_assert_eq!(rotated.vote_quorum(), cfg.vote_quorum());
        prop_assert_eq!(rotated.fast_quorum(), cfg.fast_quorum());
        prop_assert_eq!(rotated.slow_quorum(), cfg.slow_quorum());
        prop_assert_eq!(rotated.cert_quorum(), cfg.cert_quorum());
        prop_assert_eq!(rotated.selection_quorum(), cfg.selection_quorum());
        // offset = n is the identity rotation.
        let full_turn = cfg.with_leader_offset(cfg.n() as u64);
        prop_assert_eq!(full_turn.leader(View(7)), cfg.leader(View(7)));
    }
}

#[test]
fn quorums_are_monotone_in_n() {
    // Growing the system at fixed (f, t) only grows the quorums; never
    // shrinks the safety margin.
    for f in 1..=4 {
        for t in 1..=f {
            let mut last_vote = 0;
            let mut last_fast = 0;
            for extra in 0..6 {
                let cfg = Config::new(Config::min_n(f, t) + extra, f, t).unwrap();
                assert!(cfg.vote_quorum() >= last_vote);
                assert!(cfg.fast_quorum() >= last_fast);
                last_vote = cfg.vote_quorum();
                last_fast = cfg.fast_quorum();
            }
        }
    }
}
