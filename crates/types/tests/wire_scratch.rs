//! Property tests for the buffer-reuse encoding path: `encode_into` with a
//! dirty, reused scratch buffer must be byte-identical to the fresh-`Vec`
//! `to_wire_bytes` encoding, and decode back to the same value — the
//! invariant the transport's zero-allocation hot path rests on.

use fastbft_types::wire::{encode_into, from_bytes, to_bytes, Encode};
use fastbft_types::{ProcessId, Value, View};
use proptest::prelude::*;

/// Encodes twice into the same scratch (leaving it dirty in between) and
/// checks canonical bytes + round-trip.
fn check_scratch_reuse<T>(value: &T, scratch: &mut Vec<u8>)
where
    T: Encode + fastbft_types::wire::Decode + PartialEq + std::fmt::Debug,
{
    let canonical = to_bytes(value);
    // First use: scratch may hold arbitrary garbage from a previous
    // message — encode_into must clear it.
    let bytes = encode_into(value, scratch);
    assert_eq!(bytes, canonical, "scratch encoding not canonical");
    let decoded: T = from_bytes(bytes).expect("canonical bytes decode");
    assert_eq!(&decoded, value, "decode(encode_into(x)) != x");
    // Second use of the same (now non-empty) scratch.
    let bytes = encode_into(value, scratch);
    assert_eq!(bytes, canonical, "reused scratch changed the encoding");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    #[test]
    fn values_encode_identically_through_reused_scratch(
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        garbage in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut scratch = garbage; // start dirty
        check_scratch_reuse(&Value::new(payload), &mut scratch);
    }

    #[test]
    fn primitive_and_composite_types_roundtrip_through_scratch(
        a in any::<u64>(),
        b in any::<u32>(),
        c in proptest::collection::vec(any::<u64>(), 0..32),
        opt in any::<bool>(),
    ) {
        let mut scratch = vec![0xAA; 17];
        check_scratch_reuse(&a, &mut scratch);
        check_scratch_reuse(&ProcessId(b), &mut scratch);
        check_scratch_reuse(&View(a), &mut scratch);
        check_scratch_reuse(&c, &mut scratch);
        check_scratch_reuse(&if opt { Some(a) } else { None }, &mut scratch);
    }

    /// Back-to-back encodings of *different* values through one scratch
    /// never contaminate each other.
    #[test]
    fn sequential_messages_share_one_scratch(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64), 1..16),
    ) {
        let mut scratch = Vec::new();
        for p in &payloads {
            let v = Value::new(p.clone());
            let bytes = encode_into(&v, &mut scratch).to_vec();
            prop_assert_eq!(&bytes, &to_bytes(&v));
            let back: Value = from_bytes(&bytes).unwrap();
            prop_assert_eq!(back, v);
        }
    }
}
