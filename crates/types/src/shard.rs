//! Key-range sharding: the map from client keys to consensus groups.
//!
//! A sharded deployment runs `m` independent consensus groups over one
//! process mesh; each group owns a contiguous range of the key space and
//! orders only the commands whose keys fall in its range. [`ShardMap`] is
//! the pure, deterministic partition every layer shares: clients use it to
//! route submissions, replicas use it to assert a committed command
//! belongs to the group that committed it, and the metrics plane uses it
//! to label per-group series.
//!
//! The partition is **by leading key byte**: shard `s` owns the keys whose
//! first byte lies in `range_of(s)`. Contiguous byte ranges (rather than a
//! hash) keep the map trivially enumerable and make range scans within one
//! shard stay on one group. The empty key belongs to shard 0.

use std::fmt;

/// Maximum number of shards a [`ShardMap`] supports (one per possible
/// leading key byte).
pub const MAX_SHARDS: usize = 256;

/// A deterministic partition of the key space into `m` contiguous
/// first-byte ranges, one per consensus group.
///
/// ```
/// use fastbft_types::ShardMap;
///
/// let map = ShardMap::new(4);
/// assert_eq!(map.shards(), 4);
/// assert_eq!(map.shard_of(b"apple"), 1);   // b'a' = 0x61 -> shard 1
/// assert_eq!(map.shard_of(b"zebra"), 1);   // b'z' = 0x7a -> shard 1
/// assert_eq!(map.shard_of(&[0xff]), 3);
/// let (lo, hi) = map.range_of(1);
/// assert!((lo..=hi).contains(&b'a'));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ShardMap {
    shards: usize,
}

impl ShardMap {
    /// A partition into `shards` groups.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= shards <= MAX_SHARDS`.
    pub fn new(shards: usize) -> Self {
        assert!(
            (1..=MAX_SHARDS).contains(&shards),
            "shard count must be in 1..={MAX_SHARDS}"
        );
        ShardMap { shards }
    }

    /// Number of shards (consensus groups) in the partition.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key`, by its leading byte (`0` for the empty
    /// key). Always `< shards()`.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        let lead = key.first().copied().unwrap_or(0) as usize;
        lead * self.shards / 256
    }

    /// The inclusive leading-byte range `(lo, hi)` owned by `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= shards()`.
    pub fn range_of(&self, shard: usize) -> (u8, u8) {
        assert!(shard < self.shards, "shard {shard} out of range");
        // The smallest lead byte b with b * shards / 256 == shard is
        // ceil(shard * 256 / shards); the range ends where the next shard
        // begins.
        let lo = (shard * 256).div_ceil(self.shards);
        let hi = ((shard + 1) * 256).div_ceil(self.shards) - 1;
        (lo as u8, hi.min(255) as u8)
    }
}

impl fmt::Display for ShardMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ShardMap({} shards)", self.shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_owns_everything() {
        let map = ShardMap::new(1);
        for b in 0..=255u8 {
            assert_eq!(map.shard_of(&[b]), 0);
        }
        assert_eq!(map.range_of(0), (0, 255));
    }

    #[test]
    fn shard_of_is_total_and_in_range() {
        for shards in [1, 2, 3, 4, 5, 7, 16, 255, 256] {
            let map = ShardMap::new(shards);
            for b in 0..=255u8 {
                assert!(map.shard_of(&[b]) < shards, "{shards} shards, byte {b}");
            }
            assert_eq!(map.shard_of(b""), 0);
        }
    }

    #[test]
    fn ranges_tile_the_byte_space() {
        // The per-shard ranges are contiguous, non-overlapping, cover
        // 0..=255, and agree with shard_of — the partition is exact.
        for shards in [1, 2, 3, 4, 6, 10, 100, 256] {
            let map = ShardMap::new(shards);
            let mut next = 0usize;
            for s in 0..shards {
                let (lo, hi) = map.range_of(s);
                assert_eq!(lo as usize, next, "{shards} shards: gap before {s}");
                assert!(lo <= hi, "{shards} shards: empty range {s}");
                for b in lo..=hi {
                    assert_eq!(map.shard_of(&[b]), s, "{shards} shards, byte {b}");
                }
                next = hi as usize + 1;
            }
            assert_eq!(next, 256, "{shards} shards: space not covered");
        }
    }

    #[test]
    fn shards_are_balanced_within_one() {
        // Contiguous ranges of 256 bytes over m shards differ by at most
        // one byte in width.
        for shards in [2, 3, 4, 5, 7, 9, 64] {
            let map = ShardMap::new(shards);
            let widths: Vec<usize> = (0..shards)
                .map(|s| {
                    let (lo, hi) = map.range_of(s);
                    hi as usize - lo as usize + 1
                })
                .collect();
            let min = widths.iter().min().unwrap();
            let max = widths.iter().max().unwrap();
            assert!(max - min <= 1, "{shards} shards: widths {widths:?}");
        }
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn zero_shards_rejected() {
        ShardMap::new(0);
    }
}
