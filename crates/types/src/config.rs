//! System configuration `(n, f, t)` and quorum arithmetic.
//!
//! Every threshold the paper uses is defined here exactly once, with unit
//! tests re-deriving the pigeonhole arguments (QI1)–(QI3) of Section 3.3 and
//! the Appendix A intersection bounds for a sweep of valid configurations.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{ProcessId, View};

/// Error returned when constructing an invalid [`Config`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `n` was below the protocol's resilience bound.
    TooFewProcesses {
        /// Requested system size.
        n: usize,
        /// Minimum size for the requested `(f, t)`.
        required: usize,
    },
    /// `t` must satisfy `1 ≤ t ≤ f`.
    InvalidThreshold {
        /// Requested fast-path fault threshold.
        t: usize,
        /// Requested resilience.
        f: usize,
    },
    /// `f` must be at least 1 (the `f = 0` case is trivial; see §4.1).
    ZeroResilience,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::TooFewProcesses { n, required } => {
                write!(
                    f,
                    "n = {n} processes is below the bound (need n >= {required})"
                )
            }
            ConfigError::InvalidThreshold { t, f: ff } => {
                write!(
                    f,
                    "fast-path threshold t = {t} must satisfy 1 <= t <= f = {ff}"
                )
            }
            ConfigError::ZeroResilience => write!(f, "resilience f must be at least 1"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// System parameters: `n` processes tolerating `f` Byzantine failures,
/// remaining *fast* (two-step) while at most `t ≤ f` processes are faulty.
///
/// The paper's two protocol flavors are both captured:
///
/// * **vanilla** (`t = f`): `n ≥ 5f − 1` — [`Config::vanilla`];
/// * **generalized**: `n ≥ 3f + 2t − 1` — [`Config::new`].
///
/// ```
/// use fastbft_types::Config;
///
/// // The headline result: f = t = 1 needs only n = 4.
/// assert!(Config::new(4, 1, 1).is_ok());
/// assert!(Config::new(3, 1, 1).is_err());
///
/// // Vanilla 5f - 1: f = 2 needs 9.
/// assert_eq!(Config::vanilla(9, 2).unwrap().t(), 2);
/// assert!(Config::vanilla(8, 2).is_err());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Config {
    n: usize,
    f: usize,
    t: usize,
    /// Rotation offset added to the leader map (default 0). Lets multi-slot
    /// deployments rotate first-leadership across slots for fairness; see
    /// [`Config::with_leader_offset`].
    #[serde(default)]
    offset: u64,
}

impl Config {
    /// Minimum number of processes for the generalized protocol:
    /// `max(3f + 2t − 1, 3f + 1)`.
    ///
    /// The `3f + 1` floor is the classic partially-synchronous Byzantine
    /// consensus bound (§4.4 notes resilience is
    /// `n = max{3f + 2t − 1, 3f + 1}`); for `t ≥ 1` the two coincide except
    /// at `t = 1`, where `3f + 2t − 1 = 3f + 1` anyway.
    pub fn min_n(f: usize, t: usize) -> usize {
        (3 * f + 2 * t).saturating_sub(1).max(3 * f + 1)
    }

    /// Creates a configuration for the generalized protocol.
    ///
    /// # Errors
    ///
    /// * [`ConfigError::ZeroResilience`] if `f = 0`;
    /// * [`ConfigError::InvalidThreshold`] unless `1 ≤ t ≤ f`;
    /// * [`ConfigError::TooFewProcesses`] if `n < max(3f + 2t − 1, 3f + 1)`.
    pub fn new(n: usize, f: usize, t: usize) -> Result<Self, ConfigError> {
        if f == 0 {
            return Err(ConfigError::ZeroResilience);
        }
        if t == 0 || t > f {
            return Err(ConfigError::InvalidThreshold { t, f });
        }
        let required = Self::min_n(f, t);
        if n < required {
            return Err(ConfigError::TooFewProcesses { n, required });
        }
        Ok(Config { n, f, t, offset: 0 })
    }

    /// Creates a configuration for the vanilla protocol (`t = f`,
    /// `n ≥ 5f − 1`).
    ///
    /// # Errors
    ///
    /// Same as [`Config::new`] with `t = f`.
    pub fn vanilla(n: usize, f: usize) -> Result<Self, ConfigError> {
        Config::new(n, f, f)
    }

    /// The smallest valid configuration for given `(f, t)`.
    ///
    /// # Panics
    ///
    /// Panics if `f = 0` or `t` is outside `1..=f`.
    pub fn minimal(f: usize, t: usize) -> Self {
        Config::new(Self::min_n(f, t), f, t).expect("minimal n is valid by construction")
    }

    /// Builds a configuration **without** checking the resilience bound.
    ///
    /// This exists solely for the lower-bound experiments (E4), which
    /// deliberately instantiate the protocol on `n = 3f + 2t − 2` processes
    /// to demonstrate that the adversary of Section 4 forces disagreement.
    /// Never use it for anything meant to be safe.
    pub fn new_unchecked(n: usize, f: usize, t: usize) -> Self {
        Config { n, f, t, offset: 0 }
    }

    /// Returns a copy whose leader map is rotated by `offset`:
    /// `leader(v) = p_{((v + offset) mod n) + 1}`.
    ///
    /// All replicas of one consensus instance must use the same offset. The
    /// SMR layer rotates by the slot number so every process gets to be the
    /// initial leader of some slots (command fairness); single-instance
    /// deployments leave it at the default 0, which is exactly the paper's
    /// map.
    #[must_use]
    pub fn with_leader_offset(mut self, offset: u64) -> Self {
        self.offset = offset;
        self
    }

    /// Number of processes `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Resilience `f`: maximum number of Byzantine processes tolerated.
    pub fn f(&self) -> usize {
        self.f
    }

    /// Fast-path threshold `t`: the protocol decides in two message delays
    /// while at most `t` processes are faulty.
    pub fn t(&self) -> usize {
        self.t
    }

    /// Whether this is a vanilla (`t = f`) configuration.
    pub fn is_vanilla(&self) -> bool {
        self.t == self.f
    }

    // -- quorum thresholds ---------------------------------------------------

    /// `n − f`: votes the new leader collects during view change; also the
    /// ack quorum of the vanilla protocol (where `t = f`).
    pub fn vote_quorum(&self) -> usize {
        self.n - self.f
    }

    /// `n − t`: acks needed for the **fast path** decision (two delays).
    pub fn fast_quorum(&self) -> usize {
        self.n - self.t
    }

    /// `⌈(n + f + 1) / 2⌉`: signature shares forming a commit certificate and
    /// `Commit` messages needed to decide on the **slow path** (Appendix A).
    pub fn slow_quorum(&self) -> usize {
        (self.n + self.f + 1).div_ceil(2)
    }

    /// `f + 1`: CertAck signatures forming a progress certificate (§3.2).
    pub fn cert_quorum(&self) -> usize {
        self.f + 1
    }

    /// `2f + 1`: processes the leader asks to confirm its selection (§3.2).
    pub fn cert_request_targets(&self) -> usize {
        2 * self.f + 1
    }

    /// `f + t`: votes for a single value that force its selection after the
    /// leader of view `w` is proved to have equivocated (Appendix A case 2).
    /// In the vanilla protocol this is the paper's `2f` (§3.2 case 1).
    pub fn selection_quorum(&self) -> usize {
        self.f + self.t
    }

    /// Number of correct processes guaranteed: `n − f`.
    pub fn correct(&self) -> usize {
        self.n - self.f
    }

    // -- leader map -----------------------------------------------------------

    /// The paper's round-robin leader map: `leader(v) = p_{(v mod n) + 1}`.
    ///
    /// ```
    /// use fastbft_types::{Config, View, ProcessId};
    /// let cfg = Config::new(4, 1, 1).unwrap();
    /// assert_eq!(cfg.leader(View(1)), ProcessId(2));
    /// assert_eq!(cfg.leader(View(4)), ProcessId(1));
    /// ```
    ///
    /// Note `leader(1) = p_2` under the paper's formula. Experiments that
    /// narrate "the first leader" use [`Config::leader`] everywhere, so the
    /// identity of `leader(1)` is consistent across the workspace.
    pub fn leader(&self, view: View) -> ProcessId {
        ProcessId(((view.0.wrapping_add(self.offset)) % self.n as u64) as u32 + 1)
    }

    /// Iterator over all process ids `p1 ..= pn`.
    pub fn processes(&self) -> impl Iterator<Item = ProcessId> + Clone {
        ProcessId::all(self.n)
    }

    // -- quorum-intersection sanity (used by tests and the checker) ----------

    /// (QI1) Any two `n − f` quorums intersect in ≥ `f + 1` processes, hence
    /// in at least one correct process. Returns the guaranteed intersection.
    pub fn qi1_intersection(&self) -> isize {
        2 * (self.vote_quorum() as isize) - self.n as isize
    }

    /// (QI2) An `n − f` quorum and an `n − f` quorum containing at most
    /// `f − 1` Byzantine processes intersect in ≥ `2f` correct processes.
    /// Returns `2(n−f) − n − (f−1)`, which must be ≥ `2f` (i.e. `n ≥ 5f−1`)
    /// for the vanilla protocol.
    pub fn qi2_correct_intersection(&self) -> isize {
        2 * (self.vote_quorum() as isize) - self.n as isize - (self.f as isize - 1)
    }

    /// (QI3) An `n − f` quorum and a `2f`-set with ≤ `f − 1` Byzantine
    /// members intersect in at least one correct process for any `n ≥ 2f`.
    pub fn qi3_correct_intersection(&self) -> isize {
        (self.vote_quorum() + 2 * self.f) as isize - self.n as isize - (self.f as isize - 1)
    }
}

impl fmt::Display for Config {
    fn fmt(&self, fmt: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(fmt, "(n={}, f={}, t={})", self.n, self.f, self.t)
    }
}

/// The protocols compared throughout the experiments, with their published
/// resilience and common-case latency. Used by the resilience/latency tables
/// (experiments E5/E6).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// This paper's protocol: `n = max(3f + 2t − 1, 3f + 1)`, 2 delays.
    Ktz,
    /// FaB Paxos (Martin & Alvisi): `n = 3f + 2t + 1`, 2 delays.
    FabPaxos,
    /// PBFT (Castro & Liskov): `n = 3f + 1`, 3 delays.
    Pbft,
}

impl ProtocolKind {
    /// Minimum number of processes to tolerate `f` faults while staying fast
    /// with up to `t` actual faults (`t` is ignored for PBFT, which has no
    /// fast path).
    pub fn min_n(self, f: usize, t: usize) -> usize {
        match self {
            ProtocolKind::Ktz => Config::min_n(f, t),
            ProtocolKind::FabPaxos => 3 * f + 2 * t + 1,
            ProtocolKind::Pbft => 3 * f + 1,
        }
    }

    /// Common-case decision latency in message delays.
    pub fn common_case_delays(self) -> usize {
        match self {
            ProtocolKind::Ktz | ProtocolKind::FabPaxos => 2,
            ProtocolKind::Pbft => 3,
        }
    }

    /// Human-readable protocol name.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Ktz => "KTZ21 (this paper)",
            ProtocolKind::FabPaxos => "FaB Paxos",
            ProtocolKind::Pbft => "PBFT",
        }
    }

    /// All compared protocols.
    pub const ALL: [ProtocolKind; 3] = [
        ProtocolKind::Ktz,
        ProtocolKind::FabPaxos,
        ProtocolKind::Pbft,
    ];
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_result_four_processes() {
        // f = t = 1: 4 processes, optimal for any PS Byzantine consensus.
        let cfg = Config::new(4, 1, 1).unwrap();
        assert_eq!(cfg.vote_quorum(), 3);
        assert_eq!(cfg.fast_quorum(), 3);
        assert_eq!(cfg.slow_quorum(), 3);
        assert_eq!(cfg.cert_quorum(), 2);
        assert_eq!(cfg.selection_quorum(), 2);
        // FaB needs 6 for the same guarantee.
        assert_eq!(ProtocolKind::FabPaxos.min_n(1, 1), 6);
    }

    #[test]
    fn vanilla_is_five_f_minus_one() {
        for f in 1..=10 {
            let n = 5 * f - 1;
            let cfg = Config::vanilla(n.max(3 * f + 1), f).unwrap();
            assert!(cfg.is_vanilla());
            // For f >= 1, 5f-1 >= 3f+1 iff f >= 1.
            assert_eq!(Config::min_n(f, f), 5 * f - 1);
            // The vanilla selection threshold is the paper's 2f.
            assert_eq!(cfg.selection_quorum(), 2 * f);
        }
    }

    #[test]
    fn rejects_sub_bound_configurations() {
        assert_eq!(
            Config::new(3, 1, 1),
            Err(ConfigError::TooFewProcesses { n: 3, required: 4 })
        );
        assert_eq!(
            Config::vanilla(8, 2),
            Err(ConfigError::TooFewProcesses { n: 8, required: 9 })
        );
        assert_eq!(Config::new(10, 0, 0), Err(ConfigError::ZeroResilience));
        assert_eq!(
            Config::new(10, 2, 3),
            Err(ConfigError::InvalidThreshold { t: 3, f: 2 })
        );
        assert_eq!(
            Config::new(10, 2, 0),
            Err(ConfigError::InvalidThreshold { t: 0, f: 2 })
        );
    }

    #[test]
    fn unchecked_allows_sub_bound() {
        let cfg = Config::new_unchecked(8, 2, 2); // 3f+2t-2: the attack size
        assert_eq!(cfg.n(), 8);
        assert_eq!(cfg.fast_quorum(), 6);
    }

    /// Re-derive (QI1): any two (n−f)-quorums share a correct process.
    #[test]
    fn qi1_holds_for_all_valid_configs() {
        for f in 1..=6 {
            for t in 1..=f {
                for extra in 0..4 {
                    let cfg = Config::new(Config::min_n(f, t) + extra, f, t).unwrap();
                    assert!(
                        cfg.qi1_intersection() > cfg.f() as isize,
                        "QI1 fails for {cfg}"
                    );
                }
            }
        }
    }

    /// Re-derive (QI2) for vanilla configs: intersection has ≥ 2f correct.
    #[test]
    fn qi2_holds_for_vanilla_configs() {
        for f in 1..=8 {
            let cfg = Config::minimal(f, f);
            assert!(
                cfg.qi2_correct_intersection() >= 2 * f as isize,
                "QI2 fails for {cfg}"
            );
        }
        // And fails one process below the bound, as the paper's tightness
        // argument requires.
        for f in 2..=8 {
            let cfg = Config::new_unchecked(5 * f - 2, f, f);
            assert!(cfg.qi2_correct_intersection() < 2 * f as isize);
        }
    }

    /// Re-derive (QI3): holds for any n ≥ 2f.
    #[test]
    fn qi3_holds_for_all_valid_configs() {
        for f in 1..=6 {
            for t in 1..=f {
                let cfg = Config::minimal(f, t);
                assert!(cfg.qi3_correct_intersection() >= 1, "QI3 fails for {cfg}");
            }
        }
    }

    /// Appendix A: an (n−f)-quorum and an (n−t)-quorum intersect in at least
    /// (f−1) + (f+t) processes, i.e. ≥ f+t correct ones.
    #[test]
    fn appendix_a_fast_vote_intersection() {
        for f in 1..=6 {
            for t in 1..=f {
                let cfg = Config::minimal(f, t);
                let inter = (cfg.vote_quorum() + cfg.fast_quorum()) as isize - cfg.n() as isize;
                assert!(
                    inter >= (cfg.f() as isize - 1) + cfg.selection_quorum() as isize,
                    "fast/vote intersection too small for {cfg}"
                );
            }
        }
    }

    /// Appendix A: two slow quorums intersect in a correct process, and a
    /// slow quorum intersects any fast quorum in a correct process.
    #[test]
    fn slow_quorum_intersections() {
        for f in 1..=6 {
            for t in 1..=f {
                for extra in 0..3 {
                    let cfg = Config::new(Config::min_n(f, t) + extra, f, t).unwrap();
                    let s = cfg.slow_quorum() as isize;
                    let n = cfg.n() as isize;
                    let ff = cfg.f() as isize;
                    assert!(2 * s - n > ff, "slow/slow intersection for {cfg}");
                    let fast = cfg.fast_quorum() as isize;
                    assert!(s + fast - n > ff, "slow/fast intersection for {cfg}");
                }
            }
        }
    }

    #[test]
    fn leader_is_round_robin() {
        let cfg = Config::new(4, 1, 1).unwrap();
        let leaders: Vec<_> = (1..=8).map(|v| cfg.leader(View(v)).0).collect();
        assert_eq!(leaders, vec![2, 3, 4, 1, 2, 3, 4, 1]);
        // Every process leads infinitely often (property 2 of view sync).
        for p in cfg.processes() {
            assert!((1..=4u64).any(|v| cfg.leader(View(v)) == p));
        }
    }

    #[test]
    fn protocol_kind_table_matches_paper() {
        // §1.2: f = t = 1 — ours needs 4, previous protocols 6.
        assert_eq!(ProtocolKind::Ktz.min_n(1, 1), 4);
        assert_eq!(ProtocolKind::FabPaxos.min_n(1, 1), 6);
        assert_eq!(ProtocolKind::Pbft.min_n(1, 0), 4);
        // §1.1: ours and FaB are two-step; PBFT three-step.
        assert_eq!(ProtocolKind::Ktz.common_case_delays(), 2);
        assert_eq!(ProtocolKind::FabPaxos.common_case_delays(), 2);
        assert_eq!(ProtocolKind::Pbft.common_case_delays(), 3);
        // Vanilla: 5f−1 vs FaB's 5f+1.
        for f in 1..=5 {
            assert_eq!(
                ProtocolKind::Ktz.min_n(f, f) + 2,
                ProtocolKind::FabPaxos.min_n(f, f)
            );
        }
    }

    #[test]
    fn display_formats() {
        let cfg = Config::new(9, 2, 2).unwrap();
        assert_eq!(cfg.to_string(), "(n=9, f=2, t=2)");
        assert!(!ProtocolKind::Ktz.to_string().is_empty());
        assert!(ConfigError::ZeroResilience.to_string().contains('f'));
    }
}
