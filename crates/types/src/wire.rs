//! Deterministic binary codec.
//!
//! The protocol signs message *bytes*, so the byte encoding of a message is
//! part of the protocol: it must be canonical (one value → exactly one byte
//! string) and self-delimiting. This module provides a small, dependency-free
//! codec with those properties:
//!
//! * fixed-width big-endian integers,
//! * length-prefixed byte strings and sequences (`u32` lengths),
//! * `Option<T>` as a one-byte tag followed by the payload,
//! * structs encoded field-by-field in declaration order.
//!
//! Decoding is strict: trailing bytes, truncated input and invalid tags are
//! all errors, so `decode(encode(x)) == x` and `encode(decode(b)) == b` for
//! every accepted `b`.
//!
//! ```
//! use fastbft_types::wire::{to_bytes, from_bytes};
//! let xs: Vec<u32> = vec![1, 2, 3];
//! let bytes = to_bytes(&xs);
//! let back: Vec<u32> = from_bytes(&bytes).unwrap();
//! assert_eq!(xs, back);
//! ```

use std::error::Error;
use std::fmt;

/// Maximum length accepted for any single length-prefixed field (16 MiB).
///
/// This bounds allocation on decode: a malicious (or corrupted) length prefix
/// cannot force a huge allocation.
pub const MAX_FIELD_LEN: usize = 16 * 1024 * 1024;

/// Maximum byte length of one framed network message (the body of a
/// length-prefixed frame on a socket, as read by `fastbft-net`).
///
/// [`MAX_FIELD_LEN`] bounds every *inner* field, so the largest legal frame
/// is one maximal field plus a small fixed header (sender id, sequence
/// number, payload length prefix, MAC); 256 bytes of slack covers any frame
/// header this workspace defines. A peer declaring a larger frame is hostile
/// or corrupt — the transport must drop the connection *before* allocating.
pub const MAX_FRAME_LEN: usize = MAX_FIELD_LEN + 256;

// The frame bound must admit a maximal field plus a small header, and
// nothing unboundedly larger.
const _: () = assert!(MAX_FRAME_LEN > MAX_FIELD_LEN);
const _: () = assert!(MAX_FRAME_LEN - MAX_FIELD_LEN <= 4096);

/// Error produced when decoding malformed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value was fully decoded.
    UnexpectedEnd {
        /// How many more bytes were needed.
        needed: usize,
        /// How many bytes remained.
        remaining: usize,
    },
    /// A tag byte (e.g. for `Option` or an enum) had an invalid value.
    InvalidTag {
        /// The offending tag.
        tag: u8,
        /// What was being decoded.
        context: &'static str,
    },
    /// A length prefix exceeded [`MAX_FIELD_LEN`].
    LengthOverflow {
        /// The declared length.
        len: usize,
    },
    /// Input had bytes left over after the value was decoded.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
    /// A value failed domain validation (e.g. non-UTF-8 string).
    Invalid(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEnd { needed, remaining } => {
                write!(
                    f,
                    "unexpected end of input: needed {needed} bytes, {remaining} remaining"
                )
            }
            WireError::InvalidTag { tag, context } => {
                write!(f, "invalid tag byte {tag:#04x} while decoding {context}")
            }
            WireError::LengthOverflow { len } => {
                write!(f, "declared length {len} exceeds maximum field length")
            }
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after decoded value")
            }
            WireError::Invalid(what) => write!(f, "invalid value: {what}"),
        }
    }
}

impl Error for WireError {}

/// Types that can be deterministically encoded to bytes.
pub trait Encode {
    /// Appends the canonical encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Convenience: encodes into a fresh buffer.
    fn to_wire_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }
}

/// Types that can be decoded from bytes produced by [`Encode`].
pub trait Decode: Sized {
    /// Decodes a value, consuming bytes from the reader.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the input is truncated or malformed.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;
}

/// Cursor over a byte slice used by [`Decode`] implementations.
#[derive(Debug)]
pub struct WireReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        WireReader { bytes, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Takes exactly `n` bytes from the input.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEnd`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEnd {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Takes a single byte.
    pub fn take_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32` length prefix, validating it against [`MAX_FIELD_LEN`]
    /// *and* against the bytes actually remaining.
    ///
    /// The remaining-bytes check is sound because every `Decode` impl in
    /// this codec consumes at least one byte per decoded element, so a
    /// declared count larger than the remaining input can never decode; it
    /// is rejected up front (as [`WireError::UnexpectedEnd`]) rather than
    /// after element-by-element work. Together with the [`MAX_FIELD_LEN`]
    /// cap this is the DoS guard the network transport relies on: hostile
    /// length prefixes can force neither large allocations nor large
    /// decoding loops.
    pub fn take_len(&mut self) -> Result<usize, WireError> {
        let len = u32::decode(self)? as usize;
        if len > MAX_FIELD_LEN {
            return Err(WireError::LengthOverflow { len });
        }
        if len > self.remaining() {
            return Err(WireError::UnexpectedEnd {
                needed: len,
                remaining: self.remaining(),
            });
        }
        Ok(len)
    }
}

/// Encodes a value into a fresh byte vector.
pub fn to_bytes<T: Encode + ?Sized>(value: &T) -> Vec<u8> {
    value.to_wire_bytes()
}

/// Encodes a value into a caller-owned scratch buffer, reusing its
/// allocation: the buffer is cleared first, so the result is exactly the
/// canonical encoding ([`to_bytes`] produces identical bytes — pinned by a
/// property test).
///
/// This is the allocation-free sibling of [`to_bytes`] for hot paths that
/// encode many messages in a loop (the network transport encodes one
/// message per frame): the scratch `Vec` grows to the high-water mark once
/// and is reused forever after.
pub fn encode_into<'a, T: Encode + ?Sized>(value: &T, scratch: &'a mut Vec<u8>) -> &'a [u8] {
    scratch.clear();
    value.encode(scratch);
    scratch
}

/// Decodes a value from `bytes`, requiring the entire input to be consumed.
///
/// # Errors
///
/// Returns a [`WireError`] on truncated, malformed or over-long input.
pub fn from_bytes<T: Decode>(bytes: &[u8]) -> Result<T, WireError> {
    let mut r = WireReader::new(bytes);
    let value = T::decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes {
            remaining: r.remaining(),
        });
    }
    Ok(value)
}

/// Test helper: asserts that `value` survives an encode/decode round trip and
/// that re-encoding the decoded value reproduces the same bytes (canonicity).
///
/// # Panics
///
/// Panics if the round trip changes the value or the bytes.
pub fn roundtrip<T: Encode + Decode + PartialEq + fmt::Debug>(value: &T) {
    let bytes = to_bytes(value);
    let decoded: T = from_bytes(&bytes).expect("decoding encoded bytes must succeed");
    assert_eq!(&decoded, value, "decode(encode(x)) != x");
    assert_eq!(to_bytes(&decoded), bytes, "encode not canonical");
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_int {
    ($($ty:ty),*) => {$(
        impl Encode for $ty {
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_be_bytes());
            }
        }
        impl Decode for $ty {
            fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                let bytes = r.take(std::mem::size_of::<$ty>())?;
                Ok(<$ty>::from_be_bytes(bytes.try_into().expect("sized take")))
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, u128, i64);

impl Encode for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }
}

impl Decode for bool {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::InvalidTag {
                tag,
                context: "bool",
            }),
        }
    }
}

impl Encode for [u8] {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        buf.extend_from_slice(self);
    }
}

/// 32-byte arrays (digests) travel as raw bytes — their length is part of
/// the type, so a length prefix would only add redundancy (and a second,
/// non-canonical encoding of the same value).
impl Encode for [u8; 32] {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(self);
    }
}

impl Decode for [u8; 32] {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(r.take(32)?.try_into().expect("sized take"))
    }
}

impl Encode for str {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.as_bytes().encode(buf);
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.as_str().encode(buf);
    }
}

impl Decode for String {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let bytes = Vec::<u8>::decode(r)?;
        String::from_utf8(bytes).map_err(|_| WireError::Invalid("non-UTF-8 string"))
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(WireError::InvalidTag {
                tag,
                context: "Option",
            }),
        }
    }
}

/// Length-prefixed sequences of any encodable element type.
///
/// For `Vec<u8>` this produces exactly the same bytes as the `[u8]` impl
/// (a `u32` length followed by the raw bytes), so byte strings and generic
/// sequences share one canonical form.
impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = r.take_len()?;
        let mut out = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

/// Implements `Encode`/`Decode` for a struct by listing its fields in order.
///
/// ```
/// use fastbft_types::impl_wire_struct;
/// # use fastbft_types::wire::{Encode, Decode, roundtrip};
/// #[derive(Debug, PartialEq)]
/// struct Point { x: u32, y: u32 }
/// impl_wire_struct!(Point { x, y });
/// roundtrip(&Point { x: 1, y: 2 });
/// ```
#[macro_export]
macro_rules! impl_wire_struct {
    ($name:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::wire::Encode for $name {
            fn encode(&self, buf: &mut Vec<u8>) {
                $( $crate::wire::Encode::encode(&self.$field, buf); )+
            }
        }
        impl $crate::wire::Decode for $name {
            fn decode(
                r: &mut $crate::wire::WireReader<'_>,
            ) -> Result<Self, $crate::wire::WireError> {
                Ok($name {
                    $( $field: $crate::wire::Decode::decode(r)?, )+
                })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ints_roundtrip() {
        roundtrip(&0u8);
        roundtrip(&255u8);
        roundtrip(&0xDEADu16);
        roundtrip(&0xDEADBEEFu32);
        roundtrip(&u64::MAX);
        roundtrip(&u128::MAX);
        roundtrip(&(-42i64));
    }

    #[test]
    fn bools_roundtrip_and_reject_bad_tags() {
        roundtrip(&true);
        roundtrip(&false);
        assert!(matches!(
            from_bytes::<bool>(&[2]),
            Err(WireError::InvalidTag { tag: 2, .. })
        ));
    }

    #[test]
    fn byte_vectors_roundtrip() {
        roundtrip(&Vec::<u8>::new());
        roundtrip(&vec![1u8, 2, 3]);
        roundtrip(&vec![0u8; 1000]);
    }

    #[test]
    fn strings_roundtrip_and_reject_bad_utf8() {
        roundtrip(&String::from("hello"));
        roundtrip(&String::new());
        // length 1, byte 0xFF: invalid UTF-8
        let bad = [0u8, 0, 0, 1, 0xFF];
        assert!(matches!(
            from_bytes::<String>(&bad),
            Err(WireError::Invalid(_))
        ));
    }

    #[test]
    fn options_roundtrip() {
        roundtrip(&Some(7u32));
        roundtrip(&Option::<u32>::None);
    }

    #[test]
    fn nested_sequences() {
        roundtrip(&vec![String::from("a"), String::from("bb")]);
        roundtrip(&vec![1u64, 2, 3]);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&7u32);
        bytes.push(0);
        assert!(matches!(
            from_bytes::<u32>(&bytes),
            Err(WireError::TrailingBytes { remaining: 1 })
        ));
    }

    #[test]
    fn truncated_input_rejected() {
        let bytes = to_bytes(&7u64);
        assert!(matches!(
            from_bytes::<u64>(&bytes[..4]),
            Err(WireError::UnexpectedEnd { .. })
        ));
    }

    #[test]
    fn oversized_length_rejected() {
        // u32::MAX length prefix
        let bytes = [0xFF, 0xFF, 0xFF, 0xFF];
        assert!(matches!(
            from_bytes::<Vec<u8>>(&bytes),
            Err(WireError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn declared_length_beyond_input_rejected_up_front() {
        // Declares 1 MiB of bytes but supplies 2: must fail immediately on
        // the length check, not after attempting a large decode.
        let mut bytes = to_bytes(&(1024u32 * 1024));
        bytes.extend_from_slice(&[0, 0]);
        assert!(matches!(
            from_bytes::<Vec<u8>>(&bytes),
            Err(WireError::UnexpectedEnd {
                needed: 1_048_576,
                remaining: 2
            })
        ));
    }

    #[test]
    fn hostile_lengths_rejected_for_nested_sequences() {
        // Outer sequence of 3 inner byte strings, where the middle inner
        // string lies about its length.
        let mut bytes = Vec::new();
        3u32.encode(&mut bytes);
        vec![1u8].encode(&mut bytes);
        (MAX_FIELD_LEN as u32).encode(&mut bytes); // huge inner claim
        assert!(matches!(
            from_bytes::<Vec<Vec<u8>>>(&bytes),
            Err(WireError::UnexpectedEnd { .. })
        ));
        // And one that overflows the absolute cap inside a valid outer.
        let mut bytes = Vec::new();
        1u32.encode(&mut bytes);
        (MAX_FIELD_LEN as u32 + 1).encode(&mut bytes);
        assert!(matches!(
            from_bytes::<Vec<Vec<u8>>>(&bytes),
            Err(WireError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            WireError::UnexpectedEnd {
                needed: 4,
                remaining: 1,
            },
            WireError::InvalidTag {
                tag: 9,
                context: "x",
            },
            WireError::LengthOverflow { len: 1 << 30 },
            WireError::TrailingBytes { remaining: 3 },
            WireError::Invalid("nope"),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn struct_macro_works_in_function_scope() {
        #[derive(Debug, PartialEq)]
        struct Pair {
            a: u16,
            b: Option<String>,
        }
        impl_wire_struct!(Pair { a, b });
        roundtrip(&Pair {
            a: 3,
            b: Some("x".into()),
        });
        roundtrip(&Pair { a: 0, b: None });
    }
}
