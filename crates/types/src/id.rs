//! Process identifiers and view numbers.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::wire::{Decode, Encode, WireError, WireReader};

/// Identifier of a process (the paper's `p_1, …, p_n`).
///
/// Identifiers are 1-based to match the paper's indexing: a system of `n`
/// processes uses `ProcessId(1) ..= ProcessId(n)`.
///
/// ```
/// use fastbft_types::ProcessId;
/// let p = ProcessId(3);
/// assert_eq!(p.index(), 2); // zero-based index into arrays
/// assert_eq!(format!("{p}"), "p3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ProcessId(pub u32);

impl ProcessId {
    /// Zero-based index of this process, usable as an array index.
    ///
    /// # Panics
    ///
    /// Panics if the identifier is 0 (identifiers are 1-based).
    pub fn index(self) -> usize {
        assert!(self.0 >= 1, "process identifiers are 1-based");
        (self.0 - 1) as usize
    }

    /// Builds a [`ProcessId`] from a zero-based index.
    pub fn from_index(index: usize) -> Self {
        ProcessId(index as u32 + 1)
    }

    /// Iterator over all process ids of an `n`-process system:
    /// `p1, p2, …, pn`.
    pub fn all(n: usize) -> impl Iterator<Item = ProcessId> + Clone {
        (1..=n as u32).map(ProcessId)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl Encode for ProcessId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
}

impl Decode for ProcessId {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ProcessId(u32::decode(r)?))
    }
}

/// A view number (the paper's `v`, `u`, `w`).
///
/// Views are strictly positive; the first view is [`View::FIRST`] (`v = 1`).
/// The value `0` is reserved for "no view yet" in a few internal protocol
/// bookkeeping places and is representable but never a valid protocol view.
///
/// ```
/// use fastbft_types::View;
/// let v = View::FIRST;
/// assert_eq!(v.next(), View(2));
/// assert!(View(7) > View(3));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct View(pub u64);

impl View {
    /// The initial view, `v = 1`. Every process starts here; `leader(1)` may
    /// propose without a progress certificate (any value is safe in view 1).
    pub const FIRST: View = View(1);

    /// The successor view `v + 1`.
    #[must_use]
    pub fn next(self) -> View {
        View(self.0 + 1)
    }

    /// Whether this is the initial view.
    pub fn is_first(self) -> bool {
        self.0 == 1
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "view {}", self.0)
    }
}

impl Encode for View {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
}

impl Decode for View {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(View(u64::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::roundtrip;

    #[test]
    fn process_id_index_roundtrip() {
        for i in 0..64 {
            assert_eq!(ProcessId::from_index(i).index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn process_id_zero_index_panics() {
        let _ = ProcessId(0).index();
    }

    #[test]
    fn all_yields_one_based_ids() {
        let ids: Vec<_> = ProcessId::all(4).collect();
        assert_eq!(
            ids,
            vec![ProcessId(1), ProcessId(2), ProcessId(3), ProcessId(4)]
        );
    }

    #[test]
    fn view_ordering_and_next() {
        assert!(View::FIRST < View::FIRST.next());
        assert_eq!(View(41).next(), View(42));
        assert!(View::FIRST.is_first());
        assert!(!View(2).is_first());
    }

    #[test]
    fn display_formats() {
        assert_eq!(ProcessId(7).to_string(), "p7");
        assert_eq!(View(3).to_string(), "view 3");
    }

    #[test]
    fn wire_roundtrips() {
        roundtrip(&ProcessId(123));
        roundtrip(&View(u64::MAX));
        roundtrip(&View::FIRST);
    }
}
