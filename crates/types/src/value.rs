//! Consensus values.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::wire::{Decode, Encode, WireError, WireReader};

/// An opaque consensus value (the paper's `x`).
///
/// The protocol never inspects value contents; it only compares values for
/// equality and moves them around. `Value` is backed by [`Bytes`], so clones
/// are cheap reference bumps — important because the all-to-all `ack` phase
/// clones the proposed value `O(n²)` times per decision.
///
/// A value also carries a lazily computed, memoized 32-byte digest (see
/// [`Value::digest_with`]) shared by all clones. Every signed statement in
/// the protocol embeds `H(x)` rather than the value bytes, so the digest is
/// on the sign/verify hot path; memoizing it means a value's bytes are
/// hashed at most once per allocation, no matter how many signatures
/// mention it. The digest is identity metadata, not content: it never
/// travels on the wire and is excluded from equality, ordering and hashing.
///
/// ```
/// use fastbft_types::Value;
/// let a = Value::from_u64(7);
/// let b = Value::new(7u64.to_be_bytes().to_vec());
/// assert_eq!(a, b);
/// assert_eq!(a.len(), 8);
/// ```
#[derive(Clone, Default, Serialize, Deserialize)]
pub struct Value {
    bytes: Bytes,
    /// Memoized digest of `bytes`; `Arc` so clones share one computation.
    digest: Arc<OnceLock<[u8; 32]>>,
}

impl Value {
    /// Creates a value from raw bytes.
    pub fn new(bytes: impl Into<Bytes>) -> Self {
        Value {
            bytes: bytes.into(),
            digest: Arc::new(OnceLock::new()),
        }
    }

    /// Convenience constructor: the big-endian encoding of `x`.
    ///
    /// Used throughout tests and experiments where values are just labels
    /// (e.g. the lower-bound construction uses values `0` and `1`).
    pub fn from_u64(x: u64) -> Self {
        Value::new(Bytes::copy_from_slice(&x.to_be_bytes()))
    }

    /// Interprets the value as a big-endian `u64` if it is exactly 8 bytes.
    pub fn as_u64(&self) -> Option<u64> {
        let arr: [u8; 8] = self.bytes.as_ref().try_into().ok()?;
        Some(u64::from_be_bytes(arr))
    }

    /// The raw bytes of the value.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Length of the value in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the value is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The memoized digest of the value bytes, computing it with `compute`
    /// on first use. Clones share the cache, so across a process each
    /// allocation is hashed at most once.
    ///
    /// Every caller in a process must supply the same hash function (this
    /// workspace uses SHA-256 via `fastbft_crypto::value_digest`): the
    /// first computation wins and later calls return it regardless of the
    /// closure passed. `fastbft_types` stays crypto-free; the hash function
    /// is injected by the layer that owns it.
    pub fn digest_with(&self, compute: impl FnOnce(&[u8]) -> [u8; 32]) -> &[u8; 32] {
        self.digest.get_or_init(|| compute(&self.bytes))
    }
}

// Equality, ordering and hashing are over the value *bytes* only: the
// memoized digest is derived metadata and two values with different cache
// states must still compare equal.
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.bytes == other.bytes
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.bytes.cmp(&other.bytes)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.bytes.hash(state);
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Values are usually short labels; show them as integers when they
        // parse as one, otherwise as hex (truncated).
        if let Some(x) = self.as_u64() {
            write!(f, "Value({x})")
        } else {
            write!(f, "Value(0x")?;
            for b in self.bytes.iter().take(8) {
                write!(f, "{b:02x}")?;
            }
            if self.bytes.len() > 8 {
                write!(f, "…")?;
            }
            write!(f, ")")
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::new(v)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::new(Bytes::copy_from_slice(s.as_bytes()))
    }
}

impl AsRef<[u8]> for Value {
    fn as_ref(&self) -> &[u8] {
        &self.bytes
    }
}

impl Encode for Value {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.bytes.as_ref().encode(buf);
    }
}

impl Decode for Value {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let bytes: Vec<u8> = Vec::<u8>::decode(r)?;
        Ok(Value::new(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::roundtrip;

    #[test]
    fn u64_roundtrip() {
        for x in [0u64, 1, 42, u64::MAX] {
            assert_eq!(Value::from_u64(x).as_u64(), Some(x));
        }
    }

    #[test]
    fn non_u64_values() {
        assert_eq!(Value::from("abc").as_u64(), None);
        assert_eq!(Value::from("abc").len(), 3);
        assert!(Value::default().is_empty());
    }

    #[test]
    fn clones_are_equal_and_cheap() {
        let v = Value::new(vec![9u8; 1024]);
        let c = v.clone();
        assert_eq!(v, c);
        // Bytes clones share storage.
        assert_eq!(v.as_bytes().as_ptr(), c.as_bytes().as_ptr());
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Value::default()).is_empty());
        assert_eq!(format!("{:?}", Value::from_u64(5)), "Value(5)");
        let long = Value::new(vec![0xFF; 20]);
        assert!(format!("{long:?}").contains('…'));
    }

    #[test]
    fn wire_roundtrips() {
        roundtrip(&Value::from_u64(99));
        roundtrip(&Value::from("hello world"));
        roundtrip(&Value::default());
    }

    #[test]
    fn digest_computed_once_and_shared_by_clones() {
        let v = Value::new(vec![3u8; 100]);
        let clone = v.clone();
        let mut calls = 0;
        let d1 = *v.digest_with(|b| {
            calls += 1;
            let mut d = [0u8; 32];
            d[0] = b[0];
            d
        });
        // Clones share the memo: the closure must not run again.
        let d2 = *clone.digest_with(|_| panic!("digest recomputed for a clone"));
        assert_eq!(calls, 1);
        assert_eq!(d1, d2);
        assert_eq!(d1[0], 3);
    }

    #[test]
    fn digest_cache_does_not_affect_identity() {
        let a = Value::from_u64(7);
        let b = Value::from_u64(7);
        a.digest_with(|_| [9u8; 32]);
        // Only `a` has a cached digest; equality, ordering and hashing must
        // still treat the two as the same value.
        assert_eq!(a, b);
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
        // The interior mutability clippy flags here is exactly what this
        // test pins down: the memo is excluded from Eq/Ord/Hash.
        #[allow(clippy::mutable_key_type)]
        let mut set = std::collections::HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }
}
