//! Consensus values.

use std::fmt;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::wire::{Decode, Encode, WireError, WireReader};

/// An opaque consensus value (the paper's `x`).
///
/// The protocol never inspects value contents; it only compares values for
/// equality and moves them around. `Value` is backed by [`Bytes`], so clones
/// are cheap reference bumps — important because the all-to-all `ack` phase
/// clones the proposed value `O(n²)` times per decision.
///
/// ```
/// use fastbft_types::Value;
/// let a = Value::from_u64(7);
/// let b = Value::new(7u64.to_be_bytes().to_vec());
/// assert_eq!(a, b);
/// assert_eq!(a.len(), 8);
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Value(Bytes);

impl Value {
    /// Creates a value from raw bytes.
    pub fn new(bytes: impl Into<Bytes>) -> Self {
        Value(bytes.into())
    }

    /// Convenience constructor: the big-endian encoding of `x`.
    ///
    /// Used throughout tests and experiments where values are just labels
    /// (e.g. the lower-bound construction uses values `0` and `1`).
    pub fn from_u64(x: u64) -> Self {
        Value(Bytes::copy_from_slice(&x.to_be_bytes()))
    }

    /// Interprets the value as a big-endian `u64` if it is exactly 8 bytes.
    pub fn as_u64(&self) -> Option<u64> {
        let arr: [u8; 8] = self.0.as_ref().try_into().ok()?;
        Some(u64::from_be_bytes(arr))
    }

    /// The raw bytes of the value.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Length of the value in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the value is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Values are usually short labels; show them as integers when they
        // parse as one, otherwise as hex (truncated).
        if let Some(x) = self.as_u64() {
            write!(f, "Value({x})")
        } else {
            write!(f, "Value(0x")?;
            for b in self.0.iter().take(8) {
                write!(f, "{b:02x}")?;
            }
            if self.0.len() > 8 {
                write!(f, "…")?;
            }
            write!(f, ")")
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::new(v)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value(Bytes::copy_from_slice(s.as_bytes()))
    }
}

impl AsRef<[u8]> for Value {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Encode for Value {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.as_ref().encode(buf);
    }
}

impl Decode for Value {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let bytes: Vec<u8> = Vec::<u8>::decode(r)?;
        Ok(Value::new(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::roundtrip;

    #[test]
    fn u64_roundtrip() {
        for x in [0u64, 1, 42, u64::MAX] {
            assert_eq!(Value::from_u64(x).as_u64(), Some(x));
        }
    }

    #[test]
    fn non_u64_values() {
        assert_eq!(Value::from("abc").as_u64(), None);
        assert_eq!(Value::from("abc").len(), 3);
        assert!(Value::default().is_empty());
    }

    #[test]
    fn clones_are_equal_and_cheap() {
        let v = Value::new(vec![9u8; 1024]);
        let c = v.clone();
        assert_eq!(v, c);
        // Bytes clones share storage.
        assert_eq!(v.as_bytes().as_ptr(), c.as_bytes().as_ptr());
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Value::default()).is_empty());
        assert_eq!(format!("{:?}", Value::from_u64(5)), "Value(5)");
        let long = Value::new(vec![0xFF; 20]);
        assert!(format!("{long:?}").contains('…'));
    }

    #[test]
    fn wire_roundtrips() {
        roundtrip(&Value::from_u64(99));
        roundtrip(&Value::from("hello world"));
        roundtrip(&Value::default());
    }
}
