//! Core data types for the `fastbft` workspace.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! reproduction of *"Revisiting Optimal Resilience of Fast Byzantine
//! Consensus"* (Kuznetsov, Tonkikh, Zhang — PODC 2021):
//!
//! * [`ProcessId`] and [`View`] — newtypes for process identifiers and view
//!   numbers (the paper's `p_i` and `v`);
//! * [`Value`] — an opaque consensus value (the paper's `x`);
//! * [`Config`] — the system parameters `(n, f, t)` together with all quorum
//!   thresholds used by the protocol and its proofs (`n − f`, `n − t`,
//!   `⌈(n+f+1)/2⌉`, `f + 1`, `2f + 1`, `f + t`);
//! * [`wire`] — a deterministic binary codec. Signatures are computed over
//!   encoded bytes, so the encoding is canonical by construction: every
//!   value has exactly one encoding and decoding is its inverse.
//!
//! # Example
//!
//! ```
//! use fastbft_types::{Config, View, ProcessId, Value};
//!
//! // f = t = 1: the paper's headline result — 4 processes suffice.
//! let cfg = Config::new(4, 1, 1).expect("4 >= 3f + 2t - 1");
//! assert_eq!(cfg.fast_quorum(), 3);          // n - t acks decide fast
//! // leader(v) = p_{(v mod n) + 1} — the paper's round-robin map.
//! assert_eq!(cfg.leader(View::FIRST), ProcessId(2));
//! let v = Value::from_u64(42);
//! assert_eq!(v, Value::from_u64(42));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod id;
mod shard;
mod value;
pub mod wire;

pub use config::{Config, ConfigError, ProtocolKind};
pub use id::{ProcessId, View};
pub use shard::{ShardMap, MAX_SHARDS};
pub use value::Value;

/// Result alias for wire decoding.
pub type WireResult<T> = Result<T, wire::WireError>;
