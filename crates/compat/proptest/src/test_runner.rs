//! Case execution: configuration, RNG, and the per-test runner.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies (deterministic per test and case).
pub type TestRng = StdRng;

/// Per-test configuration, mirroring the fields of proptest's
/// `ProptestConfig` that the workspace sets.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; the shim never rejects locally.
    pub max_local_rejects: u32,
    /// Accepted for compatibility; the shim never rejects globally.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
            max_local_rejects: 65_536,
            max_global_rejects: 1024,
        }
    }
}

/// A failed (or rejected) test case.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Marks the current case as failed with `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// The failure message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runs the configured number of cases for one property.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Creates a runner for `config`.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Runs `body` once per case with a per-case deterministic RNG, panicking
    /// on the first failure.
    ///
    /// Seeds derive from `name` (FNV-1a) and the case index, so every run of
    /// a given test explores the same inputs; `PROPTEST_SEED` perturbs them
    /// when set.
    pub fn run_cases(
        &mut self,
        name: &str,
        mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        let mut base: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            base ^= b as u64;
            base = base.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            if let Ok(x) = extra.parse::<u64>() {
                base ^= x;
            }
        }
        for case in 0..self.config.cases {
            let seed = base ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1));
            let mut rng = TestRng::seed_from_u64(seed);
            if let Err(e) = body(&mut rng) {
                panic!(
                    "proptest '{name}': case {case}/{} failed (seed {seed:#x}):\n{}",
                    self.config.cases,
                    e.message()
                );
            }
        }
    }
}
