//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of a given type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of the RNG state.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns for
    /// it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Retries generation until `f` accepts the value (up to a bounded
    /// number of attempts, then panics).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive values",
            self.whence
        );
    }
}

/// Strategy produced by [`crate::prop_oneof!`]: a uniform choice among
/// same-typed strategies.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union from its arms. Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for core::ops::Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
