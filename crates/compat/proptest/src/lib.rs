//! Offline stand-in for the [`proptest`](https://proptest-rs.github.io)
//! property-testing framework.
//!
//! The workspace builds without registry access, so this shim reimplements
//! the subset of proptest the test suites use:
//!
//! * the [`proptest!`] macro (`fn name(pat in strategy, …) { … }` syntax,
//!   with `#![proptest_config(…)]`);
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_oneof!`];
//! * [`strategy::Strategy`] with `prop_map`/`boxed`, [`strategy::Just`],
//!   integer-range and tuple strategies;
//! * [`fn@collection::vec`], [`option::of`], [`arbitrary::any`].
//!
//! Differences from the real crate: generation is seeded deterministically
//! from the test name (every run explores the same cases — failures are
//! reproducible by construction), and there is **no shrinking** — a failing
//! case reports the case number and assertion message, not a minimal
//! counterexample. That trade keeps the shim small while preserving the
//! property coverage of the suites.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Strategies for generating collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A number-of-elements range for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.lo..=self.hi_inclusive)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy produced by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates a `Vec` whose length lies in `size`, with elements drawn
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies for generating `Option`s.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy produced by [`of`].
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `None` about a quarter of the time, otherwise `Some` of the
    /// inner strategy's value.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// The `any::<T>()` entry point and the `Arbitrary` trait behind it.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;
    use rand::RngCore;

    /// Types with a canonical "generate any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Everything a property test module usually imports.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
///
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// # addition_commutes();
/// ```
///
/// In test modules each function carries `#[test]` (re-emitted verbatim by
/// the macro, exactly like real proptest); the example above omits it only
/// so the doctest can invoke the function directly.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ($config:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                runner.run_cases(stringify!($name), |__proptest_rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                    let __proptest_result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    __proptest_result
                });
            }
        )*
    };
}

/// Asserts a condition inside a property test, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__pl, __pr) = (&$left, &$right);
        if !(*__pl == *__pr) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __pl,
                __pr
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__pl, __pr) = (&$left, &$right);
        if !(*__pl == *__pr) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                __pl,
                __pr
            )));
        }
    }};
}

/// Asserts two expressions are unequal inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__pl, __pr) = (&$left, &$right);
        if *__pl == *__pr {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __pl
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__pl, __pr) = (&$left, &$right);
        if *__pl == *__pr {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`: {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                __pl
            )));
        }
    }};
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
