//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmarking crate.
//!
//! Provides the API subset the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Throughput`], [`Bencher::iter`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros — so
//! `cargo bench` compiles and runs without registry access.
//!
//! Instead of criterion's statistical engine, each benchmark is warmed up
//! briefly and then timed for a fixed budget (~60 ms, or the
//! `FASTBFT_BENCH_MS` env var); the mean time per iteration is printed with
//! derived throughput when declared. Good enough to rank hot paths; use the
//! real crate for publishable numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Measures closures passed to [`Bencher::iter`].
pub struct Bencher {
    measure_for: Duration,
    /// Mean nanoseconds per iteration, filled in by `iter`.
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `f` repeatedly and records the mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one call, also used to size the batch.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let first = t0.elapsed().max(Duration::from_nanos(1));

        let batch =
            (Duration::from_millis(1).as_nanos() / first.as_nanos()).clamp(1, 10_000) as u64;
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < self.measure_for {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            total += t.elapsed();
            iters += batch;
        }
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

/// Identifies a benchmark within a group: a function name, a parameter, or
/// both.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A benchmark named `function_name` for input `parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A benchmark identified only by its input parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration (reported as MiB/s).
    Bytes(u64),
    /// Elements processed per iteration (reported as Melem/s).
    Elements(u64),
}

/// Entry point handed to each bench function.
pub struct Criterion {
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("FASTBFT_BENCH_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(60u64);
        Criterion {
            measure_for: Duration::from_millis(ms),
        }
    }
}

fn report(label: &str, mean_ns: f64, throughput: Option<Throughput>) {
    let per_iter = if mean_ns >= 1_000_000.0 {
        format!("{:.3} ms", mean_ns / 1_000_000.0)
    } else if mean_ns >= 1_000.0 {
        format!("{:.3} µs", mean_ns / 1_000.0)
    } else {
        format!("{mean_ns:.1} ns")
    };
    match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let mibs = bytes as f64 / (mean_ns / 1e9) / (1024.0 * 1024.0);
            println!("bench {label:<40} {per_iter:>12}/iter  {mibs:>10.1} MiB/s");
        }
        Some(Throughput::Elements(elems)) => {
            let melems = elems as f64 / (mean_ns / 1e9) / 1e6;
            println!("bench {label:<40} {per_iter:>12}/iter  {melems:>10.2} Melem/s");
        }
        None => println!("bench {label:<40} {per_iter:>12}/iter"),
    }
}

impl Criterion {
    fn run_one(
        &mut self,
        label: &str,
        throughput: Option<Throughput>,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        let mut b = Bencher {
            measure_for: self.measure_for,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        if b.iters > 0 {
            report(label, b.mean_ns, throughput);
        } else {
            println!("bench {label:<40} (no measurement — iter was never called)");
        }
    }

    /// Benchmarks `f` under `name`.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        self.run_one(&name, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput
/// declaration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares how much data one iteration of subsequent benchmarks
    /// processes.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` as `group_name/id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, self.throughput, &mut f);
        self
    }

    /// Benchmarks `f` as `group_name/id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion
            .run_one(&label, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Finishes the group (no-op in the shim; kept for API compatibility).
    pub fn finish(self) {}
}

/// Re-export of [`std::hint::black_box`] under criterion's traditional name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a named group of benchmark functions, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
