//! Offline stand-in for the [`log`](https://docs.rs/log) facade.
//!
//! The workspace builds without registry access, so this shim provides
//! the `log` macro surface (`error!` … `trace!`) that SNIPPETS-style code
//! (`trace!("Replica {} <- {:?}", id, msg)`) expects — but instead of a
//! pluggable logger it routes every record into the
//! [`fastbft_obs`] **global flight recorder**: each invocation becomes a
//! structured [`Event`](fastbft_obs::Event) whose `kind` is the level
//! name, retrievable with [`fastbft_obs::global_recorder`].
//!
//! Differences from the real crate: there is no `set_logger` (the sink is
//! fixed), no module-path/file metadata, and no static max-level
//! filtering — all levels always record (the recorder ring is bounded,
//! so an over-chatty call site costs eviction, not memory).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Logging levels, mirroring `log::Level`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// The "error" level: unrecoverable faults.
    Error,
    /// The "warn" level: recoverable anomalies.
    Warn,
    /// The "info" level: high-level progress.
    Info,
    /// The "debug" level: development diagnostics.
    Debug,
    /// The "trace" level: per-message noise.
    Trace,
}

impl Level {
    /// The lowercase level name used as the recorded event's `kind`.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The macros' runtime entry point: records one preformatted event into
/// the global flight recorder. Public because the macros expand to it;
/// call sites should use the macros.
pub fn __record(level: Level, args: fmt::Arguments<'_>) {
    fastbft_obs::record_global(level.as_str(), args);
}

/// Logs at [`Level::Error`] into the global flight recorder.
#[macro_export]
macro_rules! error {
    ($($arg:tt)+) => { $crate::__record($crate::Level::Error, format_args!($($arg)+)) };
}

/// Logs at [`Level::Warn`] into the global flight recorder.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)+) => { $crate::__record($crate::Level::Warn, format_args!($($arg)+)) };
}

/// Logs at [`Level::Info`] into the global flight recorder.
#[macro_export]
macro_rules! info {
    ($($arg:tt)+) => { $crate::__record($crate::Level::Info, format_args!($($arg)+)) };
}

/// Logs at [`Level::Debug`] into the global flight recorder.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)+) => { $crate::__record($crate::Level::Debug, format_args!($($arg)+)) };
}

/// Logs at [`Level::Trace`] into the global flight recorder.
#[macro_export]
macro_rules! trace {
    ($($arg:tt)+) => { $crate::__record($crate::Level::Trace, format_args!($($arg)+)) };
}

/// Always true: the shim has no level filtering (see module docs).
#[macro_export]
macro_rules! log_enabled {
    ($($arg:tt)+) => {
        true
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macros_land_in_global_recorder() {
        trace!("Replica {} <- {}", 3, "Propose");
        debug!("stash depth {}", 17);
        let events = fastbft_obs::global_recorder().snapshot();
        assert!(events
            .iter()
            .any(|e| e.kind == "trace" && e.detail == "Replica 3 <- Propose"));
        assert!(events
            .iter()
            .any(|e| e.kind == "debug" && e.detail == "stash depth 17"));
        // All levels are always enabled in the shim (no static filtering).
        let enabled = log_enabled!(Level::Trace);
        assert!(enabled);
    }

    #[test]
    fn level_names() {
        assert_eq!(Level::Error.as_str(), "error");
        assert_eq!(Level::Trace.to_string(), "trace");
        assert!(Level::Error < Level::Trace);
    }
}
