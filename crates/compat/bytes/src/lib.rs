//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes) crate.
//!
//! The build environment for this workspace has no access to a crates
//! registry, so external dependencies are vendored as minimal API-compatible
//! shims under `crates/compat/`. This crate provides the subset of `bytes`
//! the workspace actually uses: a cheaply cloneable, immutable byte
//! container. Clones share the underlying allocation (reference counting),
//! which the workspace relies on — consensus values are cloned `O(n²)` times
//! per decision.
//!
//! To switch to the real crate, delete `crates/compat/bytes` and point the
//! `bytes` dependency entries at the registry instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous slice of memory.
///
/// Clones are reference bumps: the bytes themselves are stored once behind an
/// [`Arc`], so two clones observe the same allocation. The backing store is
/// an `Arc<Vec<u8>>` (not `Arc<[u8]>`) so `From<Vec<u8>>` is a **move**, not
/// a copy — the decode hot path builds a `Vec` per value and must not pay a
/// second allocation+memcpy to make it shareable.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(Arc<Vec<u8>>);

impl Bytes {
    /// Creates a new empty `Bytes`.
    pub fn new() -> Self {
        Bytes(Arc::new(Vec::new()))
    }

    /// Creates a `Bytes` holding a copy of `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::new(data.to_vec()))
    }

    /// Creates a `Bytes` holding a copy of the static slice.
    ///
    /// Unlike the real `bytes` crate, this shim copies: backing storage is
    /// `Arc<Vec<u8>>` so that `From<Vec<u8>>` is a zero-copy move (the hot
    /// path), which leaves no room for a borrowed-static representation.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes(Arc::new(data.to_vec()))
    }

    /// Number of bytes contained.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the container holds zero bytes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Borrows the contents as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for b in self.0.iter() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        // A move: the Vec's allocation becomes the shared backing store.
        Bytes(Arc::new(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.as_ptr(), b.as_ptr());
    }

    #[test]
    #[allow(clippy::cmp_owned)] // the point is to exercise Ord on Bytes itself
    fn ordering_and_default() {
        assert!(Bytes::from(&b"a"[..]) < Bytes::from(&b"b"[..]));
        assert!(Bytes::default().is_empty());
    }
}
