//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate.
//!
//! The runtime crate needs exactly one thing from crossbeam: an unbounded
//! MPMC channel whose `Sender` *and* `Receiver` are cloneable, with a
//! `recv_timeout`. This shim implements that over a `Mutex<VecDeque>` +
//! `Condvar`. It is not lock-free — fine for the thread-per-replica runtime,
//! whose message rates are far below contention territory. Swap in the real
//! crate for serious wall-clock benchmarking.

#![warn(missing_docs)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// The sending half of an unbounded channel. Cloneable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of an unbounded channel. Cloneable (MPMC: each
    /// message is delivered to exactly one receiver).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// unsent message is handed back.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait elapsed with no message available.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only if all receivers were dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.inner.state.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().senders += 1;
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.inner.state.lock().unwrap();
            loop {
                if let Some(v) = state.queue.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.inner.ready.wait(state).unwrap();
            }
        }

        /// Blocks until a message arrives, all senders are gone, or `timeout`
        /// elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.inner.state.lock().unwrap();
            loop {
                if let Some(v) = state.queue.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, result) = self
                    .inner
                    .ready
                    .wait_timeout(state, deadline - now)
                    .unwrap();
                state = guard;
                if result.timed_out() && state.queue.is_empty() {
                    if state.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Returns a queued message if one is immediately available.
        pub fn try_recv(&self) -> Option<T> {
            self.inner.state.lock().unwrap().queue.pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().receivers += 1;
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.state.lock().unwrap().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn timeout_then_delivery() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                tx.send(7).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(7));
            handle.join().unwrap();
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx2, rx2) = unbounded::<u32>();
            drop(rx2);
            assert!(tx2.send(1).is_err());
        }

        #[test]
        fn mpmc_each_message_once() {
            let (tx, rx) = unbounded::<u32>();
            let rx2 = rx.clone();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let h1 = std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            });
            let h2 = std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx2.recv() {
                    got.push(v);
                }
                got
            });
            let mut all = h1.join().unwrap();
            all.extend(h2.join().unwrap());
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>());
        }
    }
}
