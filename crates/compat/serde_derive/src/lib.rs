//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` (nothing calls a
//! serializer yet — the wire format is the hand-rolled canonical codec in
//! `fastbft_types::wire`), so these derives expand to nothing. They accept
//! the `#[serde(...)]` helper attribute so annotations like
//! `#[serde(default)]` parse.

#![warn(missing_docs)]

use proc_macro::TokenStream;

/// No-op `Serialize` derive; accepts `#[serde(...)]` helper attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; accepts `#[serde(...)]` helper attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
