//! Offline stand-in for the [`serde`](https://serde.rs) crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on its core types as a
//! forward-looking annotation, but all actual encoding goes through the
//! canonical codec in `fastbft_types::wire` (signatures require one
//! canonical byte encoding, which serde formats do not promise). Until a
//! serde-backed transport exists, the derives are no-ops re-exported from
//! the shim `serde_derive`, and the traits here are markers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
