//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate
//! (0.8 API subset).
//!
//! The workspace builds without registry access, so this shim provides the
//! pieces the code imports: [`RngCore`], [`SeedableRng`], the [`Rng`]
//! extension trait (`gen_range`, `gen_bool`), and [`rngs::StdRng`].
//!
//! [`rngs::StdRng`] here is xoshiro256++ seeded through SplitMix64 — not the
//! ChaCha-based generator of the real crate, but deterministic, uniform, and
//! plenty for simulation schedules and key generation in tests. The one
//! observable difference is that the byte streams differ from real `rand`,
//! which only matters if golden values were recorded against the real crate
//! (none are).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A random number generator core: raw integer and byte output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose output is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods over [`RngCore`]: ranges and Bernoulli draws.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive integer range).
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        if p >= 1.0 {
            return true;
        }
        // Compare against p scaled to the full 64-bit range.
        (self.next_u64() as f64) < p * (u64::MAX as f64)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to sample a uniform value of `T` from an RNG.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128) - (self.start as u128);
                let draw = ((rng.next_u64() as u128) % span) as $ty;
                self.start + draw
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                let draw = ((rng.next_u64() as u128) % span) as $ty;
                lo + draw
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($ty:ty => $via:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + draw) as $ty
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let draw = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + draw) as $ty
            }
        }
    )*};
}

impl_sample_range_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++ with
    /// SplitMix64 seeding.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(5..10);
            assert!((5..10).contains(&x));
            let y: usize = rng.gen_range(0..=3);
            assert!(y <= 3);
            let z = rng.gen_range(-3i32..3);
            assert!((-3..3).contains(&z));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
