//! E11 — crypto microbenchmarks.
//!
//! Context for two protocol design points: (a) signing is expensive enough
//! that the slow path ships `φ_ack` in a separate message so the fast path
//! never waits for it (Appendix A.1); (b) certificate verification cost is
//! proportional to signature count, which is why bounding certificates at
//! `f + 1` signatures matters (§3.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fastbft_crypto::{hmac::hmac_sha256, sha256::Sha256, KeyDirectory, SignatureSet};

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xABu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| Sha256::digest(std::hint::black_box(data)));
        });
    }
    group.finish();
}

fn bench_hmac(c: &mut Criterion) {
    let key = [7u8; 32];
    let msg = vec![1u8; 256];
    c.bench_function("hmac_sha256/256B", |b| {
        b.iter(|| hmac_sha256(std::hint::black_box(&key), std::hint::black_box(&msg)));
    });
}

fn bench_sign_verify(c: &mut Criterion) {
    let (pairs, dir) = KeyDirectory::generate(16, 1);
    let msg = b"(propose, x, 42)";
    c.bench_function("sign", |b| {
        b.iter(|| pairs[0].sign(std::hint::black_box(msg)));
    });
    let sig = pairs[0].sign(msg);
    c.bench_function("verify", |b| {
        b.iter(|| dir.verify(std::hint::black_box(msg), &sig));
    });
}

fn bench_certificates(c: &mut Criterion) {
    let (pairs, dir) = KeyDirectory::generate(32, 2);
    let msg = b"(CertAck, x, 7)";
    let mut group = c.benchmark_group("certificate_verify");
    // f + 1 for f = 1..=6 — progress certs; larger sets — commit certs.
    for signers in [2usize, 4, 8, 17] {
        let set: SignatureSet = pairs[..signers].iter().map(|p| p.sign(msg)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(signers), &set, |b, set| {
            b.iter(|| set.verify(std::hint::black_box(msg), &dir, signers));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sha256,
    bench_hmac,
    bench_sign_verify,
    bench_certificates
);
criterion_main!(benches);
