//! Send-pipeline microbenches: what the encode-once broadcast and the
//! per-drain frame MAC actually buy on the wire hot path.
//!
//! * `broadcast_encode/*` — encoding one protocol message for `n − 1`
//!   peers: the old per-peer re-encode vs the pipeline's encode-once
//!   (one `encode_into` + reference-counted `Bytes` clones).
//! * `frame_mac/*` — the HMAC-SHA256 session MAC over frame payloads of
//!   realistic sizes, including the amortized per-drain shape (one MAC
//!   over a k-message batch vs k MACs over single messages).

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fastbft_core::message::{AckMsg, Message};
use fastbft_crypto::session::SessionMac;
use fastbft_crypto::KeyDirectory;
use fastbft_net::frame::encode_batch_payload;
use fastbft_smr::SlotMessage;
use fastbft_types::wire::{encode_into, to_bytes};
use fastbft_types::{Value, View};

fn ack(slot: u64) -> SlotMessage {
    SlotMessage::Consensus {
        slot,
        inner: Message::Ack(AckMsg {
            value: Value::from_u64(7),
            view: View(1),
            share: None,
        }),
    }
}

fn bench_broadcast_encode(c: &mut Criterion) {
    let msg = ack(3);
    let mut group = c.benchmark_group("broadcast_encode");
    group.throughput(Throughput::Bytes(to_bytes(&msg).len() as u64));
    for n in [4usize, 7] {
        group.bench_function(format!("per_peer_encode/n{n}"), |b| {
            b.iter(|| {
                // The pre-pipeline shape: one fresh encoding per peer.
                let mut total = 0usize;
                for _ in 0..n - 1 {
                    total += to_bytes(std::hint::black_box(&msg)).len();
                }
                total
            });
        });
        group.bench_function(format!("encode_once/n{n}"), |b| {
            let mut scratch = Vec::new();
            b.iter(|| {
                // The pipeline's shape: one encoding, n − 1 Arc bumps.
                encode_into(std::hint::black_box(&msg), &mut scratch);
                let shared = Bytes::copy_from_slice(&scratch);
                let mut total = 0usize;
                for _ in 0..n - 1 {
                    total += shared.clone().len();
                }
                total
            });
        });
    }
    group.finish();
}

fn bench_frame_mac(c: &mut Criterion) {
    let (pairs, _) = KeyDirectory::generate(4, 1);
    let mut group = c.benchmark_group("frame_mac");
    for size in [8usize, 1024] {
        let payload = vec![0x5Au8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("tag_next/{size}B"), |b| {
            let mut mac = SessionMac::new(pairs[0].clone(), 9);
            b.iter(|| mac.tag_next(std::hint::black_box(&payload)));
        });
    }
    // The coalescing win: MAC 8 messages one by one vs once as a drain.
    let msgs: Vec<Vec<u8>> = (0..8u64).map(|i| to_bytes(&ack(i))).collect();
    let total: usize = msgs.iter().map(Vec::len).sum();
    group.throughput(Throughput::Bytes(total as u64));
    group.bench_function("per_message/8_acks", |b| {
        let mut mac = SessionMac::new(pairs[1].clone(), 9);
        b.iter(|| {
            for m in &msgs {
                std::hint::black_box(mac.tag_next(m));
            }
        });
    });
    group.bench_function("per_drain/8_acks", |b| {
        let mut mac = SessionMac::new(pairs[2].clone(), 9);
        let mut batch = Vec::new();
        b.iter(|| {
            encode_batch_payload(&mut batch, &msgs);
            std::hint::black_box(mac.tag_next(&batch));
        });
    });
    group.finish();
}

criterion_group!(benches, bench_broadcast_encode, bench_frame_mac);
criterion_main!(benches);
