//! Selection-algorithm benchmarks (§3.2): the view-change hot path.
//!
//! Measured per scenario because the equivocation branch does strictly more
//! work (exclusion loop + counting) than the common single-value branch.

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fastbft_core::certs::{ProgressCert, SignedVote, VoteData};
use fastbft_core::payload::propose_payload;
use fastbft_core::selection::select;
use fastbft_crypto::{KeyDirectory, KeyPair};
use fastbft_types::{Config, ProcessId, Value, View};

fn votes_single_value(cfg: &Config, pairs: &[KeyPair]) -> BTreeMap<ProcessId, SignedVote> {
    let x = Value::from_u64(7);
    let leader = cfg.leader(View::FIRST);
    pairs
        .iter()
        .take(cfg.vote_quorum())
        .map(|p| {
            let vd = VoteData {
                value: x.clone(),
                view: View::FIRST,
                progress_cert: ProgressCert::Genesis,
                leader_sig: pairs[leader.index()].sign(&propose_payload(&x, View::FIRST)),
                commit_cert: None,
            };
            (p.id(), SignedVote::sign(p, Some(vd), View(2)))
        })
        .collect()
}

fn votes_equivocation(cfg: &Config, pairs: &[KeyPair]) -> BTreeMap<ProcessId, SignedVote> {
    let leader = cfg.leader(View::FIRST);
    pairs
        .iter()
        .take(cfg.vote_quorum() + 1)
        .enumerate()
        .map(|(i, p)| {
            let x = Value::from_u64((i % 2) as u64);
            let vd = VoteData {
                value: x.clone(),
                view: View::FIRST,
                progress_cert: ProgressCert::Genesis,
                leader_sig: pairs[leader.index()].sign(&propose_payload(&x, View::FIRST)),
                commit_cert: None,
            };
            (p.id(), SignedVote::sign(p, Some(vd), View(2)))
        })
        .collect()
}

fn bench_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection");
    for f in [1usize, 2, 4, 8] {
        let cfg = Config::minimal(f, f);
        let (pairs, _dir) = KeyDirectory::generate(cfg.n(), 1);
        let single = votes_single_value(&cfg, &pairs);
        group.bench_with_input(
            BenchmarkId::new("single_value", cfg.n()),
            &single,
            |b, votes| b.iter(|| select(&cfg, View(2), std::hint::black_box(votes))),
        );
        let equiv = votes_equivocation(&cfg, &pairs);
        group.bench_with_input(
            BenchmarkId::new("equivocation", cfg.n()),
            &equiv,
            |b, votes| b.iter(|| select(&cfg, View(2), std::hint::black_box(votes))),
        );
    }
    group.finish();
}

fn bench_vote_validation(c: &mut Criterion) {
    let cfg = Config::minimal(2, 2);
    let (pairs, dir) = KeyDirectory::generate(cfg.n(), 2);
    let votes = votes_single_value(&cfg, &pairs);
    let sv = votes.values().next().unwrap().clone();
    c.bench_function("signed_vote_is_valid", |b| {
        b.iter(|| std::hint::black_box(&sv).is_valid(&cfg, &dir, View(2)));
    });
}

criterion_group!(benches, bench_select, bench_vote_validation);
criterion_main!(benches);
