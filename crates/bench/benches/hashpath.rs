//! hashpath — sign/verify/cert-verify cost versus payload size.
//!
//! PR 5's digest-carried statements make every protocol signature operate
//! on a fixed 41-byte `tag ‖ H(x) ‖ v` buffer, with `H(x)` memoized on the
//! value. These benches pin the property the refactor claims: once a
//! value's digest is warm, signing, verifying and certificate verification
//! cost the **same** for an 8-byte label and a 1 KiB command batch, and a
//! memoized re-verification (the redelivered-certificate path) does no HMAC
//! work at all.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fastbft_core::certs::{CertCache, CommitCert};
use fastbft_core::payload::{ack_payload, propose_payload};
use fastbft_crypto::KeyDirectory;
use fastbft_types::{Config, Value, View};

const PAYLOADS: [usize; 2] = [8, 1024];

/// A value of `size` bytes with its digest memo already warm — the steady
/// state of the hot path (the memo is filled the first time any statement
/// mentions the value).
fn warm_value(size: usize) -> Value {
    let x = Value::new(vec![0xAB; size]);
    let _ = propose_payload(&x, View(1));
    x
}

fn bench_sign(c: &mut Criterion) {
    let (pairs, _) = KeyDirectory::generate(7, 1);
    let mut group = c.benchmark_group("hashpath_sign");
    for size in PAYLOADS {
        let x = warm_value(size);
        group.bench_with_input(BenchmarkId::from_parameter(size), &x, |b, x| {
            b.iter(|| pairs[0].sign(&propose_payload(std::hint::black_box(x), View(1))));
        });
    }
    group.finish();
}

fn bench_verify(c: &mut Criterion) {
    let (pairs, dir) = KeyDirectory::generate(7, 1);
    let mut group = c.benchmark_group("hashpath_verify");
    for size in PAYLOADS {
        let x = warm_value(size);
        let sig = pairs[0].sign(&propose_payload(&x, View(1)));
        group.bench_with_input(BenchmarkId::from_parameter(size), &x, |b, x| {
            b.iter(|| dir.verify(&propose_payload(std::hint::black_box(x), View(1)), &sig));
        });
    }
    group.finish();
}

fn bench_cert_verify(c: &mut Criterion) {
    let cfg = Config::new(7, 2, 1).unwrap();
    let (pairs, dir) = KeyDirectory::generate(7, 2);
    let mut group = c.benchmark_group("hashpath_cert_verify");
    for size in PAYLOADS {
        let x = warm_value(size);
        let stmt = ack_payload(&x, View(1));
        // Never verified: clones of it carry no verification memo.
        let pristine = CommitCert {
            value: x.clone(),
            view: View(1),
            sigs: pairs[..cfg.slow_quorum()]
                .iter()
                .map(|p| p.sign(&stmt))
                .collect(),
        };
        // Cold: every signature walks the HMAC engine (the clone per
        // iteration is what keeps the memo cold; its cost is shared by both
        // payload sizes, so the payload-independence comparison stands).
        group.bench_function(BenchmarkId::new("cold", size), |b| {
            b.iter(|| std::hint::black_box(pristine.clone()).verify(&cfg, &dir));
        });
        // Memoized: the certificate was verified once already.
        let warmed = pristine.clone();
        assert!(warmed.verify(&cfg, &dir));
        group.bench_function(BenchmarkId::new("memoized", size), |b| {
            b.iter(|| std::hint::black_box(&warmed).verify(&cfg, &dir));
        });
        // Redelivered: a freshly decoded copy (no memo) through the
        // replica-level certificate cache.
        let mut cache = CertCache::new();
        assert!(pristine.clone().verify_cached(&cfg, &dir, &mut cache));
        let redelivered: CommitCert =
            fastbft_types::wire::from_bytes(&fastbft_types::wire::to_bytes(&pristine)).unwrap();
        group.bench_function(BenchmarkId::new("redelivered_cached", size), |b| {
            b.iter(|| std::hint::black_box(&redelivered).verify_cached(&cfg, &dir, &mut cache));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sign, bench_verify, bench_cert_verify);
criterion_main!(benches);
