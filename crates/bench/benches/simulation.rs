//! End-to-end simulation benchmarks: full consensus instances including
//! every signature and certificate check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fastbft_core::cluster::{Behavior, SimCluster};
use fastbft_core::lower_bound;
use fastbft_types::{Config, View};

fn bench_fast_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("fast_path_decision");
    for (n, f, t) in [(4usize, 1usize, 1usize), (9, 2, 2), (14, 3, 3)] {
        let cfg = Config::new(n, f, t).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &cfg, |b, cfg| {
            b.iter(|| {
                let mut cluster = SimCluster::builder(*cfg)
                    .inputs_u64(vec![7; cfg.n()])
                    .build();
                let report = cluster.run_until_all_decide();
                assert!(report.all_decided);
                report.decision_delays_max()
            });
        });
    }
    group.finish();
}

fn bench_view_change(c: &mut Criterion) {
    let cfg = Config::new(4, 1, 1).unwrap();
    let leader = cfg.leader(View::FIRST);
    c.bench_function("view_change_decision", |b| {
        b.iter(|| {
            let mut cluster = SimCluster::builder(cfg)
                .inputs_u64([5, 5, 5, 5])
                .behavior(leader, Behavior::Silent)
                .build();
            let report = cluster.run_until_all_decide();
            assert!(report.all_decided);
        });
    });
}

fn bench_lower_bound(c: &mut Criterion) {
    c.bench_function("lower_bound_attack_pair", |b| {
        b.iter(|| {
            let below = lower_bound::run_attack(lower_bound::below_bound_n(), 1);
            let at = lower_bound::run_attack(lower_bound::at_bound_n(), 1);
            assert!(below.disagreement && !at.disagreement);
        });
    });
}

criterion_group!(
    benches,
    bench_fast_path,
    bench_view_change,
    bench_lower_bound
);
criterion_main!(benches);
