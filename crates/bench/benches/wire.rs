//! Wire-codec benchmarks: encoding is on the signing path (statements are
//! signed as canonical bytes), so it runs once per signature.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fastbft_core::certs::ProgressCert;
use fastbft_core::message::{AckMsg, Message, ProposeMsg};
use fastbft_crypto::{KeyDirectory, SignatureSet};
use fastbft_types::wire::{from_bytes, to_bytes};
use fastbft_types::{Value, View};

fn bench_wire(c: &mut Criterion) {
    let (pairs, _) = KeyDirectory::generate(8, 1);
    let x = Value::from_u64(7);
    let ack = Message::Ack(AckMsg {
        value: x.clone(),
        view: View(3),
        share: None,
    });
    let cert: SignatureSet = pairs[..3].iter().map(|p| p.sign(b"ca")).collect();
    let propose = Message::Propose(ProposeMsg {
        value: x,
        view: View(3),
        cert: ProgressCert::Bounded(cert),
        sig: pairs[0].sign(b"p"),
    });

    let mut group = c.benchmark_group("wire");
    for (label, msg) in [("ack", &ack), ("propose_bounded", &propose)] {
        let bytes = to_bytes(msg);
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        group.bench_function(format!("encode/{label}"), |b| {
            b.iter(|| to_bytes(std::hint::black_box(msg)));
        });
        group.bench_function(format!("decode/{label}"), |b| {
            b.iter(|| from_bytes::<Message>(std::hint::black_box(&bytes)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
