//! E6 — common-case latency: 2Δ (this paper, FaB) vs 3Δ (PBFT).
//!
//! Every protocol runs at its own minimum process count for each `(f, t)`,
//! on an identical synchronous network, all processes correct, unanimous
//! inputs. Reported: decision latency in message delays and total messages.

use fastbft_baselines::{fab_config, FabReplica, PbftReplica};
use fastbft_bench::{header, row};
use fastbft_core::cluster::SimCluster;
use fastbft_crypto::KeyDirectory;
use fastbft_sim::{Network, SimDuration, SimTime, Simulation};
use fastbft_types::{Config, ProcessId, ProtocolKind, Value};

fn ktz(f: usize, t: usize) -> (usize, u64, usize) {
    let n = ProtocolKind::Ktz.min_n(f, t);
    let cfg = Config::new(n, f, t).unwrap();
    let mut cluster = SimCluster::builder(cfg).inputs_u64(vec![7; n]).build();
    let report = cluster.run_until_all_decide();
    assert!(report.violations.is_empty() && report.all_decided);
    (n, report.decision_delays_max(), report.stats.messages)
}

fn fab(f: usize, t: usize) -> (usize, u64, usize) {
    let n = ProtocolKind::FabPaxos.min_n(f, t);
    let cfg = fab_config(n, f, t).unwrap();
    let (pairs, dir) = KeyDirectory::generate(n, 5);
    let mut sim = Simulation::new(Network::synchronous(SimDuration::DELTA), 5);
    for keys in pairs.iter().take(n).cloned() {
        sim.add_actor(Box::new(FabReplica::new(
            cfg,
            keys,
            dir.clone(),
            Value::from_u64(7),
        )));
    }
    sim.start();
    let all: Vec<ProcessId> = (1..=n as u32).map(ProcessId).collect();
    assert!(sim.run_until_all_decide(&all, SimTime(1_000_000)));
    let delays = sim
        .decisions()
        .iter()
        .map(|(_, t, _)| t.0.div_ceil(SimDuration::DELTA.0))
        .max()
        .unwrap();
    (
        n,
        delays,
        sim.trace().message_stats(SimTime::NEVER).messages,
    )
}

fn pbft(f: usize) -> (usize, u64, usize) {
    let n = ProtocolKind::Pbft.min_n(f, 0);
    let cfg = Config::new_unchecked(n, f, 1.min(f));
    let (pairs, dir) = KeyDirectory::generate(n, 6);
    let mut sim = Simulation::new(Network::synchronous(SimDuration::DELTA), 6);
    for keys in pairs.iter().take(n).cloned() {
        sim.add_actor(Box::new(PbftReplica::new(
            cfg,
            keys,
            dir.clone(),
            Value::from_u64(7),
        )));
    }
    sim.start();
    let all: Vec<ProcessId> = (1..=n as u32).map(ProcessId).collect();
    assert!(sim.run_until_all_decide(&all, SimTime(1_000_000)));
    let delays = sim
        .decisions()
        .iter()
        .map(|(_, t, _)| t.0.div_ceil(SimDuration::DELTA.0))
        .max()
        .unwrap();
    (
        n,
        delays,
        sim.trace().message_stats(SimTime::NEVER).messages,
    )
}

fn main() {
    println!("# E6 — common-case latency across protocols (synchronous, all correct)\n");
    println!(
        "{}",
        header(&[
            "f",
            "t",
            "KTZ21 n",
            "KTZ21 delays",
            "KTZ21 msgs",
            "FaB n",
            "FaB delays",
            "FaB msgs",
            "PBFT n",
            "PBFT delays",
            "PBFT msgs",
        ])
    );
    for f in 1..=3usize {
        for t in 1..=f {
            let (kn, kd, km) = ktz(f, t);
            let (fnn, fd, fm) = fab(f, t);
            let (pn, pd, pm) = pbft(f);
            println!(
                "{}",
                row(&[
                    f.to_string(),
                    t.to_string(),
                    kn.to_string(),
                    kd.to_string(),
                    km.to_string(),
                    fnn.to_string(),
                    fd.to_string(),
                    fm.to_string(),
                    pn.to_string(),
                    pd.to_string(),
                    pm.to_string(),
                ])
            );
            assert_eq!(kd, 2, "KTZ21 is two-step");
            assert_eq!(fd, 2, "FaB is two-step");
            assert_eq!(pd, 3, "PBFT is three-step");
        }
    }
    println!("\nshape check: both fast protocols at 2 delays, PBFT at 3 — at every (f, t),");
    println!("with KTZ21 using two fewer processes than FaB. ✓");
}
