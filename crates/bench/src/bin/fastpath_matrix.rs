//! E8 — the generalized protocol's latency as actual failures vary
//! (Appendix A).
//!
//! For each configuration, crash `k` follower processes at time Δ (honest
//! in round 1, silent after — the lower bound's failure model) and measure
//! the decision latency of the survivors:
//!
//! * `k ≤ t` → **2 delays** (fast path);
//! * `t < k ≤ f` → **3 delays** (slow path);
//! * PBFT for contrast: 3 delays even with zero failures.

use fastbft_bench::{header, row};
use fastbft_core::cluster::{Behavior, SimCluster};
use fastbft_sim::SimTime;
use fastbft_types::{Config, View};

/// Runs (n, f, t) with `k` crash-at-Δ followers; returns max decision delays.
fn run(n: usize, f: usize, t: usize, k: usize) -> u64 {
    let cfg = Config::new(n, f, t).unwrap();
    let leader = cfg.leader(View::FIRST);
    let mut builder = SimCluster::builder(cfg).inputs_u64(vec![7; n]);
    let mut crashed = 0;
    for p in cfg.processes() {
        if p != leader && crashed < k {
            builder = builder.behavior(p, Behavior::CrashAt(SimTime(100)));
            crashed += 1;
        }
    }
    assert_eq!(crashed, k, "not enough followers to crash");
    let mut cluster = builder.build();
    let report = cluster.run_until_all_decide();
    assert!(
        report.all_decided,
        "undecided with k={k}: {:?}",
        report.violations
    );
    assert!(report.violations.is_empty());
    report.decision_delays_max()
}

fn main() {
    println!("# E8 — decision latency vs actual failures (crash at Δ, leader correct)\n");
    println!(
        "{}",
        header(&["n", "f", "t", "actual failures", "delays", "path"])
    );

    let cases: Vec<(usize, usize, usize)> = vec![(4, 1, 1), (7, 2, 1), (9, 2, 2), (10, 3, 1)];
    for (n, f, t) in cases {
        for k in 0..=f {
            let delays = run(n, f, t, k);
            let path = if k <= t { "fast (2Δ)" } else { "slow (3Δ)" };
            println!(
                "{}",
                row(&[
                    n.to_string(),
                    f.to_string(),
                    t.to_string(),
                    k.to_string(),
                    delays.to_string(),
                    path.to_string(),
                ])
            );
            if k <= t {
                assert_eq!(delays, 2, "(n={n},f={f},t={t},k={k}) must stay fast");
            } else {
                assert_eq!(
                    delays, 3,
                    "(n={n},f={f},t={t},k={k}) must fall back to slow"
                );
            }
        }
    }

    println!("\nshape: two delays while failures ≤ t, three while t < failures ≤ f —");
    println!("exactly the generalized protocol's guarantee (Appendix A). ✓");
}
