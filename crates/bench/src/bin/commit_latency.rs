//! Commit-path latency percentiles, read off the metrics plane.
//!
//! Where `tcp_latency` times a single decision from the outside with a
//! stopwatch, this experiment reads the *internal* per-slot latency
//! histograms (`commit_latency_fast_us` / `commit_latency_slow_us`,
//! recorded between slot open and decision on each replica) and reports
//! cluster-wide percentiles per commit path — the paper's fast-vs-slow
//! distinction as a deployment would actually observe it:
//!
//! * `n4_fast` — the minimal `n = 4, f = t = 1` system, clean run: the
//!   slow path is off (`t = f`), every decision is a 2-delay fast commit;
//! * `n7_fast` — `n = 7, f = 2, t = 1`, clean run: both paths armed and
//!   racing. The fast quorum (`n − t = 6`) is reachable, but the slow
//!   quorum (5) is smaller, so on an unevenly scheduled runner the slow
//!   path's extra phase can finish before the sixth ack lands — the two
//!   histograms show how the race actually splits;
//! * `n7_slow` — the same system with two seats replaced by silent
//!   actors: only 5 live replicas remain, the fast quorum is unreachable
//!   and the slow quorum (`⌈(n+f+1)/2⌉ = 5`) is exactly reachable, so
//!   **every** decision is a 3-delay slow commit (slots first-led by a
//!   silent seat additionally pay a view change, which the percentile
//!   tail shows).
//!
//! `--json` switches the output to a machine-readable JSON object
//! (`BENCH_latency.json` is a committed snapshot of it):
//!
//! ```bash
//! cargo run --release -p fastbft_bench --bin commit_latency -- --json
//! ```

use std::time::Duration;

use fastbft_bench::{header, row};
use fastbft_core::replica::ReplicaOptions;
use fastbft_crypto::KeyDirectory;
use fastbft_obs::{Histogram, MetricsRegistry};
use fastbft_runtime::spawn;
use fastbft_sim::{ScriptedActor, SimDuration};
use fastbft_smr::runtime::{smr_actors_metered, SmrClusterHandle};
use fastbft_smr::CountingMachine;
use fastbft_types::{Config, ProcessId, Value};

const COMMANDS: u64 = 48;
const TICK: Duration = Duration::from_micros(50);

#[derive(Clone, Copy)]
struct Scenario {
    name: &'static str,
    n: usize,
    f: usize,
    /// Seats replaced by silent actors before spawn, counted from the
    /// back of the seat order.
    silent: usize,
    /// The commit path this scenario is constructed to exercise.
    path: &'static str,
    seed: u64,
}

const SCENARIOS: [Scenario; 3] = [
    Scenario {
        name: "n4_fast",
        n: 4,
        f: 1,
        silent: 0,
        path: "fast",
        seed: 41,
    },
    Scenario {
        name: "n7_fast",
        n: 7,
        f: 2,
        silent: 0,
        path: "fast",
        seed: 71,
    },
    Scenario {
        name: "n7_slow",
        n: 7,
        f: 2,
        silent: 2,
        path: "slow",
        seed: 72,
    },
];

/// Cluster-wide percentile summary of one commit path's latency
/// histogram (all replicas' samples merged).
struct PathSummary {
    samples: u64,
    mean_us: u64,
    p50_us: u64,
    p90_us: u64,
    p99_us: u64,
    p999_us: u64,
    max_us: u64,
}

fn summarize(merged: &Histogram) -> PathSummary {
    let samples = merged.count();
    PathSummary {
        samples,
        mean_us: merged.sum().checked_div(samples).unwrap_or(0),
        p50_us: merged.quantile(0.5),
        p90_us: merged.quantile(0.9),
        p99_us: merged.quantile(0.99),
        p999_us: merged.quantile(0.999),
        max_us: merged.max(),
    }
}

struct Outcome {
    scenario: Scenario,
    fast: PathSummary,
    slow: PathSummary,
}

fn run_scenario(s: Scenario) -> Outcome {
    let cfg = Config::new(s.n, s.f, 1).unwrap();
    let (pairs, dir) = KeyDirectory::generate(s.n, s.seed);
    let idle = Value::from_u64(u64::MAX);
    // Clean runs get the throughput bench's generous timeout so the
    // percentiles measure the commit path, not spurious view-change churn
    // on a loaded runner; the degraded run keeps the default short timeout
    // so slots first-led by a dead seat recover (and are honestly counted
    // in the slow-path tail).
    let opts = if s.silent == 0 {
        ReplicaOptions {
            base_timeout: SimDuration(SimDuration::DELTA.0 * 200),
            ..ReplicaOptions::default()
        }
    } else {
        ReplicaOptions::default()
    };
    let registry = MetricsRegistry::new(s.n);
    let mut actors = smr_actors_metered(
        cfg,
        &pairs,
        &dir,
        CountingMachine::new(),
        vec![Vec::new(); s.n],
        idle.clone(),
        opts,
        1,
        None,
        &registry,
    );
    // Silent seats are inert from the first tick — unlike stopping a
    // spawned seat, no startup slot can sneak through on the fast path
    // while they are still live.
    for seat in actors.iter_mut().skip(s.n - s.silent) {
        *seat = Box::new(ScriptedActor::silent());
    }
    let mut cluster = SmrClusterHandle::new(spawn(actors, TICK), s.n, idle);
    cluster.attach_metrics(registry.clone());
    let live: Vec<ProcessId> = cfg.processes().take(s.n - s.silent).collect();

    for i in 0..COMMANDS {
        cluster.submit(Value::from_u64(i));
    }
    assert!(
        cluster.await_commands(live.clone(), COMMANDS, Duration::from_secs(120)),
        "{}: cluster did not apply all {COMMANDS} commands",
        s.name
    );
    assert!(cluster.logs_agree(), "{}: log divergence", s.name);
    cluster.shutdown();

    // Merge the per-replica histograms into one cluster-wide distribution
    // per path.
    let fast = Histogram::new();
    let slow = Histogram::new();
    for i in 0..s.n {
        fast.merge_from(&registry.metrics(i).commit_latency_fast_us);
        slow.merge_from(&registry.metrics(i).commit_latency_slow_us);
    }

    // The construction forces the path: with fewer than n − t live
    // replicas a fast-path decision is impossible, and n = 4 (t = f) has
    // the slow path disabled outright.
    if s.silent > 0 {
        assert_eq!(fast.count(), 0, "{}: impossible fast-path commit", s.name);
        assert!(slow.count() > 0, "{}: no slow-path samples", s.name);
    } else {
        assert!(fast.count() > 0, "{}: no fast-path samples", s.name);
        if s.n == 4 {
            assert_eq!(slow.count(), 0, "{}: slow path is off at t = f", s.name);
        }
    }

    Outcome {
        scenario: s,
        fast: summarize(&fast),
        slow: summarize(&slow),
    }
}

fn json_path(p: &PathSummary) -> String {
    format!(
        "{{\"samples\": {}, \"mean_us\": {}, \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}, \"p999_us\": {}, \"max_us\": {}}}",
        p.samples, p.mean_us, p.p50_us, p.p90_us, p.p99_us, p.p999_us, p.max_us
    )
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let outcomes: Vec<Outcome> = SCENARIOS.into_iter().map(run_scenario).collect();

    if json {
        println!("{{");
        println!("  \"bench\": \"commit_latency\",");
        println!("  \"version\": 1,");
        println!(
            "  \"config\": {{\"commands\": {COMMANDS}, \"tick_us\": {}, \"batch\": 1}},",
            TICK.as_micros()
        );
        println!(
            "  \"unit_note\": \"per-slot open-to-decision latency in us, cluster-wide merge of per-replica histograms; quantiles are upper bounds within 1/16 relative error\","
        );
        println!("  \"scenarios\": [");
        for (i, o) in outcomes.iter().enumerate() {
            let comma = if i + 1 < outcomes.len() { "," } else { "" };
            println!(
                "    {{\"name\": \"{}\", \"n\": {}, \"f\": {}, \"t\": 1, \"silent_seats\": {}, \"path\": \"{}\", \"fast\": {}, \"slow\": {}}}{comma}",
                o.scenario.name,
                o.scenario.n,
                o.scenario.f,
                o.scenario.silent,
                o.scenario.path,
                json_path(&o.fast),
                json_path(&o.slow)
            );
        }
        println!("  ]");
        println!("}}");
        return;
    }

    println!("# commit-path latency percentiles from the metrics plane");
    println!("# {COMMANDS} commands per scenario, batch 1, channel transport\n");
    println!(
        "{}",
        header(&[
            "scenario",
            "path",
            "samples",
            "mean",
            "p50",
            "p99",
            "p999",
            "max (µs)",
        ])
    );
    for o in &outcomes {
        for (path, p) in [("fast", &o.fast), ("slow", &o.slow)] {
            if p.samples == 0 {
                continue;
            }
            println!(
                "{}",
                row(&[
                    o.scenario.name.to_string(),
                    path.to_string(),
                    p.samples.to_string(),
                    p.mean_us.to_string(),
                    p.p50_us.to_string(),
                    p.p99_us.to_string(),
                    p.p999_us.to_string(),
                    p.max_us.to_string(),
                ])
            );
        }
    }
    println!("\nshape: the fast path decides in two message delays, the slow path in");
    println!("three — and with the fast quorum unreachable (n7_slow) the tail also");
    println!("carries the view changes for slots first-led by a silent seat. (JSON");
    println!("for tooling: rerun with --json; committed snapshot: BENCH_latency.json)");
}
