//! E3 — Figure 5: the slow path of the generalized protocol.
//!
//! The paper's figure uses `n = 7, f = 2, t = 1`. With **two** actual
//! failures (more than `t`, at most `f`), only `n − 2 = 5` processes ack —
//! below the fast quorum `n − t = 6` — so nobody decides in two steps.
//! But 5 = `⌈(n+f+1)/2⌉` signature shares form a commit certificate, the
//! `Commit` round runs, and everyone decides after **three** message
//! delays.

use fastbft_core::cluster::{Behavior, SimCluster};
use fastbft_types::{Config, ProcessId, Value};

fn main() {
    println!("# E3 / Figure 5 — slow path (n = 7, f = 2, t = 1, two silent followers)\n");
    let cfg = Config::new(7, 2, 1).expect("7 = 3f + 2t - 1 for f=2, t=1");
    println!(
        "fast quorum (n-t) = {}, slow quorum ⌈(n+f+1)/2⌉ = {}\n",
        cfg.fast_quorum(),
        cfg.slow_quorum()
    );

    // Two silent processes (p5, p6) — neither is the view-1 leader (p2).
    let mut cluster = SimCluster::builder(cfg)
        .inputs_u64([4, 4, 4, 4, 4, 4, 4])
        .behavior(ProcessId(5), Behavior::Silent)
        .behavior(ProcessId(6), Behavior::Silent)
        .build();
    let report = cluster.run_until_all_decide();

    println!("message flow:");
    print!("{}", cluster.trace().render_flow(report.delta));

    println!("\nobservations:");
    println!(
        "  decided value  : {:?}",
        report.unanimous_decision().unwrap()
    );
    println!(
        "  latency        : {} message delays",
        report.decision_delays_max()
    );
    for (kind, (count, bytes)) in &report.stats.by_kind {
        println!("    {kind:<10} {count:>4} msgs {bytes:>7} B");
    }

    assert_eq!(report.unanimous_decision(), Some(Value::from_u64(4)));
    assert_eq!(
        report.decision_delays_max(),
        3,
        "slow path: three message delays when t < failures <= f"
    );
    assert!(
        report.stats.by_kind.contains_key("sig"),
        "signature shares sent"
    );
    assert!(
        report.stats.by_kind.contains_key("Commit"),
        "Commit round ran"
    );
    assert!(report.violations.is_empty());
    println!("\nslow path reproduced: decide after three message delays via commit certificates ✓");
}
