//! E13 — wall-clock decision latency: channel transport vs loopback TCP.
//!
//! Runs the same four correct replicas (`n = 4, f = t = 1`, unanimous
//! inputs) to a full decision on both runtime transports and reports the
//! wall-clock time until the *last* replica decides. The gap between the
//! two columns is the cost of real framing: syscalls, HMAC session MACs,
//! and TCP loopback hops — the first point of the repo's perf trajectory
//! toward real deployments.
//!
//! `--json` switches the output to a machine-readable JSON object
//! (`BENCH_baseline.json` is a committed snapshot of it):
//!
//! ```bash
//! cargo run --release -p fastbft_bench --bin tcp_latency -- --json
//! ```

use std::time::Duration;

use fastbft_bench::{header, row};
use fastbft_core::{Message, Replica};
use fastbft_crypto::KeyDirectory;
use fastbft_net::spawn_tcp;
use fastbft_runtime::spawn;
use fastbft_sim::Actor;
use fastbft_types::{Config, Value};

const N: usize = 4;
const ITERS: usize = 5;
const TICK: Duration = Duration::from_micros(50);

fn actors(
    seed: u64,
) -> (
    Vec<Box<dyn Actor<Message> + Send>>,
    Vec<fastbft_crypto::KeyPair>,
    KeyDirectory,
) {
    let cfg = Config::new(N, 1, 1).expect("n = 3f + 2t - 1");
    let (pairs, dir) = KeyDirectory::generate(N, seed);
    let replicas = (0..N)
        .map(|i| -> Box<dyn Actor<Message> + Send> {
            Box::new(Replica::new(
                cfg,
                pairs[i].clone(),
                dir.clone(),
                Value::from_u64(7),
            ))
        })
        .collect();
    (replicas, pairs, dir)
}

/// Wall-clock time from cluster start until the last replica decides.
fn last_decision(decisions: &[fastbft_runtime::Decision]) -> Duration {
    assert_eq!(decisions.len(), N, "all replicas must decide");
    for d in decisions {
        assert_eq!(d.value, Value::from_u64(7), "non-unanimous decision");
    }
    decisions.iter().map(|d| d.elapsed).max().expect("nonempty")
}

fn run_channel(seed: u64) -> Duration {
    let (replicas, _, _) = actors(seed);
    let cluster = spawn(replicas, TICK);
    let decisions = cluster.await_decisions(N, Duration::from_secs(10));
    let elapsed = last_decision(&decisions);
    cluster.shutdown();
    elapsed
}

fn run_tcp(seed: u64) -> Duration {
    let (replicas, pairs, dir) = actors(seed);
    let (cluster, _addrs) = spawn_tcp(replicas, pairs, dir, TICK).expect("loopback bind");
    let decisions = cluster.await_decisions(N, Duration::from_secs(10));
    let elapsed = last_decision(&decisions);
    cluster.shutdown();
    elapsed
}

struct Stats {
    min_us: u128,
    median_us: u128,
    max_us: u128,
    /// Per-run latencies in run order, before sorting.
    runs_us: Vec<u128>,
}

impl Stats {
    /// (max − min) / max, as a percentage — how noisy this machine was.
    fn spread_pct(&self) -> f64 {
        if self.max_us == 0 {
            return 0.0;
        }
        (self.max_us - self.min_us) as f64 / self.max_us as f64 * 100.0
    }
}

fn stats(samples: Vec<Duration>) -> Stats {
    let runs_us: Vec<u128> = samples.iter().map(Duration::as_micros).collect();
    let mut sorted = runs_us.clone();
    sorted.sort_unstable();
    Stats {
        min_us: *sorted.first().expect("nonempty"),
        median_us: sorted[sorted.len() / 2],
        max_us: *sorted.last().expect("nonempty"),
        runs_us,
    }
}

fn json_stats(s: &Stats) -> String {
    let runs: Vec<String> = s.runs_us.iter().map(u128::to_string).collect();
    format!(
        "{{\"unit\": \"us\", \"min\": {}, \"median\": {}, \"max\": {}, \"runs\": [{}], \"spread_pct\": {:.1}}}",
        s.min_us,
        s.median_us,
        s.max_us,
        runs.join(", "),
        s.spread_pct()
    )
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");

    let channel = stats((0..ITERS).map(|i| run_channel(100 + i as u64)).collect());
    let tcp = stats((0..ITERS).map(|i| run_tcp(200 + i as u64)).collect());

    if json {
        println!("{{");
        println!("  \"bench\": \"tcp_latency\",");
        println!(
            "  \"config\": {{\"n\": {N}, \"f\": 1, \"t\": 1, \"iters\": {ITERS}, \"tick_us\": {}}},",
            TICK.as_micros()
        );
        println!("  \"unit_note\": \"wall-clock us until the last of {N} replicas decides\",");
        println!("  \"transports\": {{");
        println!("    \"channel\": {},", json_stats(&channel));
        println!("    \"tcp_loopback\": {}", json_stats(&tcp));
        println!("  }}");
        println!("}}");
        return;
    }

    println!("# E13 — decision latency to last replica: channel vs TCP loopback");
    println!("# n = {N}, f = t = 1, all correct, unanimous inputs, {ITERS} runs\n");
    println!(
        "{}",
        header(&["transport", "min (µs)", "median (µs)", "max (µs)", "spread"])
    );
    for (name, s) in [("channel", &channel), ("tcp loopback", &tcp)] {
        println!(
            "{}",
            row(&[
                name.to_string(),
                s.min_us.to_string(),
                s.median_us.to_string(),
                s.max_us.to_string(),
                format!("{:.1}%", s.spread_pct()),
            ])
        );
    }
    println!("\n(JSON for tooling: rerun with --json; committed baseline: BENCH_baseline.json)");
}
