//! Graceful degradation under the chaos catalog, measured.
//!
//! Runs every named chaos scenario (`delay-the-leader`,
//! `partition-the-fast-quorum`, `flapping-link`, `slow-follower`,
//! `asymmetric-wan`) against live SMR clusters at `n = 4` (vanilla,
//! `f = t = 1`) and `n = 7` (generalized, `f = 2, t = 1`) over the
//! channel transport, through the same harness the chaos test suite uses
//! ([`fastbft_smr::chaos::run_chaos`]) — so every reported number comes
//! from a run that also *passed* the three degradation gates: safety
//! (logs agree), liveness after heal (bounded recovery), and commit-path
//! attribution (slow-path carries the window when the fast quorum is
//! unreachable).
//!
//! Reported per scenario: fast/slow commit counts split by phase
//! (before / during / after the fault window), the cluster-wide
//! fast-path share, post-heal recovery time, and commit-latency
//! percentiles — the fast-path-resilience story of the paper, under
//! faults instead of clean runs.
//!
//! `--json` switches the output to a machine-readable JSON object
//! (`BENCH_faults.json` is a committed snapshot of it):
//!
//! ```bash
//! cargo run --release -p fastbft_bench --bin fault_scenarios -- --json
//! ```

use std::time::Duration;

use fastbft_bench::{header, row};
use fastbft_core::replica::ReplicaOptions;
use fastbft_crypto::KeyDirectory;
use fastbft_obs::MetricsRegistry;
use fastbft_runtime::chaos::{chaos_seed_from_env, PathExpectation, Scenario};
use fastbft_runtime::transport::ChannelTransport;
use fastbft_runtime::{wrap_seats_metered, FaultPlan, NodeSeat};
use fastbft_sim::SimDuration;
use fastbft_smr::chaos::{run_chaos, ChaosLoad, ChaosReport};
use fastbft_smr::runtime::smr_actors_metered;
use fastbft_smr::CountingMachine;
use fastbft_types::{Config, Value};

const TICK: Duration = Duration::from_micros(50);
/// The repo-wide default view-1 timeout, in ticks (8·Δ) — the floor the
/// per-scenario derivation starts from.
const FLOOR_TICKS: u64 = 800;
/// Commit cadence hint the catalog scales its fault windows from.
const COMMIT_MS: u64 = 25;

fn idle() -> Value {
    Value::from_u64(u64::MAX)
}

struct Outcome {
    expectation: &'static str,
    base_timeout_ticks: u64,
    report: ChaosReport,
}

fn expectation_name(e: PathExpectation) -> &'static str {
    match e {
        PathExpectation::FastRecovers => "fast_recovers",
        PathExpectation::SlowWhileFaulted => "slow_while_faulted",
        PathExpectation::StallAllowed => "stall_allowed",
    }
}

/// One scenario against one cluster size, through the chaos harness —
/// identical construction to the channel chaos test suite.
fn run(cfg: Config, key_seed: u64, scenario: Scenario) -> Outcome {
    let n = cfg.n();
    let (pairs, dir) = KeyDirectory::generate(n, key_seed);
    let registry = MetricsRegistry::new(n);
    let base_ticks = scenario.base_timeout_ticks(TICK, FLOOR_TICKS);
    let expectation = expectation_name(scenario.expectation);
    let opts = ReplicaOptions {
        base_timeout: SimDuration(base_ticks),
        ..ReplicaOptions::default()
    };
    let actors = smr_actors_metered(
        cfg,
        &pairs,
        &dir,
        CountingMachine::new(),
        vec![Vec::new(); n],
        idle(),
        opts,
        1,
        None,
        &registry,
    );
    let seats: Vec<NodeSeat<_, ChannelTransport<_>>> = actors
        .into_iter()
        .zip(ChannelTransport::mesh(n))
        .map(|(actor, (transport, control))| NodeSeat {
            actor,
            transport,
            control,
            verify: None,
        })
        .collect();
    let plan = FaultPlan::default();
    let seats = wrap_seats_metered(seats, &plan, chaos_seed_from_env(42), &registry);
    let base_timeout = Duration::from_nanos(TICK.as_nanos() as u64 * base_ticks);
    let report = run_chaos(
        seats,
        cfg,
        idle(),
        registry,
        plan,
        scenario,
        TICK,
        base_timeout,
        ChaosLoad::default(),
    );
    Outcome {
        expectation,
        base_timeout_ticks: base_ticks,
        report,
    }
}

fn json_outcome(o: &Outcome) -> String {
    let r = &o.report;
    format!(
        "{{\"expectation\": \"{}\", \"base_timeout_ticks\": {}, \
         \"fast\": {{\"before\": {}, \"during\": {}, \"after\": {}}}, \
         \"slow\": {{\"before\": {}, \"during\": {}, \"after\": {}}}, \
         \"fast_share\": {:.4}, \"recovered_ms\": {}, \
         \"p50_us\": {}, \"p99_us\": {}, \
         \"injected\": {{\"delays\": {}, \"drops\": {}, \"dups\": {}, \"partition_drops\": {}}}}}",
        o.expectation,
        o.base_timeout_ticks,
        r.fast[0],
        r.fast[1],
        r.fast[2],
        r.slow[0],
        r.slow[1],
        r.slow[2],
        r.fast_share,
        r.recovered_ms,
        r.p50_us,
        r.p99_us,
        r.injected[0],
        r.injected[1],
        r.injected[2],
        r.injected[3],
    )
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let load = ChaosLoad::default();

    let clusters = [
        ("n4", Config::new(4, 1, 1).unwrap(), 40u64),
        ("n7", Config::new(7, 2, 1).unwrap(), 70u64),
    ];
    let mut results: Vec<(&str, Config, Vec<Outcome>)> = Vec::new();
    for (label, cfg, seed_base) in clusters {
        let outcomes = Scenario::catalog(&cfg, COMMIT_MS)
            .into_iter()
            .enumerate()
            .map(|(i, s)| run(cfg, seed_base + i as u64, s))
            .collect();
        results.push((label, cfg, outcomes));
    }

    if json {
        println!("{{");
        println!("  \"bench\": \"fault_scenarios\",");
        println!("  \"version\": 1,");
        println!(
            "  \"config\": {{\"tick_us\": {}, \"seed\": {}, \"commit_ms\": {COMMIT_MS}, \
             \"floor_ticks\": {FLOOR_TICKS}, \"load\": {{\"warmup\": {}, \"during\": {}, \"after\": {}}}, \
             \"transport\": \"channel\"}},",
            TICK.as_micros(),
            chaos_seed_from_env(42),
            load.warmup,
            load.during,
            load.after
        );
        println!(
            "  \"unit_note\": \"fast/slow are commit counts before/during/after the fault window \
             (cluster-wide counter deltas); fast_share is over the whole run; recovered_ms is \
             wall-clock from heal to every replica fully applied; latency percentiles merge both \
             commit paths across replicas, in us; every scenario passed the safety, liveness and \
             path-attribution gates before being reported\","
        );
        println!("  \"clusters\": {{");
        for (ci, (label, cfg, outcomes)) in results.iter().enumerate() {
            let outer_comma = if ci + 1 < results.len() { "," } else { "" };
            println!(
                "    \"{label}\": {{\"n\": {}, \"f\": {}, \"t\": {}, \"scenarios\": {{",
                cfg.n(),
                cfg.f(),
                cfg.t()
            );
            for (i, o) in outcomes.iter().enumerate() {
                let comma = if i + 1 < outcomes.len() { "," } else { "" };
                println!(
                    "      \"{}\": {}{comma}",
                    o.report.scenario,
                    json_outcome(o)
                );
            }
            println!("    }}}}{outer_comma}");
        }
        println!("  }}");
        println!("}}");
        return;
    }

    println!("# graceful degradation under the chaos catalog");
    println!(
        "# {} + {} + {} commands around each fault window, channel transport, seed {}\n",
        load.warmup,
        load.during,
        load.after,
        chaos_seed_from_env(42)
    );
    println!(
        "{}",
        header(&[
            "cluster",
            "scenario",
            "expectation",
            "fast (b/d/a)",
            "slow (b/d/a)",
            "fast share",
            "recovered",
            "p50",
            "p99 (µs)",
        ])
    );
    for (label, _, outcomes) in &results {
        for o in outcomes {
            let r = &o.report;
            println!(
                "{}",
                row(&[
                    label.to_string(),
                    r.scenario.to_string(),
                    o.expectation.to_string(),
                    format!("{}/{}/{}", r.fast[0], r.fast[1], r.fast[2]),
                    format!("{}/{}/{}", r.slow[0], r.slow[1], r.slow[2]),
                    format!("{:.1}%", r.fast_share * 100.0),
                    format!("{} ms", r.recovered_ms),
                    r.p50_us.to_string(),
                    r.p99_us.to_string(),
                ])
            );
        }
    }
}
