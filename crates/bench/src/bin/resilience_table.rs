//! E5 — the resilience table (§1.2, §5): minimum process counts.
//!
//! Prints `min n` per `(f, t)` for this paper's protocol, FaB Paxos and
//! PBFT, then validates the headline entries by actually running each
//! protocol at its minimum size.

use fastbft_baselines::{fab_config, FabReplica, PbftReplica};
use fastbft_bench::{header, row};
use fastbft_core::cluster::SimCluster;
use fastbft_crypto::KeyDirectory;
use fastbft_sim::{Network, SimDuration, SimTime, Simulation};
use fastbft_types::{Config, ProcessId, ProtocolKind, Value};

fn main() {
    println!("# E5 — minimum processes for f-resilient, t-fast Byzantine consensus\n");
    println!(
        "{}",
        header(&["f", "t", "KTZ21 (this paper)", "FaB Paxos", "PBFT (3-step)"])
    );
    for f in 1..=4usize {
        for t in 1..=f {
            println!(
                "{}",
                row(&[
                    f.to_string(),
                    t.to_string(),
                    ProtocolKind::Ktz.min_n(f, t).to_string(),
                    ProtocolKind::FabPaxos.min_n(f, t).to_string(),
                    ProtocolKind::Pbft.min_n(f, t).to_string(),
                ])
            );
        }
    }

    println!("\nheadline (f = t = 1): this paper 4 processes, FaB 6, PBFT 4-but-3-step.");
    println!("vanilla (t = f): 5f − 1 vs FaB's 5f + 1 — two fewer at every f.\n");

    // Validate by execution: each protocol decides at its own minimum n.
    print!("validating KTZ21 at n = 4 … ");
    let cfg = Config::new(4, 1, 1).unwrap();
    let mut cluster = SimCluster::builder(cfg).inputs_u64([7; 4]).build();
    let report = cluster.run_until_all_decide();
    assert!(report.all_decided && report.violations.is_empty());
    assert_eq!(report.decision_delays_max(), 2);
    println!("decides in {} delays ✓", report.decision_delays_max());

    print!("validating FaB at n = 6 … ");
    let fab_cfg = fab_config(6, 1, 1).unwrap();
    let (pairs, dir) = KeyDirectory::generate(6, 1);
    let mut sim = Simulation::new(Network::synchronous(SimDuration::DELTA), 1);
    for keys in pairs.iter().take(6).cloned() {
        sim.add_actor(Box::new(FabReplica::new(
            fab_cfg,
            keys,
            dir.clone(),
            Value::from_u64(7),
        )));
    }
    sim.start();
    let all: Vec<ProcessId> = (1..=6).map(ProcessId).collect();
    assert!(sim.run_until_all_decide(&all, SimTime(100_000)));
    println!("decides ✓");

    print!("validating PBFT at n = 4 … ");
    let pbft_cfg = Config::new(4, 1, 1).unwrap();
    let (pairs, dir) = KeyDirectory::generate(4, 2);
    let mut sim = Simulation::new(Network::synchronous(SimDuration::DELTA), 2);
    for keys in pairs.iter().take(4).cloned() {
        sim.add_actor(Box::new(PbftReplica::new(
            pbft_cfg,
            keys,
            dir.clone(),
            Value::from_u64(7),
        )));
    }
    sim.start();
    let all: Vec<ProcessId> = (1..=4).map(ProcessId).collect();
    assert!(sim.run_until_all_decide(&all, SimTime(100_000)));
    println!("decides ✓");

    // And the impossibility side: KTZ21's constructor rejects n below the
    // bound, and the executable lower bound (E4) shows why it must.
    assert!(Config::new(3, 1, 1).is_err());
    assert!(Config::vanilla(8, 2).is_err());
    println!("\nn below 3f + 2t − 1 rejected by construction (see also E4) ✓");
}
