//! E1 — Figure 1a: the fast path.
//!
//! A correct leader proposes in view 1; every process acks to everyone;
//! `n − t` acks decide. The rendered flow should show exactly two message
//! "columns" (propose at step 0, ack at step 1) and decisions at step 2.

use fastbft_core::cluster::SimCluster;
use fastbft_types::{Config, View};

fn main() {
    println!("# E1 / Figure 1a — fast path (n = 4, f = t = 1)\n");
    let cfg = Config::new(4, 1, 1).expect("valid config");
    println!("leader(1) = {}\n", cfg.leader(View::FIRST));

    let mut cluster = SimCluster::builder(cfg).inputs_u64([7, 7, 7, 7]).build();
    let report = cluster.run_until_all_decide();

    println!("message flow:");
    print!("{}", cluster.trace().render_flow(report.delta));

    println!("\nobservations:");
    println!(
        "  decided value        : {:?}",
        report.unanimous_decision().unwrap()
    );
    println!(
        "  decision latency     : {} message delays",
        report.decision_delays_max()
    );
    println!("  messages             : {}", report.stats.messages);
    for (kind, (count, bytes)) in &report.stats.by_kind {
        println!("    {kind:<10} {count:>4} msgs {bytes:>7} B");
    }
    println!("  violations           : {:?}", report.violations);

    assert_eq!(report.decision_delays_max(), 2, "paper: two message delays");
    assert!(report.violations.is_empty());
    println!("\nfast path reproduced: decide after exactly two message delays ✓");
}
