//! E12 — message complexity of a common-case decision.
//!
//! The fast path is one `propose` broadcast plus an all-to-all `ack` round:
//! `O(n²)` messages (the price of two-step latency — every process must
//! observe the quorum itself rather than hearing a digest from the leader).
//! Counted per protocol at its minimal size across `f`, plus per-kind
//! breakdowns.

use fastbft_baselines::{fab_config, FabReplica, PbftReplica};
use fastbft_bench::{header, row};
use fastbft_core::cluster::SimCluster;
use fastbft_crypto::KeyDirectory;
use fastbft_sim::{MessageStats, Network, SimDuration, SimTime, Simulation};
use fastbft_types::{Config, ProcessId, ProtocolKind, Value};

fn ktz_stats(f: usize, t: usize) -> (usize, MessageStats) {
    let n = ProtocolKind::Ktz.min_n(f, t);
    let cfg = Config::new(n, f, t).unwrap();
    let mut cluster = SimCluster::builder(cfg).inputs_u64(vec![7; n]).build();
    let report = cluster.run_until_all_decide();
    assert!(report.all_decided);
    (n, report.stats)
}

fn fab_stats(f: usize, t: usize) -> (usize, MessageStats) {
    let n = ProtocolKind::FabPaxos.min_n(f, t);
    let cfg = fab_config(n, f, t).unwrap();
    let (pairs, dir) = KeyDirectory::generate(n, 3);
    let mut sim = Simulation::new(Network::synchronous(SimDuration::DELTA), 3);
    for keys in pairs.iter().take(n).cloned() {
        sim.add_actor(Box::new(FabReplica::new(
            cfg,
            keys,
            dir.clone(),
            Value::from_u64(7),
        )));
    }
    sim.start();
    let all: Vec<ProcessId> = (1..=n as u32).map(ProcessId).collect();
    assert!(sim.run_until_all_decide(&all, SimTime(1_000_000)));
    (n, sim.trace().message_stats(SimTime::NEVER))
}

fn pbft_stats(f: usize) -> (usize, MessageStats) {
    let n = ProtocolKind::Pbft.min_n(f, 0);
    let cfg = Config::new_unchecked(n, f, 1.min(f));
    let (pairs, dir) = KeyDirectory::generate(n, 4);
    let mut sim = Simulation::new(Network::synchronous(SimDuration::DELTA), 4);
    for keys in pairs.iter().take(n).cloned() {
        sim.add_actor(Box::new(PbftReplica::new(
            cfg,
            keys,
            dir.clone(),
            Value::from_u64(7),
        )));
    }
    sim.start();
    let all: Vec<ProcessId> = (1..=n as u32).map(ProcessId).collect();
    assert!(sim.run_until_all_decide(&all, SimTime(1_000_000)));
    (n, sim.trace().message_stats(SimTime::NEVER))
}

fn main() {
    println!("# E12 — messages and bytes per common-case decision\n");
    println!(
        "{}",
        header(&["f", "protocol", "n", "messages", "bytes", "msgs/n²"])
    );
    for f in 1..=3usize {
        let (n, stats) = ktz_stats(f, f);
        println!(
            "{}",
            row(&[
                f.to_string(),
                "KTZ21 (vanilla t=f)".into(),
                n.to_string(),
                stats.messages.to_string(),
                stats.bytes.to_string(),
                format!("{:.2}", stats.messages as f64 / (n * n) as f64),
            ])
        );
        let (n, stats) = fab_stats(f, f);
        println!(
            "{}",
            row(&[
                f.to_string(),
                "FaB Paxos".into(),
                n.to_string(),
                stats.messages.to_string(),
                stats.bytes.to_string(),
                format!("{:.2}", stats.messages as f64 / (n * n) as f64),
            ])
        );
        let (n, stats) = pbft_stats(f);
        println!(
            "{}",
            row(&[
                f.to_string(),
                "PBFT".into(),
                n.to_string(),
                stats.messages.to_string(),
                stats.bytes.to_string(),
                format!("{:.2}", stats.messages as f64 / (n * n) as f64),
            ])
        );
    }

    println!("\nper-kind breakdown for KTZ21's generalized mode (n = 8, f = 2, t = 1):");
    let cfg = Config::new(8, 2, 1).unwrap();
    let mut cluster = SimCluster::builder(cfg).inputs_u64(vec![7; 8]).build();
    let report = cluster.run_until_all_decide();
    for (kind, (count, bytes)) in &report.stats.by_kind {
        println!("  {kind:<10} {count:>5} msgs {bytes:>8} B");
    }
    println!("\nshape: all three protocols are Θ(n²) messages in the common case; the");
    println!("fast protocols trade the third latency round for the all-to-all ack. ✓");
}
