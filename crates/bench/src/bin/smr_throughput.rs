//! E9 — replicated state machine throughput: simulated and wall-clock.
//!
//! Two measurements backing the paper's §1.1 motivation (SMR is the reason
//! consensus latency matters):
//!
//! 1. simulated SMR throughput (commands committed per Δ) for the minimal
//!    `f = t = 1` system and a larger `f = 2, t = 1` system;
//! 2. **wall-clock commands/sec on the thread runtime**, sweeping batch
//!    size {1, 8, 64} over both transports — in-process channels and
//!    `fastbft-net`'s authenticated loopback TCP — plus a wider
//!    `n ∈ {4, 7} × payload {8 B, 1 KiB}` sweep at batch {1, 64}, and an
//!    **adaptive-batching** head-to-head: the same live single-command
//!    submission stream over TCP through fixed batch 1 and through the
//!    self-tuning batcher with one apply worker.
//!
//! Methodology: every wall-clock configuration first scales its workload
//! until a run takes at least [`MIN_ELAPSED_MS`] (timing a sub-50 ms run
//! on a shared runner mostly measures scheduler noise), then runs
//! [`TRIALS`] times at that size. The **best** trial is the headline
//! number — the machine this runs on (a shared 1-core container in CI)
//! suffers multi-× CPU-availability swings, and best-of-k reports the
//! pipeline's capability rather than the noisiest neighbor — with the
//! **median** alongside as the noise-resistant central tendency.
//! The clock starts after listeners bind and threads spawn; lazy first
//! dials are counted (they are part of protocol throughput).
//!
//! `--json` switches the output to a machine-readable JSON object
//! (`BENCH_smr_throughput.json` is a committed snapshot of it), and
//! `--shards a,b,c` overrides the default {1, 2, 4} multi-group sweep —
//! useful for probing scaling on a big machine without editing the bin:
//!
//! ```bash
//! cargo run --release -p fastbft_bench --bin smr_throughput -- --json
//! cargo run --release -p fastbft_bench --bin smr_throughput -- --shards 1,4,8
//! ```

use std::time::{Duration, Instant};

use fastbft_bench::{header, row};
use fastbft_core::replica::ReplicaOptions;
use fastbft_crypto::KeyDirectory;
use fastbft_net::tcp_seats;
use fastbft_runtime::{spawn, spawn_with};
use fastbft_sim::{SimDuration, SimTime};
use fastbft_smr::runtime::{smr_actors, smr_actors_configured, SmrClusterHandle};
use fastbft_smr::{
    AdaptiveBatch, Batching, CountingMachine, KvCommand, ShardedKvHandle, SmrSimCluster,
};
use fastbft_types::{Config, Value};

/// Starting workload per configuration; the calibration loop scales it
/// ×4 until a run clears the work floor.
const COMMANDS: u64 = 256;
/// Minimum elapsed time for a trustworthy measurement (see module docs).
const MIN_ELAPSED_MS: f64 = 50.0;
/// Calibration ceiling — a configuration fast enough to finish 32k
/// commands under the floor is reported at this size anyway.
const MAX_COMMANDS: u64 = 32_768;
/// Shard counts for the multi-group sweep (1 = the single-group
/// baseline the scaling ratios are computed against).
const SHARD_SWEEP: [usize; 3] = [1, 2, 4];
const TICK: Duration = Duration::from_micros(50);
const BATCHES: [usize; 3] = [1, 8, 64];
/// Wall-clock trials per configuration; the best is reported, the median
/// retained (see the methodology note in the module docs).
const TRIALS: usize = 3;
/// Apply workers on the adaptive head-to-head point (0 everywhere else —
/// the inline default).
const ADAPTIVE_APPLY_WORKERS: usize = 1;
/// The committed PR-3 baseline this PR's pipeline is measured against:
/// TCP loopback, n = 4, 8-byte commands, batch 1.
const PR3_TCP_BATCH1_BASELINE: f64 = 6835.0;
/// The committed PR-4 baselines for the protocol-hash-bound sweep points
/// (n = 7, 1 KiB commands, TCP loopback) that PR 5's digest-carried
/// statements attack: before hash-then-sign, every signature re-hashed the
/// full value bytes, so these points were flat across batch sizes.
const PR4_N7_1KIB_TCP_BATCH1_BASELINE: f64 = 367.0;
const PR4_N7_1KIB_TCP_BATCH64_BASELINE: f64 = 438.0;

fn simulated_throughput(n: usize, f: usize, t: usize, batch: usize, commands: u64) -> (u64, f64) {
    let cfg = Config::new(n, f, t).unwrap();
    let queue: Vec<Value> = (0..commands).map(Value::from_u64).collect();
    let mut cluster = SmrSimCluster::new_batched(
        cfg,
        1,
        CountingMachine::new(),
        vec![queue; n],
        Value::from_u64(u64::MAX),
        ReplicaOptions::default(),
        batch,
    );
    let report = cluster.run_until_commands(commands, SimTime(10_000_000));
    assert!(report.logs_consistent);
    (report.commands_everywhere, report.commands_per_delta)
}

#[derive(Clone, Copy, PartialEq)]
enum TransportKind {
    Channel,
    TcpLoopback,
}

impl TransportKind {
    fn label(self) -> &'static str {
        match self {
            TransportKind::Channel => "channel",
            TransportKind::TcpLoopback => "tcp_loopback",
        }
    }
}

/// One wall-clock configuration of the runtime sweep.
#[derive(Clone, Copy)]
struct SweepPoint {
    n: usize,
    f: usize,
    payload_bytes: usize,
    kind: TransportKind,
    batch: usize,
}

struct Throughput {
    commands_per_sec: f64,
    elapsed_ms: f64,
}

/// A command value of exactly `payload_bytes` (≥ 8): a distinct `u64`
/// counter followed by zero padding.
fn payload_value(i: u64, payload_bytes: usize) -> Value {
    let mut bytes = vec![0u8; payload_bytes.max(8)];
    bytes[..8].copy_from_slice(&i.to_be_bytes());
    Value::new(bytes)
}

/// The bench's wall-clock replica options: the default 8·Δ view timeout is
/// calibrated for the simulator, where a round takes exactly Δ. On the
/// wall clock (1-core runners, 16-deep slot pipeline, n² messages per
/// slot) a slot can legitimately sit longer than that behind its
/// predecessors; a throughput bench must not measure spurious view-change
/// churn, so give slots a generous timeout (failure recovery is
/// tcp_latency's and the tests' job).
fn bench_opts() -> ReplicaOptions {
    ReplicaOptions {
        base_timeout: SimDuration(SimDuration::DELTA.0 * 200),
        ..ReplicaOptions::default()
    }
}

/// Runs `commands` preloaded client commands (broadcast to every replica)
/// through an SMR cluster to full application on *all* replicas, and
/// reports commands/sec for the slowest replica.
fn one_trial(p: SweepPoint, seed: u64, commands: u64) -> Throughput {
    let cfg = Config::new(p.n, p.f, 1).unwrap();
    let (pairs, dir) = KeyDirectory::generate(p.n, seed);
    let idle = Value::from_u64(u64::MAX);
    let queue: Vec<Value> = (0..commands)
        .map(|i| payload_value(i, p.payload_bytes))
        .collect();
    let actors = smr_actors(
        cfg,
        &pairs,
        &dir,
        CountingMachine::new(),
        vec![queue; p.n],
        idle.clone(),
        bench_opts(),
        p.batch,
    );
    let inner = match p.kind {
        TransportKind::Channel => spawn(actors, TICK),
        TransportKind::TcpLoopback => {
            let (seats, _addrs) =
                tcp_seats(actors, pairs, dir, Default::default()).expect("loopback bind");
            spawn_with(seats, TICK)
        }
    };
    let mut cluster = SmrClusterHandle::new(inner, p.n, idle);
    // Clock starts after listener binds and thread spawns: setup cost is
    // not protocol throughput (the lazy first TCP dials legitimately are).
    let start = Instant::now();
    let ok = cluster.await_commands(cfg.processes(), commands, Duration::from_secs(120));
    let elapsed = start.elapsed();
    assert!(ok, "cluster did not apply all {commands} commands");
    assert!(cluster.logs_agree(), "log divergence");
    cluster.shutdown();
    Throughput {
        commands_per_sec: commands as f64 / elapsed.as_secs_f64(),
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
    }
}

/// A live single-command submission stream over loopback TCP (n = 4,
/// 8 B commands): every command is submitted individually to the running
/// cluster — the client shape that historically forced one slot per
/// command. `adaptive` routes it through the self-tuning batcher plus one
/// apply worker; otherwise fixed batch 1, inline apply (the old path).
fn one_live_trial(adaptive: bool, seed: u64, commands: u64) -> Throughput {
    let cfg = Config::new(4, 1, 1).unwrap();
    let (pairs, dir) = KeyDirectory::generate(cfg.n(), seed);
    let idle = Value::from_u64(u64::MAX);
    let opts = ReplicaOptions {
        apply_workers: if adaptive { ADAPTIVE_APPLY_WORKERS } else { 0 },
        ..bench_opts()
    };
    let batching = if adaptive {
        Batching::Adaptive(AdaptiveBatch::default())
    } else {
        Batching::Fixed(1)
    };
    let actors = smr_actors_configured(
        cfg,
        &pairs,
        &dir,
        CountingMachine::new(),
        vec![Vec::new(); cfg.n()],
        idle.clone(),
        opts,
        batching,
        None,
        None,
    );
    let (seats, _addrs) = tcp_seats(actors, pairs, dir, Default::default()).expect("loopback bind");
    let mut cluster = SmrClusterHandle::new(spawn_with(seats, TICK), cfg.n(), idle);
    let start = Instant::now();
    for i in 0..commands {
        cluster.submit(payload_value(i, 8));
    }
    let ok = cluster.await_commands(cfg.processes(), commands, Duration::from_secs(120));
    let elapsed = start.elapsed();
    assert!(ok, "live cluster did not apply all {commands} commands");
    assert!(cluster.logs_agree(), "log divergence");
    cluster.shutdown();
    Throughput {
        commands_per_sec: commands as f64 / elapsed.as_secs_f64(),
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
    }
}

/// All [`TRIALS`] runs of one configuration at its calibrated workload:
/// the best (the reported number, per the methodology note), the median,
/// and every run's throughput, so the JSON output carries the
/// trial-to-trial spread — the reader can judge how noisy the runner was
/// instead of trusting a single scalar.
struct TrialSet {
    best: Throughput,
    /// Per-run commands/sec, in run order.
    runs: Vec<f64>,
    /// The calibrated workload every run used.
    commands: u64,
}

impl TrialSet {
    /// (max − min) / max of the per-run throughputs, in percent: 0 means
    /// perfectly stable trials, large values mean a noisy runner.
    fn spread_pct(&self) -> f64 {
        let min = self.runs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = self.runs.iter().copied().fold(0.0, f64::max);
        if max > 0.0 {
            (max - min) / max * 100.0
        } else {
            0.0
        }
    }

    /// The middle per-run throughput (upper middle for an even count) —
    /// resistant to a single noisy trial in either direction.
    fn median(&self) -> f64 {
        let mut sorted = self.runs.clone();
        sorted.sort_by(f64::total_cmp);
        sorted[sorted.len() / 2]
    }

    fn runs_json(&self) -> String {
        let parts: Vec<String> = self.runs.iter().map(|r| format!("{r:.0}")).collect();
        format!("[{}]", parts.join(", "))
    }

    /// The shared JSON fields of one configuration's entry.
    fn fields_json(&self) -> String {
        format!(
            "\"unit\": \"commands_per_sec\", \"commands\": {}, \"commands_per_sec\": {:.0}, \"median_commands_per_sec\": {:.0}, \"elapsed_ms\": {:.2}, \"runs_commands_per_sec\": {}, \"spread_pct\": {:.1}",
            self.commands,
            self.best.commands_per_sec,
            self.median(),
            self.best.elapsed_ms,
            self.runs_json(),
            self.spread_pct()
        )
    }
}

/// Calibrates the workload for one configuration: runs [`TRIALS`] trials,
/// and if the *fastest* of them — the one that becomes the headline
/// number — finished under [`MIN_ELAPSED_MS`], scales the workload ×4
/// (capped at [`MAX_COMMANDS`]) and reruns. Judging the floor on the best
/// trial rather than a single probe matters: one run inflated by a
/// startup hiccup (a lazy-dial race eating a view-change timeout) would
/// otherwise "clear" the floor at a size where the clean runs are still
/// sub-millisecond noise. Under-floor rounds are fast by definition, so
/// the retries cost little.
fn calibrated(run: impl Fn(u64, u64) -> Throughput, seed: u64) -> TrialSet {
    let mut commands = COMMANDS;
    let mut seed_off = 0u64;
    loop {
        let trials: Vec<Throughput> = (0..TRIALS)
            .map(|t| run(seed + seed_off + t as u64, commands))
            .collect();
        let best_elapsed = trials
            .iter()
            .map(|t| t.elapsed_ms)
            .fold(f64::INFINITY, f64::min);
        if best_elapsed >= MIN_ELAPSED_MS || commands >= MAX_COMMANDS {
            return best_of(trials, commands);
        }
        commands = (commands * 4).min(MAX_COMMANDS);
        seed_off += TRIALS as u64;
    }
}

fn best_of(trials: Vec<Throughput>, commands: u64) -> TrialSet {
    let runs = trials.iter().map(|t| t.commands_per_sec).collect();
    let best = trials
        .into_iter()
        .max_by(|a, b| a.commands_per_sec.total_cmp(&b.commands_per_sec))
        .expect("TRIALS >= 1");
    TrialSet {
        best,
        runs,
        commands,
    }
}

/// Best of [`TRIALS`] calibrated runs of one configuration (see the
/// methodology note), with the individual runs retained.
fn runtime_throughput(p: SweepPoint, seed: u64) -> TrialSet {
    calibrated(|s, commands| one_trial(p, s, commands), seed)
}

/// One trial of the sharded KV runtime: `shards` independent consensus
/// groups multiplexed over one in-process mesh (per-group leader
/// stagger, routing by key digest), `commands` live-submitted puts to
/// full application on all replicas of every group. `verify_workers > 0`
/// additionally attaches a verify pool to every seat. The channel mesh
/// keeps this point CPU-bound: it measures how the *protocol* datapath
/// scales with cores, without TCP writer threads oversubscribing small
/// runners.
fn one_shard_trial(shards: usize, verify_workers: usize, seed: u64, commands: u64) -> Throughput {
    let cfg = Config::new(4, 1, 1).unwrap();
    let mut cluster =
        ShardedKvHandle::spawn_channel(cfg, seed, shards, bench_opts(), 1, TICK, verify_workers);
    let puts: Vec<Value> = (0..commands)
        .map(|i| {
            KvCommand::Put {
                key: format!("key-{i}"),
                value: "v".into(),
            }
            .to_value()
        })
        .collect();
    let start = Instant::now();
    for command in puts {
        cluster.submit(command);
    }
    let ok = cluster.await_submitted(Duration::from_secs(120));
    let elapsed = start.elapsed();
    assert!(ok, "sharded cluster did not apply all {commands} commands");
    assert!(cluster.logs_agree(), "sharded log divergence");
    cluster.shutdown();
    Throughput {
        commands_per_sec: commands as f64 / elapsed.as_secs_f64(),
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
    }
}

fn shard_throughput(shards: usize, verify_workers: usize, seed: u64) -> TrialSet {
    calibrated(
        |s, commands| one_shard_trial(shards, verify_workers, s, commands),
        seed,
    )
}

/// Parses `--shards a,b,c` (or `--shards=a,b,c`) into a custom shard
/// sweep; the committed JSON snapshot and its CI gates use the default
/// [`SHARD_SWEEP`].
fn shard_sweep_arg() -> Vec<usize> {
    let args: Vec<String> = std::env::args().collect();
    for (i, arg) in args.iter().enumerate() {
        let list = match arg.strip_prefix("--shards=") {
            Some(rest) => Some(rest.to_string()),
            None if arg == "--shards" => args.get(i + 1).cloned(),
            None => None,
        };
        if let Some(list) = list {
            let parsed: Vec<usize> = list
                .split(',')
                .filter_map(|s| s.trim().parse().ok())
                .filter(|&s| s >= 1)
                .collect();
            assert!(!parsed.is_empty(), "--shards wants a list like 1,2,4");
            return parsed;
        }
    }
    SHARD_SWEEP.to_vec()
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");

    // transport × batch sweep on the wall-clock runtime (n = 4, 8 B).
    let mut results: Vec<(TransportKind, Vec<(usize, TrialSet)>)> = Vec::new();
    for (i, kind) in [TransportKind::Channel, TransportKind::TcpLoopback]
        .into_iter()
        .enumerate()
    {
        let mut per_batch = Vec::new();
        for (j, batch) in BATCHES.into_iter().enumerate() {
            let seed = 300 + (i * 30 + j * 10) as u64;
            let p = SweepPoint {
                n: 4,
                f: 1,
                payload_bytes: 8,
                kind,
                batch,
            };
            per_batch.push((batch, runtime_throughput(p, seed)));
        }
        results.push((kind, per_batch));
    }

    // Adaptive head-to-head: one live single-command stream over TCP,
    // fixed batch 1 vs. the self-tuning batcher + apply worker. The
    // workload is calibrated on the adaptive (fast) side, then the fixed
    // side runs the *same* command count so the speedup compares like
    // with like in the same process on the same runner.
    let adaptive_ts = calibrated(|s, commands| one_live_trial(true, s, commands), 2000);
    let live_commands = adaptive_ts.commands;
    let fixed_live_ts = best_of(
        (0..TRIALS)
            .map(|t| one_live_trial(false, 2100 + t as u64, live_commands))
            .collect(),
        live_commands,
    );
    let adaptive_speedup = adaptive_ts.best.commands_per_sec / fixed_live_ts.best.commands_per_sec;

    // n × payload sweep, both transports, batch {1, 64}.
    let mut sweep: Vec<(SweepPoint, TrialSet)> = Vec::new();
    let mut seed = 900;
    for (n, f) in [(4usize, 1usize), (7, 2)] {
        for payload_bytes in [8usize, 1024] {
            for kind in [TransportKind::Channel, TransportKind::TcpLoopback] {
                for batch in [1usize, 64] {
                    let p = SweepPoint {
                        n,
                        f,
                        payload_bytes,
                        kind,
                        batch,
                    };
                    seed += 10;
                    sweep.push((p, runtime_throughput(p, seed)));
                }
            }
        }
    }

    // Sharded multi-group sweep (n = 4 per group, channel mesh, KV puts,
    // batch 1): how throughput scales with independent groups when cores
    // are available. Verify pools use the replica default (cores − 1; 0 =
    // inline on a single-core runner).
    let verify_workers = ReplicaOptions::default_verify_workers();
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let mut shard_results: Vec<(usize, TrialSet)> = Vec::new();
    for (i, shards) in shard_sweep_arg().into_iter().enumerate() {
        let seed = 1700 + (i * 10) as u64;
        shard_results.push((shards, shard_throughput(shards, verify_workers, seed)));
    }

    if json {
        println!("{{");
        println!("  \"bench\": \"smr_throughput\",");
        println!("  \"version\": 6,");
        println!(
            "  \"config\": {{\"commands_floor\": {COMMANDS}, \"min_elapsed_ms\": {MIN_ELAPSED_MS:.0}, \"max_commands\": {MAX_COMMANDS}, \"tick_us\": {}, \"trials\": {TRIALS}, \"host_cores\": {host_cores}, \"verify_workers\": {verify_workers}, \"apply_workers\": {ADAPTIVE_APPLY_WORKERS}}},",
            TICK.as_micros()
        );
        println!(
            "  \"unit_note\": \"client commands per second until the last replica has applied all of them; per configuration the workload is scaled x4 until a run takes >= min_elapsed_ms, then best of {TRIALS} trials at that size is reported (shared-core CI runners have multi-x CPU swings) with median_commands_per_sec alongside; runs_commands_per_sec lists every trial and spread_pct = (max-min)/max\","
        );
        println!("  \"baseline_pr3\": {{\"tcp_loopback_batch_1\": {PR3_TCP_BATCH1_BASELINE:.0}}},");
        println!(
            "  \"baseline_pr4\": {{\"n7_payload1024_tcp_batch_1\": {PR4_N7_1KIB_TCP_BATCH1_BASELINE:.0}, \"n7_payload1024_tcp_batch_64\": {PR4_N7_1KIB_TCP_BATCH64_BASELINE:.0}}},"
        );
        println!("  \"transports\": {{");
        for (i, (kind, per_batch)) in results.iter().enumerate() {
            println!("    \"{}\": {{", kind.label());
            for (j, (batch, ts)) in per_batch.iter().enumerate() {
                let comma = if j + 1 < per_batch.len() { "," } else { "" };
                println!("      \"batch_{batch}\": {{{}}}{comma}", ts.fields_json());
            }
            let comma = if i + 1 < results.len() { "," } else { "" };
            println!("    }}{comma}");
        }
        println!("  }},");
        println!("  \"adaptive\": {{");
        println!(
            "    \"note\": \"live single-command submission over tcp_loopback, n = 4, 8 B commands: fixed batch 1 + inline apply vs. adaptive batching + {ADAPTIVE_APPLY_WORKERS} apply worker, same command count in the same run\","
        );
        println!(
            "    \"fixed_batch_1\": {{{}}},",
            fixed_live_ts.fields_json()
        );
        println!("    \"adaptive\": {{{}}},", adaptive_ts.fields_json());
        println!("    \"speedup\": {adaptive_speedup:.2}");
        println!("  }},");
        println!("  \"shards\": {{");
        for (i, (shards, ts)) in shard_results.iter().enumerate() {
            let comma = if i + 1 < shard_results.len() { "," } else { "" };
            println!("    \"shards_{shards}\": {{{}}}{comma}", ts.fields_json());
        }
        println!("  }},");
        println!("  \"sweep\": [");
        for (i, (p, ts)) in sweep.iter().enumerate() {
            let comma = if i + 1 < sweep.len() { "," } else { "" };
            println!(
                "    {{\"n\": {}, \"payload_bytes\": {}, \"transport\": \"{}\", \"batch\": {}, {}}}{comma}",
                p.n,
                p.payload_bytes,
                p.kind.label(),
                p.batch,
                ts.fields_json()
            );
        }
        println!("  ]");
        println!("}}");
        return;
    }

    println!("# E9 — SMR throughput: simulated commands/Δ and wall-clock commands/sec\n");

    println!(
        "{}",
        header(&["config", "batch", "commands applied", "commands per Δ"])
    );
    for (n, f, t) in [(4usize, 1usize, 1usize), (8, 2, 1)] {
        for batch in [1usize, 8, 32] {
            let (applied, per_delta) = simulated_throughput(n, f, t, batch, 96);
            println!(
                "{}",
                row(&[
                    format!("n={n}, f={f}, t={t}"),
                    batch.to_string(),
                    applied.to_string(),
                    format!("{per_delta:.3}"),
                ])
            );
            assert!(applied >= 96);
        }
    }

    println!("\nthread runtime, n = 4, 8 B commands, calibrated workload to full application on all replicas (best of {TRIALS}):");
    println!(
        "{}",
        header(&[
            "transport",
            "batch",
            "commands",
            "commands/sec",
            "median",
            "spread"
        ])
    );
    for (kind, per_batch) in &results {
        for (batch, ts) in per_batch {
            println!(
                "{}",
                row(&[
                    kind.label().to_string(),
                    batch.to_string(),
                    ts.commands.to_string(),
                    format!("{:.0}", ts.best.commands_per_sec),
                    format!("{:.0}", ts.median()),
                    format!("{:.1}%", ts.spread_pct()),
                ])
            );
        }
    }

    println!("\nadaptive batching, live single-command stream over TCP (n = 4, 8 B, {live_commands} commands):");
    println!("{}", header(&["mode", "commands/sec", "median", "spread"]));
    for (label, ts) in [
        ("fixed batch 1", &fixed_live_ts),
        ("adaptive + apply worker", &adaptive_ts),
    ] {
        println!(
            "{}",
            row(&[
                label.to_string(),
                format!("{:.0}", ts.best.commands_per_sec),
                format!("{:.0}", ts.median()),
                format!("{:.1}%", ts.spread_pct()),
            ])
        );
    }
    println!("speedup: {adaptive_speedup:.2}x");

    println!("\nsharded KV, n = 4 per group, channel mesh, batch 1, calibrated live puts");
    println!(
        "({host_cores} host cores, {verify_workers} verify workers per seat, best of {TRIALS}):"
    );
    println!(
        "{}",
        header(&["shards", "commands", "commands/sec", "median", "spread"])
    );
    for (shards, ts) in &shard_results {
        println!(
            "{}",
            row(&[
                shards.to_string(),
                ts.commands.to_string(),
                format!("{:.0}", ts.best.commands_per_sec),
                format!("{:.0}", ts.median()),
                format!("{:.1}%", ts.spread_pct()),
            ])
        );
    }

    println!("\nn × payload sweep (best of {TRIALS}):");
    println!(
        "{}",
        header(&[
            "n",
            "payload",
            "transport",
            "batch",
            "commands/sec",
            "median",
            "spread"
        ])
    );
    for (p, ts) in &sweep {
        println!(
            "{}",
            row(&[
                p.n.to_string(),
                format!("{} B", p.payload_bytes),
                p.kind.label().to_string(),
                p.batch.to_string(),
                format!("{:.0}", ts.best.commands_per_sec),
                format!("{:.0}", ts.median()),
                format!("{:.1}%", ts.spread_pct()),
            ])
        );
    }

    println!("\nshape: batching amortizes the two message delays, and on TCP the send");
    println!("pipeline (encode-once broadcast, per-peer writer threads, one coalesced");
    println!("frame + MAC per drain, slot pipelining) amortizes the per-frame HMAC and");
    println!("syscall cost — throughput rises with batch size on both transports and");
    println!("the TCP-vs-channel gap narrows as drains coalesce. The adaptive batcher");
    println!("gives a live batch-1 submission stream the batch-64 curve without any");
    println!("client-side batching. (JSON for tooling: rerun with --json; committed");
    println!("snapshot: BENCH_smr_throughput.json)");
}
