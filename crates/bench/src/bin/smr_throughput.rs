//! E9 — replicated state machine throughput: simulated and wall-clock.
//!
//! Two measurements backing the paper's §1.1 motivation (SMR is the reason
//! consensus latency matters):
//!
//! 1. simulated SMR throughput (commands committed per Δ) for the minimal
//!    `f = t = 1` system and a larger `f = 2, t = 1` system;
//! 2. **wall-clock commands/sec on the thread runtime**, sweeping batch
//!    size {1, 8, 64} over both transports — in-process channels and
//!    `fastbft-net`'s authenticated loopback TCP. This is the repo's first
//!    throughput (not just latency) number on real sockets; batching
//!    amortizes the two message delays and the per-frame HMAC work over
//!    many commands, following the Fast B4B playbook.
//!
//! `--json` switches the output to a machine-readable JSON object
//! (`BENCH_smr_throughput.json` is a committed snapshot of it):
//!
//! ```bash
//! cargo run --release -p fastbft_bench --bin smr_throughput -- --json
//! ```

use std::time::{Duration, Instant};

use fastbft_bench::{header, row};
use fastbft_core::replica::ReplicaOptions;
use fastbft_crypto::KeyDirectory;
use fastbft_net::tcp_seats;
use fastbft_runtime::{spawn, spawn_with};
use fastbft_sim::SimTime;
use fastbft_smr::runtime::{smr_actors, SmrClusterHandle};
use fastbft_smr::{CountingMachine, SmrSimCluster};
use fastbft_types::{Config, Value};

const N: usize = 4;
const COMMANDS: u64 = 256;
const TICK: Duration = Duration::from_micros(50);
const BATCHES: [usize; 3] = [1, 8, 64];

fn simulated_throughput(n: usize, f: usize, t: usize, batch: usize, commands: u64) -> (u64, f64) {
    let cfg = Config::new(n, f, t).unwrap();
    let queue: Vec<Value> = (0..commands).map(Value::from_u64).collect();
    let mut cluster = SmrSimCluster::new_batched(
        cfg,
        1,
        CountingMachine::new(),
        vec![queue; n],
        Value::from_u64(u64::MAX),
        ReplicaOptions::default(),
        batch,
    );
    let report = cluster.run_until_commands(commands, SimTime(10_000_000));
    assert!(report.logs_consistent);
    (report.commands_everywhere, report.commands_per_delta)
}

#[derive(Clone, Copy)]
enum TransportKind {
    Channel,
    TcpLoopback,
}

impl TransportKind {
    fn label(self) -> &'static str {
        match self {
            TransportKind::Channel => "channel",
            TransportKind::TcpLoopback => "tcp_loopback",
        }
    }
}

struct Throughput {
    commands_per_sec: f64,
    elapsed_ms: f64,
}

/// Runs `COMMANDS` preloaded client commands (broadcast to every replica)
/// through an n = 4 SMR cluster to full application on *all* replicas, and
/// reports commands/sec for the slowest replica.
fn runtime_throughput(kind: TransportKind, batch: usize, seed: u64) -> Throughput {
    let cfg = Config::new(N, 1, 1).unwrap();
    let (pairs, dir) = KeyDirectory::generate(N, seed);
    let idle = Value::from_u64(u64::MAX);
    let queue: Vec<Value> = (0..COMMANDS).map(Value::from_u64).collect();
    let actors = smr_actors(
        cfg,
        &pairs,
        &dir,
        CountingMachine::new(),
        vec![queue; N],
        idle.clone(),
        ReplicaOptions::default(),
        batch,
    );
    let inner = match kind {
        TransportKind::Channel => spawn(actors, TICK),
        TransportKind::TcpLoopback => {
            let (seats, _addrs) =
                tcp_seats(actors, pairs, dir, Default::default()).expect("loopback bind");
            spawn_with(seats, TICK)
        }
    };
    let mut cluster = SmrClusterHandle::new(inner, N, idle);
    // Clock starts after listener binds and thread spawns: setup cost is
    // not protocol throughput (the lazy first TCP dials legitimately are).
    let start = Instant::now();
    let ok = cluster.await_commands(cfg.processes(), COMMANDS, Duration::from_secs(120));
    let elapsed = start.elapsed();
    assert!(ok, "cluster did not apply all {COMMANDS} commands");
    assert!(cluster.logs_agree(), "log divergence");
    cluster.shutdown();
    Throughput {
        commands_per_sec: COMMANDS as f64 / elapsed.as_secs_f64(),
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
    }
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");

    // transport × batch sweep on the wall-clock runtime.
    let mut results: Vec<(TransportKind, Vec<(usize, Throughput)>)> = Vec::new();
    for (i, kind) in [TransportKind::Channel, TransportKind::TcpLoopback]
        .into_iter()
        .enumerate()
    {
        let mut per_batch = Vec::new();
        for (j, batch) in BATCHES.into_iter().enumerate() {
            let seed = 300 + (i * 10 + j) as u64;
            per_batch.push((batch, runtime_throughput(kind, batch, seed)));
        }
        results.push((kind, per_batch));
    }

    if json {
        println!("{{");
        println!("  \"bench\": \"smr_throughput\",");
        println!(
            "  \"config\": {{\"n\": {N}, \"f\": 1, \"t\": 1, \"commands\": {COMMANDS}, \"tick_us\": {}}},",
            TICK.as_micros()
        );
        println!(
            "  \"unit_note\": \"client commands per second until the last of {N} replicas has applied all of them\","
        );
        println!("  \"transports\": {{");
        for (i, (kind, per_batch)) in results.iter().enumerate() {
            println!("    \"{}\": {{", kind.label());
            for (j, (batch, t)) in per_batch.iter().enumerate() {
                let comma = if j + 1 < per_batch.len() { "," } else { "" };
                println!(
                    "      \"batch_{batch}\": {{\"unit\": \"commands_per_sec\", \"commands_per_sec\": {:.0}, \"elapsed_ms\": {:.2}}}{comma}",
                    t.commands_per_sec, t.elapsed_ms
                );
            }
            let comma = if i + 1 < results.len() { "," } else { "" };
            println!("    }}{comma}");
        }
        println!("  }}");
        println!("}}");
        return;
    }

    println!("# E9 — SMR throughput: simulated commands/Δ and wall-clock commands/sec\n");

    println!(
        "{}",
        header(&["config", "batch", "commands applied", "commands per Δ"])
    );
    for (n, f, t) in [(4usize, 1usize, 1usize), (8, 2, 1)] {
        for batch in [1usize, 8, 32] {
            let (applied, per_delta) = simulated_throughput(n, f, t, batch, 96);
            println!(
                "{}",
                row(&[
                    format!("n={n}, f={f}, t={t}"),
                    batch.to_string(),
                    applied.to_string(),
                    format!("{per_delta:.3}"),
                ])
            );
            assert!(applied >= 96);
        }
    }

    println!("\nthread runtime, n = 4, {COMMANDS} commands to full application on all replicas:");
    println!(
        "{}",
        header(&["transport", "batch", "commands/sec", "elapsed (ms)"])
    );
    for (kind, per_batch) in &results {
        for (batch, t) in per_batch {
            println!(
                "{}",
                row(&[
                    kind.label().to_string(),
                    batch.to_string(),
                    format!("{:.0}", t.commands_per_sec),
                    format!("{:.2}", t.elapsed_ms),
                ])
            );
        }
    }

    println!("\nshape: batching amortizes the two message delays (and on TCP the per-frame");
    println!("HMAC + syscall cost) over many commands — throughput rises with batch size");
    println!("on both transports. (JSON for tooling: rerun with --json; committed");
    println!("snapshot: BENCH_smr_throughput.json)");
}
