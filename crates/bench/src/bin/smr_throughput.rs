//! E9 — replicated state machine throughput and wall-clock latency.
//!
//! Two measurements backing the paper's §1.1 motivation (SMR is the reason
//! consensus latency matters):
//!
//! 1. simulated SMR throughput (slots committed per Δ) for the minimal
//!    `f = t = 1` system and a larger `f = 2, t = 1` system;
//! 2. wall-clock single-shot consensus latency on the thread runtime
//!    (median over repeated clusters).

use std::time::Duration;

use fastbft_bench::{header, row};
use fastbft_core::replica::{Replica, ReplicaOptions};
use fastbft_core::Message;
use fastbft_crypto::KeyDirectory;
use fastbft_runtime::spawn;
use fastbft_sim::{Actor, SimTime};
use fastbft_smr::{CountingMachine, SmrSimCluster};
use fastbft_types::{Config, Value};

fn simulated_throughput(n: usize, f: usize, t: usize, batch: usize, commands: u64) -> (u64, f64) {
    let cfg = Config::new(n, f, t).unwrap();
    let queue: Vec<Value> = (0..commands).map(Value::from_u64).collect();
    let mut cluster = SmrSimCluster::new_batched(
        cfg,
        1,
        CountingMachine::new(),
        vec![queue; n],
        Value::from_u64(u64::MAX),
        ReplicaOptions::default(),
        batch,
    );
    let report = cluster.run_until_commands(commands, SimTime(10_000_000));
    assert!(report.logs_consistent);
    (report.commands_everywhere, report.commands_per_delta)
}

fn wall_clock_latency(n: usize, f: usize, t: usize, runs: usize) -> Duration {
    let cfg = Config::new(n, f, t).unwrap();
    let mut latencies = Vec::with_capacity(runs);
    for seed in 0..runs as u64 {
        let (pairs, dir) = KeyDirectory::generate(n, seed);
        let actors: Vec<Box<dyn Actor<Message> + Send>> = (0..n)
            .map(|i| -> Box<dyn Actor<Message> + Send> {
                Box::new(Replica::new(
                    cfg,
                    pairs[i].clone(),
                    dir.clone(),
                    Value::from_u64(7),
                ))
            })
            .collect();
        let cluster = spawn(actors, Duration::from_micros(50));
        let decisions = cluster.await_decisions(n, Duration::from_secs(10));
        cluster.shutdown();
        assert_eq!(decisions.len(), n);
        latencies.push(decisions.iter().map(|d| d.elapsed).max().unwrap());
    }
    latencies.sort();
    latencies[latencies.len() / 2]
}

fn main() {
    println!("# E9 — SMR throughput (simulated) and consensus latency (threads)\n");

    println!(
        "{}",
        header(&["config", "batch", "commands applied", "commands per Δ"])
    );
    for (n, f, t) in [(4usize, 1usize, 1usize), (8, 2, 1)] {
        for batch in [1usize, 8, 32] {
            let (applied, per_delta) = simulated_throughput(n, f, t, batch, 96);
            println!(
                "{}",
                row(&[
                    format!("n={n}, f={f}, t={t}"),
                    batch.to_string(),
                    applied.to_string(),
                    format!("{per_delta:.3}"),
                ])
            );
            assert!(applied >= 96);
        }
    }

    println!("\nthread runtime, median wall-clock time for all replicas to decide:");
    println!("{}", header(&["config", "median latency"]));
    for (n, f, t) in [(4usize, 1usize, 1usize), (8, 2, 1), (9, 2, 2)] {
        let latency = wall_clock_latency(n, f, t, 5);
        println!(
            "{}",
            row(&[format!("n={n}, f={f}, t={t}"), format!("{latency:?}")])
        );
    }

    println!("\nshape: throughput is one decision per ~2Δ pipeline turn; wall-clock");
    println!("latency is dominated by thread wakeups, not protocol rounds. ✓");
}
