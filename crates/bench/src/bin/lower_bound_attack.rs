//! E4 — Figures 2–4 / Theorem 4.5: the lower bound, executed.
//!
//! Runs the five-execution adversary's ρ2 against the protocol twice:
//!
//! * `n = 3f + 2t − 2 = 8` (one process **below** the bound): the attack
//!   forces disagreement — the bound is tight;
//! * `n = 3f + 2t − 1 = 9` (the paper's bound): the identical adversary is
//!   powerless — quorum intersection (QI2) forces every later view to adopt
//!   the fast-decided value.

use fastbft_core::lower_bound::{at_bound_n, below_bound_n, run_attack, FAST_DECIDER};

fn main() {
    println!("# E4 / Theorem 4.5 — the 3f + 2t − 1 lower bound, executed (f = t = 2)\n");

    for (n, label) in [
        (below_bound_n(), "below the bound (3f + 2t − 2)"),
        (at_bound_n(), "at the bound (3f + 2t − 1)"),
    ] {
        println!("## n = {n} — {label}\n");
        let outcome = run_attack(n, 1);
        let (t, v) = outcome.fast_decision.clone().expect("P3 decides fast");
        println!("  {FAST_DECIDER} (group P3) decided {v} at {t} — two message delays");
        println!("  all correct decisions:");
        for (p, time, value) in &outcome.decisions {
            println!("    {p} decided {value} at {time}");
        }
        println!("  disagreement : {}", outcome.disagreement);
        println!("  violations   : {:?}\n", outcome.violations);
        if n == below_bound_n() {
            assert!(
                outcome.disagreement,
                "the attack must succeed below the bound"
            );
        } else {
            assert!(!outcome.disagreement, "the attack must fail at the bound");
            assert!(outcome.violations.is_empty());
        }
    }

    println!("conclusion: the same adversary breaks safety at n = 3f + 2t − 2 and is");
    println!("harmless at n = 3f + 2t − 1 — the paper's bound is tight, executably. ✓");
}
