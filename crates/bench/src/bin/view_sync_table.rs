//! E10 — view synchronization: recovery after GST and leader cascades.
//!
//! The paper assumes a view synchronizer with three properties (§3); this
//! experiment shows ours delivers them operationally:
//!
//! 1. decisions happen within a bounded time after GST, for several GST
//!    offsets (pre-GST the network is chaotic);
//! 2. runs of consecutive Byzantine leaders delay decisions by roughly one
//!    doubling timeout each — then the first correct leader finishes the job.

use fastbft_bench::{header, row};
use fastbft_core::cluster::{Behavior, SimCluster};
use fastbft_sim::{SimDuration, SimTime};
use fastbft_types::{Config, View};

fn main() {
    let delta = SimDuration::DELTA;
    println!("# E10 — view synchronization (n = 9, f = t = 2)\n");
    let cfg = Config::vanilla(9, 2).unwrap();

    println!("## decision time vs GST (pre-GST delays up to 10Δ, seed-averaged)\n");
    println!(
        "{}",
        header(&["GST (Δ)", "decided (Δ after GST, max over 5 seeds)"])
    );
    for gst_delta in [0u64, 5, 20, 50] {
        let gst = SimTime(gst_delta * delta.0);
        let mut worst = 0u64;
        for seed in 0..5 {
            let mut cluster = SimCluster::builder(cfg)
                .inputs_u64(vec![7; 9])
                .gst(gst, SimDuration(delta.0 * 10))
                .seed(seed)
                .build();
            let report = cluster.run_until_all_decide();
            assert!(report.all_decided, "must decide after GST (seed {seed})");
            assert!(report.violations.is_empty());
            let decided_at = report.decisions.iter().map(|(_, t, _)| t.0).max().unwrap();
            worst = worst.max(decided_at.saturating_sub(gst.0).div_ceil(delta.0));
        }
        println!("{}", row(&[gst_delta.to_string(), worst.to_string()]));
    }

    println!("\n## Byzantine leader cascades (synchronous network)\n");
    println!(
        "{}",
        header(&["silent leaders", "views crossed", "decided at (Δ)"])
    );
    for k in 0..=2usize {
        // Make the leaders of views 1..=k silent (round-robin map).
        let mut builder = SimCluster::builder(cfg).inputs_u64(vec![4; 9]);
        for v in 1..=k as u64 {
            builder = builder.behavior(cfg.leader(View(v)), Behavior::Silent);
        }
        let mut cluster = builder.build();
        let report = cluster.run_until_all_decide();
        assert!(report.all_decided && report.violations.is_empty());
        let decided_at = report
            .decisions
            .iter()
            .map(|(_, t, _)| t.0)
            .max()
            .unwrap()
            .div_ceil(delta.0);
        println!(
            "{}",
            row(&[k.to_string(), (k + 1).to_string(), decided_at.to_string()])
        );
    }

    println!("\nshape: post-GST recovery is bounded; each faulty leader costs one");
    println!("(doubling) timeout before the next correct leader decides. ✓");
}
