//! E2 — Figure 1b: the view change.
//!
//! The view-1 leader is silent, so the system synchronizes into view 2.
//! The new leader collects `n − f` votes, runs the selection algorithm,
//! gathers `f + 1` CertAck signatures into a *bounded* progress certificate
//! and proposes. The flow shows the paper's `vote → CertReq → CertAck`
//! round-trips followed by the normal `propose → ack` fast path.

use fastbft_core::cluster::{Behavior, SimCluster};
use fastbft_types::{Config, View};

fn main() {
    println!("# E2 / Figure 1b — view change (n = 4, f = t = 1, silent leader)\n");
    let cfg = Config::new(4, 1, 1).expect("valid config");
    let leader1 = cfg.leader(View::FIRST);
    let leader2 = cfg.leader(View(2));
    println!("leader(1) = {leader1} (Byzantine: silent), leader(2) = {leader2}\n");

    let mut cluster = SimCluster::builder(cfg)
        .inputs_u64([5, 5, 5, 5])
        .behavior(leader1, Behavior::Silent)
        .build();
    let report = cluster.run_until_all_decide();

    println!("message flow:");
    print!("{}", cluster.trace().render_flow(report.delta));

    println!("\nobservations:");
    println!(
        "  decided value  : {:?}",
        report.unanimous_decision().unwrap()
    );
    println!(
        "  total latency  : {} message delays (timeout + view change + fast path)",
        report.decision_delays_max()
    );
    for (kind, (count, bytes)) in &report.stats.by_kind {
        println!("    {kind:<10} {count:>4} msgs {bytes:>7} B");
    }

    // The paper's view-change messages all appeared:
    for kind in ["vote", "CertReq", "CertAck", "propose", "ack", "wish"] {
        assert!(
            report.stats.by_kind.contains_key(kind),
            "expected {kind} messages in the view change"
        );
    }
    assert!(report.violations.is_empty());
    assert!(report.all_decided);
    println!("\nview change reproduced: vote → CertReq → CertAck → propose → ack ✓");
}
