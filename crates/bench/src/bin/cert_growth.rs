//! E7 — progress-certificate size: bounded vs naive (§3.2's discussion).
//!
//! The paper rejects the naive "certificate = the whole vote set" because
//! each vote embeds the certificate of an earlier view, so sizes grow with
//! the view number (geometrically when embedded verbatim, as here; linear
//! only with careful structure sharing — which still leaves certificates
//! unbounded). The paper's CertAck round caps the certificate at `f + 1`
//! signatures, whatever the view.
//!
//! Two measurements:
//! 1. structural: hand-built certificate chains for views 2..=6;
//! 2. live: a real silent-leader run in each mode, reporting the sizes of
//!    the `propose` messages observed on the wire.

use fastbft_bench::{header, row};
use fastbft_core::certs::{CertMode, ProgressCert, SignedVote, VoteData};
use fastbft_core::cluster::{Behavior, SimCluster};
use fastbft_core::payload::{certack_payload, propose_payload};
use fastbft_crypto::{KeyDirectory, SignatureSet};
use fastbft_types::{Config, Value, View};

fn main() {
    let cfg = Config::new(4, 1, 1).unwrap();
    let (pairs, dir) = KeyDirectory::generate(4, 9);
    let x = Value::from_u64(1);

    println!("# E7 — progress certificate size vs view number (n = 4, f = t = 1)\n");
    println!(
        "{}",
        header(&["view", "naive cert (bytes)", "bounded cert (bytes)"])
    );

    // Structural chain: the certificate for view v is built from n − f
    // votes, each of which embeds the certificate for view v − 1.
    let mut prev_cert = ProgressCert::Genesis;
    let mut prev_view = View::FIRST;
    for v in 2..=6u64 {
        let view = View(v);
        // Votes for `view` embedding the previous certificate.
        let votes: Vec<SignedVote> = pairs[..3]
            .iter()
            .map(|p| {
                SignedVote::sign(
                    p,
                    Some(VoteData {
                        value: x.clone(),
                        view: prev_view,
                        progress_cert: prev_cert.clone(),
                        leader_sig: pairs[cfg.leader(prev_view).index()]
                            .sign(&propose_payload(&x, prev_view)),
                        commit_cert: None,
                    }),
                    view,
                )
            })
            .collect();
        let naive = ProgressCert::Naive(votes);
        assert!(naive.verify(&cfg, &dir, &x, view), "naive cert must verify");

        let bounded_sigs: SignatureSet = pairs[..cfg.cert_quorum()]
            .iter()
            .map(|p| p.sign(&certack_payload(&x, view)))
            .collect();
        let bounded = ProgressCert::Bounded(bounded_sigs);
        assert!(bounded.verify(&cfg, &dir, &x, view));

        println!(
            "{}",
            row(&[
                v.to_string(),
                naive.wire_size().to_string(),
                bounded.wire_size().to_string(),
            ])
        );

        prev_cert = naive;
        prev_view = view;
    }

    // Live runs: a silent first leader forces one view change; compare the
    // view-2 propose sizes under each certificate mode.
    println!("\nlive silent-leader run, view-2 propose sizes on the wire:");
    for (mode, label) in [(CertMode::Bounded, "bounded"), (CertMode::Naive, "naive")] {
        let leader1 = cfg.leader(View::FIRST);
        let mut cluster = SimCluster::builder(cfg)
            .inputs_u64([5, 5, 5, 5])
            .behavior(leader1, Behavior::Silent)
            .cert_mode(mode)
            .build();
        let report = cluster.run_until_all_decide();
        assert!(report.all_decided && report.violations.is_empty());
        let (count, bytes) = report.stats.by_kind["propose"];
        println!(
            "  {label:<8} mode: {count} propose messages totalling {bytes} bytes \
             (avg {} B)",
            bytes / count.max(1)
        );
    }

    println!("\nshape: naive certificates grow without bound in the view number;");
    println!("bounded certificates stay at f + 1 signatures — the paper's point. ✓");
}
