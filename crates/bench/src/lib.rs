//! Experiment harnesses reproducing the paper's figures and claims.
//!
//! This crate hosts no library logic of its own — see the `src/bin/`
//! binaries (one per experiment, mapped onto the paper's figures and tables
//! in `docs/ARCHITECTURE.md`) and the Criterion benches under `benches/`.
//!
//! Shared helpers for the binaries live here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use fastbft_sim::SimDuration;

/// The Δ used across the experiment binaries.
pub const DELTA: SimDuration = SimDuration::DELTA;

/// Renders a markdown-style table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// Renders a markdown-style header + separator.
pub fn header(cells: &[&str]) -> String {
    let head = format!("| {} |", cells.join(" | "));
    let sep = format!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    format!("{head}\n{sep}")
}
