//! The discrete-event simulation kernel.
//!
//! Deterministic: a simulation is fully described by (actors, network, seed).
//! Events at equal times are processed in a fixed class order
//! (crashes, then deliveries, then timers), then in FIFO order of creation,
//! so reruns are bit-identical — every experiment in this repository is
//! reproducible from its seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use fastbft_types::{ProcessId, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::actor::{Actor, Effects, Outgoing, SimMessage, TimerId};
use crate::network::{Network, SendInfo};
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceEvent};

/// What happens at a scheduled instant.
#[derive(Debug)]
enum EventKind<M> {
    /// The node stops taking steps (before processing anything else at that
    /// instant — the lower-bound construction crashes processes "at time Δ"
    /// meaning they send nothing at Δ or later).
    Crash,
    /// A message is delivered.
    Deliver { from: ProcessId, msg: M },
    /// A timer fires.
    Timer(TimerId),
}

impl<M> EventKind<M> {
    /// Same-instant processing order.
    fn class(&self) -> u8 {
        match self {
            EventKind::Crash => 0,
            EventKind::Deliver { .. } => 1,
            EventKind::Timer(_) => 2,
        }
    }
}

struct QueuedEvent<M> {
    at: SimTime,
    class: u8,
    seq: u64,
    node: usize,
    kind: EventKind<M>,
}

impl<M> PartialEq for QueuedEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.class, self.seq) == (other.at, other.class, other.seq)
    }
}
impl<M> Eq for QueuedEvent<M> {}
impl<M> PartialOrd for QueuedEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for QueuedEvent<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        (other.at, other.class, other.seq).cmp(&(self.at, self.class, self.seq))
    }
}

struct NodeSlot<M: SimMessage> {
    actor: Box<dyn Actor<M>>,
    crashed: bool,
    decided: Option<(SimTime, Value)>,
}

/// A single-shot consensus simulation over `n` actors.
///
/// ```
/// use fastbft_sim::{Simulation, Network, SimDuration, ScriptedActor, SimMessage};
/// # use fastbft_types::ProcessId;
/// #[derive(Clone, Debug)]
/// struct Hello;
/// impl SimMessage for Hello {
///     fn kind(&self) -> &'static str { "hello" }
///     fn wire_size(&self) -> usize { 5 }
/// }
///
/// let mut sim = Simulation::<Hello>::new(Network::synchronous(SimDuration::DELTA), 1);
/// sim.add_actor(Box::new(ScriptedActor::broadcaster(Hello)));
/// sim.add_actor(Box::new(ScriptedActor::silent()));
/// sim.start();
/// sim.run_to_quiescence();
/// // p1's broadcast to p1 and p2 was delivered one Δ later.
/// assert_eq!(sim.trace().message_stats(fastbft_sim::SimTime::NEVER).messages, 2);
/// ```
pub struct Simulation<M: SimMessage> {
    nodes: Vec<NodeSlot<M>>,
    network: Network,
    queue: BinaryHeap<QueuedEvent<M>>,
    seq: u64,
    send_seq: u64,
    now: SimTime,
    started: bool,
    trace: Trace,
    rng: StdRng,
}

impl<M: SimMessage> Simulation<M> {
    /// Creates an empty simulation with the given network model and RNG seed.
    pub fn new(network: Network, seed: u64) -> Self {
        Simulation {
            nodes: Vec::new(),
            network,
            queue: BinaryHeap::new(),
            seq: 0,
            send_seq: 0,
            now: SimTime::ZERO,
            started: false,
            trace: Trace::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Adds an actor; ids are assigned in insertion order (`p1, p2, …`).
    /// Returns the assigned id.
    pub fn add_actor(&mut self, actor: Box<dyn Actor<M>>) -> ProcessId {
        self.nodes.push(NodeSlot {
            actor,
            crashed: false,
            decided: None,
        });
        ProcessId::from_index(self.nodes.len() - 1)
    }

    /// Number of actors.
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The Δ of the underlying network.
    pub fn delta(&self) -> SimDuration {
        self.network.delta
    }

    /// The execution trace so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The first decision of `process`, if any.
    pub fn decision(&self, process: ProcessId) -> Option<&(SimTime, Value)> {
        self.nodes[process.index()].decided.as_ref()
    }

    /// All `(process, time, value)` decisions so far.
    pub fn decisions(&self) -> Vec<(ProcessId, SimTime, Value)> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                s.decided
                    .as_ref()
                    .map(|(t, v)| (ProcessId::from_index(i), *t, v.clone()))
            })
            .collect()
    }

    /// Schedules `process` to crash (stop taking steps) at `at`. Crashes are
    /// processed before any message delivery or timer at the same instant.
    pub fn schedule_crash(&mut self, process: ProcessId, at: SimTime) {
        self.push_event(at, process.index(), EventKind::Crash);
    }

    /// Test/bench hook: injects a raw message into the network as if `from`
    /// had sent it at time `at` (delivery time still chosen by the network
    /// model). Regular actors should send via [`Effects`] instead.
    pub fn inject_message(&mut self, from: ProcessId, to: ProcessId, msg: M, at: SimTime) {
        debug_assert!(at >= self.now, "cannot inject into the past");
        self.route_at(from, to, msg, at);
    }

    /// Routes one outgoing message sent by `from` at the current instant:
    /// picks a delivery time from the network model, records the trace
    /// event, and schedules the delivery.
    fn route(&mut self, from: ProcessId, to: ProcessId, msg: M) {
        self.route_at(from, to, msg, self.now);
    }

    /// Shared body of [`route`](Simulation::route) and
    /// [`inject_message`](Simulation::inject_message).
    fn route_at(&mut self, from: ProcessId, to: ProcessId, msg: M, sent_at: SimTime) {
        let info = SendInfo {
            from,
            to,
            sent_at,
            seq: self.next_send_seq(),
        };
        let deliver_at = self.network.delivery_time(&info, &mut self.rng);
        self.trace.push(
            sent_at,
            TraceEvent::Send {
                from,
                to,
                kind: msg.kind(),
                bytes: msg.wire_size(),
                deliver_at,
            },
        );
        self.push_event(deliver_at, to.index(), EventKind::Deliver { from, msg });
    }

    fn next_send_seq(&mut self) -> u64 {
        let s = self.send_seq;
        self.send_seq += 1;
        s
    }

    fn push_event(&mut self, at: SimTime, node: usize, kind: EventKind<M>) {
        let class = kind.class();
        self.queue.push(QueuedEvent {
            at,
            class,
            seq: self.seq,
            node,
            kind,
        });
        self.seq += 1;
    }

    /// Delivers `on_start` to every actor at `t = 0`. Must be called exactly
    /// once, before stepping.
    ///
    /// # Panics
    ///
    /// Panics if called twice or if the simulation has no actors.
    pub fn start(&mut self) {
        assert!(!self.started, "simulation already started");
        assert!(!self.nodes.is_empty(), "simulation has no actors");
        self.started = true;
        for i in 0..self.nodes.len() {
            let mut fx = Effects::new(ProcessId::from_index(i), self.nodes.len(), self.now);
            self.nodes[i].actor.on_start(&mut fx);
            self.apply_effects(i, fx);
        }
    }

    fn apply_effects(&mut self, node: usize, fx: Effects<M>) {
        let id = ProcessId::from_index(node);
        let n = self.nodes.len();
        let Effects {
            outbox,
            timers,
            decision,
            halt,
            ..
        } = fx;
        // Broadcasts are structural in the outbox (so real transports can
        // encode once); the simulator expands them here, in emission order,
        // so per-link delays and message counting are per destination
        // exactly as before.
        for effect in outbox {
            match effect {
                Outgoing::To(to, msg) => self.route(id, to, msg),
                Outgoing::All(msg) => {
                    for to in ProcessId::all(n) {
                        self.route(id, to, msg.clone());
                    }
                }
            }
        }
        for (delay, timer) in timers {
            let at = self.now + delay;
            self.push_event(at, node, EventKind::Timer(timer));
        }
        if let Some(value) = decision {
            let slot = &mut self.nodes[node];
            if slot.decided.is_none() {
                slot.decided = Some((self.now, value.clone()));
                self.trace
                    .push(self.now, TraceEvent::Decide { process: id, value });
            } else {
                self.trace
                    .push(self.now, TraceEvent::DuplicateDecide { process: id, value });
            }
        }
        if halt {
            self.nodes[node].crashed = true;
        }
    }

    /// Processes a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at;
        let node = ev.node;
        if self.nodes[node].crashed {
            // Crashed processes neither receive nor act.
            return true;
        }
        match ev.kind {
            EventKind::Crash => {
                self.nodes[node].crashed = true;
                self.trace.push(
                    self.now,
                    TraceEvent::Crash {
                        process: ProcessId::from_index(node),
                    },
                );
            }
            EventKind::Deliver { from, msg } => {
                self.trace.push(
                    self.now,
                    TraceEvent::Deliver {
                        from,
                        to: ProcessId::from_index(node),
                        kind: msg.kind(),
                    },
                );
                let mut fx = Effects::new(ProcessId::from_index(node), self.nodes.len(), self.now);
                self.nodes[node].actor.on_message(from, msg, &mut fx);
                self.apply_effects(node, fx);
            }
            EventKind::Timer(timer) => {
                self.trace.push(
                    self.now,
                    TraceEvent::TimerFired {
                        process: ProcessId::from_index(node),
                    },
                );
                let mut fx = Effects::new(ProcessId::from_index(node), self.nodes.len(), self.now);
                self.nodes[node].actor.on_timer(timer, &mut fx);
                self.apply_effects(node, fx);
            }
        }
        true
    }

    /// Runs until the queue is exhausted or virtual time would exceed
    /// `limit`. Events scheduled exactly at `limit` are processed.
    pub fn run_until(&mut self, limit: SimTime) {
        while let Some(next) = self.queue.peek() {
            if next.at > limit {
                break;
            }
            self.step();
        }
    }

    /// Runs until no events remain.
    ///
    /// Terminates only for protocols that eventually go quiet; use
    /// [`Simulation::run_until`] for protocols with recurring timers.
    pub fn run_to_quiescence(&mut self) {
        while self.step() {}
    }

    /// Runs until every process in `who` has decided, or `limit` is reached.
    /// Returns `true` if all decided.
    pub fn run_until_all_decide(&mut self, who: &[ProcessId], limit: SimTime) -> bool {
        loop {
            if who.iter().all(|p| self.nodes[p.index()].decided.is_some()) {
                return true;
            }
            match self.queue.peek() {
                Some(next) if next.at <= limit => {
                    self.step();
                }
                _ => return who.iter().all(|p| self.nodes[p.index()].decided.is_some()),
            }
        }
    }

    /// Whether `process` has crashed.
    pub fn is_crashed(&self, process: ProcessId) -> bool {
        self.nodes[process.index()].crashed
    }

    /// Borrows an actor, e.g. for downcasting via [`Actor::as_any`].
    pub fn actor(&self, process: ProcessId) -> &dyn Actor<M> {
        self.nodes[process.index()].actor.as_ref()
    }

    /// Number of pending events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Consumes the simulation, returning its trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::ScriptedActor;

    #[derive(Clone, Debug, PartialEq)]
    struct Ping(u64);
    impl SimMessage for Ping {
        fn kind(&self) -> &'static str {
            "ping"
        }
        fn wire_size(&self) -> usize {
            8
        }
    }

    /// Echoes every ping back to its sender, once.
    struct Echo {
        replied: bool,
    }
    impl Actor<Ping> for Echo {
        fn on_start(&mut self, _fx: &mut Effects<Ping>) {}
        fn on_message(&mut self, from: ProcessId, msg: Ping, fx: &mut Effects<Ping>) {
            if !self.replied {
                self.replied = true;
                fx.send(from, Ping(msg.0 + 1));
            }
        }
    }

    #[test]
    fn ping_pong_takes_two_delta() {
        let mut sim = Simulation::new(Network::synchronous(SimDuration(100)), 0);
        sim.add_actor(Box::new(ScriptedActor::silent()));
        sim.add_actor(Box::new(Echo { replied: false }));
        sim.start();
        sim.inject_message(ProcessId(1), ProcessId(2), Ping(0), SimTime::ZERO);
        sim.run_to_quiescence();
        assert_eq!(sim.now(), SimTime(200)); // ping at Δ, pong at 2Δ
        let delivers: Vec<_> = sim
            .trace()
            .records()
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::Deliver { .. }))
            .map(|r| r.at)
            .collect();
        assert_eq!(delivers, vec![SimTime(100), SimTime(200)]);
    }

    #[test]
    fn crash_pre_empts_same_instant_delivery() {
        let mut sim = Simulation::new(Network::synchronous(SimDuration(100)), 0);
        sim.add_actor(Box::new(ScriptedActor::silent()));
        sim.add_actor(Box::new(Echo { replied: false }));
        sim.start();
        sim.inject_message(ProcessId(1), ProcessId(2), Ping(0), SimTime::ZERO);
        // Crash p2 exactly at the delivery instant: the paper's lower-bound
        // executions crash processes "at time Δ", before they can send
        // anything at Δ.
        sim.schedule_crash(ProcessId(2), SimTime(100));
        sim.run_to_quiescence();
        assert!(sim.is_crashed(ProcessId(2)));
        // No pong was produced.
        let stats = sim.trace().message_stats(SimTime::NEVER);
        assert_eq!(stats.messages, 1);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed| {
            let mut sim = Simulation::new(
                Network::partially_synchronous(SimDuration(100), SimTime(500), SimDuration(400)),
                seed,
            );
            sim.add_actor(Box::new(ScriptedActor::broadcaster(Ping(7))));
            sim.add_actor(Box::new(Echo { replied: false }));
            sim.add_actor(Box::new(Echo { replied: false }));
            sim.start();
            sim.run_to_quiescence();
            format!("{}", sim.trace())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn run_until_respects_limit() {
        let mut sim = Simulation::new(Network::synchronous(SimDuration(100)), 0);
        sim.add_actor(Box::new(ScriptedActor::broadcaster(Ping(1))));
        sim.add_actor(Box::new(Echo { replied: false }));
        sim.start();
        sim.run_until(SimTime(99));
        // Delivery at 100 must not have happened yet.
        assert_eq!(sim.now(), SimTime::ZERO);
        assert!(sim.pending_events() > 0);
        sim.run_until(SimTime(100));
        assert_eq!(sim.now(), SimTime(100));
    }

    #[test]
    #[should_panic(expected = "already started")]
    fn double_start_panics() {
        let mut sim: Simulation<Ping> = Simulation::new(Network::synchronous(SimDuration(100)), 0);
        sim.add_actor(Box::new(ScriptedActor::silent()));
        sim.start();
        sim.start();
    }
}
