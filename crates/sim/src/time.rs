//! Virtual time.
//!
//! The simulator measures time in abstract *ticks*. Experiments conventionally
//! use a message-delay bound Δ of [`SimDuration::DELTA`] ticks so that
//! latencies read naturally in "message delays" (the unit the paper's claims
//! are stated in), but nothing in the kernel depends on that choice.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in virtual time, in ticks since the start of the execution.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in ticks.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of the execution (`t = 0`).
    pub const ZERO: SimTime = SimTime(0);
    /// A time later than anything a bounded simulation produces; used as
    /// "never" (e.g. `gst = NEVER` models a permanently asynchronous network).
    pub const NEVER: SimTime = SimTime(u64::MAX);

    /// Saturating difference `self − earlier`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Number of whole `delta` spans elapsed at this time; with the paper's
    /// round structure (round `i` = `[(i−1)Δ, iΔ)`), an event at time `kΔ`
    /// has had exactly `k` message delays complete.
    pub fn delays(self, delta: SimDuration) -> u64 {
        if delta.0 == 0 {
            return 0;
        }
        self.0 / delta.0
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Conventional message-delay bound Δ used by the experiments
    /// (100 ticks; read one tick as 10 µs if you want wall-clock intuition).
    pub const DELTA: SimDuration = SimDuration(100);
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == SimTime::NEVER {
            write!(f, "t=∞")
        } else {
            write!(f, "t={}", self.0)
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ticks", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime(100) + SimDuration(50);
        assert_eq!(t, SimTime(150));
        assert_eq!(t.since(SimTime(100)), SimDuration(50));
        assert_eq!(t.since(SimTime(200)), SimDuration::ZERO);
        assert_eq!(SimDuration(30) * 3, SimDuration(90));
        assert_eq!(SimDuration(90) / 3, SimDuration(30));
        assert_eq!(
            SimDuration(10) + SimDuration(5) - SimDuration(3),
            SimDuration(12)
        );
    }

    #[test]
    fn never_saturates() {
        assert_eq!(SimTime::NEVER + SimDuration(1), SimTime::NEVER);
    }

    #[test]
    fn delays_in_delta_units() {
        let delta = SimDuration(100);
        assert_eq!(SimTime(0).delays(delta), 0);
        assert_eq!(SimTime(199).delays(delta), 1);
        assert_eq!(SimTime(200).delays(delta), 2);
        assert_eq!(SimTime(200).delays(SimDuration::ZERO), 0);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime(5).to_string(), "t=5");
        assert_eq!(SimTime::NEVER.to_string(), "t=∞");
        assert_eq!(SimDuration(7).to_string(), "7 ticks");
    }
}
