//! Execution traces.
//!
//! Every simulation records a complete trace: sends, deliveries, timer
//! events, decisions, crashes. Traces back the figure-replay experiments
//! (E1–E3 print message-flow summaries directly from the trace) and the
//! message-complexity experiment (E12 aggregates counts and bytes).

use std::collections::BTreeMap;
use std::fmt;

use fastbft_types::{ProcessId, Value};

use crate::time::{SimDuration, SimTime};

/// One recorded event.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A message was handed to the network.
    Send {
        /// Sender.
        from: ProcessId,
        /// Receiver.
        to: ProcessId,
        /// Message type label.
        kind: &'static str,
        /// Encoded size in bytes.
        bytes: usize,
        /// Scheduled delivery time.
        deliver_at: SimTime,
    },
    /// A message was delivered to its recipient.
    Deliver {
        /// Sender.
        from: ProcessId,
        /// Receiver.
        to: ProcessId,
        /// Message type label.
        kind: &'static str,
    },
    /// A process decided a value.
    Decide {
        /// The deciding process.
        process: ProcessId,
        /// The decided value.
        value: Value,
    },
    /// A process decided **again** — always a bug; the checker flags it.
    DuplicateDecide {
        /// The deciding process.
        process: ProcessId,
        /// The (possibly different) second value.
        value: Value,
    },
    /// A process crashed (stopped taking steps).
    Crash {
        /// The crashed process.
        process: ProcessId,
    },
    /// A timer fired.
    TimerFired {
        /// The process whose timer fired.
        process: ProcessId,
    },
}

/// A timestamped [`TraceEvent`].
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRecord {
    /// When the event happened.
    pub at: SimTime,
    /// The event.
    pub event: TraceEvent,
}

/// The full record of one execution.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

/// Aggregate message statistics (experiment E12).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MessageStats {
    /// Total messages sent.
    pub messages: usize,
    /// Total bytes sent.
    pub bytes: usize,
    /// Per-kind (messages, bytes).
    pub by_kind: BTreeMap<&'static str, (usize, usize)>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    pub(crate) fn push(&mut self, at: SimTime, event: TraceEvent) {
        self.records.push(TraceRecord { at, event });
    }

    /// All records, in event order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// All decisions as `(time, process, value)`, first decision per process.
    pub fn decisions(&self) -> Vec<(SimTime, ProcessId, Value)> {
        self.records
            .iter()
            .filter_map(|r| match &r.event {
                TraceEvent::Decide { process, value } => Some((r.at, *process, value.clone())),
                _ => None,
            })
            .collect()
    }

    /// Duplicate decisions (should be empty in any correct run).
    pub fn duplicate_decisions(&self) -> Vec<(SimTime, ProcessId, Value)> {
        self.records
            .iter()
            .filter_map(|r| match &r.event {
                TraceEvent::DuplicateDecide { process, value } => {
                    Some((r.at, *process, value.clone()))
                }
                _ => None,
            })
            .collect()
    }

    /// The decision time of `process`, if it decided.
    pub fn decision_time(&self, process: ProcessId) -> Option<SimTime> {
        self.decisions()
            .iter()
            .find(|(_, p, _)| *p == process)
            .map(|(t, _, _)| *t)
    }

    /// Message statistics, counting sends up to `until` (pass
    /// [`SimTime::NEVER`] for the whole trace).
    pub fn message_stats(&self, until: SimTime) -> MessageStats {
        let mut stats = MessageStats::default();
        for r in &self.records {
            if r.at > until {
                break;
            }
            if let TraceEvent::Send { kind, bytes, .. } = r.event {
                stats.messages += 1;
                stats.bytes += bytes;
                let e = stats.by_kind.entry(kind).or_insert((0, 0));
                e.0 += 1;
                e.1 += bytes;
            }
        }
        stats
    }

    /// Renders a compact message-flow summary grouped by send time, in the
    /// style of the paper's Figures 1a/1b/5: one line per (time, kind,
    /// sender → receivers).
    pub fn render_flow(&self, delta: SimDuration) -> String {
        use std::fmt::Write as _;
        // (time, kind, from) -> receivers
        let mut groups: BTreeMap<(u64, &'static str, u32), Vec<u32>> = BTreeMap::new();
        for r in &self.records {
            if let TraceEvent::Send { from, to, kind, .. } = r.event {
                groups.entry((r.at.0, kind, from.0)).or_default().push(to.0);
            }
        }
        let mut out = String::new();
        for ((at, kind, from), mut tos) in groups {
            tos.sort_unstable();
            tos.dedup();
            let step = at.checked_div(delta.0).unwrap_or(0);
            let to_str =
                if tos.len() >= 3 && tos.len() == (tos[tos.len() - 1] - tos[0] + 1) as usize {
                    format!("p{}..p{}", tos[0], tos[tos.len() - 1])
                } else {
                    tos.iter()
                        .map(|t| format!("p{t}"))
                        .collect::<Vec<_>>()
                        .join(",")
                };
            let _ = writeln!(
                out,
                "  [t={at}, step {step}] {kind:<12} p{from} -> {to_str}"
            );
        }
        for (t, p, v) in self.decisions() {
            let step = t.0.checked_div(delta.0).unwrap_or(0);
            let _ = writeln!(out, "  [t={}, step {step}] DECIDE       {p} = {v}", t.0);
        }
        out
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.records {
            writeln!(f, "[{}] {:?}", r.at, r.event)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.push(
            SimTime(0),
            TraceEvent::Send {
                from: ProcessId(1),
                to: ProcessId(2),
                kind: "propose",
                bytes: 100,
                deliver_at: SimTime(100),
            },
        );
        t.push(
            SimTime(0),
            TraceEvent::Send {
                from: ProcessId(1),
                to: ProcessId(3),
                kind: "propose",
                bytes: 100,
                deliver_at: SimTime(100),
            },
        );
        t.push(
            SimTime(100),
            TraceEvent::Deliver {
                from: ProcessId(1),
                to: ProcessId(2),
                kind: "propose",
            },
        );
        t.push(
            SimTime(100),
            TraceEvent::Send {
                from: ProcessId(2),
                to: ProcessId(1),
                kind: "ack",
                bytes: 40,
                deliver_at: SimTime(200),
            },
        );
        t.push(
            SimTime(200),
            TraceEvent::Decide {
                process: ProcessId(1),
                value: Value::from_u64(9),
            },
        );
        t
    }

    #[test]
    fn decisions_extracted() {
        let t = sample();
        let d = t.decisions();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0], (SimTime(200), ProcessId(1), Value::from_u64(9)));
        assert_eq!(t.decision_time(ProcessId(1)), Some(SimTime(200)));
        assert_eq!(t.decision_time(ProcessId(2)), None);
    }

    #[test]
    fn stats_aggregate_by_kind() {
        let t = sample();
        let s = t.message_stats(SimTime::NEVER);
        assert_eq!(s.messages, 3);
        assert_eq!(s.bytes, 240);
        assert_eq!(s.by_kind["propose"], (2, 200));
        assert_eq!(s.by_kind["ack"], (1, 40));
        // Cut-off respected.
        let s0 = t.message_stats(SimTime(50));
        assert_eq!(s0.messages, 2);
    }

    #[test]
    fn flow_rendering_mentions_steps_and_decides() {
        let t = sample();
        let flow = t.render_flow(SimDuration(100));
        assert!(flow.contains("propose"), "{flow}");
        assert!(flow.contains("step 0"), "{flow}");
        assert!(flow.contains("DECIDE"), "{flow}");
        assert!(flow.contains("step 2"), "{flow}");
    }

    #[test]
    fn duplicate_decides_surface() {
        let mut t = sample();
        t.push(
            SimTime(300),
            TraceEvent::DuplicateDecide {
                process: ProcessId(1),
                value: Value::from_u64(8),
            },
        );
        assert_eq!(t.duplicate_decisions().len(), 1);
        assert_eq!(t.decisions().len(), 1);
    }
}
