//! Consensus invariant checking over executions.
//!
//! After (or during) a simulation, [`ConsensusChecker`] evaluates the three
//! consensus properties of §2.2 against the recorded decisions:
//!
//! * **Consistency** — no two correct processes decide different values, and
//!   no process decides twice with different values;
//! * **Validity** — extended validity: when all processes are correct, the
//!   decision must be some process's input (weak validity — unanimous input
//!   must be decided — is implied and checked too when inputs are unanimous);
//! * **Liveness** — every correct process decided (checked against a caller-
//!   supplied deadline, since liveness is only guaranteed after GST).

use std::collections::BTreeMap;
use std::fmt;

use fastbft_types::{ProcessId, Value};

use crate::time::SimTime;
use crate::trace::Trace;

/// A detected violation of a consensus property.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Two correct processes decided different values.
    Disagreement {
        /// First process and its value.
        a: (ProcessId, Value),
        /// Second process and its conflicting value.
        b: (ProcessId, Value),
    },
    /// A process decided twice with different values.
    ChangedDecision {
        /// The offending process.
        process: ProcessId,
    },
    /// All processes were correct, but the decided value was nobody's input
    /// (extended validity violation).
    InventedValue {
        /// The decided value.
        value: Value,
    },
    /// All processes were correct and unanimous on `expected`, but `actual`
    /// was decided (weak validity violation).
    NonUnanimousDecision {
        /// The unanimous input.
        expected: Value,
        /// What was decided instead.
        actual: Value,
    },
    /// A correct process missed the liveness deadline.
    Undecided {
        /// The process that never decided.
        process: ProcessId,
        /// The deadline it missed.
        deadline: SimTime,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Disagreement { a, b } => write!(
                f,
                "disagreement: {} decided {} but {} decided {}",
                a.0, a.1, b.0, b.1
            ),
            Violation::ChangedDecision { process } => {
                write!(f, "{process} decided twice with different values")
            }
            Violation::InventedValue { value } => {
                write!(f, "decided value {value} was no process's input")
            }
            Violation::NonUnanimousDecision { expected, actual } => {
                write!(f, "unanimous input {expected} but decided {actual}")
            }
            Violation::Undecided { process, deadline } => {
                write!(f, "{process} undecided by {deadline}")
            }
        }
    }
}

/// Evaluates consensus properties for one execution.
///
/// The checker is told which processes are Byzantine (their decisions and
/// inputs are ignored — the properties only constrain correct processes).
#[derive(Clone, Debug)]
pub struct ConsensusChecker {
    inputs: BTreeMap<ProcessId, Value>,
    byzantine: Vec<ProcessId>,
}

impl ConsensusChecker {
    /// Creates a checker from per-process inputs.
    pub fn new(inputs: impl IntoIterator<Item = (ProcessId, Value)>) -> Self {
        ConsensusChecker {
            inputs: inputs.into_iter().collect(),
            byzantine: Vec::new(),
        }
    }

    /// Declares `process` Byzantine (excluded from all property checks).
    #[must_use]
    pub fn with_byzantine(mut self, process: ProcessId) -> Self {
        self.byzantine.push(process);
        self
    }

    /// Declares several processes Byzantine.
    #[must_use]
    pub fn with_byzantine_set(mut self, set: impl IntoIterator<Item = ProcessId>) -> Self {
        self.byzantine.extend(set);
        self
    }

    fn is_correct(&self, p: ProcessId) -> bool {
        !self.byzantine.contains(&p)
    }

    /// Checks **safety** (consistency + validity) against the decisions in
    /// `trace`. Liveness is separate — see [`ConsensusChecker::check_liveness`].
    pub fn check_safety(&self, trace: &Trace) -> Vec<Violation> {
        let mut violations = Vec::new();

        // Consistency across processes.
        let decisions: Vec<(SimTime, ProcessId, Value)> = trace
            .decisions()
            .into_iter()
            .filter(|(_, p, _)| self.is_correct(*p))
            .collect();
        if let Some((_, p0, v0)) = decisions.first() {
            for (_, p, v) in &decisions[1..] {
                if v != v0 {
                    violations.push(Violation::Disagreement {
                        a: (*p0, v0.clone()),
                        b: (*p, v.clone()),
                    });
                }
            }
        }

        // Decision stability: a duplicate decide with a different value.
        let firsts: BTreeMap<ProcessId, Value> =
            decisions.iter().map(|(_, p, v)| (*p, v.clone())).collect();
        for (_, p, v) in trace.duplicate_decisions() {
            if self.is_correct(p) && firsts.get(&p).is_some_and(|first| *first != v) {
                violations.push(Violation::ChangedDecision { process: p });
            }
        }

        // Validity applies only to all-correct executions (§2.2).
        if self.byzantine.is_empty() {
            if let Some((_, _, decided)) = decisions.first() {
                if !self.inputs.values().any(|input| input == decided) {
                    violations.push(Violation::InventedValue {
                        value: decided.clone(),
                    });
                }
                let mut distinct: Vec<&Value> = self.inputs.values().collect();
                distinct.dedup();
                if distinct.len() == 1 && distinct[0] != decided {
                    violations.push(Violation::NonUnanimousDecision {
                        expected: distinct[0].clone(),
                        actual: decided.clone(),
                    });
                }
            }
        }

        violations
    }

    /// Checks **liveness**: every correct process decided by `deadline`.
    pub fn check_liveness(&self, trace: &Trace, deadline: SimTime) -> Vec<Violation> {
        let decided: Vec<ProcessId> = trace.decisions().iter().map(|(_, p, _)| *p).collect();
        self.inputs
            .keys()
            .filter(|p| self.is_correct(**p))
            .filter(|p| !decided.contains(p))
            .map(|p| Violation::Undecided {
                process: *p,
                deadline,
            })
            .collect()
    }

    /// Convenience: both safety and liveness.
    pub fn check_all(&self, trace: &Trace, deadline: SimTime) -> Vec<Violation> {
        let mut v = self.check_safety(trace);
        v.extend(self.check_liveness(trace, deadline));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;

    fn inputs(n: u32) -> Vec<(ProcessId, Value)> {
        (1..=n)
            .map(|i| (ProcessId(i), Value::from_u64(i as u64)))
            .collect()
    }

    fn trace_with_decisions(ds: &[(u32, u64)]) -> Trace {
        let mut t = Trace::new();
        for (p, v) in ds {
            t.push(
                SimTime(100),
                TraceEvent::Decide {
                    process: ProcessId(*p),
                    value: Value::from_u64(*v),
                },
            );
        }
        t
    }

    #[test]
    fn agreement_ok() {
        let checker = ConsensusChecker::new(inputs(3));
        let t = trace_with_decisions(&[(1, 2), (2, 2), (3, 2)]);
        assert!(checker.check_safety(&t).is_empty());
        assert!(checker.check_liveness(&t, SimTime(200)).is_empty());
    }

    #[test]
    fn disagreement_detected() {
        let checker = ConsensusChecker::new(inputs(3));
        let t = trace_with_decisions(&[(1, 2), (2, 3)]);
        let v = checker.check_safety(&t);
        assert!(matches!(v.as_slice(), [Violation::Disagreement { .. }]));
    }

    #[test]
    fn byzantine_decisions_ignored() {
        let checker = ConsensusChecker::new(inputs(3)).with_byzantine(ProcessId(2));
        let t = trace_with_decisions(&[(1, 2), (2, 99)]);
        assert!(checker.check_safety(&t).is_empty());
    }

    #[test]
    fn invented_value_detected_when_all_correct() {
        let checker = ConsensusChecker::new(inputs(3));
        let t = trace_with_decisions(&[(1, 42)]);
        let v = checker.check_safety(&t);
        assert!(matches!(v.as_slice(), [Violation::InventedValue { .. }]));
    }

    #[test]
    fn invented_value_allowed_with_byzantine_present() {
        // Extended validity only constrains all-correct executions.
        let checker = ConsensusChecker::new(inputs(3)).with_byzantine(ProcessId(3));
        let t = trace_with_decisions(&[(1, 42)]);
        assert!(checker.check_safety(&t).is_empty());
    }

    #[test]
    fn weak_validity_checked_on_unanimity() {
        let unanimous: Vec<_> = (1..=3)
            .map(|i| (ProcessId(i), Value::from_u64(5)))
            .collect();
        let checker = ConsensusChecker::new(unanimous);
        let bad = trace_with_decisions(&[(1, 5), (2, 5), (3, 6)]);
        let v = checker.check_safety(&bad);
        // p3 both disagrees and (as first-differing value) is non-unanimous.
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::Disagreement { .. })));
    }

    #[test]
    fn changed_decision_detected() {
        let checker = ConsensusChecker::new(inputs(2));
        let mut t = trace_with_decisions(&[(1, 1)]);
        t.push(
            SimTime(150),
            TraceEvent::DuplicateDecide {
                process: ProcessId(1),
                value: Value::from_u64(9),
            },
        );
        let v = checker.check_safety(&t);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::ChangedDecision { .. })));
        // Re-deciding the same value is benign.
        let mut t2 = trace_with_decisions(&[(1, 1)]);
        t2.push(
            SimTime(150),
            TraceEvent::DuplicateDecide {
                process: ProcessId(1),
                value: Value::from_u64(1),
            },
        );
        assert!(checker.check_safety(&t2).is_empty());
    }

    #[test]
    fn liveness_detects_undecided() {
        let checker = ConsensusChecker::new(inputs(3));
        let t = trace_with_decisions(&[(1, 1)]);
        let v = checker.check_liveness(&t, SimTime(500));
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|x| matches!(x, Violation::Undecided { .. })));
    }

    #[test]
    fn violations_display() {
        for v in [
            Violation::Disagreement {
                a: (ProcessId(1), Value::from_u64(0)),
                b: (ProcessId(2), Value::from_u64(1)),
            },
            Violation::ChangedDecision {
                process: ProcessId(1),
            },
            Violation::InventedValue {
                value: Value::from_u64(3),
            },
            Violation::NonUnanimousDecision {
                expected: Value::from_u64(1),
                actual: Value::from_u64(2),
            },
            Violation::Undecided {
                process: ProcessId(4),
                deadline: SimTime(9),
            },
        ] {
            assert!(!v.to_string().is_empty());
        }
    }
}
