//! Deterministic discrete-event simulator for partially synchronous
//! Byzantine protocols.
//!
//! This crate is the execution substrate for the `fastbft` reproduction of
//! *"Revisiting Optimal Resilience of Fast Byzantine Consensus"* (PODC 2021).
//! It implements the paper's §2.1 system model *literally*:
//!
//! * `n` processes exchanging messages over **reliable authenticated
//!   point-to-point channels** — the kernel attaches the true sender to
//!   every delivery and never loses, duplicates or forges messages;
//! * **partial synchrony**: a known bound Δ on message delay that holds from
//!   an unknown Global Stabilization Time (GST) on; before GST the adversary
//!   schedules deliveries (see [`Network`]);
//! * **Byzantine processes** as arbitrary [`Actor`] implementations — they
//!   can equivocate, lie, stay silent or crash, but cannot forge other
//!   processes' messages or signatures;
//! * a **global clock** not accessible to the processes, used by the trace
//!   and the checkers exactly as the paper's proofs use it.
//!
//! Everything is deterministic given the seed, so every experiment and
//! counter-example in this repository is replayable.
//!
//! The crate knows nothing about any specific consensus protocol: protocols
//! implement [`Actor`] over their own [`SimMessage`] type (see
//! `fastbft-core` and `fastbft-baselines`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actor;
mod checker;
mod network;
mod runner;
mod script;
mod time;
mod trace;

pub use actor::{Actor, Effects, Outgoing, SimMessage, TimerId};
pub use checker::{ConsensusChecker, Violation};
pub use network::{DelayPolicy, Network, SendInfo};
pub use runner::Simulation;
pub use script::ScriptedActor;
pub use time::{SimDuration, SimTime};
pub use trace::{MessageStats, Trace, TraceEvent, TraceRecord};
