//! Scripted actors: building blocks for adversarial and test scenarios.
//!
//! The lower-bound executions of Section 4 need *exactly* scripted behavior:
//! send these messages to these processes at these times, say nothing else.
//! [`ScriptedActor`] provides that, and is also handy as a stand-in for
//! crashed or silent processes in unit tests.

use fastbft_types::ProcessId;

use crate::actor::{Actor, Effects, SimMessage, TimerId};
use crate::time::SimTime;

/// One scripted action.
#[derive(Clone, Debug)]
enum Step<M> {
    /// Send `msg` to a single process at `at`.
    Send { at: SimTime, to: ProcessId, msg: M },
    /// Broadcast `msg` to everyone (including self) at `at`.
    Broadcast { at: SimTime, msg: M },
}

impl<M> Step<M> {
    fn at(&self) -> SimTime {
        match self {
            Step::Send { at, .. } | Step::Broadcast { at, .. } => *at,
        }
    }
}

/// An actor that follows a fixed send schedule and otherwise ignores every
/// input. Incoming messages and unknown timers are silently dropped.
///
/// ```
/// use fastbft_sim::{ScriptedActor, SimMessage, SimTime, Simulation, Network, SimDuration};
/// use fastbft_types::ProcessId;
///
/// #[derive(Clone, Debug)]
/// struct Hi;
/// impl SimMessage for Hi {
///     fn kind(&self) -> &'static str { "hi" }
///     fn wire_size(&self) -> usize { 2 }
/// }
///
/// let script = ScriptedActor::silent()
///     .with_send_at(SimTime(0), ProcessId(2), Hi)
///     .with_broadcast_at(SimTime(300), Hi);
/// let mut sim = Simulation::new(Network::synchronous(SimDuration(100)), 0);
/// sim.add_actor(Box::new(script));
/// sim.add_actor(Box::new(ScriptedActor::silent()));
/// sim.start();
/// sim.run_to_quiescence();
/// assert_eq!(sim.trace().message_stats(SimTime::NEVER).messages, 3);
/// ```
#[derive(Clone, Debug)]
pub struct ScriptedActor<M> {
    steps: Vec<Step<M>>,
}

impl<M: SimMessage> ScriptedActor<M> {
    /// An actor that never sends anything (a silent / crashed process).
    pub fn silent() -> Self {
        ScriptedActor { steps: Vec::new() }
    }

    /// An actor that broadcasts `msg` (to everyone, including itself) at
    /// `t = 0` and is silent afterwards.
    pub fn broadcaster(msg: M) -> Self {
        ScriptedActor::silent().with_broadcast_at(SimTime::ZERO, msg)
    }

    /// Builder: adds a point-to-point send of `msg` to `to` at `at`.
    #[must_use]
    pub fn with_send_at(mut self, at: SimTime, to: ProcessId, msg: M) -> Self {
        self.steps.push(Step::Send { at, to, msg });
        self
    }

    /// Builder: adds a broadcast of `msg` at `at`.
    #[must_use]
    pub fn with_broadcast_at(mut self, at: SimTime, msg: M) -> Self {
        self.steps.push(Step::Broadcast { at, msg });
        self
    }

    /// Builder: sends `msg` to each process in `targets` at `at`.
    #[must_use]
    pub fn with_multicast_at(
        mut self,
        at: SimTime,
        targets: impl IntoIterator<Item = ProcessId>,
        msg: M,
    ) -> Self {
        for to in targets {
            self.steps.push(Step::Send {
                at,
                to,
                msg: msg.clone(),
            });
        }
        self
    }

    fn run_step(&self, idx: usize, fx: &mut Effects<M>) {
        match &self.steps[idx] {
            Step::Send { to, msg, .. } => fx.send(*to, msg.clone()),
            Step::Broadcast { msg, .. } => fx.broadcast(msg.clone()),
        }
    }
}

impl<M: SimMessage> Actor<M> for ScriptedActor<M> {
    fn on_start(&mut self, fx: &mut Effects<M>) {
        for (i, step) in self.steps.iter().enumerate() {
            if step.at() == SimTime::ZERO {
                self.run_step(i, fx);
            } else {
                // One timer per future step; TimerId carries the step index.
                fx.set_timer(step.at().since(SimTime::ZERO), TimerId(i as u64));
            }
        }
    }

    fn on_message(&mut self, _from: ProcessId, _msg: M, _fx: &mut Effects<M>) {}

    fn on_timer(&mut self, timer: TimerId, fx: &mut Effects<M>) {
        let idx = timer.0 as usize;
        if idx < self.steps.len() {
            self.run_step(idx, fx);
        }
    }

    fn label(&self) -> &'static str {
        "scripted"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use crate::runner::Simulation;
    use crate::time::SimDuration;
    use crate::trace::TraceEvent;

    #[derive(Clone, Debug, PartialEq)]
    struct Tick(u8);
    impl SimMessage for Tick {
        fn kind(&self) -> &'static str {
            "tick"
        }
        fn wire_size(&self) -> usize {
            1
        }
    }

    #[test]
    fn silent_actor_stays_silent() {
        let mut sim = Simulation::new(Network::synchronous(SimDuration(10)), 0);
        sim.add_actor(Box::new(ScriptedActor::<Tick>::silent()));
        sim.add_actor(Box::new(ScriptedActor::<Tick>::silent()));
        sim.start();
        sim.inject_message(ProcessId(2), ProcessId(1), Tick(0), SimTime::ZERO);
        sim.run_to_quiescence();
        // Only the injected message; no responses.
        assert_eq!(sim.trace().message_stats(SimTime::NEVER).messages, 1);
    }

    #[test]
    fn steps_fire_at_scheduled_times() {
        let actor = ScriptedActor::silent()
            .with_send_at(SimTime(0), ProcessId(2), Tick(1))
            .with_send_at(SimTime(50), ProcessId(2), Tick(2))
            .with_multicast_at(SimTime(70), [ProcessId(1), ProcessId(2)], Tick(3));
        let mut sim = Simulation::new(Network::synchronous(SimDuration(10)), 0);
        sim.add_actor(Box::new(actor));
        sim.add_actor(Box::new(ScriptedActor::silent()));
        sim.start();
        sim.run_to_quiescence();
        let sends: Vec<(u64, u32)> = sim
            .trace()
            .records()
            .iter()
            .filter_map(|r| match r.event {
                TraceEvent::Send { to, .. } => Some((r.at.0, to.0)),
                _ => None,
            })
            .collect();
        assert_eq!(sends, vec![(0, 2), (50, 2), (70, 1), (70, 2)]);
    }
}
