//! The partial-synchrony network model (§2.1 of the paper).
//!
//! Channels are reliable and authenticated: every sent message is eventually
//! delivered, unmodified, with its true sender. Delivery *times* are where
//! the adversary lives:
//!
//! * before GST, delays are chosen by a [`DelayPolicy`] (random within
//!   bounds, fixed, or a fully scripted closure);
//! * from GST on, every message — including those still in flight — is
//!   delivered within Δ of `max(send_time, gst)`, which is exactly the
//!   partial-synchrony guarantee of Dwork–Lynch–Stockmeyer as stated in the
//!   paper.
//!
//! Scripted executions (the lower-bound constructions, the figure replays)
//! set `gst = SimTime::NEVER` and control every delivery explicitly.

use fastbft_types::ProcessId;
use rand::rngs::StdRng;
use rand::Rng;

use crate::time::{SimDuration, SimTime};

/// Everything known about a message at the instant it is sent; scripted
/// delay policies key off these fields.
#[derive(Clone, Copy, Debug)]
pub struct SendInfo {
    /// Sending process.
    pub from: ProcessId,
    /// Receiving process.
    pub to: ProcessId,
    /// Virtual time of the send.
    pub sent_at: SimTime,
    /// Per-execution sequence number of the send (unique, monotonic).
    pub seq: u64,
}

/// How pre-GST delays are chosen.
pub enum DelayPolicy {
    /// Every message takes exactly Δ. With `gst = 0` this is the "gracious"
    /// synchronous execution of the paper's common case and of the T-faulty
    /// two-step executions (messages sent in round `i` delivered at the start
    /// of round `i + 1`).
    ExactlyDelta,
    /// Uniformly random delay in `[min, max]` (inclusive).
    Uniform {
        /// Minimum delay.
        min: SimDuration,
        /// Maximum delay.
        max: SimDuration,
    },
    /// Fully scripted: the closure returns the **delivery time** for each
    /// message. The kernel clamps it to be at least the send time, and the
    /// GST bound still applies afterwards.
    Scripted(Box<dyn FnMut(&SendInfo) -> SimTime + Send>),
}

impl std::fmt::Debug for DelayPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DelayPolicy::ExactlyDelta => write!(f, "ExactlyDelta"),
            DelayPolicy::Uniform { min, max } => write!(f, "Uniform({min:?}..{max:?})"),
            DelayPolicy::Scripted(_) => write!(f, "Scripted(..)"),
        }
    }
}

/// The network model: Δ, GST and the pre-GST delay policy.
#[derive(Debug)]
pub struct Network {
    /// The known bound Δ on post-GST message delay.
    pub delta: SimDuration,
    /// Global stabilization time. `SimTime::ZERO` = synchronous from the
    /// start; `SimTime::NEVER` = the bound never kicks in (scripted runs).
    pub gst: SimTime,
    /// Pre-GST delay policy.
    pub policy: DelayPolicy,
}

impl Network {
    /// A network that is synchronous from the start with delay exactly Δ —
    /// the common-case environment for latency experiments.
    pub fn synchronous(delta: SimDuration) -> Self {
        Network {
            delta,
            gst: SimTime::ZERO,
            policy: DelayPolicy::ExactlyDelta,
        }
    }

    /// A network that is chaotic (uniform random delays in
    /// `[delta/10, pre_gst_max]`) until `gst`, then Δ-bounded.
    pub fn partially_synchronous(
        delta: SimDuration,
        gst: SimTime,
        pre_gst_max: SimDuration,
    ) -> Self {
        Network {
            delta,
            gst,
            policy: DelayPolicy::Uniform {
                min: delta / 10,
                max: pre_gst_max,
            },
        }
    }

    /// A fully scripted network: the closure dictates every delivery time and
    /// the GST bound never interferes.
    pub fn scripted(
        delta: SimDuration,
        schedule: impl FnMut(&SendInfo) -> SimTime + Send + 'static,
    ) -> Self {
        Network {
            delta,
            gst: SimTime::NEVER,
            policy: DelayPolicy::Scripted(Box::new(schedule)),
        }
    }

    /// Computes the delivery time for a message described by `info`.
    ///
    /// Post-GST admissibility is enforced here: the result never exceeds
    /// `max(sent_at, gst) + Δ`, and is never before the send itself.
    pub fn delivery_time(&mut self, info: &SendInfo, rng: &mut StdRng) -> SimTime {
        let proposed = match &mut self.policy {
            DelayPolicy::ExactlyDelta => info.sent_at + self.delta,
            DelayPolicy::Uniform { min, max } => {
                let (lo, hi) = (min.0, max.0.max(min.0));
                info.sent_at + SimDuration(rng.gen_range(lo..=hi))
            }
            DelayPolicy::Scripted(f) => f(info),
        };
        // Reliable channel: delivery no earlier than the send…
        let proposed = proposed.max(info.sent_at);
        // …and partial synchrony: no later than max(send, GST) + Δ.
        if self.gst == SimTime::NEVER {
            proposed
        } else {
            let deadline = info.sent_at.max(self.gst) + self.delta;
            proposed.min(deadline)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn info(sent_at: u64) -> SendInfo {
        SendInfo {
            from: ProcessId(1),
            to: ProcessId(2),
            sent_at: SimTime(sent_at),
            seq: 0,
        }
    }

    #[test]
    fn synchronous_is_exactly_delta() {
        let mut net = Network::synchronous(SimDuration(100));
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(net.delivery_time(&info(0), &mut rng), SimTime(100));
        assert_eq!(net.delivery_time(&info(250), &mut rng), SimTime(350));
    }

    #[test]
    fn uniform_respects_gst_deadline() {
        let mut net =
            Network::partially_synchronous(SimDuration(100), SimTime(1_000), SimDuration(10_000));
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            // Sent before GST: must arrive by gst + delta.
            let d = net.delivery_time(&info(0), &mut rng);
            assert!(d <= SimTime(1_100), "pre-GST message late: {d}");
            // Sent after GST: must arrive within delta of the send.
            let d = net.delivery_time(&info(2_000), &mut rng);
            assert!(d >= SimTime(2_000) && d <= SimTime(2_100));
        }
    }

    #[test]
    fn scripted_is_unclamped_by_gst() {
        let mut net = Network::scripted(SimDuration(100), |i| i.sent_at + SimDuration(9_999));
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(net.delivery_time(&info(5), &mut rng), SimTime(10_004));
    }

    #[test]
    fn delivery_never_precedes_send() {
        let mut net = Network::scripted(SimDuration(100), |_| SimTime::ZERO);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(net.delivery_time(&info(500), &mut rng), SimTime(500));
    }

    #[test]
    fn uniform_determinism_under_seed() {
        let run = |seed: u64| {
            let mut net =
                Network::partially_synchronous(SimDuration(100), SimTime(10_000), SimDuration(500));
            let mut rng = StdRng::seed_from_u64(seed);
            (0..32)
                .map(|i| net.delivery_time(&info(i * 7), &mut rng).0)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }
}
