//! The actor interface between protocols and the simulation kernel.
//!
//! A protocol implementation is a deterministic state machine that reacts to
//! three stimuli — start-up, message delivery, timer expiry — by emitting
//! *effects* (sends, timer requests, a decision). Keeping protocols I/O-free
//! lets the same implementation run under the discrete-event simulator, the
//! thread runtime and property tests.

use std::fmt;

use fastbft_types::{ProcessId, Value};

use crate::time::{SimDuration, SimTime};

/// Messages exchanged by simulated protocols.
///
/// The two methods feed the trace and the message-complexity experiment
/// (E12): `kind` labels the message for figure rendering, `wire_size` is its
/// encoded size in bytes.
pub trait SimMessage: Clone + fmt::Debug + Send + 'static {
    /// Short label of the message type (e.g. `"propose"`, `"ack"`).
    fn kind(&self) -> &'static str;
    /// Size of the encoded message in bytes.
    fn wire_size(&self) -> usize;
}

/// Identifier of a pending timer. Meaning is protocol-internal; protocols
/// typically encode a generation number so stale timers can be ignored.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TimerId(pub u64);

/// A participant in a simulation: either a correct protocol replica or a
/// scripted Byzantine actor (which simply implements this trait however it
/// likes).
pub trait Actor<M: SimMessage> {
    /// Invoked once at `t = 0`.
    fn on_start(&mut self, fx: &mut Effects<M>);

    /// Invoked when a message from `from` is delivered.
    fn on_message(&mut self, from: ProcessId, msg: M, fx: &mut Effects<M>);

    /// Invoked when a timer previously set via [`Effects::set_timer`] fires.
    fn on_timer(&mut self, _timer: TimerId, _fx: &mut Effects<M>) {}

    /// Invoked when a *client* submits a command to this process — the
    /// ingress path of a replicated state machine, as opposed to
    /// [`on_message`](Actor::on_message), which carries peer protocol
    /// traffic. Single-shot consensus actors have no client path, so the
    /// default ignores the command.
    fn on_client(&mut self, _command: Value, _fx: &mut Effects<M>) {}

    /// Invoked once when the actor's event loop stops (runtime shutdown or
    /// a single-seat stop) — the place to flush and join any helper
    /// threads the actor owns, so post-run state inspection observes the
    /// final state. The simulator never calls this (simulated actors own
    /// no threads); the default is a no-op.
    fn on_shutdown(&mut self) {}

    /// Optional human-readable label used in traces.
    fn label(&self) -> &'static str {
        "actor"
    }

    /// Downcasting hook for harnesses that need to inspect actor state after
    /// (or during) a run — e.g. the SMR harness reads each node's applied
    /// log. Override with `Some(self)` to opt in.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// One outgoing-message effect, in emission order.
///
/// Broadcasts are recorded *structurally* rather than expanded into `n`
/// point-to-point sends: a transport that serializes messages (the TCP
/// transport) can then encode the payload exactly once per broadcast
/// instead of once per destination. The simulator and the channel runtime
/// expand [`Outgoing::All`] into per-destination deliveries, so observable
/// behavior (per-link delays, message counting) is unchanged.
#[derive(Clone, Debug, PartialEq)]
pub enum Outgoing<M> {
    /// A point-to-point send to one process.
    To(ProcessId, M),
    /// A broadcast to every process, *including* the sender.
    All(M),
}

/// Effect buffer handed to an [`Actor`] callback; the kernel drains it after
/// the callback returns.
#[derive(Debug)]
pub struct Effects<M> {
    id: ProcessId,
    n: usize,
    now: SimTime,
    pub(crate) outbox: Vec<Outgoing<M>>,
    pub(crate) timers: Vec<(SimDuration, TimerId)>,
    pub(crate) decision: Option<Value>,
    pub(crate) applied: Vec<(u64, Value)>,
    pub(crate) halt: bool,
}

impl<M: SimMessage> Effects<M> {
    /// Creates an empty effect buffer for process `id` in an `n`-process
    /// system at time `now`.
    ///
    /// Normally only the simulation kernel constructs these; the constructor
    /// is public so protocol unit tests can drive actors directly.
    pub fn new(id: ProcessId, n: usize, now: SimTime) -> Self {
        Effects {
            id,
            n,
            now,
            outbox: Vec::new(),
            timers: Vec::new(),
            decision: None,
            applied: Vec::new(),
            halt: false,
        }
    }

    /// The outgoing-message effects in emission order, with broadcasts kept
    /// structural — what the runtimes consume (see [`Outgoing`]).
    pub fn outgoing(&self) -> &[Outgoing<M>] {
        &self.outbox
    }

    /// The messages queued so far in send order, with broadcasts expanded
    /// into one `(destination, message)` pair per process (test
    /// inspection; the hot paths consume [`outgoing`](Effects::outgoing)
    /// instead, which does not clone).
    pub fn sent(&self) -> Vec<(ProcessId, M)> {
        let mut out = Vec::new();
        for effect in &self.outbox {
            match effect {
                Outgoing::To(to, msg) => out.push((*to, msg.clone())),
                Outgoing::All(msg) => {
                    for to in ProcessId::all(self.n) {
                        out.push((to, msg.clone()));
                    }
                }
            }
        }
        out
    }

    /// The timers requested so far (test inspection).
    pub fn timers_set(&self) -> &[(SimDuration, TimerId)] {
        &self.timers
    }

    /// The decision recorded, if any (test inspection).
    pub fn decision_made(&self) -> Option<&Value> {
        self.decision.as_ref()
    }

    /// The acting process's own id.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// Total number of processes in the system.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sends `msg` to `to` (point-to-point, authenticated channel).
    /// Sending to self is allowed and delivered like any other message.
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.outbox.push(Outgoing::To(to, msg));
    }

    /// Sends `msg` to every process, *including* the sender itself.
    ///
    /// Self-delivery keeps quorum counting uniform: a process's own ack
    /// counts exactly like anyone else's, as in the paper's counting.
    ///
    /// Recorded as one structural [`Outgoing::All`] effect, so a
    /// serializing transport encodes the payload once per broadcast, not
    /// once per destination.
    pub fn broadcast(&mut self, msg: M) {
        self.outbox.push(Outgoing::All(msg));
    }

    /// Sends `msg` to every process except the sender. Cold path (used by
    /// the view synchronizer only), so it stays point-to-point.
    pub fn broadcast_others(&mut self, msg: M) {
        for to in ProcessId::all(self.n) {
            if to != self.id {
                self.outbox.push(Outgoing::To(to, msg.clone()));
            }
        }
    }

    /// Requests a timer to fire after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, timer: TimerId) {
        self.timers.push((delay, timer));
    }

    /// Records this process's (single) decision. Later calls in the same
    /// execution are recorded by the kernel as duplicate-decision anomalies
    /// rather than silently dropped — the checker treats a changed decision
    /// as a safety violation.
    pub fn decide(&mut self, value: Value) {
        self.decision = Some(value);
    }

    /// Records that the actor applied `command` at log position `index` —
    /// the multi-slot analogue of [`decide`](Effects::decide): a replicated
    /// state machine emits one of these per applied command rather than a
    /// single terminal decision. The thread runtime forwards them to
    /// `ClusterHandle::applied_events`; the simulator exposes them through
    /// this buffer for harness inspection.
    pub fn record_applied(&mut self, index: u64, command: &Value) {
        self.applied.push((index, command.clone()));
    }

    /// The applied-command events recorded so far, in application order.
    pub fn applied_log(&self) -> &[(u64, Value)] {
        &self.applied
    }

    /// Permanently stops this actor (used to model crashes from within).
    pub fn halt(&mut self) {
        self.halt = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Ping;
    impl SimMessage for Ping {
        fn kind(&self) -> &'static str {
            "ping"
        }
        fn wire_size(&self) -> usize {
            1
        }
    }

    #[test]
    fn broadcast_includes_self() {
        let mut fx = Effects::new(ProcessId(2), 4, SimTime::ZERO);
        fx.broadcast(Ping);
        // Structural: one effect, expanded to all n on demand.
        assert_eq!(fx.outgoing(), &[Outgoing::All(Ping)]);
        let targets: Vec<u32> = fx.sent().iter().map(|(p, _)| p.0).collect();
        assert_eq!(targets, vec![1, 2, 3, 4]);
    }

    #[test]
    fn broadcast_others_excludes_self() {
        let mut fx = Effects::new(ProcessId(2), 4, SimTime::ZERO);
        fx.broadcast_others(Ping);
        let targets: Vec<u32> = fx.sent().iter().map(|(p, _)| p.0).collect();
        assert_eq!(targets, vec![1, 3, 4]);
    }

    #[test]
    fn outbox_preserves_emission_order_across_kinds() {
        let mut fx = Effects::new(ProcessId(1), 3, SimTime::ZERO);
        fx.send(ProcessId(2), Ping);
        fx.broadcast(Ping);
        fx.send(ProcessId(3), Ping);
        assert_eq!(
            fx.outgoing(),
            &[
                Outgoing::To(ProcessId(2), Ping),
                Outgoing::All(Ping),
                Outgoing::To(ProcessId(3), Ping),
            ]
        );
        let targets: Vec<u32> = fx.sent().iter().map(|(p, _)| p.0).collect();
        assert_eq!(targets, vec![2, 1, 2, 3, 3]);
    }

    #[test]
    fn effects_collects_outputs() {
        let mut fx = Effects::new(ProcessId(1), 3, SimTime(5));
        assert_eq!(fx.now(), SimTime(5));
        assert_eq!(fx.n(), 3);
        assert_eq!(fx.id(), ProcessId(1));
        fx.send(ProcessId(3), Ping);
        fx.set_timer(SimDuration(10), TimerId(1));
        fx.decide(Value::from_u64(1));
        assert_eq!(fx.outbox.len(), 1);
        assert_eq!(fx.timers, vec![(SimDuration(10), TimerId(1))]);
        assert_eq!(fx.decision, Some(Value::from_u64(1)));
        assert!(!fx.halt);
        fx.halt();
        assert!(fx.halt);
    }
}
