//! Property tests for the simulation kernel: partial-synchrony
//! admissibility, determinism and crash semantics.

use fastbft_sim::{
    Actor, Effects, Network, ScriptedActor, SimDuration, SimMessage, SimTime, Simulation, TimerId,
    TraceEvent,
};
use fastbft_types::ProcessId;
use proptest::prelude::*;

#[derive(Clone, Debug, PartialEq)]
struct Ping(u64);
impl SimMessage for Ping {
    fn kind(&self) -> &'static str {
        "ping"
    }
    fn wire_size(&self) -> usize {
        8
    }
}

/// Gossiper: relays each received ping once with a decremented TTL.
struct Gossip;
impl Actor<Ping> for Gossip {
    fn on_start(&mut self, _fx: &mut Effects<Ping>) {}
    fn on_message(&mut self, _from: ProcessId, msg: Ping, fx: &mut Effects<Ping>) {
        if msg.0 > 0 {
            fx.broadcast_others(Ping(msg.0 - 1));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// Partial synchrony is enforced: every message is delivered by
    /// `max(send_time, GST) + Δ`, never before its send.
    #[test]
    fn delivery_times_admissible(
        seed in any::<u64>(),
        gst in 0u64..2000,
        chaos in 100u64..3000,
        n in 2usize..6,
        ttl in 1u64..4,
    ) {
        let delta = SimDuration(100);
        let mut sim = Simulation::new(
            Network::partially_synchronous(delta, SimTime(gst), SimDuration(chaos)),
            seed,
        );
        for _ in 0..n {
            sim.add_actor(Box::new(Gossip));
        }
        sim.start();
        sim.inject_message(ProcessId(1), ProcessId(2), Ping(ttl), SimTime::ZERO);
        sim.run_to_quiescence();

        // Reconstruct per-send admissibility from the trace.
        for rec in sim.trace().records() {
            if let TraceEvent::Send { deliver_at, .. } = rec.event {
                let sent_at = rec.at;
                prop_assert!(deliver_at >= sent_at, "delivered before send");
                let deadline = sent_at.max(SimTime(gst)) + delta;
                prop_assert!(
                    deliver_at <= deadline,
                    "sent {sent_at}, delivered {deliver_at}, deadline {deadline}"
                );
            }
        }
    }

    /// Bit-for-bit determinism: identical seeds give identical traces, for
    /// any network parameters.
    #[test]
    fn traces_deterministic(
        seed in any::<u64>(),
        gst in 0u64..1000,
        chaos in 100u64..2000,
    ) {
        let run = || {
            let mut sim = Simulation::new(
                Network::partially_synchronous(
                    SimDuration(100),
                    SimTime(gst),
                    SimDuration(chaos),
                ),
                seed,
            );
            for _ in 0..4 {
                sim.add_actor(Box::new(Gossip));
            }
            sim.start();
            sim.inject_message(ProcessId(1), ProcessId(2), Ping(3), SimTime::ZERO);
            sim.run_to_quiescence();
            format!("{}", sim.trace())
        };
        prop_assert_eq!(run(), run());
    }

    /// Every delivery in the trace corresponds to exactly one send with a
    /// matching schedule (reliable channels: no loss, no duplication, no
    /// creation) — for crash-free runs.
    #[test]
    fn sends_and_delivers_one_to_one(seed in any::<u64>(), ttl in 1u64..4) {
        let mut sim = Simulation::new(
            Network::partially_synchronous(SimDuration(100), SimTime(500), SimDuration(700)),
            seed,
        );
        for _ in 0..4 {
            sim.add_actor(Box::new(Gossip));
        }
        sim.start();
        sim.inject_message(ProcessId(1), ProcessId(3), Ping(ttl), SimTime::ZERO);
        sim.run_to_quiescence();
        let sends = sim
            .trace()
            .records()
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::Send { .. }))
            .count();
        let delivers = sim
            .trace()
            .records()
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::Deliver { .. }))
            .count();
        prop_assert_eq!(sends, delivers);
    }

    /// Crashed processes take no further steps: no sends, no deliveries, no
    /// timer firings after the crash instant.
    #[test]
    fn crash_semantics(seed in any::<u64>(), crash_at in 50u64..400) {
        let mut sim = Simulation::new(Network::synchronous(SimDuration(100)), seed);
        for _ in 0..4 {
            sim.add_actor(Box::new(Gossip));
        }
        let victim = ProcessId(2);
        sim.schedule_crash(victim, SimTime(crash_at));
        sim.start();
        sim.inject_message(ProcessId(1), victim, Ping(5), SimTime::ZERO);
        sim.inject_message(ProcessId(1), ProcessId(3), Ping(5), SimTime::ZERO);
        sim.run_to_quiescence();
        for rec in sim.trace().records() {
            if rec.at >= SimTime(crash_at) {
                match rec.event {
                    TraceEvent::Send { from, .. } => {
                        prop_assert_ne!(from, victim, "crashed process sent at {}", rec.at);
                    }
                    TraceEvent::Deliver { to, .. } => {
                        prop_assert_ne!(to, victim, "crashed process received at {}", rec.at);
                    }
                    _ => {}
                }
            }
        }
        prop_assert!(sim.is_crashed(victim));
    }
}

/// Timers fire exactly once, in order, at the requested offsets.
#[test]
fn timer_ordering() {
    struct TimerProbe {
        fired: Vec<u64>,
    }
    impl Actor<Ping> for TimerProbe {
        fn on_start(&mut self, fx: &mut Effects<Ping>) {
            fx.set_timer(SimDuration(300), TimerId(3));
            fx.set_timer(SimDuration(100), TimerId(1));
            fx.set_timer(SimDuration(200), TimerId(2));
        }
        fn on_message(&mut self, _f: ProcessId, _m: Ping, _fx: &mut Effects<Ping>) {}
        fn on_timer(&mut self, timer: TimerId, fx: &mut Effects<Ping>) {
            self.fired.push(timer.0);
            if timer.0 == 1 {
                // A timer set from a timer callback still fires.
                fx.set_timer(SimDuration(50), TimerId(10));
            }
        }
        fn as_any(&self) -> Option<&dyn std::any::Any> {
            Some(self)
        }
    }
    let mut sim = Simulation::new(Network::synchronous(SimDuration(100)), 0);
    let p = sim.add_actor(Box::new(TimerProbe { fired: Vec::new() }));
    sim.start();
    sim.run_to_quiescence();
    let probe = sim
        .actor(p)
        .as_any()
        .unwrap()
        .downcast_ref::<TimerProbe>()
        .unwrap();
    assert_eq!(probe.fired, vec![1, 10, 2, 3]);
}

/// The silent scripted actor really is inert under fire.
#[test]
fn silent_under_fire() {
    let mut sim = Simulation::new(Network::synchronous(SimDuration(10)), 0);
    sim.add_actor(Box::new(ScriptedActor::<Ping>::silent()));
    sim.add_actor(Box::new(Gossip));
    sim.start();
    for i in 0..10 {
        sim.inject_message(ProcessId(2), ProcessId(1), Ping(i), SimTime(i * 5));
    }
    sim.run_to_quiescence();
    let sends_from_p1 = sim
        .trace()
        .records()
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::Send { from, .. } if from == ProcessId(1)))
        .count();
    assert_eq!(sends_from_p1, 0);
}
