//! Property tests for state transfer: the snapshot/restore contract on the
//! KV machine (canonical, lossless, atomic) and the authenticated
//! snapshot-response validation under adversarial tampering.

use fastbft_crypto::KeyDirectory;
use fastbft_smr::{
    checkpoint_signature, snapshot_response_valid, KvCommand, KvStore, StateMachine,
};
use fastbft_types::Value;
use proptest::prelude::*;

/// A small op alphabet so keys collide often — puts overwrite, deletes hit
/// live keys, and the ghost cases (delete of a missing key) all occur.
fn op(seed: (u8, u8, u16)) -> Value {
    let (kind, k, v) = seed;
    let cmd = if kind % 3 == 0 {
        KvCommand::Delete {
            key: format!("k{}", k % 16),
        }
    } else {
        KvCommand::Put {
            key: format!("k{}", k % 16),
            value: format!("v{v}"),
        }
    };
    cmd.to_value()
}

fn store_after(ops: &[(u8, u8, u16)]) -> KvStore {
    let mut store = KvStore::new();
    for o in ops {
        store.apply(&op(*o));
    }
    store
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// `restore(snapshot())` reproduces the exact state: equal digests,
    /// byte-identical re-snapshot (canonicality), and identical behavior
    /// under further commands.
    #[test]
    fn kv_snapshot_restore_roundtrips(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u16>()), 0..64),
        next in (any::<u8>(), any::<u8>(), any::<u16>()),
    ) {
        let original = store_after(&ops);
        let bytes = original.snapshot();

        // Restore over a *dirty* target: install must fully replace state.
        let mut restored = store_after(&[(1, 9, 999)]);
        prop_assert!(restored.restore(&bytes), "well-formed snapshot rejected");
        prop_assert_eq!(restored.state_digest(), original.state_digest());
        prop_assert_eq!(restored.snapshot(), bytes, "snapshot not canonical");

        // The restored machine behaves identically from here on.
        let mut a = original;
        let mut b = restored;
        a.apply(&op(next));
        b.apply(&op(next));
        prop_assert_eq!(a.state_digest(), b.state_digest());
    }

    /// Truncated snapshot bytes are rejected atomically: `restore` returns
    /// `false` and the machine is untouched (digest and snapshot equal to
    /// before the attempt).
    #[test]
    fn kv_restore_rejects_truncation_atomically(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u16>()), 1..64),
        cut_seed in any::<u16>(),
    ) {
        let donor = store_after(&ops);
        let bytes = donor.snapshot();
        prop_assert!(!bytes.is_empty());
        let cut = cut_seed as usize % bytes.len();

        let mut target = store_after(&ops[..ops.len() / 2]);
        let digest_before = target.state_digest();
        let snapshot_before = target.snapshot();
        prop_assert!(
            !target.restore(&bytes[..cut]),
            "truncated snapshot ({} of {} bytes) accepted",
            cut,
            bytes.len()
        );
        prop_assert_eq!(target.state_digest(), digest_before, "failed restore mutated state");
        prop_assert_eq!(target.snapshot(), snapshot_before);
    }

    /// A snapshot response carrying f+1 distinct valid attestations is
    /// accepted — and any single-byte tamper of the payload, any change of
    /// the claimed boundary, dropping below f+1 signers, or padding the
    /// count with duplicate signers is rejected.
    #[test]
    fn snapshot_response_validation_is_tamper_evident(
        payload in proptest::collection::vec(any::<u8>(), 1..512),
        upto_seed in any::<u16>(),
        seed in any::<u8>(),
        idx_seed in any::<u16>(),
        bit in 0u8..8,
        delta_seed in any::<u16>(),
    ) {
        let (pairs, dir) = KeyDirectory::generate(4, seed as u64);
        let f = 1usize;
        let upto = (upto_seed as u64 + 1) * 16;
        let digest = fastbft_crypto::digest(&payload);

        // Exactly f+1 = 2 distinct signers: the acceptance threshold.
        let sigs: Vec<_> = pairs[..2]
            .iter()
            .map(|kp| checkpoint_signature(kp, upto, &digest))
            .collect();
        prop_assert!(snapshot_response_valid(&dir, f, upto, &payload, &sigs));

        // Single-byte tamper of the payload: every attestation now covers
        // the wrong digest.
        let mut tampered = payload.clone();
        let idx = idx_seed as usize % tampered.len();
        tampered[idx] ^= 1 << bit;
        prop_assert!(
            !snapshot_response_valid(&dir, f, upto, &tampered, &sigs),
            "flipping bit {} of byte {} went undetected",
            bit,
            idx
        );

        // Tampered boundary: the signed statement binds `upto`.
        let wrong_upto = upto + 1 + delta_seed as u64;
        prop_assert!(!snapshot_response_valid(&dir, f, wrong_upto, &payload, &sigs));

        // f valid signers are not enough.
        prop_assert!(!snapshot_response_valid(&dir, f, upto, &payload, &sigs[..1]));

        // Duplicates of one signer must not be counted as distinct peers.
        let padded = vec![sigs[0].clone(), sigs[0].clone(), sigs[0].clone()];
        prop_assert!(!snapshot_response_valid(&dir, f, upto, &payload, &padded));
    }
}
