//! Regression: a replica partitioned past the stash horizon must still
//! rejoin and converge.
//!
//! The failure mode (pre state-transfer): consensus messages for slots at
//! or beyond `applied + MAX_STASH_AHEAD` are dropped as hopeless, so once
//! the rest of the cluster commits `MAX_STASH_AHEAD + SLOT_WINDOW` slots
//! while a replica is cut off, every message the victim receives after the
//! partition heals is either for a slot it has long decided (ignored) or
//! beyond its stash horizon (dropped) — it could never catch up, and its
//! peers' dedup/log state grew without bound waiting for it. With snapshot
//! recovery the victim instead notices f+1 peers far ahead, fetches an
//! attested snapshot plus the committed suffix, installs it, and resumes
//! voting; snapshot truncation keeps everyone's memory bounded by the
//! snapshot interval throughout.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use fastbft_core::replica::ReplicaOptions;
use fastbft_sim::{Network, SimDuration, SimTime};
use fastbft_smr::{
    KvCommand, KvStore, SmrSimCluster, DEFAULT_SNAPSHOT_INTERVAL, MAX_STASH_AHEAD, SLOT_WINDOW,
};
use fastbft_types::{Config, ProcessId, Value};

fn put(i: usize) -> Value {
    KvCommand::Put {
        key: format!("k{i}"),
        value: format!("v{i}"),
    }
    .to_value()
}

#[test]
fn replica_partitioned_past_stash_horizon_recovers() {
    const COMMANDS: usize = 500;
    let cfg = Config::new(4, 1, 1).unwrap();
    let victim = ProcessId(4);
    let live = [ProcessId(1), ProcessId(2), ProcessId(3)];

    // The client broadcasts 500 distinct puts to the live trio (the victim
    // is unreachable, so it holds no client state of its own) — enough
    // traffic to drive the live side far past the victim's stash horizon.
    let queue: Vec<Value> = (0..COMMANDS).map(put).collect();
    let commands = vec![queue.clone(), queue.clone(), queue, Vec::new()];

    // Partition: until healed, anything to or from the victim is lost.
    let healed = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&healed);
    let delta = SimDuration::DELTA;
    let network = Network::scripted(delta, move |info| {
        if !flag.load(Ordering::Relaxed) && (info.from == victim || info.to == victim) {
            SimTime::NEVER
        } else {
            info.sent_at + delta
        }
    });
    let mut cluster = SmrSimCluster::new_with_network_snapshotting(
        cfg,
        11,
        KvStore::new(),
        commands,
        KvCommand::Noop.to_value(),
        ReplicaOptions::default(),
        1,
        network,
        DEFAULT_SNAPSHOT_INTERVAL,
    );

    // Phase A: the live trio commits one full stash horizon *plus* a
    // window beyond the victim — the pre-fix point of no return.
    let horizon_slots = MAX_STASH_AHEAD + SLOT_WINDOW;
    let report = cluster.run_until_applied_by(&live, horizon_slots, SimTime(2_000_000_000));
    for p in live {
        assert!(
            cluster.applied(p) >= horizon_slots,
            "live side stalled during the partition: {report:?}"
        );
    }
    assert_eq!(
        cluster.applied(victim),
        0,
        "victim advanced while partitioned"
    );

    // Phase B: heal. The victim must recover — not via the stash (those
    // slots are gone from every live window) but by installing an attested
    // snapshot — and then converge on all 500 commands with everyone else.
    healed.store(true, Ordering::Relaxed);
    let report = cluster.run_until_commands(COMMANDS as u64, SimTime(8_000_000_000));
    assert!(
        report.commands_everywhere >= COMMANDS as u64,
        "cluster did not converge after healing: {report:?}"
    );
    assert!(report.logs_consistent, "{report:?}");

    // Byte-identical state everywhere, including the victim.
    let reference = cluster.machine(ProcessId(1)).state_digest();
    for p in cfg.processes() {
        assert_eq!(
            cluster.machine(p).state_digest(),
            reference,
            "state diverged at {p}"
        );
    }
    assert_eq!(cluster.machine(victim).len(), COMMANDS);

    // The victim rejoined by state transfer, not by replaying from zero:
    // its retained log starts at an installed snapshot boundary.
    assert!(
        cluster.snapshot_upto(victim).is_some(),
        "victim rejoined without installing a snapshot"
    );
    assert!(
        cluster.log_offset(victim) > 0,
        "victim replayed the full log instead of installing a snapshot"
    );

    // Memory boundedness: dedup state and the backfill tail are bounded by
    // the snapshot interval on every replica — not by history length
    // (pre-fix, 500+ slots of dedup digests accumulated forever).
    for p in cfg.processes() {
        assert!(
            cluster.dedup_entries(p) <= 2 * DEFAULT_SNAPSHOT_INTERVAL as usize,
            "dedup state unbounded at {p}: {} entries",
            cluster.dedup_entries(p)
        );
        assert!(
            cluster.tail_len(p) <= DEFAULT_SNAPSHOT_INTERVAL as usize,
            "backfill tail unbounded at {p}: {} entries",
            cluster.tail_len(p)
        );
        assert!(
            cluster.log_offset(p) > 0,
            "log never truncated at {p} despite {horizon_slots}+ applied slots"
        );
    }
}
