//! Regression: pipelined slots must never commit the same client command
//! twice (at-most-once execution).
//!
//! The failure mode: `SmrNode` proposed the first `batch_size` commands of
//! its `pending` queue for *every* slot it opened without marking them in
//! flight. A slot opened while an earlier slot was still undecided (which
//! `on_message` does for any in-window slot) therefore re-proposed the same
//! commands, and if both slots decided that proposal, the commands were
//! applied — and logged — twice.

use fastbft_core::message::{Message, WishMsg};
use fastbft_core::replica::ReplicaOptions;
use fastbft_sim::{Network, SimDuration, SimTime};
use fastbft_smr::{CountingMachine, SlotMessage, SmrSimCluster};
use fastbft_types::{Config, ProcessId, Value, View};

/// Drives the overlap deterministically: everything sent to p3 (the leader
/// of slot 1) before `t = 150` crawls, so p3 opens slot 1 — via an injected
/// harmless slot-1 message — while it still believes the shared client
/// command is uncommitted, and proposes it a second time. Everyone else has
/// long since committed that command in slot 0.
#[test]
fn overlapping_slots_never_commit_a_command_twice() {
    let cfg = Config::new(4, 1, 1).unwrap();
    let cmd = Value::from_u64(4242);
    // Standard SMR client model: the command is broadcast to every replica.
    let commands = vec![vec![cmd.clone()]; 4];
    let delta = SimDuration::DELTA;
    let network = Network::scripted(delta, move |info| {
        if info.to == ProcessId(3) && info.sent_at < SimTime(150) {
            // p3's slot-0 traffic (propose at 0, acks at Δ) arrives long
            // after slot 1 has been decided under its nose.
            SimTime(5_000)
        } else {
            info.sent_at + delta
        }
    });
    let mut cluster = SmrSimCluster::new_with_network(
        cfg,
        7,
        CountingMachine::new(),
        commands,
        Value::from_u64(0),
        ReplicaOptions::default(),
        1,
        network,
    );
    // A harmless slot-1 message reaching p3 makes it open slot 1 (it is the
    // slot-1 leader, so it immediately proposes) while slot 0 is still
    // undecided at p3.
    cluster.inject_message(
        ProcessId(1),
        ProcessId(3),
        SlotMessage::Consensus {
            slot: 1,
            inner: Message::Wish(WishMsg { view: View::FIRST }),
        },
        SimTime(150),
    );
    cluster.run_until_applied(2, SimTime(40_000));

    for p in cfg.processes() {
        let log = cluster.log(p);
        assert!(
            log.len() >= 2,
            "{p} must have applied both slots: log {log:?}"
        );
        let hits = log.iter().filter(|v| **v == cmd).count();
        assert_eq!(
            hits, 1,
            "{p} applied {cmd:?} {hits} times (at-most-once violated): log {log:?}"
        );
    }
}
