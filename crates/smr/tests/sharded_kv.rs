//! The sharded KV store end to end: routing discipline, per-group log
//! agreement, verify-pool determinism, and the cross-shard consistency
//! property test.

use std::collections::BTreeMap;
use std::time::Duration;

use fastbft_core::replica::ReplicaOptions;
use fastbft_smr::runtime::as_smr_node;
use fastbft_smr::{kv_shard_of, KvCommand, KvStore, ShardedKvHandle};
use fastbft_types::{Config, ShardMap, Value};
use proptest::prelude::*;

const TICK: Duration = Duration::from_micros(50);
const WAIT: Duration = Duration::from_secs(20);

fn put(key: &str, value: &str) -> Value {
    KvCommand::Put {
        key: key.into(),
        value: value.into(),
    }
    .to_value()
}

/// Deterministic keys guaranteeing at least `per_shard` keys land in
/// every shard of an `shards`-way partition (routing is by key digest, so
/// coverage is found by scanning candidates).
fn keys_covering_shards(shards: usize, per_shard: usize) -> Vec<String> {
    let map = ShardMap::new(shards);
    let mut buckets = vec![0usize; shards];
    let mut keys = Vec::new();
    let mut i = 0u32;
    while buckets.iter().any(|count| *count < per_shard) {
        let key = format!("key-{i}");
        let g = kv_shard_of(map, &key);
        if buckets[g] < per_shard {
            buckets[g] += 1;
            keys.push(key);
        }
        i += 1;
    }
    keys
}

/// Four shards over one channel mesh: every command commits in the group
/// owning its key, group logs agree, and each group's replicated store
/// ends up with exactly its own keys.
#[test]
fn sharded_kv_commits_and_routes() {
    let cfg = Config::new(4, 1, 1).unwrap();
    let mut cluster =
        ShardedKvHandle::spawn_channel(cfg, 11, 4, ReplicaOptions::default(), 1, TICK, 0);
    let keys = keys_covering_shards(4, 4);
    let mut routed: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for (i, key) in keys.iter().enumerate() {
        let g = cluster.submit(put(key, &format!("v{i}")));
        assert_eq!(g, cluster.shard_of(key), "submit routes by key");
        routed.entry(g).or_default().push(key.clone());
    }
    // With 16 keys spread over the keyspace, all 4 groups saw traffic.
    assert_eq!(routed.len(), 4, "spread keys hit every shard");
    assert!(cluster.await_submitted(WAIT), "all groups commit");
    assert!(cluster.logs_agree(), "per-group agreement + routing");

    let groups = cluster.shutdown();
    for (g, actors) in groups.iter().enumerate() {
        let expected = routed.get(&g).map_or(0, Vec::len);
        for actor in actors {
            let node = as_smr_node::<KvStore>(actor.as_ref()).expect("KV node");
            assert_eq!(
                node.machine().len(),
                expected,
                "group {g} store holds exactly its own keys"
            );
            for key in routed.get(&g).into_iter().flatten() {
                assert!(node.machine().get(key).is_some());
            }
        }
    }
}

/// Extracts each replica's applied client commands, in log order.
fn client_logs(cluster: &ShardedKvHandle) -> Vec<Vec<Value>> {
    let idle = KvCommand::Noop.to_value();
    cluster.groups()[0]
        .logs()
        .iter()
        .map(|log| log.values().filter(|cmd| **cmd != idle).cloned().collect())
        .collect()
}

/// The same single-group workload through a 3-worker verify pool and
/// through the inline path: both commit everything, and within each run
/// all replicas apply the identical client-command sequence — worker
/// interleaving never reaches the protocol.
#[test]
fn verify_pool_cluster_matches_inline() {
    let cfg = Config::new(4, 1, 1).unwrap();
    let keys: Vec<String> = (0..12).map(|i| format!("key-{i}")).collect();
    let mut applied = Vec::new();
    for workers in [0, 3] {
        let mut cluster =
            ShardedKvHandle::spawn_channel(cfg, 13, 1, ReplicaOptions::default(), 1, TICK, workers);
        for (i, key) in keys.iter().enumerate() {
            cluster.submit(put(key, &format!("v{i}")));
        }
        assert!(cluster.await_submitted(WAIT), "workers={workers} commits");
        assert!(cluster.logs_agree(), "workers={workers} agreement");
        let logs = client_logs(&cluster);
        for log in &logs {
            assert_eq!(log.len(), keys.len(), "workers={workers} applied all");
            assert_eq!(log, &logs[0], "replicas apply the same sequence");
        }
        let mut sorted: Vec<Value> = logs[0].clone();
        sorted.sort_by(|a, b| a.as_bytes().cmp(b.as_bytes()));
        applied.push(sorted);
        cluster.shutdown();
    }
    // Same command set committed with and without the pool (order across
    // runs may differ — thread scheduling — but nothing is lost or
    // invented).
    let keys_only = |run: &[Value]| -> Vec<Value> { run.to_vec() };
    assert_eq!(keys_only(&applied[0]), keys_only(&applied[1]));
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 4,
        .. ProptestConfig::default()
    })]

    /// Cross-shard consistency under random workloads: for any key set,
    /// a 2-shard cluster routes every key to the `ShardMap`-owning group,
    /// group logs agree, and replaying the groups' stores reconstructs
    /// exactly the submitted state — no key lost, duplicated, or ordered
    /// in two groups.
    #[test]
    fn cross_shard_consistency(
        ops in proptest::collection::vec((any::<u8>(), any::<u16>(), any::<u16>()), 1..8usize),
    ) {
        let cfg = Config::new(4, 1, 1).unwrap();
        let map = ShardMap::new(2);
        let mut cluster = ShardedKvHandle::spawn_channel(
            cfg, 17, 2, ReplicaOptions::default(), 1, TICK, 0,
        );
        // Random lead bytes drive keys into both shards unpredictably;
        // later writes to the same key overwrite earlier ones.
        let puts: Vec<(String, String)> = ops
            .iter()
            .map(|(lead, k, v)| (format!("{}k{k}", *lead as char), format!("v{v}")))
            .collect();
        for (key, value) in &puts {
            let g = cluster.submit(put(key, value));
            prop_assert_eq!(g, kv_shard_of(map, key));
        }
        prop_assert!(cluster.await_submitted(WAIT));
        prop_assert!(cluster.logs_agree());

        let mut want: BTreeMap<String, String> = BTreeMap::new();
        for (key, value) in puts {
            want.insert(key, value);
        }
        let groups = cluster.shutdown();
        let mut got: BTreeMap<String, String> = BTreeMap::new();
        for (g, actors) in groups.iter().enumerate() {
            let node = as_smr_node::<KvStore>(actors[0].as_ref()).expect("KV node");
            for (key, value) in want.iter() {
                if kv_shard_of(map, key) == g {
                    prop_assert_eq!(node.machine().get(key), Some(value));
                    got.insert(key.clone(), value.clone());
                } else {
                    prop_assert!(node.machine().get(key).is_none());
                }
            }
        }
        prop_assert_eq!(got, want);
    }
}
