//! Adaptive proposal batching: flush-on-quiescence latency, backlog
//! amortization, and at-most-once/at-least-once safety with adaptive
//! batches in flight across view changes.

use fastbft_core::replica::ReplicaOptions;
use fastbft_sim::{Network, SimDuration, SimTime};
use fastbft_smr::{AdaptiveBatch, Batching, CountingMachine, SmrSimCluster};
use fastbft_types::{Config, Value};
use proptest::prelude::*;

fn adaptive_cluster(
    seed: u64,
    commands: Vec<Vec<Value>>,
    network: Network,
) -> SmrSimCluster<CountingMachine> {
    let cfg = Config::new(4, 1, 1).unwrap();
    SmrSimCluster::new_with_network_batching(
        cfg,
        seed,
        CountingMachine::new(),
        commands,
        Value::from_u64(0),
        ReplicaOptions::default(),
        Batching::Adaptive(AdaptiveBatch::default()),
        network,
    )
}

/// Regression for the flush-on-quiescence rule: a lone command on an idle
/// cluster must ship immediately (the quiescence check sees no open slots,
/// nothing decided, nothing in flight) rather than waiting out the
/// flush-age backstop or — worse — a view-change timeout.
#[test]
fn lone_command_commits_without_waiting() {
    let cmd = Value::from_u64(77);
    let mut cluster = adaptive_cluster(
        11,
        vec![vec![cmd.clone()]; 4],
        Network::synchronous(SimDuration::DELTA),
    );
    let report = cluster.run_until_commands(1, SimTime(5_000_000));
    assert!(report.commands_everywhere >= 1, "{report:?}");
    assert!(report.logs_consistent);
    // Committed well inside one base timeout (8Δ by default): the fast
    // path needs 2Δ, so anything close to the timeout means the command
    // sat in the batcher.
    let base_timeout = ReplicaOptions::default().base_timeout;
    assert!(
        report.final_time <= SimTime(base_timeout.0),
        "lone command waited in the batcher: {report:?}"
    );
    for p in cluster.config().processes() {
        let hits = cluster.log(p).iter().filter(|v| **v == cmd).count();
        assert_eq!(hits, 1, "{p} applied the lone command {hits} times");
    }
}

/// A deep backlog must be amortized: the adaptive target grows with the
/// queue, so the backlog commits in far fewer slots than commands (fixed
/// batch-1 would burn one slot per command).
#[test]
fn backlog_is_amortized_into_fewer_slots() {
    const N: u64 = 64;
    let queue: Vec<Value> = (0..N).map(|i| Value::from_u64(1000 + i)).collect();
    let mut cluster =
        adaptive_cluster(13, vec![queue; 4], Network::synchronous(SimDuration::DELTA));
    let report = cluster.run_until_commands(N, SimTime(5_000_000));
    assert!(report.commands_everywhere >= N, "{report:?}");
    assert!(report.logs_consistent);
    assert!(
        report.applied_everywhere <= N / 2,
        "batcher never grew past 1 command per slot: {report:?}"
    );
    // Every command exactly once, on every replica.
    for p in cluster.config().processes() {
        let log = cluster.log(p);
        for i in 0..N {
            let cmd = Value::from_u64(1000 + i);
            let hits = log.iter().filter(|v| **v == cmd).count();
            assert_eq!(hits, 1, "{p} applied {cmd:?} {hits} times");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// With adaptive batches in flight through a chaotic pre-GST window —
    /// delays past the base timeout, so early slots go through view
    /// changes and re-proposals — no client command is ever lost or
    /// applied twice once the network stabilizes.
    #[test]
    fn view_changes_never_lose_or_duplicate_batched_commands(
        seed in 0u64..1024,
        n in 1u64..=16,
    ) {
        let queue: Vec<Value> = (0..n).map(|i| Value::from_u64(5000 + i)).collect();
        // Pre-GST delays reach ~2× the base timeout (8Δ = 800): slots
        // opened in that window time out, rotate leaders, and re-propose
        // their batches; the run then stabilizes.
        let network = Network::partially_synchronous(
            SimDuration::DELTA,
            SimTime(4_000),
            SimDuration(1_600),
        );
        let mut cluster = adaptive_cluster(seed, vec![queue; 4], network);
        let report = cluster.run_until_commands(n, SimTime(2_000_000));
        prop_assert!(report.logs_consistent, "{report:?}");
        prop_assert!(
            report.commands_everywhere >= n,
            "commands lost: {report:?}"
        );
        for p in cluster.config().processes() {
            let log = cluster.log(p);
            for i in 0..n {
                let cmd = Value::from_u64(5000 + i);
                let hits = log.iter().filter(|v| **v == cmd).count();
                prop_assert_eq!(
                    hits, 1,
                    "{} applied {:?} {} times: log {:?}", p, cmd, hits, log
                );
            }
        }
    }
}
