//! End-to-end metrics: a live SMR cluster is scraped while (and after) it
//! commits, and the exposition must reflect what actually happened —
//! fast-path commits counted, latency histograms populated, both exporters
//! well-formed.

use std::time::Duration;

use fastbft_core::replica::ReplicaOptions;
use fastbft_crypto::KeyDirectory;
use fastbft_obs::MetricsRegistry;
use fastbft_runtime::spawn;
use fastbft_smr::runtime::{smr_actors_metered, SmrClusterHandle};
use fastbft_smr::{KvCommand, KvStore};
use fastbft_types::Config;

const TICK: Duration = Duration::from_micros(50);

fn metered_cluster(cfg: Config, seed: u64) -> (SmrClusterHandle, MetricsRegistry) {
    let (pairs, dir) = KeyDirectory::generate(cfg.n(), seed);
    let registry = MetricsRegistry::new(cfg.n());
    let actors = smr_actors_metered(
        cfg,
        &pairs,
        &dir,
        KvStore::new(),
        vec![Vec::new(); cfg.n()],
        KvCommand::Noop.to_value(),
        ReplicaOptions::default(),
        1,
        None,
        &registry,
    );
    let mut cluster =
        SmrClusterHandle::new(spawn(actors, TICK), cfg.n(), KvCommand::Noop.to_value());
    cluster.attach_metrics(registry.clone());
    (cluster, registry)
}

#[test]
fn scrape_reflects_commits_on_a_running_cluster() {
    let cfg = Config::new(4, 1, 1).unwrap();
    let (mut cluster, registry) = metered_cluster(cfg, 11);
    for k in 0..5u64 {
        cluster.submit(
            KvCommand::Put {
                key: format!("k{k}"),
                value: format!("v{k}"),
            }
            .to_value(),
        );
    }
    assert!(cluster.await_commands(cfg.processes(), 5, Duration::from_secs(20)));
    assert!(cluster.logs_agree());

    // Counters: every replica decided slots, and on a clean loopback run
    // the fast path carried them.
    let fast = registry.total(|m| &m.commit_fast_total);
    assert!(
        fast >= cfg.n() as u64,
        "fast commits across cluster: {fast}"
    );

    // Histograms: a committed slot leaves a latency sample on the replica
    // that decided it, and at least one replica proposed a real batch.
    assert!(registry.total(|m| &m.commit_slow_total) <= fast);
    let latency_samples: u64 = (0..cfg.n())
        .map(|i| registry.metrics(i).commit_latency_fast_us.count())
        .sum();
    assert!(latency_samples >= fast, "histogram lost samples");
    let batches: u64 = (0..cfg.n())
        .map(|i| registry.metrics(i).batch_size.count())
        .sum();
    assert!(batches >= 1, "someone must have drained a proposal batch");

    // Both exporters render from the live handle.
    let text = cluster.metrics_text().expect("registry attached");
    assert!(text.contains("# TYPE fastbft_commit_fast_total counter"));
    assert!(text.contains("fastbft_commit_latency_fast_us_count"));
    for line in text.lines() {
        assert!(
            line.starts_with('#') || line.is_empty() || line.starts_with("fastbft_"),
            "malformed exposition line: {line:?}"
        );
    }
    let json = cluster.metrics_json().expect("registry attached");
    assert!(json.contains("\"commit_fast_total\""));
    assert!(json.contains("\"replica\":\"p1\""));

    cluster.shutdown();
}

#[test]
fn scrape_is_safe_while_replicas_are_mid_commit() {
    // Render repeatedly while the cluster is actively committing: the
    // exporters read the same atomics the hot path writes, so this is the
    // torn-read regression test for the scrape path.
    let cfg = Config::new(4, 1, 1).unwrap();
    let (mut cluster, _registry) = metered_cluster(cfg, 13);
    for k in 0..20u64 {
        cluster.submit(
            KvCommand::Put {
                key: format!("x{k}"),
                value: "y".into(),
            }
            .to_value(),
        );
        let text = cluster.metrics_text().expect("registry attached");
        assert!(text.contains("fastbft_commit_fast_total"));
    }
    assert!(cluster.await_commands(cfg.processes(), 20, Duration::from_secs(30)));
    assert!(cluster.logs_agree());
    cluster.shutdown();
}
