//! Off-loop apply equivalence: `apply_workers = 1` (decided batches
//! executed on a dedicated apply worker) must be observationally identical
//! to `apply_workers = 0` (today's inline path) — same committed command
//! set, same per-replica logs, same final machine state.
//!
//! Mirrors the verify-pool contract test (`verify_pool_cluster_matches
//! _inline` in `sharded_kv.rs`): worker interleaving never reaches the
//! protocol or the replicated state.

use std::time::Duration;

use fastbft_core::replica::ReplicaOptions;
use fastbft_smr::runtime::{as_smr_node, SmrClusterHandle};
use fastbft_smr::{AdaptiveBatch, Batching, KvCommand, KvStore};
use fastbft_types::{Config, Value};

const TICK: Duration = Duration::from_micros(50);
const WAIT: Duration = Duration::from_secs(30);

fn put(key: &str, value: &str) -> Value {
    KvCommand::Put {
        key: key.into(),
        value: value.into(),
    }
    .to_value()
}

/// Runs the same adaptive-batched workload with and without the apply
/// worker; both must commit everything, replicas within each run must
/// apply the identical sequence, and the final stores must be
/// byte-identical across the two runs.
#[test]
fn apply_worker_cluster_matches_inline() {
    let cfg = Config::new(4, 1, 1).unwrap();
    let idle = KvCommand::Noop.to_value();
    let keys: Vec<String> = (0..12).map(|i| format!("key-{i}")).collect();
    let mut digests = Vec::new();
    for workers in [0usize, 1] {
        let opts = ReplicaOptions {
            apply_workers: workers,
            ..ReplicaOptions::default()
        };
        let mut cluster = SmrClusterHandle::spawn_channel_configured(
            cfg,
            19,
            KvStore::new(),
            idle.clone(),
            opts,
            Batching::Adaptive(AdaptiveBatch::default()),
            TICK,
        );
        for (i, key) in keys.iter().enumerate() {
            cluster.submit(put(key, &format!("v{i}")));
        }
        assert!(
            cluster.await_commands(cfg.processes(), keys.len() as u64, WAIT),
            "workers={workers} commits"
        );
        assert!(cluster.logs_agree(), "workers={workers} agreement");
        // Within the run, every replica applied the same client sequence.
        let logs: Vec<Vec<Value>> = cluster
            .logs()
            .iter()
            .map(|log| log.values().filter(|c| **c != idle).cloned().collect())
            .collect();
        for log in &logs {
            assert_eq!(log.len(), keys.len(), "workers={workers} applied all");
            assert_eq!(log, &logs[0], "replicas apply the same sequence");
        }
        // After shutdown the machine is back inline (the worker is joined
        // and drained), so the final state is directly inspectable.
        let actors = cluster.shutdown();
        let mut run_digests = Vec::new();
        for actor in &actors {
            let node = as_smr_node::<KvStore>(actor.as_ref()).expect("KV node");
            assert_eq!(node.machine().len(), keys.len());
            run_digests.push(node.machine().state_digest());
        }
        assert!(
            run_digests.windows(2).all(|w| w[0] == w[1]),
            "workers={workers} replica state diverged"
        );
        digests.push(run_digests[0]);
    }
    assert_eq!(
        digests[0], digests[1],
        "off-loop apply changed the replicated state"
    );
}

/// The `apply_workers = 0` escape hatch really is the inline path: no
/// worker is spawned, and the machine stays inspectable mid-run (the
/// off-loop accessor contract panics only when a worker owns the machine).
#[test]
fn zero_workers_keeps_machine_inline() {
    let cfg = Config::new(4, 1, 1).unwrap();
    let idle = KvCommand::Noop.to_value();
    let mut cluster = SmrClusterHandle::spawn_channel_configured(
        cfg,
        23,
        KvStore::new(),
        idle.clone(),
        ReplicaOptions::default(),
        Batching::Fixed(1),
        TICK,
    );
    cluster.submit(put("solo", "value"));
    assert!(cluster.await_commands(cfg.processes(), 1, WAIT));
    let actors = cluster.shutdown();
    for actor in &actors {
        let node = as_smr_node::<KvStore>(actor.as_ref()).expect("KV node");
        assert_eq!(node.machine().get("solo"), Some(&"value".to_string()));
    }
}
