//! The bounded at-most-once dedup state: client-id + sequence watermarks.
//!
//! Before watermarking, `SmrNode` kept one 32-byte digest per applied
//! client command **forever** — a 10k-command run left 10k entries on every
//! replica. Tagged commands ([`tag_command`]) are deduplicated by
//! `(client, seq)` against a per-client watermark instead, and entries are
//! pruned as the watermark advances, so the state is bounded by each
//! client's out-of-order window — these tests pin both the boundedness and
//! the unchanged at-most-once semantics.

use fastbft_core::replica::ReplicaOptions;
use fastbft_sim::SimTime;
use fastbft_smr::{parse_client_tag, tag_command, CountingMachine, SmrSimCluster};
use fastbft_types::{Config, Value};

#[test]
fn tag_roundtrip_and_untagged_rejection() {
    let cmd = tag_command(7, 42, b"payload");
    assert_eq!(parse_client_tag(&cmd), Some((7, 42)));
    // Untagged commands (arbitrary bytes, short bytes, u64 values) parse
    // as None and stay on the digest-dedup path.
    assert_eq!(parse_client_tag(&Value::from_u64(7)), None);
    assert_eq!(parse_client_tag(&Value::new(b"FBC".to_vec())), None);
    assert_eq!(parse_client_tag(&Value::new(b"FBC1short".to_vec())), None);
    // Distinct identities produce distinct command bytes.
    assert_ne!(tag_command(7, 42, b"x"), tag_command(7, 43, b"x"));
    assert_ne!(tag_command(7, 42, b"x"), tag_command(8, 42, b"x"));
}

/// The headline boundedness run: 10 000 tagged commands from two clients,
/// broadcast to every replica (so every node sees every command ~n times),
/// batch 64. Afterwards the dedup state on every node is **empty** — the
/// watermarks pruned everything — where digest dedup kept 10 000 entries.
#[test]
fn dedup_state_stays_bounded_over_a_10k_command_run() {
    const COMMANDS: u64 = 10_000;
    let cfg = Config::new(4, 1, 1).unwrap();
    let queue: Vec<Value> = (0..COMMANDS)
        .map(|i| {
            // Two clients, interleaved, sequence numbers in submission order.
            let client = i % 2;
            let seq = i / 2 + 1;
            tag_command(client, seq, &i.to_be_bytes())
        })
        .collect();
    let mut cluster = SmrSimCluster::new_batched(
        cfg,
        11,
        CountingMachine::new(),
        vec![queue; 4],
        Value::from_u64(u64::MAX),
        ReplicaOptions::default(),
        64,
    );
    // Check boundedness *during* the run, not only at the end: at several
    // checkpoints the per-node dedup state must stay within the transient
    // out-of-order window, far below the commands already applied.
    for checkpoint in [2_000u64, 5_000, 8_000, COMMANDS] {
        let report = cluster.run_until_commands(checkpoint, SimTime(100_000_000));
        assert!(report.logs_consistent);
        assert!(report.commands_everywhere >= checkpoint, "{report:?}");
        for p in cfg.processes() {
            let entries = cluster.dedup_entries(p);
            assert!(
                entries <= 256,
                "{p}: {entries} dedup entries at checkpoint {checkpoint} — unbounded growth"
            );
        }
    }
    // Fully applied and contiguous: the watermarks have pruned everything.
    for p in cfg.processes() {
        assert_eq!(
            cluster.dedup_entries(p),
            0,
            "{p}: contiguous tagged workload must prune to empty"
        );
    }
}

/// At-most-once still holds for tagged commands: the same `(client, seq)`
/// command queued at every replica (the broadcast client model) and
/// *resubmitted* later executes exactly once.
#[test]
fn tagged_duplicates_execute_exactly_once() {
    let cfg = Config::new(4, 1, 1).unwrap();
    let cmd = |seq: u64| tag_command(9, seq, &seq.to_be_bytes());
    // Every replica queues seqs 1..=20, then a stale resubmission of 1..=5.
    let mut queue: Vec<Value> = (1..=20).map(cmd).collect();
    queue.extend((1..=5).map(cmd));
    let mut cluster = SmrSimCluster::new_batched(
        cfg,
        12,
        CountingMachine::new(),
        vec![queue; 4],
        Value::from_u64(u64::MAX),
        ReplicaOptions::default(),
        4,
    );
    let report = cluster.run_until_commands(20, SimTime(10_000_000));
    assert!(report.logs_consistent);
    for p in cfg.processes() {
        let log = cluster.log(p);
        let tagged: Vec<(u64, u64)> = log.iter().filter_map(parse_client_tag).collect();
        assert_eq!(tagged.len(), 20, "{p}: every distinct command once");
        let mut seqs: Vec<u64> = tagged.iter().map(|(_, s)| *s).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (1..=20).collect::<Vec<_>>(), "{p}: no duplicates");
    }
}

/// Out-of-order commit orders (different clients' seqs interleaving across
/// replicas' queues) still converge: the above-watermark set absorbs the
/// transient gaps and drains to empty.
#[test]
fn out_of_order_sequences_converge_and_prune() {
    let cfg = Config::new(4, 1, 1).unwrap();
    let cmd = |seq: u64| tag_command(3, seq, &seq.to_be_bytes());
    // Replica 1 queues the odd seqs, replica 2 the even ones, replicas 3/4
    // nothing: commits interleave in slot-leader order, so the watermark
    // must advance through transient gaps.
    let queues = vec![
        (1..=40).step_by(2).map(cmd).collect::<Vec<_>>(),
        (2..=40).step_by(2).map(cmd).collect::<Vec<_>>(),
        Vec::new(),
        Vec::new(),
    ];
    let mut cluster = SmrSimCluster::new_batched(
        cfg,
        13,
        CountingMachine::new(),
        queues,
        Value::from_u64(u64::MAX),
        ReplicaOptions::default(),
        2,
    );
    let report = cluster.run_until_commands(40, SimTime(10_000_000));
    assert!(report.logs_consistent);
    for p in cfg.processes() {
        assert_eq!(cluster.dedup_entries(p), 0, "{p}: gaps must drain");
    }
}

/// Untagged commands keep the pre-watermark digest semantics (and its
/// cost): entries accrue one per applied command.
#[test]
fn untagged_commands_still_dedup_by_digest() {
    let cfg = Config::new(4, 1, 1).unwrap();
    let queue: Vec<Value> = (0..50).map(Value::from_u64).collect();
    let mut cluster = SmrSimCluster::new_batched(
        cfg,
        14,
        CountingMachine::new(),
        vec![queue; 4],
        Value::from_u64(u64::MAX),
        ReplicaOptions::default(),
        4,
    );
    let report = cluster.run_until_commands(50, SimTime(10_000_000));
    assert!(report.logs_consistent);
    for p in cfg.processes() {
        assert_eq!(cluster.dedup_entries(p), 50, "{p}: digest per command");
        let count: Vec<u64> = cluster
            .log(p)
            .iter()
            .filter_map(|v| v.as_u64())
            .filter(|x| *x < 50)
            .collect();
        assert_eq!(count.len(), 50, "{p}: each once despite 4× broadcast");
    }
}
