//! Unit-level tests for the slot multiplexer: window stashing, timer
//! namespacing, rotation and pipelining behavior.

use fastbft_core::message::{AckMsg, Message, WishMsg};
use fastbft_core::replica::ReplicaOptions;
use fastbft_crypto::KeyDirectory;
use fastbft_sim::{Actor, Effects, SimTime};
use fastbft_smr::{CountingMachine, KvCommand, KvStore, SlotMessage, SmrNode, SmrSimCluster};
use fastbft_types::{Config, ProcessId, Value, View};

#[test]
fn empty_queues_quiesce_after_slot_zero() {
    // With nothing to commit, the pipeline settles instead of burning
    // slots on filler forever: slot 0 (opened unconditionally at start)
    // decides the idle no-op, and no further slot opens.
    let cfg = Config::new(4, 1, 1).unwrap();
    let mut cluster = SmrSimCluster::new(
        cfg,
        9,
        CountingMachine::new(),
        vec![Vec::new(); 4],
        Value::from_u64(0),
        ReplicaOptions::default(),
    );
    let report = cluster.run_until_applied(25, SimTime(5_000_000));
    assert_eq!(report.applied_everywhere, 1, "{report:?}");
    assert!(report.logs_consistent);
    // Everything committed was the idle no-op, and the run went quiet long
    // before the horizon.
    for v in cluster.log(ProcessId(2)) {
        assert_eq!(v.as_u64(), Some(0));
    }
    assert!(report.final_time < SimTime(5_000_000), "{report:?}");
}

#[test]
fn rotation_commits_every_nodes_commands() {
    // Each node has ONE private command; rotation must commit all four
    // within the first four slots (no view changes needed).
    let cfg = Config::new(4, 1, 1).unwrap();
    let commands: Vec<Vec<Value>> = (0..4u64).map(|i| vec![Value::from_u64(100 + i)]).collect();
    let mut cluster = SmrSimCluster::new(
        cfg,
        4,
        CountingMachine::new(),
        commands,
        Value::from_u64(0),
        ReplicaOptions::default(),
    );
    let report = cluster.run_until_applied(4, SimTime(5_000_000));
    assert!(report.applied_everywhere >= 4);
    assert!(report.logs_consistent);
    let log = cluster.log(ProcessId(1));
    let committed: std::collections::BTreeSet<u64> = log
        .iter()
        .filter_map(|v| v.as_u64())
        .filter(|x| *x >= 100)
        .collect();
    assert_eq!(
        committed,
        [100u64, 101, 102, 103].into_iter().collect(),
        "all four nodes' commands committed within four slots: {log:?}"
    );
}

#[test]
fn slot_zero_leader_is_paper_leader() {
    // Slot 0 uses offset 0, so leader(1) = p2 exactly as in the paper; the
    // first decided slot therefore carries p2's command.
    let cfg = Config::new(4, 1, 1).unwrap();
    let commands: Vec<Vec<Value>> = (0..4u64).map(|i| vec![Value::from_u64(100 + i)]).collect();
    let mut cluster = SmrSimCluster::new(
        cfg,
        4,
        CountingMachine::new(),
        commands,
        Value::from_u64(0),
        ReplicaOptions::default(),
    );
    let report = cluster.run_until_applied(1, SimTime(1_000_000));
    assert!(report.applied_everywhere >= 1);
    assert_eq!(cluster.log(ProcessId(1))[0], Value::from_u64(101)); // p2's command
}

#[test]
fn kv_delete_of_missing_key_is_consistent() {
    let cfg = Config::new(4, 1, 1).unwrap();
    // Commands are identified by their bytes, so a byte-identical duplicate
    // submission (the second `Delete { a }`) is executed at most once; the
    // four *distinct* commands each commit exactly once.
    let queue = vec![
        KvCommand::Delete {
            key: "ghost".into(),
        }
        .to_value(),
        KvCommand::Put {
            key: "a".into(),
            value: "1".into(),
        }
        .to_value(),
        KvCommand::Delete { key: "a".into() }.to_value(),
        KvCommand::Delete { key: "a".into() }.to_value(),
        KvCommand::Delete {
            key: "ghost2".into(),
        }
        .to_value(),
    ];
    let mut cluster = SmrSimCluster::new(
        cfg,
        6,
        KvStore::new(),
        vec![queue.clone(); 4],
        KvCommand::Noop.to_value(),
        ReplicaOptions::default(),
    );
    let report = cluster.run_until_commands(4, SimTime(5_000_000));
    assert!(report.commands_everywhere >= 4, "{report:?}");
    assert!(report.logs_consistent);
    for p in cfg.processes() {
        assert!(cluster.machine(p).is_empty(), "store at {p} not empty");
        assert_eq!(
            cluster.machine(p).state_digest(),
            cluster.machine(ProcessId(1)).state_digest()
        );
        // At-most-once: no command (including the duplicated delete)
        // appears twice in any log.
        let log = cluster.log(p);
        for cmd in &queue {
            assert!(
                log.iter().filter(|v| *v == cmd).count() <= 1,
                "{p} applied {cmd:?} more than once"
            );
        }
    }
}

#[test]
fn slot_messages_roundtrip_on_the_wire() {
    // The slot tag + canonical inner encoding is what `fastbft-net` frames
    // carry for the runtime SMR cluster.
    fastbft_types::wire::roundtrip(&SlotMessage::Consensus {
        slot: 9,
        inner: Message::Wish(WishMsg { view: View::FIRST }),
    });
    fastbft_types::wire::roundtrip(&SlotMessage::Consensus {
        slot: u64::MAX,
        inner: Message::Ack(AckMsg {
            value: Value::from_u64(77),
            view: View::FIRST,
            share: None,
        }),
    });
    // The state-transfer control plane rides the same wire.
    let (pairs, _dir) = KeyDirectory::generate(4, 3);
    let digest = fastbft_crypto::digest(b"snapshot payload");
    let sig = fastbft_smr::checkpoint_signature(&pairs[0], 128, &digest);
    fastbft_types::wire::roundtrip(&SlotMessage::Checkpoint {
        upto: 128,
        digest,
        sig: sig.clone(),
    });
    fastbft_types::wire::roundtrip(&SlotMessage::SnapshotRequest { have: 7 });
    fastbft_types::wire::roundtrip(&SlotMessage::SnapshotResponse {
        upto: 128,
        payload: b"snapshot payload".to_vec(),
        sigs: vec![sig],
    });
    fastbft_types::wire::roundtrip(&SlotMessage::Backfill {
        slot: 130,
        value: Value::from_u64(9),
    });
}

/// A Byzantine peer spraying messages for arbitrarily distant slots must
/// not grow the stash without bound (pre-fix, every sprayed message was
/// buffered forever).
#[test]
fn stash_is_bounded_against_slot_spray() {
    let cfg = Config::new(4, 1, 1).unwrap();
    let (pairs, dir) = KeyDirectory::generate(4, 21);
    let mut node = SmrNode::new(
        cfg,
        pairs[0].clone(),
        dir,
        CountingMachine::new(),
        Vec::new(),
        Value::from_u64(0),
    );
    let mut fx = Effects::new(ProcessId(1), 4, SimTime::ZERO);
    node.on_start(&mut fx);
    let spray = |slot: u64| SlotMessage::Consensus {
        slot,
        inner: Message::Wish(WishMsg { view: View::FIRST }),
    };
    // Absurdly distant slots: dropped outright, no memory consumed.
    for i in 0..10_000u64 {
        node.on_message(ProcessId(2), spray(1_000_000 + i), &mut fx);
    }
    assert_eq!(node.stashed_messages(), 0, "hopeless slots must be dropped");
    // Just-beyond-window slots: buffered, but only up to the cap.
    for i in 0..50_000u64 {
        node.on_message(ProcessId(2), spray(100 + (i % 150)), &mut fx);
    }
    let cap = node.stashed_messages();
    assert!(cap <= 4096, "stash exceeded its bound: {cap}");
    // A full stash still admits *nearer* slots by evicting farther ones —
    // the nearest slots are what unblocks a lagging pipeline.
    node.on_message(ProcessId(2), spray(70), &mut fx);
    assert!(node.stashed_messages() <= 4096);
}

#[test]
fn batching_multiplies_throughput() {
    let cfg = Config::new(4, 1, 1).unwrap();
    let queue: Vec<Value> = (0..64).map(Value::from_u64).collect();
    let run = |batch: usize| {
        // Pipeline depth pinned to 1: this test isolates the *batching*
        // gain, which deeper slot pipelining (the default) would mask.
        let mut cluster = SmrSimCluster::new_batched_with_depth(
            cfg,
            8,
            CountingMachine::new(),
            vec![queue.clone(); 4],
            Value::from_u64(u64::MAX),
            ReplicaOptions::default(),
            batch,
            1,
        );
        let report = cluster.run_until_commands(64, SimTime(50_000_000));
        assert!(report.commands_everywhere >= 64, "{report:?}");
        assert!(report.logs_consistent);
        // Order and exactly-once still hold under batching.
        let committed: Vec<u64> = cluster
            .log(ProcessId(2))
            .iter()
            .filter_map(|v| v.as_u64())
            .filter(|x| *x < 64)
            .collect();
        assert_eq!(committed, (0..64).collect::<Vec<_>>());
        report.commands_per_delta
    };
    let unbatched = run(1);
    let batched = run(16);
    assert!(
        batched > 4.0 * unbatched,
        "batch=16 should be ≫ batch=1: {batched:.3} vs {unbatched:.3} commands/Δ"
    );
}

#[test]
fn long_pipeline_makes_steady_progress() {
    let cfg = Config::new(4, 1, 1).unwrap();
    let queue: Vec<Value> = (0..100).map(Value::from_u64).collect();
    let mut cluster = SmrSimCluster::new(
        cfg,
        2,
        CountingMachine::new(),
        vec![queue; 4],
        Value::from_u64(u64::MAX),
        ReplicaOptions::default(),
    );
    let report = cluster.run_until_applied(100, SimTime(50_000_000));
    assert!(report.applied_everywhere >= 100, "{report:?}");
    assert!(report.logs_consistent);
    // Commands committed exactly once each, in order.
    let log = cluster.log(ProcessId(3));
    let committed: Vec<u64> = log
        .iter()
        .filter_map(|v| v.as_u64())
        .filter(|x| *x < 100)
        .collect();
    assert_eq!(committed, (0..100).collect::<Vec<_>>());
}
