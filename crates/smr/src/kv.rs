//! A replicated key-value store: the canonical state machine.

use std::collections::BTreeMap;

use fastbft_types::wire::{Decode, Encode, WireError, WireReader};
use fastbft_types::Value;

use crate::machine::StateMachine;

/// Commands understood by the [`KvStore`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KvCommand {
    /// Insert or overwrite a key.
    Put {
        /// Key.
        key: String,
        /// Value.
        value: String,
    },
    /// Read a key (a command so reads are linearized through the log).
    Get {
        /// Key.
        key: String,
    },
    /// Remove a key.
    Delete {
        /// Key.
        key: String,
    },
    /// Do nothing (the empty slot filler).
    Noop,
}

impl KvCommand {
    /// Encodes the command into a consensus [`Value`].
    pub fn to_value(&self) -> Value {
        Value::new(self.to_wire_bytes())
    }

    /// Decodes a command from a decided [`Value`]; `None` for garbage.
    pub fn from_value(value: &Value) -> Option<KvCommand> {
        fastbft_types::wire::from_bytes(value.as_bytes()).ok()
    }
}

impl Encode for KvCommand {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            KvCommand::Put { key, value } => {
                buf.push(1);
                key.encode(buf);
                value.encode(buf);
            }
            KvCommand::Get { key } => {
                buf.push(2);
                key.encode(buf);
            }
            KvCommand::Delete { key } => {
                buf.push(3);
                key.encode(buf);
            }
            KvCommand::Noop => buf.push(4),
        }
    }
}

impl Decode for KvCommand {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.take_u8()? {
            1 => KvCommand::Put {
                key: String::decode(r)?,
                value: String::decode(r)?,
            },
            2 => KvCommand::Get {
                key: String::decode(r)?,
            },
            3 => KvCommand::Delete {
                key: String::decode(r)?,
            },
            4 => KvCommand::Noop,
            tag => {
                return Err(WireError::InvalidTag {
                    tag,
                    context: "KvCommand",
                })
            }
        })
    }
}

/// Output of applying one command to the store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KvOutput {
    /// Result of a `Get` / previous value for `Put` and `Delete`.
    Value(Option<String>),
    /// The command was a no-op or unparseable (applied as no-op).
    Noop,
}

/// One `(key, value)` pair of a [`KvStore`] snapshot (the canonical
/// snapshot encoding is the sorted pair list the `BTreeMap` iterates).
#[derive(Debug, PartialEq)]
struct KvPair {
    key: String,
    value: String,
}

fastbft_types::impl_wire_struct!(KvPair { key, value });

/// An in-memory ordered key-value store.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KvStore {
    map: BTreeMap<String, String>,
}

impl KvStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Direct read access (for assertions; real reads go through the log).
    pub fn get(&self, key: &str) -> Option<&String> {
        self.map.get(key)
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// A digest of the full state, for replica-equality assertions.
    pub fn state_digest(&self) -> fastbft_crypto::Digest {
        let mut hasher = fastbft_crypto::sha256::Sha256::new();
        for (k, v) in &self.map {
            hasher.update(k.as_bytes());
            hasher.update(&[0]);
            hasher.update(v.as_bytes());
            hasher.update(&[1]);
        }
        hasher.finalize()
    }
}

impl StateMachine for KvStore {
    type Output = KvOutput;

    fn apply(&mut self, command: &Value) -> KvOutput {
        match KvCommand::from_value(command) {
            Some(KvCommand::Put { key, value }) => KvOutput::Value(self.map.insert(key, value)),
            Some(KvCommand::Get { key }) => KvOutput::Value(self.map.get(&key).cloned()),
            Some(KvCommand::Delete { key }) => KvOutput::Value(self.map.remove(&key)),
            Some(KvCommand::Noop) | None => KvOutput::Noop,
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        // BTreeMap iteration is sorted, so the pair list is canonical.
        let pairs: Vec<KvPair> = self
            .map
            .iter()
            .map(|(k, v)| KvPair {
                key: k.clone(),
                value: v.clone(),
            })
            .collect();
        fastbft_types::wire::to_bytes(&pairs)
    }

    fn restore(&mut self, bytes: &[u8]) -> bool {
        // Fully parse before touching `self.map`: a malformed snapshot must
        // leave the store unchanged (the trait's atomicity contract).
        let Ok(pairs) = fastbft_types::wire::from_bytes::<Vec<KvPair>>(bytes) else {
            return false;
        };
        self.map = pairs.into_iter().map(|p| (p.key, p.value)).collect();
        true
    }

    fn state_digest(&self) -> fastbft_crypto::Digest {
        KvStore::state_digest(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_roundtrip() {
        for cmd in [
            KvCommand::Put {
                key: "k".into(),
                value: "v".into(),
            },
            KvCommand::Get { key: "k".into() },
            KvCommand::Delete { key: "k".into() },
            KvCommand::Noop,
        ] {
            let v = cmd.to_value();
            assert_eq!(KvCommand::from_value(&v), Some(cmd));
        }
    }

    #[test]
    fn garbage_is_noop() {
        let mut store = KvStore::new();
        assert_eq!(store.apply(&Value::from_u64(0xDEAD)), KvOutput::Noop);
        assert!(store.is_empty());
    }

    #[test]
    fn put_get_delete() {
        let mut store = KvStore::new();
        let put = KvCommand::Put {
            key: "a".into(),
            value: "1".into(),
        }
        .to_value();
        assert_eq!(store.apply(&put), KvOutput::Value(None));
        let get = KvCommand::Get { key: "a".into() }.to_value();
        assert_eq!(store.apply(&get), KvOutput::Value(Some("1".into())));
        let del = KvCommand::Delete { key: "a".into() }.to_value();
        assert_eq!(store.apply(&del), KvOutput::Value(Some("1".into())));
        assert!(store.is_empty());
    }

    #[test]
    fn digest_tracks_state() {
        let mut a = KvStore::new();
        let mut b = KvStore::new();
        assert_eq!(a.state_digest(), b.state_digest());
        a.apply(
            &KvCommand::Put {
                key: "x".into(),
                value: "1".into(),
            }
            .to_value(),
        );
        assert_ne!(a.state_digest(), b.state_digest());
        b.apply(
            &KvCommand::Put {
                key: "x".into(),
                value: "1".into(),
            }
            .to_value(),
        );
        assert_eq!(a.state_digest(), b.state_digest());
    }
}
