//! State machines driven by the replicated log.

use fastbft_types::Value;

/// A deterministic state machine: the paper's §1 motivation for consensus
/// ("having implemented the replicated state machine, one can easily obtain
/// an implementation of any object with a sequential specification").
///
/// Commands arrive as opaque [`Value`]s (what consensus decides); the
/// machine interprets them. Determinism is the machine's obligation: the
/// same command sequence must produce the same outputs on every replica.
pub trait StateMachine {
    /// Result of applying one command.
    type Output;

    /// Applies a decided command. Never fails: unparseable commands must be
    /// treated as no-ops (a Byzantine process can get garbage decided, and
    /// every replica must handle it identically).
    fn apply(&mut self, command: &Value) -> Self::Output;
}

/// A trivial machine that counts applied commands; useful for tests and
/// throughput benches where command semantics don't matter.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CountingMachine {
    applied: u64,
}

impl CountingMachine {
    /// Creates the machine with a zero counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of commands applied so far.
    pub fn applied(&self) -> u64 {
        self.applied
    }
}

impl StateMachine for CountingMachine {
    type Output = u64;

    fn apply(&mut self, _command: &Value) -> u64 {
        self.applied += 1;
        self.applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_machine_counts() {
        let mut m = CountingMachine::new();
        assert_eq!(m.apply(&Value::from_u64(1)), 1);
        assert_eq!(m.apply(&Value::from_u64(9)), 2);
        assert_eq!(m.applied(), 2);
    }
}
