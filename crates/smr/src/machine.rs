//! State machines driven by the replicated log.

use fastbft_crypto::Digest;
use fastbft_types::Value;

/// A deterministic state machine: the paper's §1 motivation for consensus
/// ("having implemented the replicated state machine, one can easily obtain
/// an implementation of any object with a sequential specification").
///
/// Commands arrive as opaque [`Value`]s (what consensus decides); the
/// machine interprets them. Determinism is the machine's obligation: the
/// same command sequence must produce the same outputs on every replica.
///
/// The snapshot trio ([`snapshot`](StateMachine::snapshot) /
/// [`restore`](StateMachine::restore) /
/// [`state_digest`](StateMachine::state_digest)) is what makes state
/// transfer possible: a replica that has fallen behind installs a peer's
/// snapshot instead of replaying the whole log. The contract binding them:
///
/// * `snapshot` is **canonical** — two machines with equal state produce
///   byte-identical snapshots (so snapshot bytes can be digest-compared
///   across replicas);
/// * `restore(snapshot())` reproduces the exact state, hence the exact
///   `state_digest`, and subsequent `apply` calls behave identically;
/// * `restore` is **atomic** — it either fully replaces the state and
///   returns `true`, or returns `false` leaving the machine *unchanged*
///   (malformed bytes from a Byzantine peer must not corrupt local state).
pub trait StateMachine {
    /// Result of applying one command.
    type Output;

    /// Applies a decided command. Never fails: unparseable commands must be
    /// treated as no-ops (a Byzantine process can get garbage decided, and
    /// every replica must handle it identically).
    fn apply(&mut self, command: &Value) -> Self::Output;

    /// Serializes the full state canonically (see trait docs).
    fn snapshot(&self) -> Vec<u8>;

    /// Replaces the state with a decoded snapshot. Returns `false` (and
    /// leaves the machine unchanged) on malformed bytes.
    fn restore(&mut self, bytes: &[u8]) -> bool;

    /// A digest of the full state, for cross-replica equality checks. Must
    /// be a pure function of the state (equal states ⇒ equal digests).
    fn state_digest(&self) -> Digest;
}

/// A trivial machine that counts applied commands; useful for tests and
/// throughput benches where command semantics don't matter.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CountingMachine {
    applied: u64,
}

impl CountingMachine {
    /// Creates the machine with a zero counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of commands applied so far.
    pub fn applied(&self) -> u64 {
        self.applied
    }
}

impl StateMachine for CountingMachine {
    type Output = u64;

    fn apply(&mut self, _command: &Value) -> u64 {
        self.applied += 1;
        self.applied
    }

    fn snapshot(&self) -> Vec<u8> {
        self.applied.to_be_bytes().to_vec()
    }

    fn restore(&mut self, bytes: &[u8]) -> bool {
        let Ok(raw) = <[u8; 8]>::try_from(bytes) else {
            return false;
        };
        self.applied = u64::from_be_bytes(raw);
        true
    }

    fn state_digest(&self) -> Digest {
        fastbft_crypto::digest(&self.applied.to_be_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_machine_counts() {
        let mut m = CountingMachine::new();
        assert_eq!(m.apply(&Value::from_u64(1)), 1);
        assert_eq!(m.apply(&Value::from_u64(9)), 2);
        assert_eq!(m.applied(), 2);
    }

    #[test]
    fn counting_machine_snapshot_roundtrip() {
        let mut m = CountingMachine::new();
        for i in 0..7 {
            m.apply(&Value::from_u64(i));
        }
        let bytes = m.snapshot();
        let mut fresh = CountingMachine::new();
        assert!(fresh.restore(&bytes));
        assert_eq!(fresh, m);
        assert_eq!(fresh.state_digest(), m.state_digest());
        // Malformed bytes leave the machine unchanged.
        assert!(!fresh.restore(b"garbage"));
        assert_eq!(fresh.applied(), 7);
    }
}
