//! Simulated SMR clusters: wiring, execution and consistency checking.

use fastbft_core::replica::ReplicaOptions;
use fastbft_crypto::KeyDirectory;
use fastbft_sim::{Network, SimDuration, SimTime, Simulation};
use fastbft_types::{Config, ProcessId, Value};

use crate::machine::StateMachine;
use crate::multiplex::{Batching, SlotMessage, SmrNode};

/// Outcome of an SMR run.
#[derive(Clone, Debug)]
pub struct SmrReport {
    /// Slots applied by every node (the minimum across nodes).
    pub applied_everywhere: u64,
    /// Commands applied by every node (≥ slots when batching).
    pub commands_everywhere: u64,
    /// Virtual time when the run stopped.
    pub final_time: SimTime,
    /// Whether all per-node logs agree on their common prefix.
    pub logs_consistent: bool,
    /// Applied slots per Δ of the slowest node (throughput).
    pub slots_per_delta: f64,
    /// Applied commands per Δ of the slowest node.
    pub commands_per_delta: f64,
}

/// Whether a set of per-replica logs agree on every pairwise common prefix
/// — the SMR safety condition (two replicas may be at different positions,
/// but where both have applied, they must have applied the same commands).
/// Shared by the simulated harness and the wall-clock
/// [`SmrClusterHandle`](crate::runtime::SmrClusterHandle).
pub fn logs_consistent(logs: &[Vec<Value>]) -> bool {
    let offset_logs: Vec<(u64, &[Value])> = logs.iter().map(|l| (0, l.as_slice())).collect();
    offset_logs_consistent(&offset_logs)
}

/// [`logs_consistent`] for logs that start at different global indexes —
/// the shape snapshot truncation produces, where each node retains only the
/// suffix since its last snapshot. Two logs must agree wherever their
/// retained index ranges overlap (non-overlapping logs are vacuously
/// consistent: the truncated prefix was digest-attested at install time).
pub fn offset_logs_consistent(logs: &[(u64, &[Value])]) -> bool {
    for i in 0..logs.len() {
        for j in i + 1..logs.len() {
            let (off_i, log_i) = logs[i];
            let (off_j, log_j) = logs[j];
            let start = off_i.max(off_j);
            let end = (off_i + log_i.len() as u64).min(off_j + log_j.len() as u64);
            if start >= end {
                continue;
            }
            let slice_i = &log_i[(start - off_i) as usize..(end - off_i) as usize];
            let slice_j = &log_j[(start - off_j) as usize..(end - off_j) as usize];
            if slice_i != slice_j {
                return false;
            }
        }
    }
    true
}

/// A simulated replicated-state-machine cluster over the core protocol.
///
/// Every process runs an [`SmrNode`] with its own copy of the state machine
/// (built by a factory closure so machines start identical).
pub struct SmrSimCluster<S: StateMachine + 'static> {
    sim: Simulation<SlotMessage>,
    cfg: Config,
    delta: SimDuration,
    _marker: std::marker::PhantomData<S>,
}

impl<S: StateMachine + Clone + Send + 'static> SmrSimCluster<S> {
    /// Builds a cluster. `commands[i]` is process `i+1`'s client queue
    /// (slot leaders drain their own queues; followers' queues commit when
    /// they lead a view).
    pub fn new(
        cfg: Config,
        seed: u64,
        machine: S,
        commands: Vec<Vec<Value>>,
        idle_input: Value,
        opts: ReplicaOptions,
    ) -> Self {
        Self::new_batched(cfg, seed, machine, commands, idle_input, opts, 1)
    }

    /// Like [`SmrSimCluster::new`] but bundling up to `batch_size` commands
    /// into each slot (throughput amortization; see E9).
    #[allow(clippy::too_many_arguments)]
    pub fn new_batched(
        cfg: Config,
        seed: u64,
        machine: S,
        commands: Vec<Vec<Value>>,
        idle_input: Value,
        opts: ReplicaOptions,
        batch_size: usize,
    ) -> Self {
        Self::new_with_network(
            cfg,
            seed,
            machine,
            commands,
            idle_input,
            opts,
            batch_size,
            Network::synchronous(SimDuration::DELTA),
        )
    }

    /// Like [`SmrSimCluster::new_batched`] but also pinning the slot
    /// pipeline depth (see [`SmrNode::with_pipeline_depth`]) — tests that
    /// must observe batching or sequencing in isolation pass `1`.
    #[allow(clippy::too_many_arguments)]
    pub fn new_batched_with_depth(
        cfg: Config,
        seed: u64,
        machine: S,
        commands: Vec<Vec<Value>>,
        idle_input: Value,
        opts: ReplicaOptions,
        batch_size: usize,
        pipeline_depth: u64,
    ) -> Self {
        Self::build(
            cfg,
            seed,
            machine,
            commands,
            idle_input,
            opts,
            batch_size,
            Some(pipeline_depth),
            None,
            Network::synchronous(SimDuration::DELTA),
        )
    }

    /// Like [`SmrSimCluster::new_batched`] but over an arbitrary [`Network`]
    /// — scripted and adversarial delay schedules included. This is the
    /// entry point for pipelining regression tests, where slots must be
    /// opened while earlier slots are still undecided.
    #[allow(clippy::too_many_arguments)]
    pub fn new_with_network(
        cfg: Config,
        seed: u64,
        machine: S,
        commands: Vec<Vec<Value>>,
        idle_input: Value,
        opts: ReplicaOptions,
        batch_size: usize,
        network: Network,
    ) -> Self {
        Self::build(
            cfg, seed, machine, commands, idle_input, opts, batch_size, None, None, network,
        )
    }

    /// Like [`SmrSimCluster::new_with_network`] but also pinning the
    /// snapshot interval (see [`SmrNode::with_snapshot_interval`]) — state
    /// transfer tests use a short interval so snapshots exist early.
    #[allow(clippy::too_many_arguments)]
    pub fn new_with_network_snapshotting(
        cfg: Config,
        seed: u64,
        machine: S,
        commands: Vec<Vec<Value>>,
        idle_input: Value,
        opts: ReplicaOptions,
        batch_size: usize,
        network: Network,
        snapshot_interval: u64,
    ) -> Self {
        Self::build_batching(
            cfg,
            seed,
            machine,
            commands,
            idle_input,
            opts,
            Batching::Fixed(batch_size),
            None,
            Some(snapshot_interval),
            network,
        )
    }

    /// Like [`SmrSimCluster::new_with_network`] but with an explicit
    /// [`Batching`] mode — the entry point for adaptive-batching tests.
    #[allow(clippy::too_many_arguments)]
    pub fn new_with_network_batching(
        cfg: Config,
        seed: u64,
        machine: S,
        commands: Vec<Vec<Value>>,
        idle_input: Value,
        opts: ReplicaOptions,
        batching: Batching,
        network: Network,
    ) -> Self {
        Self::build_batching(
            cfg, seed, machine, commands, idle_input, opts, batching, None, None, network,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        cfg: Config,
        seed: u64,
        machine: S,
        commands: Vec<Vec<Value>>,
        idle_input: Value,
        opts: ReplicaOptions,
        batch_size: usize,
        pipeline_depth: Option<u64>,
        snapshot_interval: Option<u64>,
        network: Network,
    ) -> Self {
        Self::build_batching(
            cfg,
            seed,
            machine,
            commands,
            idle_input,
            opts,
            Batching::Fixed(batch_size),
            pipeline_depth,
            snapshot_interval,
            network,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn build_batching(
        cfg: Config,
        seed: u64,
        machine: S,
        commands: Vec<Vec<Value>>,
        idle_input: Value,
        opts: ReplicaOptions,
        batching: Batching,
        pipeline_depth: Option<u64>,
        snapshot_interval: Option<u64>,
        network: Network,
    ) -> Self {
        assert_eq!(commands.len(), cfg.n(), "one command queue per process");
        let delta = SimDuration::DELTA;
        let (pairs, dir) = KeyDirectory::generate(cfg.n(), seed);
        let mut sim = Simulation::new(network, seed.wrapping_add(7));
        for (i, cmds) in commands.into_iter().enumerate() {
            let mut node = SmrNode::new(
                cfg,
                pairs[i].clone(),
                dir.clone(),
                machine.clone(),
                cmds,
                idle_input.clone(),
            )
            .with_options(opts.clone())
            .with_batching(batching.clone());
            if let Some(depth) = pipeline_depth {
                node = node.with_pipeline_depth(depth);
            }
            if let Some(interval) = snapshot_interval {
                node = node.with_snapshot_interval(interval);
            }
            sim.add_actor(Box::new(node));
        }
        sim.start();
        SmrSimCluster {
            sim,
            cfg,
            delta,
            _marker: std::marker::PhantomData,
        }
    }

    /// Injects a [`SlotMessage`] into the cluster at virtual time `at`, as
    /// if sent by `from` — the simulated analogue of the runtime's
    /// Byzantine-driver injection hook. Delivery time follows the cluster's
    /// network policy.
    pub fn inject_message(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        msg: SlotMessage,
        at: SimTime,
    ) {
        self.sim.inject_message(from, to, msg, at);
    }

    fn node(&self, p: ProcessId) -> &SmrNode<S> {
        self.sim
            .actor(p)
            .as_any()
            .expect("SmrNode opts into as_any")
            .downcast_ref::<SmrNode<S>>()
            .expect("actor is an SmrNode")
    }

    /// The cluster's protocol configuration.
    pub fn config(&self) -> Config {
        self.cfg
    }

    /// Reference to one node's state machine.
    pub fn machine(&self, p: ProcessId) -> &S {
        self.node(p).machine()
    }

    /// One node's applied log.
    pub fn log(&self, p: ProcessId) -> Vec<Value> {
        self.node(p).log().to_vec()
    }

    /// One node's at-most-once dedup state size (see
    /// [`SmrNode::dedup_entries`]) — for boundedness assertions.
    pub fn dedup_entries(&self, p: ProcessId) -> usize {
        self.node(p).dedup_entries()
    }

    /// Slots one node has applied.
    pub fn applied(&self, p: ProcessId) -> u64 {
        self.node(p).applied()
    }

    /// One node's log offset (entries truncated into snapshots; see
    /// [`SmrNode::log_offset`]).
    pub fn log_offset(&self, p: ProcessId) -> u64 {
        self.node(p).log_offset()
    }

    /// One node's latest snapshot boundary, if it has one.
    pub fn snapshot_upto(&self, p: ProcessId) -> Option<u64> {
        self.node(p).snapshot_upto()
    }

    /// One node's retained committed-suffix length (boundedness asserts).
    pub fn tail_len(&self, p: ProcessId) -> usize {
        self.node(p).tail_len()
    }

    /// Runs until every node applied at least `k` slots (or `horizon`).
    pub fn run_until_applied(&mut self, k: u64, horizon: SimTime) -> SmrReport {
        let procs: Vec<ProcessId> = self.cfg.processes().collect();
        self.run_until_metric(&procs, k, horizon, |node| node.applied())
    }

    /// Runs until every node applied at least `k` *commands* (or `horizon`)
    /// — the right metric when batching.
    pub fn run_until_commands(&mut self, k: u64, horizon: SimTime) -> SmrReport {
        let procs: Vec<ProcessId> = self.cfg.processes().collect();
        self.run_until_metric(&procs, k, horizon, |node| node.commands_applied())
    }

    /// [`SmrSimCluster::run_until_applied`] over a subset of nodes —
    /// partition tests drive the live side forward while a victim is cut
    /// off (whose stalled metric would otherwise never let the run stop).
    pub fn run_until_applied_by(
        &mut self,
        procs: &[ProcessId],
        k: u64,
        horizon: SimTime,
    ) -> SmrReport {
        self.run_until_metric(procs, k, horizon, |node| node.applied())
    }

    fn run_until_metric(
        &mut self,
        procs: &[ProcessId],
        k: u64,
        horizon: SimTime,
        metric: impl Fn(&SmrNode<S>) -> u64,
    ) -> SmrReport {
        loop {
            let min_applied = procs
                .iter()
                .map(|p| metric(self.node(*p)))
                .min()
                .unwrap_or(0);
            if min_applied >= k || self.sim.now() > horizon {
                break;
            }
            // Step in chunks for speed.
            let before = self.sim.now();
            let target = before + self.delta;
            self.sim.run_until(target.min(horizon));
            if self.sim.pending_events() == 0 {
                break;
            }
            if self.sim.now() == before {
                // The next event lies beyond the chunk (e.g. a view-change
                // timeout during an idle stretch): jump straight to it, or
                // the loop would spin forever without advancing time. The
                // horizon check at the top still bounds the run.
                self.sim.step();
            }
        }
        self.report()
    }

    /// Builds the report for the current state.
    pub fn report(&self) -> SmrReport {
        let applied: Vec<u64> = self
            .cfg
            .processes()
            .map(|p| self.node(p).applied())
            .collect();
        let min_applied = applied.iter().copied().min().unwrap_or(0);
        let min_commands = self
            .cfg
            .processes()
            .map(|p| self.node(p).commands_applied())
            .min()
            .unwrap_or(0);

        // Log consistency: every pair agrees wherever their retained
        // (post-truncation) index ranges overlap.
        let logs: Vec<(u64, Vec<Value>)> = self
            .cfg
            .processes()
            .map(|p| (self.node(p).log_offset(), self.log(p)))
            .collect();
        let offset_logs: Vec<(u64, &[Value])> =
            logs.iter().map(|(o, l)| (*o, l.as_slice())).collect();
        let consistent = offset_logs_consistent(&offset_logs);

        let now = self.sim.now();
        let per_delta = |count: u64| {
            if now.0 == 0 {
                0.0
            } else {
                count as f64 * self.delta.0 as f64 / now.0 as f64
            }
        };
        SmrReport {
            applied_everywhere: min_applied,
            commands_everywhere: min_commands,
            final_time: now,
            logs_consistent: consistent,
            slots_per_delta: per_delta(min_applied),
            commands_per_delta: per_delta(min_commands),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::{KvCommand, KvStore};
    use crate::machine::CountingMachine;
    use fastbft_types::View;

    #[test]
    fn counting_smr_applies_in_lockstep() {
        let cfg = Config::new(4, 1, 1).unwrap();
        // Broadcast client model: every node queues the same ten commands.
        let queue: Vec<Value> = (1..=10).map(Value::from_u64).collect();
        let mut cluster = SmrSimCluster::new(
            cfg,
            3,
            CountingMachine::new(),
            vec![queue; 4],
            Value::from_u64(0),
            ReplicaOptions::default(),
        );
        let report = cluster.run_until_commands(10, SimTime(1_000_000));
        assert!(report.commands_everywhere >= 10);
        assert!(report.logs_consistent);
        // Sequential slots at 2Δ each plus pipeline restarts: ≥ 0.3 slots/Δ
        // would be suspiciously fast for a strictly sequential pipeline; we
        // just require steady progress.
        assert!(report.slots_per_delta > 0.05, "{report:?}");
    }

    #[test]
    fn kv_smr_commits_broadcast_commands() {
        let cfg = Config::new(4, 1, 1).unwrap();
        // Standard SMR client model: commands are broadcast to every
        // replica; slot leadership rotates, so whoever leads a slot proposes
        // the common queue front.
        let workload: Vec<Value> = (0..5)
            .map(|i| {
                KvCommand::Put {
                    key: format!("k{i}"),
                    value: format!("v{i}"),
                }
                .to_value()
            })
            .collect();
        let commands = vec![workload; 4];
        let mut cluster = SmrSimCluster::new(
            cfg,
            5,
            KvStore::new(),
            commands,
            KvCommand::Noop.to_value(),
            ReplicaOptions::default(),
        );
        let report = cluster.run_until_applied(5, SimTime(1_000_000));
        assert!(report.applied_everywhere >= 5, "{report:?}");
        assert!(report.logs_consistent);
        // Every replica's store holds all five keys with identical digests.
        let d1 = cluster.machine(ProcessId(1)).state_digest();
        for p in cfg.processes() {
            let store = cluster.machine(p);
            assert_eq!(store.len(), 5, "store at {p}");
            assert_eq!(store.get("k3"), Some(&"v3".to_string()));
            assert_eq!(store.state_digest(), d1);
        }
    }

    #[test]
    fn slot_leadership_rotates() {
        // With the per-slot offset, each process leads the first view of a
        // different slot: slot s has leader p_{((1+s) mod n)+1}.
        let cfg = Config::new(4, 1, 1).unwrap();
        let leaders: Vec<u32> = (0..4u64)
            .map(|slot| cfg.with_leader_offset(slot).leader(View::FIRST).0)
            .collect();
        assert_eq!(leaders, vec![2, 3, 4, 1]);
    }
}
