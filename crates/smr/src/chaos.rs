//! The graceful-degradation harness: drives an SMR cluster through a
//! chaos [`Scenario`] and asserts the three properties every scenario
//! must exhibit (see [`fastbft_runtime::chaos`]):
//!
//! 1. **Safety** — the per-replica logs agree, fault or no fault.
//! 2. **Liveness after heal** — the full command load (submitted before,
//!    during, and after the fault window) is applied by *every* replica
//!    within the scenario's derived recovery window.
//! 3. **Path attribution** — the metrics plane shows the commit path the
//!    scenario's [`PathExpectation`] demands: fast-path commits resume
//!    after heal, and while the fast quorum is unreachable the commits
//!    that do land are slow-path.
//!
//! The harness is transport-generic: hand it seats built over the
//! channel mesh ([`fastbft_runtime::wrap_seats_metered`]) or over TCP
//! (`fastbft_net::faults::fault_tcp_seats_metered`) — the same scenarios
//! and the same assertions run on both, which is exactly the chaos
//! suite's CI matrix.

use std::time::{Duration, Instant};

use fastbft_obs::{Histogram, MetricsRegistry};
use fastbft_runtime::chaos::{run_scenario, PathExpectation, Scenario};
use fastbft_runtime::faults::FaultPlan;
use fastbft_runtime::{spawn_with, NodeSeat, Transport};
use fastbft_types::{Config, ProcessId, Value};

use crate::multiplex::SlotMessage;
use crate::runtime::SmrClusterHandle;

/// How much load the harness offers around the fault window.
#[derive(Clone, Copy, Debug)]
pub struct ChaosLoad {
    /// Commands committed *before* the fault starts (healthy baseline,
    /// also warms sessions and memos).
    pub warmup: u64,
    /// Commands submitted *while* the fault holds.
    pub during: u64,
    /// Commands submitted *after* the script completes.
    pub after: u64,
}

impl Default for ChaosLoad {
    fn default() -> Self {
        ChaosLoad {
            warmup: 6,
            during: 6,
            after: 6,
        }
    }
}

/// What a chaos run measured, for `BENCH_faults.json` and for test
/// assertions beyond the built-in gates.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// Scenario name.
    pub scenario: &'static str,
    /// Cluster size.
    pub n: usize,
    /// Fast-path commits (before, during, after) the fault window.
    pub fast: [u64; 3],
    /// Slow-path commits (before, during, after) the fault window.
    pub slow: [u64; 3],
    /// Share of all commits that took the fast path, across the run.
    pub fast_share: f64,
    /// Wall-clock from heal to full liveness (every replica applied the
    /// whole load).
    pub recovered_ms: u64,
    /// Commit-latency p50 across both paths and all replicas, µs.
    pub p50_us: u64,
    /// Commit-latency p99 across both paths and all replicas, µs.
    pub p99_us: u64,
    /// Injected-fault counters: delays, drops, dups, partition drops.
    pub injected: [u64; 4],
}

/// Runs `scenario` against a cluster built from `seats` (already wrapped
/// in [`FaultTransport`](fastbft_runtime::FaultTransport)s on `plan`,
/// metered into `registry`) and asserts the three degradation
/// properties. `base_timeout` is the wall-clock view-1 timeout the
/// replicas were built with — derive it from the scenario
/// ([`Scenario::base_timeout_ticks`]), never hand-tune it per test.
///
/// # Panics
///
/// Panics — failing the calling test — if any degradation property is
/// violated: log divergence, liveness not restored within the recovery
/// window, commit-path attribution contradicting the scenario's
/// expectation, or a fault class the scenario promises to inject never
/// firing.
#[allow(clippy::too_many_arguments)]
pub fn run_chaos<T: Transport<SlotMessage>>(
    seats: Vec<NodeSeat<SlotMessage, T>>,
    cfg: Config,
    idle: Value,
    registry: MetricsRegistry,
    plan: FaultPlan,
    mut scenario: Scenario,
    tick: Duration,
    base_timeout: Duration,
    load: ChaosLoad,
) -> ChaosReport {
    let n = cfg.n();
    assert_eq!(seats.len(), n, "one seat per process");
    let name = scenario.name;
    let all: Vec<ProcessId> = (0..n).map(ProcessId::from_index).collect();
    let totals = |registry: &MetricsRegistry| -> (u64, u64) {
        (
            registry.total(|m| &m.commit_fast_total),
            registry.total(|m| &m.commit_slow_total),
        )
    };

    let mut cluster = SmrClusterHandle::new(spawn_with(seats, tick), n, idle);
    cluster.attach_metrics(registry.clone());

    // Phase 1: healthy baseline. Commands are tagged by phase so replays
    // and duplicates can never alias across phases.
    for i in 0..load.warmup {
        cluster.submit(Value::from_u64(0x0100_0000 + i));
    }
    assert!(
        cluster.await_commands(all.clone(), load.warmup, Duration::from_secs(30)),
        "[{name}] warmup load must commit on a healthy cluster"
    );
    let (fast0, slow0) = totals(&registry);

    // Phase 2: the fault window. The script runs on its own thread; the
    // harness offers load underneath it.
    let fault_started = Instant::now();
    let run = run_scenario(&plan, &mut scenario, registry.replica(0));
    for i in 0..load.during {
        cluster.submit(Value::from_u64(0x0200_0000 + i));
    }
    let (fast1, slow1);
    if scenario.expectation == PathExpectation::SlowWhileFaulted {
        // The survivors must keep committing *while* the fault holds —
        // wait for them inside the window and snapshot before heal fires,
        // so the during-window counters cannot be polluted by a healed
        // fast path racing ahead.
        let survivors: Vec<ProcessId> = all[..n - (cfg.t() + 1)].to_vec();
        let window = scenario
            .heal_at
            .map(|heal| heal.saturating_sub(fault_started.elapsed()))
            .map(|left| left.saturating_sub(left / 10))
            .unwrap_or(Duration::from_secs(5));
        assert!(
            cluster.await_commands(survivors, load.warmup + load.during, window),
            "[{name}] survivors above the slow quorum must commit during the fault"
        );
        (fast1, slow1) = totals(&registry);
        run.join();
    } else {
        // No mid-window gate: let the script run out (its last step is
        // the heal), then snapshot — the during bucket covers the whole
        // fault window.
        run.join();
        (fast1, slow1) = totals(&registry);
    }

    // Phase 3: post-heal. Liveness must return within the derived
    // recovery window, on every replica — including the ones that were
    // cut off.
    let healed = Instant::now();
    for i in 0..load.after {
        cluster.submit(Value::from_u64(0x0300_0000 + i));
    }
    let total = load.warmup + load.during + load.after;
    let window = scenario.recovery_window(base_timeout);
    assert!(
        cluster.await_commands(all, total, window),
        "[{name}] liveness must return within {window:?} of heal"
    );
    let recovered_ms = healed.elapsed().as_millis() as u64;
    let (fast2, slow2) = totals(&registry);

    // Property 1: safety, always.
    assert!(cluster.logs_agree(), "[{name}] log divergence under faults");

    // Property 3: path attribution per the scenario's expectation.
    let (fast_during, slow_during) = (fast1 - fast0, slow1 - slow0);
    let fast_after = fast2 - fast1;
    match scenario.expectation {
        PathExpectation::FastRecovers => {
            assert!(
                fast_after > 0,
                "[{name}] fast path must produce commits after heal (fast {fast0}→{fast1}→{fast2})"
            );
        }
        PathExpectation::SlowWhileFaulted => {
            assert!(
                slow_during > 0,
                "[{name}] commits during the fault must exist on the slow path"
            );
            assert!(
                slow_during > fast_during,
                "[{name}] with the fast quorum unreachable, the slow path must carry \
                 the fault window (fast {fast_during}, slow {slow_during})"
            );
            assert!(
                fast_after > 0,
                "[{name}] the fast path must resume after heal"
            );
        }
        PathExpectation::StallAllowed => {
            assert!(
                fast_after > 0,
                "[{name}] a stalled cluster must resume fast commits after heal"
            );
        }
    }

    // The fault classes the scenario promises must actually have fired —
    // otherwise the run proved nothing.
    if scenario.injects_delays {
        assert!(
            plan.injected_delays() > 0,
            "[{name}] promised delay injection never fired"
        );
    }
    if scenario.injects_drops {
        assert!(
            plan.injected_drops() > 0,
            "[{name}] promised loss injection never fired"
        );
    }
    if scenario.injects_partitions {
        assert!(
            plan.partition_drops() > 0,
            "[{name}] promised partition never dropped a delivery"
        );
    }

    let latency = Histogram::new();
    for i in 0..n {
        latency.merge_from(&registry.metrics(i).commit_latency_fast_us);
        latency.merge_from(&registry.metrics(i).commit_latency_slow_us);
    }
    let (fast_total, slow_total) = (fast2, slow2);
    let fast_share = if fast_total + slow_total > 0 {
        fast_total as f64 / (fast_total + slow_total) as f64
    } else {
        0.0
    };

    cluster.shutdown();
    ChaosReport {
        scenario: name,
        n,
        fast: [fast0, fast_during, fast_after],
        slow: [slow0, slow_during, slow2 - slow1],
        fast_share,
        recovered_ms,
        p50_us: latency.quantile(0.5),
        p99_us: latency.quantile(0.99),
        injected: [
            plan.injected_delays(),
            plan.injected_drops(),
            plan.injected_dups(),
            plan.partition_drops(),
        ],
    }
}
