//! Replicated state machine on top of `fastbft` consensus.
//!
//! The paper motivates consensus through state machine replication (§1.1):
//! "solving consensus allows one to build a replicated state machine by
//! reaching agreement on each next command to be executed". This crate is
//! that layer:
//!
//! * [`StateMachine`] — deterministic command execution ([`machine`]);
//! * [`KvStore`] / [`KvCommand`] — a replicated key-value store ([`kv`]);
//! * [`SmrNode`] — one consensus instance per log slot, applied in order
//!   ([`multiplex`]);
//! * [`SmrSimCluster`] — a ready-made simulated cluster with log-consistency
//!   checking ([`harness`]);
//! * [`SmrClusterHandle`] — the same nodes on the wall-clock thread
//!   runtime, over channels or authenticated TCP, with live client
//!   submission and a per-slot applied-event stream ([`runtime`]).
//!
//! ```
//! use fastbft_smr::{KvCommand, KvStore, SmrSimCluster};
//! use fastbft_core::replica::ReplicaOptions;
//! use fastbft_types::{Config, ProcessId};
//! use fastbft_sim::SimTime;
//!
//! let cfg = Config::new(4, 1, 1)?;
//! let mut commands = vec![Vec::new(); 4];
//! commands[1] = vec![KvCommand::Put { key: "x".into(), value: "1".into() }.to_value()];
//! let mut cluster = SmrSimCluster::new(
//!     cfg, 42, KvStore::new(), commands, KvCommand::Noop.to_value(),
//!     ReplicaOptions::default(),
//! );
//! let report = cluster.run_until_applied(1, SimTime(100_000));
//! assert!(report.logs_consistent);
//! assert_eq!(cluster.machine(ProcessId(3)).get("x"), Some(&"1".to_string()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apply;
pub mod chaos;
pub mod harness;
pub mod kv;
pub mod machine;
pub mod multiplex;
pub mod runtime;
pub mod shard;

pub use harness::{logs_consistent, offset_logs_consistent, SmrReport, SmrSimCluster};
pub use kv::{KvCommand, KvOutput, KvStore};
pub use machine::{CountingMachine, StateMachine};
pub use multiplex::{
    checkpoint_signature, checkpoint_signature_valid, parse_client_tag, snapshot_response_valid,
    tag_command, AdaptiveBatch, Batching, SlotMessage, SmrNode, DEFAULT_SNAPSHOT_INTERVAL,
    MAX_STASH_AHEAD, SLOT_WINDOW,
};
pub use runtime::{
    as_smr_node, smr_actors, smr_actors_configured, smr_actors_snapshotting, SmrClusterHandle,
};
pub use shard::{
    kv_shard_of, kv_shard_router, slot_preverifier, with_verify_pools, ShardedKvHandle,
};
