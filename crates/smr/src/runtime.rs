//! The replicated state machine on the wall-clock runtime.
//!
//! [`SmrSimCluster`](crate::harness::SmrSimCluster) runs SMR under the
//! discrete-event simulator; this module runs the *same* [`SmrNode`]
//! actors on `fastbft_runtime`'s thread-per-replica engine, over any
//! [`Transport`] — in-process channels or
//! `fastbft-net`'s authenticated TCP. Three things make that a real system
//! rather than a simulation:
//!
//! * commands are submitted to the **running** cluster
//!   ([`SmrClusterHandle::submit`] → every node's
//!   [`on_client`](fastbft_sim::Actor::on_client));
//! * every applied command streams back out as an
//!   [`Applied`](fastbft_runtime::Applied) event (per-slot event stream,
//!   not a one-shot decision), from which the handle reconstructs each
//!   replica's log;
//! * the cross-replica consistency check
//!   ([`SmrClusterHandle::logs_agree`]) applies the harness's consistency
//!   condition to the sparse per-index logs (sparse because a replica that
//!   restarts or installs a snapshot resumes at a higher log index).
//!
//! ```
//! use std::time::Duration;
//! use fastbft_core::replica::ReplicaOptions;
//! use fastbft_crypto::KeyDirectory;
//! use fastbft_smr::runtime::SmrClusterHandle;
//! use fastbft_smr::{KvCommand, KvStore};
//! use fastbft_types::{Config, ProcessId};
//!
//! let cfg = Config::new(4, 1, 1)?;
//! let mut cluster = SmrClusterHandle::spawn_channel(
//!     cfg, 7, KvStore::new(), KvCommand::Noop.to_value(),
//!     ReplicaOptions::default(), 1, Duration::from_micros(50),
//! );
//! cluster.submit(KvCommand::Put { key: "x".into(), value: "1".into() }.to_value());
//! assert!(cluster.await_commands(cfg.processes(), 1, Duration::from_secs(10)));
//! assert!(cluster.logs_agree());
//! cluster.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use fastbft_core::replica::ReplicaOptions;
use fastbft_crypto::{KeyDirectory, KeyPair};
use fastbft_runtime::{spawn, ClusterHandle, NodeSeat, Transport};
use fastbft_sim::Actor;
use fastbft_types::{Config, ProcessId, Value};

use crate::machine::StateMachine;
use crate::multiplex::{Batching, SlotMessage, SmrNode};

/// Builds one boxed [`SmrNode`] actor per process, ready for
/// [`fastbft_runtime::spawn`] / `spawn_with` (or `fastbft-net`'s TCP
/// seats). `commands[i]` preloads process `i+1`'s client queue; submit to a
/// running cluster via [`SmrClusterHandle::submit`].
#[allow(clippy::too_many_arguments)]
pub fn smr_actors<S: StateMachine + Clone + Send + 'static>(
    cfg: Config,
    pairs: &[KeyPair],
    dir: &KeyDirectory,
    machine: S,
    commands: Vec<Vec<Value>>,
    idle_input: Value,
    opts: ReplicaOptions,
    batch_size: usize,
) -> Vec<Box<dyn Actor<SlotMessage> + Send>> {
    smr_actors_snapshotting(
        cfg, pairs, dir, machine, commands, idle_input, opts, batch_size, None,
    )
}

/// [`smr_actors`] with an explicit snapshot interval (see
/// [`SmrNode::with_snapshot_interval`]); `None` keeps the default cadence.
/// Restart/chaos tests use a short interval so a rejoining node finds an
/// attested snapshot to install.
#[allow(clippy::too_many_arguments)]
pub fn smr_actors_snapshotting<S: StateMachine + Clone + Send + 'static>(
    cfg: Config,
    pairs: &[KeyPair],
    dir: &KeyDirectory,
    machine: S,
    commands: Vec<Vec<Value>>,
    idle_input: Value,
    opts: ReplicaOptions,
    batch_size: usize,
    snapshot_interval: Option<u64>,
) -> Vec<Box<dyn Actor<SlotMessage> + Send>> {
    smr_actors_configured(
        cfg,
        pairs,
        dir,
        machine,
        commands,
        idle_input,
        opts,
        Batching::Fixed(batch_size),
        snapshot_interval,
        None,
    )
}

/// [`smr_actors_snapshotting`] with a metrics plane: node `i` (and every
/// per-slot replica it opens) records into `registry.replica(i)`, the same
/// sink a metered transport for seat `i` should use
/// (`fastbft_net::tcp_seats_metered`). Attach the registry to the spawned
/// cluster's handle ([`SmrClusterHandle::attach_metrics`]) to scrape it.
#[allow(clippy::too_many_arguments)]
pub fn smr_actors_metered<S: StateMachine + Clone + Send + 'static>(
    cfg: Config,
    pairs: &[KeyPair],
    dir: &KeyDirectory,
    machine: S,
    commands: Vec<Vec<Value>>,
    idle_input: Value,
    opts: ReplicaOptions,
    batch_size: usize,
    snapshot_interval: Option<u64>,
    registry: &fastbft_obs::MetricsRegistry,
) -> Vec<Box<dyn Actor<SlotMessage> + Send>> {
    smr_actors_configured(
        cfg,
        pairs,
        dir,
        machine,
        commands,
        idle_input,
        opts,
        Batching::Fixed(batch_size),
        snapshot_interval,
        Some(registry),
    )
}

/// The fully-general [`SmrNode`] actor builder: any [`Batching`] mode (the
/// other constructors fix it), an optional snapshot interval, an optional
/// metrics plane. `opts.apply_workers > 0` additionally moves each node's
/// state machine onto a dedicated apply worker (see
/// [`SmrNode::with_options`]).
#[allow(clippy::too_many_arguments)]
pub fn smr_actors_configured<S: StateMachine + Clone + Send + 'static>(
    cfg: Config,
    pairs: &[KeyPair],
    dir: &KeyDirectory,
    machine: S,
    commands: Vec<Vec<Value>>,
    idle_input: Value,
    opts: ReplicaOptions,
    batching: Batching,
    snapshot_interval: Option<u64>,
    registry: Option<&fastbft_obs::MetricsRegistry>,
) -> Vec<Box<dyn Actor<SlotMessage> + Send>> {
    if let Some(registry) = registry {
        assert!(
            registry.len() >= cfg.n(),
            "metrics registry must cover all {} processes",
            cfg.n()
        );
    }
    assert_eq!(pairs.len(), cfg.n(), "one key pair per process");
    assert_eq!(commands.len(), cfg.n(), "one command queue per process");
    pairs
        .iter()
        .zip(commands)
        .enumerate()
        .map(|(i, (pair, cmds))| -> Box<dyn Actor<SlotMessage> + Send> {
            let opts = match registry {
                Some(registry) => ReplicaOptions {
                    metrics: registry.replica(i),
                    ..opts.clone()
                },
                None => opts.clone(),
            };
            let mut node = SmrNode::new(
                cfg,
                pair.clone(),
                dir.clone(),
                machine.clone(),
                cmds,
                idle_input.clone(),
            )
            .with_batching(batching.clone())
            .with_options(opts);
            if let Some(interval) = snapshot_interval {
                node = node.with_snapshot_interval(interval);
            }
            Box::new(node)
        })
        .collect()
}

/// Downcasts a shut-down cluster actor back to its [`SmrNode`] for final
/// state inspection (log, state machine). `None` if the seat held
/// something else — e.g. a scripted Byzantine actor.
pub fn as_smr_node<S: StateMachine + 'static>(
    actor: &dyn Actor<SlotMessage>,
) -> Option<&SmrNode<S>> {
    actor.as_any()?.downcast_ref()
}

/// Handle to a replicated state machine running on the thread runtime,
/// over any transport. Wraps the generic [`ClusterHandle`], consuming its
/// applied-event stream into per-replica logs.
pub struct SmrClusterHandle {
    inner: ClusterHandle<SlotMessage>,
    idle: Value,
    /// Per-replica logs keyed by global log index. Sparse: a replica that
    /// installed a snapshot (or restarted) resumes emitting events at a
    /// higher index, with the truncated prefix absent.
    logs: Vec<BTreeMap<u64, Value>>,
    /// Per-replica count of non-idle log entries, maintained incrementally
    /// so `await_commands` never rescans the logs on the hot path.
    commands: Vec<u64>,
}

impl SmrClusterHandle {
    /// Wraps an already-spawned cluster of `n` [`SmrNode`] actors.
    /// `idle` must be the nodes' idle filler (it is exempt from command
    /// counting). This is the entry point for non-channel transports:
    /// build seats (e.g. `fastbft_net::tcp_seats`), `spawn_with` them, and
    /// hand the result here.
    pub fn new(inner: ClusterHandle<SlotMessage>, n: usize, idle: Value) -> Self {
        SmrClusterHandle {
            inner,
            idle,
            logs: vec![BTreeMap::new(); n],
            commands: vec![0; n],
        }
    }

    /// Spawns an SMR cluster over the in-process channel transport with
    /// empty client queues; submit commands with
    /// [`submit`](SmrClusterHandle::submit).
    pub fn spawn_channel<S: StateMachine + Clone + Send + 'static>(
        cfg: Config,
        seed: u64,
        machine: S,
        idle_input: Value,
        opts: ReplicaOptions,
        batch_size: usize,
        tick: Duration,
    ) -> Self {
        let (pairs, dir) = KeyDirectory::generate(cfg.n(), seed);
        let actors = smr_actors(
            cfg,
            &pairs,
            &dir,
            machine,
            vec![Vec::new(); cfg.n()],
            idle_input.clone(),
            opts,
            batch_size,
        );
        SmrClusterHandle::new(spawn(actors, tick), cfg.n(), idle_input)
    }

    /// [`spawn_channel`](SmrClusterHandle::spawn_channel) with an explicit
    /// [`Batching`] mode (e.g. [`Batching::Adaptive`]) instead of a fixed
    /// batch size.
    pub fn spawn_channel_configured<S: StateMachine + Clone + Send + 'static>(
        cfg: Config,
        seed: u64,
        machine: S,
        idle_input: Value,
        opts: ReplicaOptions,
        batching: Batching,
        tick: Duration,
    ) -> Self {
        let (pairs, dir) = KeyDirectory::generate(cfg.n(), seed);
        let actors = smr_actors_configured(
            cfg,
            &pairs,
            &dir,
            machine,
            vec![Vec::new(); cfg.n()],
            idle_input.clone(),
            opts,
            batching,
            None,
            None,
        );
        SmrClusterHandle::new(spawn(actors, tick), cfg.n(), idle_input)
    }

    /// Submits a client command to every replica of the running cluster —
    /// the paper's §1.1 client model. Whichever node leads the next slot
    /// proposes it; identity dedup keeps execution at-most-once. Commands
    /// are identified by their bytes: a client that wants the same logical
    /// operation executed twice must make the encodings distinct (e.g. tag
    /// a client id and sequence number).
    pub fn submit(&self, command: Value) {
        self.inner.submit_all(command);
    }

    /// The wrapped transport-generic handle (injection hooks, decision
    /// stream, per-node submission).
    pub fn inner(&self) -> &ClusterHandle<SlotMessage> {
        &self.inner
    }

    /// Attaches the metrics plane the nodes were built with (see
    /// [`fastbft_obs::MetricsRegistry`]): `registry.replica(i)` handles
    /// must have gone into each node's `ReplicaOptions.metrics` before
    /// spawning; attaching here wires the scrape side.
    pub fn attach_metrics(&mut self, registry: fastbft_obs::MetricsRegistry) {
        self.inner.attach_metrics(registry);
    }

    /// The attached metrics plane, if any.
    pub fn metrics(&self) -> Option<&fastbft_obs::MetricsRegistry> {
        self.inner.metrics()
    }

    /// Scrapes cluster metrics in Prometheus text exposition format
    /// (`None` if no registry was attached).
    pub fn metrics_text(&self) -> Option<String> {
        self.inner.metrics_text()
    }

    /// Scrapes cluster metrics as a JSON document (`None` if no registry
    /// was attached).
    pub fn metrics_json(&self) -> Option<String> {
        self.inner.metrics_json()
    }

    /// Waits until each process in `processes` has applied at least `k`
    /// client commands (idle filler excluded), consuming applied events
    /// into the per-replica logs. Returns `false` on timeout. Restrict
    /// `processes` to the correct replicas when some seats are Byzantine.
    pub fn await_commands(
        &mut self,
        processes: impl IntoIterator<Item = ProcessId>,
        k: u64,
        timeout: Duration,
    ) -> bool {
        let watched: Vec<ProcessId> = processes.into_iter().collect();
        let deadline = Instant::now() + timeout;
        loop {
            if watched.iter().all(|p| self.commands[p.index()] >= k) {
                return true;
            }
            let wait = deadline.saturating_duration_since(Instant::now());
            if wait.is_zero() {
                return false;
            }
            match self.inner.applied_events().recv_timeout(wait) {
                Ok(event) => {
                    // Keyed by global index: duplicates (a restarted seat
                    // re-emitting) overwrite idempotently, and a replica
                    // resuming from a snapshot just starts at a higher key.
                    let i = event.process.index();
                    let fresh = event.command != self.idle;
                    if self.logs[i].insert(event.index, event.command).is_none() && fresh {
                        self.commands[i] += 1;
                    }
                }
                Err(_) => return false,
            }
        }
    }

    /// The per-replica logs reconstructed from the applied-event stream so
    /// far (grows as [`await_commands`](SmrClusterHandle::await_commands)
    /// consumes events), keyed by global log index.
    pub fn logs(&self) -> &[BTreeMap<u64, Value>] {
        &self.logs
    }

    /// Whether the reconstructed logs satisfy the SMR safety condition:
    /// wherever two replicas have both applied an index, they applied the
    /// same command — the sparse-log analogue of the harness's
    /// [`logs_consistent`](crate::harness::logs_consistent) check (indexes
    /// one side truncated into a snapshot are vacuously consistent; the
    /// install verified them by digest).
    pub fn logs_agree(&self) -> bool {
        for i in 0..self.logs.len() {
            for j in i + 1..self.logs.len() {
                for (index, cmd) in &self.logs[i] {
                    if self.logs[j].get(index).is_some_and(|other| other != cmd) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Kills one replica mid-run (chaos hook): stops its event loop and
    /// returns the dead actor. The remaining replicas keep committing as
    /// long as ≥ n − f stay live; revive the seat with
    /// [`restart_node`](SmrClusterHandle::restart_node).
    ///
    /// # Panics
    ///
    /// Panics if the seat is already stopped.
    pub fn stop_node(&mut self, index: usize) -> Box<dyn Actor<SlotMessage> + Send> {
        self.inner.stop_node(index)
    }

    /// Revives a stopped seat with a fresh node and transport (for TCP,
    /// build the seat with `fastbft_net::tcp_reseat` on the retained
    /// listener). The revived node starts empty and rejoins by snapshot
    /// recovery: once live peers demonstrate f+1 matching tips ahead of it,
    /// it installs their attested snapshot, absorbs the committed suffix,
    /// and resumes voting — its applied events resume at the post-snapshot
    /// log indexes.
    ///
    /// # Panics
    ///
    /// Panics if the seat is still running.
    pub fn restart_node<T: Transport<SlotMessage>>(
        &mut self,
        index: usize,
        seat: NodeSeat<SlotMessage, T>,
    ) {
        self.inner.restart_node(index, seat);
    }

    /// Stops the cluster and hands back the actors in seat order; downcast
    /// with [`as_smr_node`] to inspect final logs and machine state.
    pub fn shutdown(self) -> Vec<Box<dyn Actor<SlotMessage> + Send>> {
        self.inner.shutdown()
    }
}
