//! The off-loop apply stage: state-machine execution on a dedicated
//! worker thread.
//!
//! PR 8 took inbound *verification* off the event loop; profiling the
//! staged loop shows the next serial stage is **apply** — state-machine
//! execution and snapshot serialization run on the protocol thread, so a
//! slow `StateMachine::apply` (or a large `snapshot()`) stalls consensus
//! for every in-flight slot. The [`ApplyWorker`] moves that work to one
//! dedicated thread, mirroring the `VerifyPool` contract:
//!
//! * **In order.** Jobs are executed strictly in submission order over a
//!   bounded queue, so the worker's machine passes through exactly the
//!   same state sequence the inline path would. The node keeps all
//!   *bookkeeping* (dedup, log, applied events) synchronous — only the
//!   machine itself lives off-loop, which is why the applied-event stream
//!   and the log are bit-for-bit identical either way.
//! * **Bounded.** The job queue holds at most [`APPLY_QUEUE_CAP`]
//!   entries; a submitter that outruns the worker blocks (backpressure),
//!   so a slow state machine cannot buffer unbounded decided batches.
//! * **`apply_workers = 0` is the old path.** The node then owns the
//!   machine directly ([`ApplyStage::Inline`]) and no thread exists —
//!   bit-for-bit the pre-PR-9 datapath, exactly like `VerifyPool` with 0
//!   workers.
//!
//! Snapshots at checkpoint boundaries become **asynchronous**: the node
//! truncates its bookkeeping synchronously, enqueues a
//! [`ApplyJob::Snapshot`] marker (ordered after every batch the snapshot
//! covers), and assembles + broadcasts the attested checkpoint when the
//! worker's [`ApplyReply::Snapshot`] comes back. Restores (rare:
//! far-behind recovery) stay synchronous — the node blocks on the
//! [`ApplyReply::Restore`] so install keeps its atomic reject semantics.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use fastbft_obs::MetricsHandle;
use fastbft_types::Value;

use crate::machine::StateMachine;

/// Most jobs the bounded apply queue will hold; submitting past this
/// blocks the event loop until the worker catches up (backpressure).
pub(crate) const APPLY_QUEUE_CAP: usize = 256;

/// One unit of work for the apply worker, executed strictly in order.
#[derive(Debug)]
pub(crate) enum ApplyJob {
    /// Execute one decided slot's commands (idle filler included — it is
    /// part of the deterministic machine history).
    Batch(Vec<Value>),
    /// Serialize the machine at a checkpoint boundary; replies with
    /// [`ApplyReply::Snapshot`] carrying the same `upto` for pairing.
    Snapshot(u64),
    /// Restore the machine from snapshot bytes; replies with
    /// [`ApplyReply::Restore`].
    Restore(Vec<u8>),
}

/// A worker-to-node reply (snapshot bytes or a restore verdict). Batches
/// produce no reply — the node's bookkeeping never waits for them.
#[derive(Debug)]
pub(crate) enum ApplyReply {
    /// `StateMachine::snapshot()` bytes taken at boundary `upto`.
    Snapshot {
        /// The checkpoint boundary the marker was enqueued at.
        upto: u64,
        /// The serialized machine.
        machine: Vec<u8>,
    },
    /// Whether `StateMachine::restore` accepted the payload.
    Restore(bool),
}

/// A hand-rolled bounded MPSC queue (the workspace's vendored channel
/// shim is unbounded-only): `Mutex<VecDeque>` + two condvars.
struct BoundedQueue<T> {
    state: Mutex<(VecDeque<T>, bool)>,
    not_full: Condvar,
    not_empty: Condvar,
    cap: usize,
}

impl<T> BoundedQueue<T> {
    fn new(cap: usize) -> Self {
        BoundedQueue {
            state: Mutex::new((VecDeque::new(), false)),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            cap,
        }
    }

    /// Enqueues `item`, blocking while the queue is full. Items pushed
    /// after [`close`](BoundedQueue::close) are dropped (teardown only —
    /// the owning node never submits past its own join).
    fn push(&self, item: T) {
        let mut guard = self.state.lock().expect("apply queue poisoned");
        while guard.0.len() >= self.cap && !guard.1 {
            guard = self.not_full.wait(guard).expect("apply queue poisoned");
        }
        if guard.1 {
            return;
        }
        guard.0.push_back(item);
        self.not_empty.notify_one();
    }

    /// Dequeues the next item, blocking while the queue is empty; `None`
    /// once the queue is closed *and* drained.
    fn pop(&self) -> Option<T> {
        let mut guard = self.state.lock().expect("apply queue poisoned");
        loop {
            if let Some(item) = guard.0.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if guard.1 {
                return None;
            }
            guard = self.not_empty.wait(guard).expect("apply queue poisoned");
        }
    }

    /// Closes the queue: pops drain the remainder then return `None`.
    fn close(&self) {
        let mut guard = self.state.lock().expect("apply queue poisoned");
        guard.1 = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// The dedicated in-order apply worker owning the node's state machine
/// while the event loop runs (see module docs).
pub(crate) struct ApplyWorker<S> {
    jobs: Arc<BoundedQueue<ApplyJob>>,
    replies: Receiver<ApplyReply>,
    /// Jobs submitted and not yet executed; mirrored into the
    /// `apply_queue_depth` gauge from both ends.
    depth: Arc<AtomicU64>,
    handle: Option<JoinHandle<S>>,
}

impl<S: StateMachine + Send + 'static> ApplyWorker<S> {
    /// Moves `machine` onto a fresh worker thread. The worker executes
    /// jobs in submission order until the queue closes, then hands the
    /// machine back through [`join`](ApplyWorker::join).
    pub(crate) fn spawn(mut machine: S, metrics: MetricsHandle) -> Self {
        let jobs = Arc::new(BoundedQueue::new(APPLY_QUEUE_CAP));
        let (reply_tx, replies): (Sender<ApplyReply>, Receiver<ApplyReply>) = unbounded();
        let depth = Arc::new(AtomicU64::new(0));
        let worker_jobs = Arc::clone(&jobs);
        let worker_depth = Arc::clone(&depth);
        let handle = std::thread::spawn(move || {
            while let Some(job) = worker_jobs.pop() {
                match job {
                    ApplyJob::Batch(cmds) => {
                        for cmd in &cmds {
                            machine.apply(cmd);
                        }
                    }
                    ApplyJob::Snapshot(upto) => {
                        // The node may already be gone during teardown.
                        let _ = reply_tx.send(ApplyReply::Snapshot {
                            upto,
                            machine: machine.snapshot(),
                        });
                    }
                    ApplyJob::Restore(bytes) => {
                        let _ = reply_tx.send(ApplyReply::Restore(machine.restore(&bytes)));
                    }
                }
                let left = worker_depth.fetch_sub(1, Ordering::Relaxed) - 1;
                if let Some(m) = metrics.get() {
                    m.apply_queue_depth.set(left);
                }
            }
            machine
        });
        ApplyWorker {
            jobs,
            replies,
            depth,
            handle: Some(handle),
        }
    }
}

impl<S> ApplyWorker<S> {
    /// Submits one job, blocking if the bounded queue is full. Returns
    /// the queue depth after the submit (for the gauge).
    pub(crate) fn submit(&self, job: ApplyJob) -> u64 {
        let depth = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.jobs.push(job);
        depth
    }

    /// A reply if one is ready (never blocks).
    pub(crate) fn try_reply(&self) -> Option<ApplyReply> {
        self.replies.try_recv()
    }

    /// Blocks until the next reply (restore path only).
    ///
    /// # Panics
    ///
    /// Panics if the worker died with replies outstanding (it never
    /// panics by contract — `StateMachine` methods are total).
    pub(crate) fn wait_reply(&self) -> ApplyReply {
        self.replies
            .recv()
            .expect("apply worker alive while replies are outstanding")
    }

    /// Closes the queue, joins the worker, and hands back the machine
    /// plus any replies (snapshot bytes) still in flight — the worker
    /// drains every queued job before exiting, so the machine has
    /// executed everything submitted.
    pub(crate) fn join(mut self) -> (S, Vec<ApplyReply>) {
        self.jobs.close();
        let machine = self
            .handle
            .take()
            .expect("join is the only consumer of the worker handle")
            .join()
            .expect("apply worker never panics");
        let mut leftover = Vec::new();
        while let Some(reply) = self.replies.try_recv() {
            leftover.push(reply);
        }
        (machine, leftover)
    }
}

impl<S> Drop for ApplyWorker<S> {
    fn drop(&mut self) {
        // A worker dropped without `join` (node dropped mid-run) must not
        // outlive the machine's owner: close and join here too.
        self.jobs.close();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl<S> std::fmt::Debug for ApplyWorker<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ApplyWorker")
            .field("depth", &self.depth.load(Ordering::Relaxed))
            .finish()
    }
}

/// Who owns the node's state machine: the node itself (inline apply, the
/// default and the simulator's only mode) or a dedicated worker thread.
#[derive(Debug)]
pub(crate) enum ApplyStage<S> {
    /// The node applies on the event loop — the pre-PR-9 datapath.
    Inline(S),
    /// Execution is offloaded to an [`ApplyWorker`].
    Offloop(ApplyWorker<S>),
    /// Transient placeholder while the stage is being swapped; never
    /// observable outside `SmrNode`'s own reconfiguration.
    Swapping,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::CountingMachine;

    #[test]
    fn worker_applies_in_order_and_returns_machine() {
        let worker = ApplyWorker::spawn(CountingMachine::new(), MetricsHandle::none());
        for i in 0..10u64 {
            worker.submit(ApplyJob::Batch(vec![Value::from_u64(i)]));
        }
        let (machine, leftover) = worker.join();
        assert_eq!(machine.applied(), 10, "every batch executed before join");
        assert!(leftover.is_empty(), "batches produce no replies");
    }

    #[test]
    fn snapshot_marker_serializes_post_batch_state() {
        // Inline reference: apply 3 commands, snapshot.
        let mut reference = CountingMachine::new();
        for i in 0..3u64 {
            reference.apply(&Value::from_u64(i));
        }
        let expected = reference.snapshot();

        let worker = ApplyWorker::spawn(CountingMachine::new(), MetricsHandle::none());
        worker.submit(ApplyJob::Batch(
            (0..3u64).map(Value::from_u64).collect::<Vec<_>>(),
        ));
        worker.submit(ApplyJob::Snapshot(3));
        match worker.wait_reply() {
            ApplyReply::Snapshot { upto, machine } => {
                assert_eq!(upto, 3);
                assert_eq!(machine, expected, "snapshot ordered after the batch");
            }
            other => panic!("unexpected reply: {other:?}"),
        }
        let (machine, _) = worker.join();
        assert_eq!(machine.applied(), 3);
    }

    #[test]
    fn restore_round_trips_and_rejects_garbage() {
        let mut donor = CountingMachine::new();
        donor.apply(&Value::from_u64(7));
        let snap = donor.snapshot();

        let worker = ApplyWorker::spawn(CountingMachine::new(), MetricsHandle::none());
        worker.submit(ApplyJob::Restore(snap));
        assert!(matches!(worker.wait_reply(), ApplyReply::Restore(true)));
        worker.submit(ApplyJob::Restore(vec![0xFF; 3]));
        assert!(matches!(worker.wait_reply(), ApplyReply::Restore(false)));
        let (machine, _) = worker.join();
        assert_eq!(machine.applied(), 1, "failed restore left state intact");
    }

    #[test]
    fn depth_gauge_tracks_outstanding_jobs() {
        let metrics = MetricsHandle::standalone();
        let worker = ApplyWorker::spawn(CountingMachine::new(), metrics.clone());
        for i in 0..5u64 {
            worker.submit(ApplyJob::Batch(vec![Value::from_u64(i)]));
        }
        let (machine, _) = worker.join();
        assert_eq!(machine.applied(), 5);
        assert_eq!(
            metrics.get().unwrap().apply_queue_depth.get(),
            0,
            "depth gauge returns to zero once the worker drains"
        );
    }
}
