//! The sharded replicated KV store: M consensus groups over one mesh.
//!
//! A single totally-ordered log serializes every command through one
//! leader at a time. When the store's keyspace partitions cleanly — KV
//! operations touch exactly one key — that total order is stronger than
//! the semantics require: commands on different keys never need to be
//! ordered against each other. This module exploits that: a
//! [`ShardMap`] splits the keyspace into `m`
//! ranges, each range gets its **own** independent consensus group (all
//! `n` processes participate in every group), and client commands are
//! routed to the group owning their key. The groups run concurrently over
//! the *same* process mesh via group-tagged frames
//! ([`fastbft_runtime::shard`]), and [`SmrNode::with_leader_stagger`]
//! spreads the groups' current leaders over distinct processes, so `m`
//! proposals make progress at once.
//!
//! Consistency across shards is by construction: every command is
//! deterministically routed by its key, each group's log satisfies the
//! single-group SMR safety condition, and no key ever appears in two
//! groups — [`ShardedKvHandle::logs_agree`] checks all three.

use std::sync::Arc;
use std::time::Duration;

use fastbft_core::replica::ReplicaOptions;
use fastbft_core::Preverifier;
use fastbft_crypto::KeyDirectory;
use fastbft_runtime::{
    spawn_with, split_groups, ChannelTransport, GroupMessage, NodeSeat, Preverify, ShardPump,
    Transport, VerifyPool,
};
use fastbft_sim::Actor;
use fastbft_types::{Config, ProcessId, ShardMap, Value};

use crate::kv::{KvCommand, KvStore};
use crate::multiplex::{checkpoint_signature_valid, SlotMessage, SmrNode};
use crate::runtime::SmrClusterHandle;

/// The verify-pool warmer for [`SlotMessage`] traffic: consensus frames go
/// through the core [`Preverifier`] (share/cert checks into the shared
/// directory memo), checkpoint attestations are pre-verified against the
/// snapshot domain. Pure — the node re-runs every check as the authority;
/// this only makes those re-runs memo hits.
pub fn slot_preverifier(cfg: Config, dir: KeyDirectory) -> Preverify<SlotMessage> {
    let inner = Preverifier::new(cfg, dir.clone());
    Arc::new(move |msg: &SlotMessage| match msg {
        SlotMessage::Consensus { inner: m, .. } => inner.preverify(m),
        SlotMessage::Checkpoint { upto, digest, sig } => {
            let _ = checkpoint_signature_valid(&dir, *upto, digest, sig);
        }
        // Snapshot/backfill payloads are verified against quorum rules the
        // node alone tracks — nothing to warm.
        _ => {}
    })
}

/// Attaches a [`VerifyPool`] of `workers` threads (running
/// [`slot_preverifier`]) to every seat. `workers = 0` returns the seats
/// untouched — no pool, no shared memo, the bit-for-bit single-threaded
/// datapath.
pub fn with_verify_pools<T: Transport<SlotMessage>>(
    seats: Vec<NodeSeat<SlotMessage, T>>,
    cfg: Config,
    dir: &KeyDirectory,
    workers: usize,
) -> Vec<NodeSeat<SlotMessage, T>> {
    if workers == 0 {
        return seats;
    }
    seats
        .into_iter()
        .map(|seat| {
            let pool = VerifyPool::new(workers, slot_preverifier(cfg, dir.clone()));
            seat.with_verify_pool(pool)
        })
        .collect()
}

/// The group owning `key`: the [`ShardMap`] range its digest's lead byte
/// falls in. Routing on the digest rather than the raw lead byte matters
/// for `String` keys — UTF-8 never produces lead bytes in `128..192`, so
/// raw-byte ranges would leave shards structurally empty; the digest
/// spreads any key distribution uniformly over the full byte space while
/// staying deterministic per key.
pub fn kv_shard_of(map: ShardMap, key: &str) -> usize {
    map.shard_of(&fastbft_crypto::digest(key.as_bytes()))
}

/// The client-command router for a KV keyspace: a command goes to the
/// group owning its key ([`kv_shard_of`]); keyless commands (`Noop`,
/// garbage) go to group 0.
pub fn kv_shard_router(map: ShardMap) -> impl Fn(&Value) -> usize + Send + Sync + Clone + 'static {
    move |v: &Value| match KvCommand::from_value(v) {
        Some(KvCommand::Put { key, .. } | KvCommand::Get { key } | KvCommand::Delete { key }) => {
            kv_shard_of(map, &key)
        }
        _ => 0,
    }
}

/// Handle to a sharded replicated KV store: one [`SmrClusterHandle`] per
/// key-range group, a router that sends each submitted command to the
/// group owning its key, and the per-node [`ShardPump`]s that multiplex
/// all groups over the shared mesh.
pub struct ShardedKvHandle {
    groups: Vec<SmrClusterHandle>,
    map: ShardMap,
    pumps: Vec<ShardPump>,
    /// Commands routed to each group so far (drives
    /// [`await_submitted`](ShardedKvHandle::await_submitted)).
    submitted: Vec<u64>,
    idle: Value,
    n: usize,
}

impl std::fmt::Debug for ShardedKvHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedKvHandle")
            .field("shards", &self.map.shards())
            .field("n", &self.n)
            .field("submitted", &self.submitted)
            .finish()
    }
}

impl ShardedKvHandle {
    /// Wraps already-spawned group clusters (e.g. built over a TCP mesh
    /// with `fastbft_net::tcp_shard_mesh`): `groups[g]` must be the
    /// cluster of the `g`-th key range of `map`, `idle` the nodes' idle
    /// filler, and `pumps` the per-node routers — kept here so they are
    /// stopped *after* the group clusters shut down (their teardown-order
    /// contract).
    ///
    /// # Panics
    ///
    /// Panics if the group count does not match the map.
    pub fn assemble(
        groups: Vec<SmrClusterHandle>,
        map: ShardMap,
        pumps: Vec<ShardPump>,
        idle: Value,
        n: usize,
    ) -> Self {
        assert_eq!(groups.len(), map.shards(), "one cluster per shard");
        let submitted = vec![0; groups.len()];
        ShardedKvHandle {
            groups,
            map,
            pumps,
            submitted,
            idle,
            n,
        }
    }

    /// Spawns a sharded KV cluster over the in-process channel transport:
    /// `shards` independent groups of `n` [`SmrNode`]s (group `g` staggered
    /// to lead from process `(g mod n) + 1` first), all multiplexed over
    /// one `n`-process mesh. `verify_workers > 0` additionally attaches a
    /// [`VerifyPool`] to every seat.
    pub fn spawn_channel(
        cfg: Config,
        seed: u64,
        shards: usize,
        opts: ReplicaOptions,
        batch_size: usize,
        tick: Duration,
        verify_workers: usize,
    ) -> Self {
        let n = cfg.n();
        let map = ShardMap::new(shards);
        let (pairs, dir) = KeyDirectory::generate(n, seed);
        let idle = KvCommand::Noop.to_value();

        let mesh = ChannelTransport::<GroupMessage<SlotMessage>>::mesh(n);
        let mut per_node = Vec::with_capacity(n);
        let mut pumps = Vec::with_capacity(n);
        for (transport, _control) in mesh {
            let sender = transport.sender();
            let (node_groups, pump) = split_groups(transport, sender, shards, kv_shard_router(map));
            per_node.push(node_groups.into_iter());
            pumps.push(pump);
        }

        // Transpose: group `g` is element `g` of every node's split.
        let mut groups = Vec::with_capacity(shards);
        for g in 0..shards {
            let mut seats = Vec::with_capacity(n);
            for (i, node) in per_node.iter_mut().enumerate() {
                let (transport, control) = node.next().expect("one transport per group");
                let actor: Box<dyn Actor<SlotMessage> + Send> = Box::new(
                    SmrNode::new(
                        cfg,
                        pairs[i].clone(),
                        dir.clone(),
                        KvStore::new(),
                        Vec::new(),
                        idle.clone(),
                    )
                    .with_options(opts.clone())
                    .with_batch_size(batch_size)
                    .with_leader_stagger(g as u64),
                );
                seats.push(NodeSeat {
                    actor,
                    transport,
                    control,
                    verify: None,
                });
            }
            let seats = with_verify_pools(seats, cfg, &dir, verify_workers);
            groups.push(SmrClusterHandle::new(
                spawn_with(seats, tick),
                n,
                idle.clone(),
            ));
        }
        ShardedKvHandle::assemble(groups, map, pumps, idle, n)
    }

    /// The keyspace partition this cluster serves.
    pub fn map(&self) -> ShardMap {
        self.map
    }

    /// The group that orders commands on `key` (see [`kv_shard_of`]).
    pub fn shard_of(&self, key: &str) -> usize {
        kv_shard_of(self.map, key)
    }

    /// Routes `command` to the group owning its key and submits it there
    /// (every replica of that group receives it). Returns the group index.
    pub fn submit(&mut self, command: Value) -> usize {
        let g = kv_shard_router(self.map)(&command);
        self.groups[g].submit(command);
        self.submitted[g] += 1;
        g
    }

    /// Waits until, in every group, every replica has applied all commands
    /// submitted to that group so far. `false` on timeout (`timeout` is
    /// per group, so the worst case is `shards × timeout` — groups that
    /// are already done return immediately).
    pub fn await_submitted(&mut self, timeout: Duration) -> bool {
        let n = self.n;
        self.submitted
            .iter()
            .zip(self.groups.iter_mut())
            .all(|(&k, group)| k == 0 || group.await_commands(ProcessId::all(n), k, timeout))
    }

    /// The per-group cluster handles, in shard order.
    pub fn groups(&self) -> &[SmrClusterHandle] {
        &self.groups
    }

    /// Mutable access to one group's cluster handle (chaos hooks,
    /// fine-grained waits).
    pub fn group_mut(&mut self, g: usize) -> &mut SmrClusterHandle {
        &mut self.groups[g]
    }

    /// The sharded safety condition, all three legs:
    /// per-group log agreement (wherever two replicas both applied an
    /// index, the same command), routing discipline (every non-idle
    /// command in group `g`'s logs belongs to `g`'s key range), and — by
    /// the two together — no key ordered in two groups.
    pub fn logs_agree(&self) -> bool {
        let router = kv_shard_router(self.map);
        self.groups.iter().enumerate().all(|(g, group)| {
            group.logs_agree()
                && group
                    .logs()
                    .iter()
                    .flat_map(|log| log.values())
                    .all(|cmd| *cmd == self.idle || router(cmd) == g)
        })
    }

    /// Stops every group cluster, then the pumps (in that order — the
    /// pumps own the underlying mesh transports), handing back each
    /// group's actors in seat order.
    #[allow(clippy::type_complexity)]
    pub fn shutdown(self) -> Vec<Vec<Box<dyn Actor<SlotMessage> + Send>>> {
        let ShardedKvHandle { groups, pumps, .. } = self;
        let actors = groups.into_iter().map(SmrClusterHandle::shutdown).collect();
        for pump in pumps {
            pump.stop();
        }
        actors
    }
}
