//! Slot multiplexing: one consensus instance per log position.
//!
//! [`SmrNode`] wraps one [`Replica`] per slot and
//! routes [`SlotMessage`]s between them. Decided slots are applied to the
//! node's [`StateMachine`] strictly in slot order, so all replicas execute
//! the same command sequence — the replicated state machine of the paper's
//! introduction.
//!
//! Four invariants beyond plain slot routing:
//!
//! * **At-most-once execution.** Commands a node proposes are moved into a
//!   per-slot in-flight set (never re-proposed while a slot is pipelined),
//!   and applying dedups by command identity — a command decided in two
//!   slots (possible when slots overlap, or when several nodes propose the
//!   same broadcast command) executes and is logged exactly once. The
//!   untagged dedup set rotates generationally at snapshot boundaries, so
//!   its identity window spans the last *two* snapshot intervals instead of
//!   the whole log (tagged commands keep exact watermark semantics; see
//!   [`tag_command`]).
//! * **Bounded buffering.** Messages for slots beyond the instantiation
//!   window are stashed, but the stash is bounded in both dimensions (slot
//!   horizon and total message count) so a Byzantine peer spraying frames
//!   for arbitrarily distant slots cannot exhaust memory.
//! * **Idle quiescence.** The pipeline opens new slots only while there is
//!   work (pending or in-flight commands, or a peer demonstrably ahead);
//!   an idle cluster stops proposing filler instead of burning CPU — a
//!   client command (see [`Actor::on_client`]) restarts it.
//! * **Adaptive proposal batching.** Under [`Batching::Adaptive`] the
//!   number of commands drained into each proposal is a feedback-tuned
//!   *target* rather than a constant: it doubles while drains leave a
//!   backlog behind, halves when drains run far under target or commit
//!   latency climbs well above its observed floor, and is bounded by
//!   command-count and byte caps. A batch held back while the pipeline is
//!   busy flushes the moment the pipeline quiesces or a flush-age backstop
//!   timer fires — a lone command on an idle cluster never waits.
//!   [`Batching::Fixed`] (what [`with_batch_size`](SmrNode::with_batch_size)
//!   configures) preserves the constant-size behavior exactly.
//! * **Off-loop apply.** With `ReplicaOptions::apply_workers > 0` the
//!   state machine lives on a dedicated in-order apply worker: decided
//!   batches are handed off instead of executed on the event loop, and
//!   snapshot serialization happens off-loop too (the checkpoint is
//!   assembled and broadcast when the worker's bytes come back). All
//!   dedup/log bookkeeping stays synchronous, so applied events and logs
//!   are bit-for-bit those of the inline path; `apply_workers = 0` (the
//!   default) *is* the inline path.
//! * **Ingress backpressure.** `on_client` enforces a bounded
//!   pending-command budget (count and bytes); submissions past it are
//!   shed and counted instead of growing the queue without limit.
//! * **Catch-up.** Every `snapshot_interval` applied slots a node takes a
//!   digest-attested snapshot of its machine + dedup state, truncates the
//!   log and dedup generations below it, and broadcasts a signed
//!   [`SlotMessage::Checkpoint`]. A node that observes f+1 peers ahead of
//!   it by a recovery-gap margin requests state transfer, installs the
//!   first snapshot carrying f+1 matching attestations, absorbs the
//!   committed suffix via quorum-matched [`SlotMessage::Backfill`] frames,
//!   and resumes voting — so a partitioned or restarted replica rejoins
//!   instead of stalling behind the stash horizon forever.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::mem;
use std::time::Instant;

use fastbft_core::message::Message;
use fastbft_core::replica::{CommitPath, Replica, ReplicaOptions};
use fastbft_crypto::{Digest, KeyDirectory, KeyPair, Signature};
use fastbft_sim::{Actor, Effects, Outgoing, SimDuration, SimMessage, TimerId};
use fastbft_types::wire::{Decode, Encode, WireError, WireReader};
use fastbft_types::{Config, ProcessId, Value};

use crate::apply::{ApplyJob, ApplyReply, ApplyStage, ApplyWorker};
use crate::machine::StateMachine;

/// A frame of the replicated state machine: consensus traffic tagged with
/// its log slot, plus the checkpoint / state-transfer control plane.
// `Consensus` dominates the traffic, so the enum's size IS the consensus
// frame's size — boxing `Message` to appease `large_enum_variant` would
// buy nothing but a heap allocation per hot-path message.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum SlotMessage {
    /// A consensus message for one log position.
    Consensus {
        /// The log position this message belongs to.
        slot: u64,
        /// The inner consensus message.
        inner: Message,
    },
    /// "I snapshotted at `upto` and attest its payload digest": broadcast
    /// after every local snapshot, collected by peers so any of them can
    /// later serve that snapshot with f+1 attestations attached.
    Checkpoint {
        /// First slot *not* covered by the snapshot.
        upto: u64,
        /// Digest of the canonical snapshot payload bytes.
        digest: Digest,
        /// Signature over `(domain, upto, digest)` by the checkpointing
        /// process.
        sig: Signature,
    },
    /// "Send me everything after `have`": a recovering replica asking peers
    /// for their latest snapshot and committed suffix.
    SnapshotRequest {
        /// The requester's next unapplied slot.
        have: u64,
    },
    /// A snapshot with its attestations; installable once `sigs` holds f+1
    /// valid checkpoint signatures from distinct processes over the payload
    /// digest.
    SnapshotResponse {
        /// First slot not covered by the payload.
        upto: u64,
        /// Canonical `SnapshotPayload` bytes.
        payload: Vec<u8>,
        /// Checkpoint signatures over the payload digest.
        sigs: Vec<Signature>,
    },
    /// One committed slot value, replayed for a recovering peer. Applied
    /// only once f+1 distinct senders agree on the value (the transport
    /// authenticates senders; f+1 matching copies pin at least one correct
    /// replica's committed value).
    Backfill {
        /// The slot the value was committed in.
        slot: u64,
        /// The committed value.
        value: Value,
    },
}

impl SimMessage for SlotMessage {
    fn kind(&self) -> &'static str {
        match self {
            SlotMessage::Consensus { inner, .. } => inner.kind(),
            SlotMessage::Checkpoint { .. } => "checkpoint",
            SlotMessage::SnapshotRequest { .. } => "snap-request",
            SlotMessage::SnapshotResponse { .. } => "snap-response",
            SlotMessage::Backfill { .. } => "backfill",
        }
    }

    fn wire_size(&self) -> usize {
        match self {
            SlotMessage::Consensus { inner, .. } => 1 + 8 + inner.wire_size(),
            SlotMessage::Checkpoint { .. } => 1 + 8 + 32 + Signature::WIRE_SIZE,
            SlotMessage::SnapshotRequest { .. } => 1 + 8,
            SlotMessage::SnapshotResponse { payload, sigs, .. } => {
                1 + 8 + 4 + payload.len() + 4 + sigs.len() * Signature::WIRE_SIZE
            }
            SlotMessage::Backfill { value, .. } => 1 + 8 + 4 + value.as_bytes().len(),
        }
    }
}

// Wire encoding: a variant tag, then the variant fields in declaration
// order — the same canonical-strict discipline as `Message`, so slot-tagged
// frames travel the authenticated TCP transport unchanged.
impl Encode for SlotMessage {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            SlotMessage::Consensus { slot, inner } => {
                buf.push(1);
                slot.encode(buf);
                inner.encode(buf);
            }
            SlotMessage::Checkpoint { upto, digest, sig } => {
                buf.push(2);
                upto.encode(buf);
                digest.encode(buf);
                sig.encode(buf);
            }
            SlotMessage::SnapshotRequest { have } => {
                buf.push(3);
                have.encode(buf);
            }
            SlotMessage::SnapshotResponse {
                upto,
                payload,
                sigs,
            } => {
                buf.push(4);
                upto.encode(buf);
                payload.encode(buf);
                sigs.encode(buf);
            }
            SlotMessage::Backfill { slot, value } => {
                buf.push(5);
                slot.encode(buf);
                value.encode(buf);
            }
        }
    }
}

impl Decode for SlotMessage {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.take_u8()? {
            1 => SlotMessage::Consensus {
                slot: u64::decode(r)?,
                inner: Message::decode(r)?,
            },
            2 => SlotMessage::Checkpoint {
                upto: u64::decode(r)?,
                digest: <[u8; 32]>::decode(r)?,
                sig: Signature::decode(r)?,
            },
            3 => SlotMessage::SnapshotRequest {
                have: u64::decode(r)?,
            },
            4 => SlotMessage::SnapshotResponse {
                upto: u64::decode(r)?,
                payload: Vec::<u8>::decode(r)?,
                sigs: Vec::<Signature>::decode(r)?,
            },
            5 => SlotMessage::Backfill {
                slot: u64::decode(r)?,
                value: Value::decode(r)?,
            },
            tag => {
                return Err(WireError::InvalidTag {
                    tag,
                    context: "SlotMessage",
                })
            }
        })
    }
}

/// Magic prefix marking a client-tagged command (see [`tag_command`]).
const CLIENT_TAG_MAGIC: &[u8; 4] = b"FBC1";

/// Encodes a client command as `(client id, sequence number, body)` — the
/// structured form of "clients tag id+seq for repeats" from the at-most-once
/// semantics. Tagged commands are deduplicated by `(client, seq)` with a
/// per-client **watermark**, so the dedup state a node keeps for a client is
/// bounded by that client's out-of-order window instead of growing with the
/// log (untagged commands fall back to the content-digest generations).
///
/// Sequence numbers start at 1; a client reusing a `(client, seq)` pair for
/// a different body has only itself to hurt (the second body is treated as
/// a duplicate — deterministically, on every replica).
///
/// **Trust model.** The tag is plain bytes inside an opaque command, so a
/// `(client, seq)` identity is only as trustworthy as the proposals that
/// carry it: a Byzantine leader that commits a *forged* body under some
/// `(client, seq)` consumes that identity, and the client's real command
/// with the same pair will dedup against it (deterministically, on every
/// replica — safety is unaffected, but that client's command is censored).
/// Digest dedup did not grant that power, at the cost of unbounded state.
/// The standard remedy — clients *sign* tagged commands and replicas
/// propose only verified ones — needs per-client keys, which this
/// workspace's cluster-only key directory does not model yet; until then,
/// tag commands only where proposers are trusted or censorship of a
/// specific `(client, seq)` is acceptable, and use untagged commands
/// otherwise.
pub fn tag_command(client: u64, seq: u64, body: &[u8]) -> Value {
    let mut bytes = Vec::with_capacity(4 + 8 + 8 + body.len());
    bytes.extend_from_slice(CLIENT_TAG_MAGIC);
    bytes.extend_from_slice(&client.to_be_bytes());
    bytes.extend_from_slice(&seq.to_be_bytes());
    bytes.extend_from_slice(body);
    Value::new(bytes)
}

/// Parses a command produced by [`tag_command`], returning its
/// `(client, seq)` identity. `None` for untagged (plain) commands.
pub fn parse_client_tag(cmd: &Value) -> Option<(u64, u64)> {
    let bytes = cmd.as_bytes();
    if bytes.len() < 20 || &bytes[..4] != CLIENT_TAG_MAGIC {
        return None;
    }
    let client = u64::from_be_bytes(bytes[4..12].try_into().expect("sized slice"));
    let seq = u64::from_be_bytes(bytes[12..20].try_into().expect("sized slice"));
    Some((client, seq))
}

/// Per-client at-most-once state: every sequence number `<= watermark` has
/// been applied, plus the (small, transient) set of applied seqs above the
/// watermark — non-empty only while commits land out of submission order.
#[derive(Debug, Default)]
struct ClientDedup {
    watermark: u64,
    above: BTreeSet<u64>,
}

impl ClientDedup {
    fn contains(&self, seq: u64) -> bool {
        seq <= self.watermark || self.above.contains(&seq)
    }

    /// Records `seq` as applied and advances the watermark over the now
    /// contiguous prefix, pruning every entry the watermark overtakes.
    fn insert(&mut self, seq: u64) {
        self.above.insert(seq);
        while self.above.remove(&(self.watermark + 1)) {
            self.watermark += 1;
        }
    }
}

/// Default [`SmrNode::with_pipeline_depth`]: a few slots in flight keeps
/// the transport busy (frames from several slots coalesce into one write)
/// without flooding the window when a slot stalls.
const DEFAULT_PIPELINE_DEPTH: u64 = 16;

/// How many slots ahead of the lowest unapplied slot a node will
/// instantiate replicas for. Messages beyond the window are buffered.
pub const SLOT_WINDOW: u64 = 64;

/// Messages for slots at or beyond `applied + MAX_STASH_AHEAD` are dropped
/// rather than stashed: no correct peer's pipeline runs this far ahead of a
/// node it shares quorums with, so such traffic is hostile — or the node
/// itself has fallen hopelessly behind, which the recovery path (not the
/// stash) is responsible for fixing.
pub const MAX_STASH_AHEAD: u64 = 4 * SLOT_WINDOW;

/// Total messages the stash may hold across all slots. When full, messages
/// for the farthest slots are evicted first — the nearest slots are the
/// ones that unblock the pipeline.
const MAX_STASHED_MESSAGES: usize = 4096;

/// Default [`SmrNode::with_snapshot_interval`]: a snapshot every this many
/// applied slots. Two windows keeps checkpoint overhead negligible while
/// bounding per-replica dedup/log memory to O(interval).
pub const DEFAULT_SNAPSHOT_INTERVAL: u64 = 2 * SLOT_WINDOW;

/// A node requests state transfer once f+1 distinct peers claim tips at
/// least this many slots ahead of it — far enough that normal pipelining
/// (depth ≤ `SLOT_WINDOW`) never trips it, near enough to recover long
/// before the stash horizon drops everything.
const RECOVERY_GAP: u64 = SLOT_WINDOW / 2;

/// Timer id reserved for re-issuing a [`SlotMessage::SnapshotRequest`]
/// while a recovery gap persists. Slot timers are `slot * TIMER_STRIDE +
/// gen`, so this value is unreachable by any realistic slot.
const RECOVERY_TIMER: TimerId = TimerId(u64::MAX);

/// Timer id reserved for draining apply-worker replies: armed when a
/// checkpoint's snapshot bytes are being serialized off-loop, re-armed
/// until the reply arrives. Like [`RECOVERY_TIMER`], unreachable by any
/// realistic slot timer.
const APPLY_TIMER: TimerId = TimerId(u64::MAX - 1);

/// Timer id reserved for the adaptive batcher's flush-age backstop: a
/// batch held back while the pipeline is busy flushes when it fires even
/// if the pipeline never quiesces.
const BATCH_FLUSH_TIMER: TimerId = TimerId(u64::MAX - 2);

/// Timer namespace stride: slot id in the high bits, the replica's own
/// timer generation in the low bits.
const TIMER_STRIDE: u64 = 1 << 32;

/// Default [`AdaptiveBatch::max_batch_cmds`].
pub const DEFAULT_MAX_BATCH_CMDS: usize = 256;

/// Default [`AdaptiveBatch::max_batch_bytes`]: 1 MiB.
pub const DEFAULT_MAX_BATCH_BYTES: usize = 1 << 20;

/// Default ingress budget in queued commands (see
/// [`SmrNode::with_ingress_budget`]).
pub const DEFAULT_INGRESS_MAX_CMDS: usize = 65_536;

/// Default ingress budget in queued command bytes: 64 MiB.
pub const DEFAULT_INGRESS_MAX_BYTES: usize = 64 << 20;

/// Tuning knobs of the self-adjusting proposal batcher (see
/// [`Batching::Adaptive`]). The *target* batch size is not configured —
/// it starts at 1 and moves with feedback: it doubles while a drain
/// leaves backlog behind (the pipeline is underbatching), halves when
/// drains run far under target or the commit-latency EWMA climbs well
/// above its observed floor (batches outgrew the cluster), and always
/// stays within `1..=max_batch_cmds`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdaptiveBatch {
    /// Hard cap on commands per proposal (and the ceiling the adaptive
    /// target grows toward).
    pub max_batch_cmds: usize,
    /// Hard cap on the summed command bytes per proposal. A single
    /// oversized command still ships alone — the cap bounds *batching*,
    /// it cannot wedge the queue.
    pub max_batch_bytes: usize,
    /// How long a held batch may wait before the backstop timer forces a
    /// flush (virtual time, like every protocol timer). Only reached
    /// when the pipeline stays busy without ever quiescing.
    pub flush_age: SimDuration,
}

impl Default for AdaptiveBatch {
    fn default() -> Self {
        AdaptiveBatch {
            max_batch_cmds: DEFAULT_MAX_BATCH_CMDS,
            max_batch_bytes: DEFAULT_MAX_BATCH_BYTES,
            flush_age: SimDuration::DELTA,
        }
    }
}

/// How queued client commands are grouped into slot proposals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Batching {
    /// Every proposal drains up to this constant many queued commands —
    /// the pre-adaptive behavior, kept as the escape hatch for hand-tuned
    /// deployments ([`SmrNode::with_batch_size`] configures this).
    Fixed(usize),
    /// Feedback-tuned batch sizes: lone commands flush immediately on an
    /// idle pipeline, backlogs grow the batch target toward the caps (see
    /// [`AdaptiveBatch`]).
    Adaptive(AdaptiveBatch),
}

impl Default for Batching {
    fn default() -> Self {
        Batching::Fixed(1)
    }
}

/// Why a proposal batch was flushed — the adaptive batcher's metrics
/// breakdown (fixed-size batching always flushes for `Size`).
#[derive(Clone, Copy, Debug)]
enum FlushReason {
    /// The drain reached the (fixed or adaptive) command-count target.
    Size,
    /// The byte cap bound the drain below its command-count target.
    Bytes,
    /// The pipeline was idle, so everything queued flushed at once.
    Quiescence,
    /// The flush-age backstop fired for a held batch.
    Timeout,
}

/// Bookkeeping captured synchronously at a checkpoint boundary while the
/// machine's snapshot bytes are serialized off-loop; married to the
/// [`ApplyReply::Snapshot`] bytes to assemble the canonical payload.
struct PendingCheckpoint {
    upto: u64,
    log_offset: u64,
    client_commands: u64,
    dedup: Vec<Digest>,
    clients: Vec<ClientEntry>,
}

/// Domain-separation prefix for checkpoint attestations (keeps snapshot
/// signatures from colliding with consensus statements).
const SNAPSHOT_DOMAIN: &[u8; 8] = b"fbftSNAP";

/// The checkpoint attestation a process broadcasts after snapshotting at
/// `upto`: a signature over `(domain, upto, payload digest)`. Public so
/// tests can mint attestations for hand-built snapshots.
pub fn checkpoint_signature(keys: &KeyPair, upto: u64, digest: &Digest) -> Signature {
    keys.sign_parts(&[SNAPSHOT_DOMAIN, &upto.to_be_bytes(), digest])
}

/// Whether `sig` is a valid checkpoint attestation over `(upto, digest)`
/// — the verify twin of [`checkpoint_signature`], exposed so verify
/// pools can warm the directory's memo with exactly the check the node
/// will re-run.
pub fn checkpoint_signature_valid(
    dir: &KeyDirectory,
    upto: u64,
    digest: &Digest,
    sig: &Signature,
) -> bool {
    dir.verify_parts(&[SNAPSHOT_DOMAIN, &upto.to_be_bytes(), digest], sig)
}

/// Whether a [`SlotMessage::SnapshotResponse`] carries f+1 valid checkpoint
/// signatures from distinct processes over `payload`'s digest — the
/// quorum-authentication a recovering node demands before installing (f+1
/// distinct signers pin at least one correct replica attesting the bytes).
/// The node additionally requires the payload to parse as a
/// `SnapshotPayload` whose `upto` matches; any single-byte tamper of a
/// response breaks the digest (hence every signature) or the strict codec.
pub fn snapshot_response_valid(
    dir: &KeyDirectory,
    f: usize,
    upto: u64,
    payload: &[u8],
    sigs: &[Signature],
) -> bool {
    let digest = fastbft_crypto::digest(payload);
    let mut signers = BTreeSet::new();
    for sig in sigs {
        if dir.verify_parts(&[SNAPSHOT_DOMAIN, &upto.to_be_bytes(), &digest], sig) {
            signers.insert(sig.signer);
        }
    }
    signers.len() > f
}

/// One client's dedup state inside a snapshot payload.
#[derive(Debug, PartialEq)]
struct ClientEntry {
    client: u64,
    watermark: u64,
    above: Vec<u64>,
}

fastbft_types::impl_wire_struct!(ClientEntry {
    client,
    watermark,
    above
});

/// The canonical snapshot payload: everything a replica needs to resume
/// applying from slot `upto`. Canonical because every constituent is
/// emitted in sorted order from deterministic state, so replicas that
/// snapshotted at the same boundary produce byte-identical payloads — and
/// one digest identifies the snapshot cluster-wide.
#[derive(Debug, PartialEq)]
struct SnapshotPayload {
    /// First slot not covered by this snapshot.
    upto: u64,
    /// Global log index of the first post-snapshot log entry.
    log_offset: u64,
    /// Client (non-filler) commands applied up to `upto`.
    client_commands: u64,
    /// [`StateMachine::snapshot`] bytes.
    machine: Vec<u8>,
    /// Untagged dedup digests still in their identity window, sorted.
    dedup: Vec<Digest>,
    /// Per-client watermark dedup state, sorted by client id.
    clients: Vec<ClientEntry>,
}

fastbft_types::impl_wire_struct!(SnapshotPayload {
    upto,
    log_offset,
    client_commands,
    machine,
    dedup,
    clients
});

/// Encodes the canonical snapshot payload from its constituents. Free of
/// `SmrNode` so the off-loop path can assemble it from a captured
/// [`PendingCheckpoint`] plus the worker's machine bytes — producing the
/// exact bytes the inline path would.
fn encode_snapshot_payload(
    upto: u64,
    log_offset: u64,
    client_commands: u64,
    machine: Vec<u8>,
    dedup: Vec<Digest>,
    clients: Vec<ClientEntry>,
) -> Vec<u8> {
    fastbft_types::wire::to_bytes(&SnapshotPayload {
        upto,
        log_offset,
        client_commands,
        machine,
        dedup,
        clients,
    })
}

/// The latest local snapshot, with the attestations gathered for it.
struct NodeSnapshot {
    upto: u64,
    digest: Digest,
    payload: Vec<u8>,
    /// Checkpoint signatures over `digest`, by signer (own included).
    sigs: BTreeMap<ProcessId, Signature>,
}

/// One process of the replicated state machine. See module docs.
pub struct SmrNode<S: StateMachine> {
    cfg: Config,
    keys: KeyPair,
    dir: KeyDirectory,
    opts: ReplicaOptions,
    /// Where the state machine lives: inline on the event loop (default)
    /// or on a dedicated apply worker (`opts.apply_workers > 0`).
    stage: ApplyStage<S>,
    /// Commands this node wants committed, in submission order.
    pending: VecDeque<Value>,
    /// Summed command bytes across `pending` (ingress budget accounting).
    pending_bytes: usize,
    /// Proposed-when-idle filler command.
    idle_input: Value,
    /// How queued commands are grouped into slot proposals.
    batching: Batching,
    /// The adaptive batcher's current per-proposal command target
    /// (ignored under [`Batching::Fixed`]).
    batch_target: usize,
    /// Whether a [`BATCH_FLUSH_TIMER`] is outstanding for held commands.
    flush_armed: bool,
    /// Set when the flush-age backstop fired with commands still queued:
    /// the next drain opportunity flushes regardless of the target.
    flush_due: bool,
    /// Ingress budget: queued client commands past this count are shed.
    ingress_max_cmds: usize,
    /// Ingress budget: queued client-command bytes past this are shed.
    ingress_max_bytes: usize,
    /// EWMA of observed commit latency in µs (adaptive batching only).
    commit_ewma_us: f64,
    /// Lowest observed commit latency in µs (adaptive batching only) —
    /// the congestion reference the EWMA is compared against.
    commit_floor_us: f64,
    /// Commands executed this `advance` iteration, awaiting hand-off to
    /// the apply worker (off-loop mode only; always empty inline).
    exec_buf: Vec<Value>,
    /// Checkpoints whose machine bytes are still being serialized
    /// off-loop, oldest first (off-loop mode only).
    pending_checkpoints: VecDeque<PendingCheckpoint>,
    /// Constant added to every slot's leader rotation (see
    /// [`with_leader_stagger`](SmrNode::with_leader_stagger)). Default 0.
    leader_stagger: u64,
    /// How many consecutive slots may run concurrently while commands are
    /// queued (1 = strictly sequential). Deeper pipelines amortize wakeups
    /// and let the transport's writer threads coalesce frames from several
    /// slots into single writes.
    pipeline_depth: u64,
    /// Open consensus instances.
    slots: BTreeMap<u64, Replica>,
    /// Decided but possibly not yet applied values.
    decided: BTreeMap<u64, Value>,
    /// Next slot to apply.
    applied: u64,
    /// Commands this node drained from `pending` into a slot proposal, by
    /// slot. Re-queued at apply time if the slot decided something else.
    in_flight: BTreeMap<u64, Vec<Value>>,
    /// Slots `< propose_cursor` may no longer drain `pending` (keeps
    /// batches committing in submission order even when slots open out of
    /// order under adversarial scheduling).
    propose_cursor: u64,
    /// Digests of applied **untagged** client commands (at-most-once
    /// guard), current generation: 32 bytes per command regardless of
    /// command size. Rotated into `applied_cmds_old` at each snapshot, so
    /// the state is bounded by two snapshot intervals instead of growing
    /// with the log; clients that need exact at-most-once over unbounded
    /// horizons tag their commands (see [`tag_command`]) and land in
    /// `clients` instead.
    applied_cmds: HashSet<Digest>,
    /// Previous-generation untagged dedup digests (dropped at the next
    /// rotation).
    applied_cmds_old: HashSet<Digest>,
    /// Watermarked at-most-once state for **tagged** commands, per client:
    /// bounded by each client's out-of-order window, pruned as the
    /// watermark advances.
    clients: HashMap<u64, ClientDedup>,
    /// Messages for slots beyond the window, bounded (see module docs).
    stashed: BTreeMap<u64, Vec<(ProcessId, Message)>>,
    /// Total messages across all `stashed` buckets.
    stashed_total: usize,
    /// The applied command log *since the last snapshot* (for cross-replica
    /// assertions); entries below were truncated into the snapshot.
    log: Vec<Value>,
    /// Global log index of `log[0]` — total entries truncated so far.
    log_offset: u64,
    /// Client (non-idle) commands applied — the global log length minus
    /// filler.
    client_commands: u64,
    /// Snapshot cadence in applied slots (see `DEFAULT_SNAPSHOT_INTERVAL`).
    snapshot_interval: u64,
    /// Latest snapshot taken or installed, with gathered attestations.
    snapshot: Option<NodeSnapshot>,
    /// Checkpoint attestations that arrived for boundaries we haven't
    /// reached yet: per signer, the last two `(upto, digest, sig)` triples
    /// (bounded — a Byzantine signer can only evict its own entries).
    pending_attest: HashMap<ProcessId, VecDeque<(u64, Digest, Signature)>>,
    /// Committed values for slots `>= snapshot.upto` — the suffix served to
    /// recovering peers as backfill. Pruned at each snapshot, so it holds
    /// at most one interval of values.
    committed_tail: BTreeMap<u64, Value>,
    /// Highest slot each peer has demonstrably worked on (from consensus
    /// frame slot tags; transport-authenticated).
    peer_tips: HashMap<ProcessId, u64>,
    /// Whether a snapshot request is outstanding (cleared when the retry
    /// timer fires; prevents request spam while behind).
    recovery_armed: bool,
    /// Per-requester `(have, upto, applied)` of the last served snapshot
    /// request — identical re-requests are dropped, bounding response
    /// amplification from a request-spamming peer.
    served: HashMap<ProcessId, (u64, u64, u64)>,
    /// Backfill votes: slot → sender → claimed committed value. A value is
    /// applied once f+1 distinct senders agree on it.
    backfill: BTreeMap<u64, HashMap<ProcessId, Value>>,
    /// When each open slot's instance was created. Populated only while a
    /// metrics sink is attached (the commit/apply latency histograms are
    /// the sole consumers), so the default sim path stays wall-clock-free.
    slot_opened: HashMap<u64, Instant>,
}

impl<S: StateMachine> SmrNode<S> {
    /// Creates a node with a queue of client commands to commit.
    pub fn new(
        cfg: Config,
        keys: KeyPair,
        dir: KeyDirectory,
        machine: S,
        commands: impl IntoIterator<Item = Value>,
        idle_input: Value,
    ) -> Self {
        let pending: VecDeque<Value> = commands.into_iter().collect();
        let pending_bytes = pending.iter().map(|c| c.as_bytes().len()).sum();
        SmrNode {
            cfg,
            keys,
            dir,
            opts: ReplicaOptions::default(),
            stage: ApplyStage::Inline(machine),
            pending,
            pending_bytes,
            idle_input,
            batching: Batching::Fixed(1),
            batch_target: 1,
            flush_armed: false,
            flush_due: false,
            ingress_max_cmds: DEFAULT_INGRESS_MAX_CMDS,
            ingress_max_bytes: DEFAULT_INGRESS_MAX_BYTES,
            commit_ewma_us: 0.0,
            commit_floor_us: 0.0,
            exec_buf: Vec::new(),
            pending_checkpoints: VecDeque::new(),
            leader_stagger: 0,
            pipeline_depth: DEFAULT_PIPELINE_DEPTH,
            slots: BTreeMap::new(),
            decided: BTreeMap::new(),
            applied: 0,
            in_flight: BTreeMap::new(),
            propose_cursor: 0,
            applied_cmds: HashSet::new(),
            applied_cmds_old: HashSet::new(),
            clients: HashMap::new(),
            stashed: BTreeMap::new(),
            stashed_total: 0,
            log: Vec::new(),
            log_offset: 0,
            client_commands: 0,
            snapshot_interval: DEFAULT_SNAPSHOT_INTERVAL,
            snapshot: None,
            pending_attest: HashMap::new(),
            committed_tail: BTreeMap::new(),
            peer_tips: HashMap::new(),
            recovery_armed: false,
            served: HashMap::new(),
            backfill: BTreeMap::new(),
            slot_opened: HashMap::new(),
        }
    }

    /// Bundles up to `batch_size` queued commands into each slot's proposal
    /// (amortizing the two message delays over many commands). Default 1.
    /// This configures [`Batching::Fixed`] — the escape hatch when a
    /// deployment wants a hand-tuned constant instead of
    /// [`Batching::Adaptive`] feedback.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is 0.
    #[must_use]
    pub fn with_batch_size(self, batch_size: usize) -> Self {
        assert!(batch_size >= 1, "batch size must be at least 1");
        self.with_batching(Batching::Fixed(batch_size))
    }

    /// Configures how queued commands are grouped into proposals. Default
    /// `Batching::Fixed(1)`.
    ///
    /// # Panics
    ///
    /// Panics if a fixed size or an adaptive cap is 0.
    #[must_use]
    pub fn with_batching(mut self, batching: Batching) -> Self {
        match &batching {
            Batching::Fixed(size) => {
                assert!(*size >= 1, "batch size must be at least 1");
            }
            Batching::Adaptive(a) => {
                assert!(a.max_batch_cmds >= 1, "max_batch_cmds must be at least 1");
                assert!(a.max_batch_bytes >= 1, "max_batch_bytes must be at least 1");
            }
        }
        self.batch_target = 1;
        self.batching = batching;
        self
    }

    /// Bounds the pending-command queue `on_client` may grow: submissions
    /// past either limit are shed (and counted in the `ingress_shed`
    /// metrics) instead of queued. Defaults
    /// [`DEFAULT_INGRESS_MAX_CMDS`] / [`DEFAULT_INGRESS_MAX_BYTES`].
    /// Commands re-queued internally (an in-flight batch whose slot
    /// decided another proposal) are exempt — backpressure never drops
    /// accepted work.
    ///
    /// # Panics
    ///
    /// Panics if either limit is 0.
    #[must_use]
    pub fn with_ingress_budget(mut self, max_cmds: usize, max_bytes: usize) -> Self {
        assert!(max_cmds >= 1, "ingress command budget must be at least 1");
        assert!(max_bytes >= 1, "ingress byte budget must be at least 1");
        self.ingress_max_cmds = max_cmds;
        self.ingress_max_bytes = max_bytes;
        self
    }

    /// Adds a constant offset to every slot's leader rotation: slot `s`
    /// starts under the leader that slot `s + stagger` would normally get.
    /// A sharded deployment gives group `g` stagger `g`, so at any moment
    /// the shards' current leaders sit on *different* processes — leader
    /// work spreads across the cluster instead of piling onto one node.
    /// Within a group this is just a relabeling of the rotation; safety
    /// and liveness are untouched. Default 0. All nodes of a group must
    /// use the same stagger.
    #[must_use]
    pub fn with_leader_stagger(mut self, stagger: u64) -> Self {
        self.leader_stagger = stagger;
        self
    }

    /// Lets up to `depth` consecutive slots run concurrently while commands
    /// are queued (1 = strictly sequential slots, the pre-pipelining
    /// behavior). Commands still apply in slot order; a slot that decides
    /// someone else's proposal gets its commands re-queued exactly as in
    /// the sequential case. Default 16 (`DEFAULT_PIPELINE_DEPTH`).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is 0.
    #[must_use]
    pub fn with_pipeline_depth(mut self, depth: u64) -> Self {
        assert!(depth >= 1, "pipeline depth must be at least 1");
        self.pipeline_depth = depth.min(SLOT_WINDOW);
        self
    }

    /// Snapshot every `interval` applied slots. Default 128
    /// ([`DEFAULT_SNAPSHOT_INTERVAL`]). Smaller intervals bound memory and
    /// recovery time tighter at the cost of more frequent checkpoint
    /// traffic.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= interval <= MAX_STASH_AHEAD / 2` — the committed
    /// tail a recovering peer must absorb spans at most one interval past
    /// the snapshot point, and it has to fit inside the stash/backfill
    /// horizon or catch-up could never complete.
    #[must_use]
    pub fn with_snapshot_interval(mut self, interval: u64) -> Self {
        assert!(
            (1..=MAX_STASH_AHEAD / 2).contains(&interval),
            "snapshot interval must be in 1..={}",
            MAX_STASH_AHEAD / 2
        );
        self.snapshot_interval = interval;
        self
    }

    /// Number of *slots* applied so far.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Number of *client* commands applied so far (≥ slots when batching;
    /// idle filler is excluded, matching the runtime handle's
    /// `await_commands` counting).
    pub fn commands_applied(&self) -> u64 {
        self.client_commands
    }

    /// The applied command log since the last snapshot (entries below
    /// [`log_offset`](Self::log_offset) were truncated into it).
    pub fn log(&self) -> &[Value] {
        &self.log
    }

    /// Global log index of `log()[0]`: how many applied entries snapshots
    /// have truncated away.
    pub fn log_offset(&self) -> u64 {
        self.log_offset
    }

    /// The snapshot boundary (first uncovered slot) of the latest snapshot
    /// taken or installed, if any.
    pub fn snapshot_upto(&self) -> Option<u64> {
        self.snapshot.as_ref().map(|s| s.upto)
    }

    /// Digest of the machine state (cross-replica equality assertions).
    ///
    /// # Panics
    ///
    /// Panics while the machine is owned by a live apply worker — inspect
    /// after shutdown (the runtime joins the worker in `on_shutdown`).
    pub fn state_digest(&self) -> Digest {
        self.machine_ref().state_digest()
    }

    /// Committed-suffix entries currently retained for serving backfill
    /// (bounded by the snapshot interval).
    pub fn tail_len(&self) -> usize {
        self.committed_tail.len()
    }

    /// The state machine (for assertions).
    ///
    /// # Panics
    ///
    /// Panics while the machine is owned by a live apply worker — inspect
    /// after shutdown (the runtime joins the worker in `on_shutdown`).
    pub fn machine(&self) -> &S {
        self.machine_ref()
    }

    fn machine_ref(&self) -> &S {
        match &self.stage {
            ApplyStage::Inline(machine) => machine,
            ApplyStage::Offloop(_) => panic!(
                "state machine is owned by the apply worker; inspect it after \
                 shutdown (the runtime joins the worker back inline in `on_shutdown`)"
            ),
            ApplyStage::Swapping => unreachable!("transient apply-stage placeholder"),
        }
    }

    /// The adaptive batcher's current per-proposal command target (always
    /// the configured constant under [`Batching::Fixed`]; for tests and
    /// monitoring).
    pub fn batch_target(&self) -> usize {
        match &self.batching {
            Batching::Fixed(size) => *size,
            Batching::Adaptive(_) => self.batch_target,
        }
    }

    /// Summed bytes of the commands queued at ingress (budget accounting;
    /// for tests and monitoring).
    pub fn pending_bytes(&self) -> usize {
        self.pending_bytes
    }

    /// Commands still waiting to be committed (queued or in flight).
    pub fn pending(&self) -> usize {
        self.pending.len() + self.in_flight.values().map(Vec::len).sum::<usize>()
    }

    /// Messages currently stashed for beyond-window slots (bounded; for
    /// hostile-peer tests and monitoring).
    pub fn stashed_messages(&self) -> usize {
        self.stashed_total
    }

    /// Currently open consensus instances (for quiescence assertions).
    pub fn open_slots(&self) -> usize {
        self.slots.len()
    }

    /// How many commands the next proposal should drain, and why — `None`
    /// to propose nothing (empty queue, or an adaptive batcher holding a
    /// sub-target batch while the pipeline is busy). Pure: the planned
    /// drain happens in [`input_for_slot`](Self::input_for_slot).
    fn plan_drain(&self) -> Option<(usize, FlushReason)> {
        let len = self.pending.len();
        if len == 0 {
            return None;
        }
        match &self.batching {
            Batching::Fixed(size) => Some(((*size).min(len), FlushReason::Size)),
            Batching::Adaptive(a) => {
                // Quiescent = nothing in flight anywhere: a held batch (and
                // a lone command) flushes immediately rather than waiting
                // out a timer. Evaluated before the new slot is inserted
                // (`open_slot` computes the input first), so "no open
                // slots" really means idle.
                let quiescent =
                    self.slots.is_empty() && self.decided.is_empty() && self.in_flight.is_empty();
                let (cap, mut reason) = if quiescent {
                    (a.max_batch_cmds, FlushReason::Quiescence)
                } else if len >= self.batch_target {
                    (self.batch_target, FlushReason::Size)
                } else if self.flush_due {
                    (a.max_batch_cmds, FlushReason::Timeout)
                } else {
                    return None;
                };
                let mut take = 0usize;
                let mut bytes = 0usize;
                for cmd in self.pending.iter().take(cap.min(len)) {
                    let size = cmd.as_bytes().len();
                    // The first command always ships, however large.
                    if take > 0 && bytes + size > a.max_batch_bytes {
                        reason = FlushReason::Bytes;
                        break;
                    }
                    bytes += size;
                    take += 1;
                }
                Some((take, reason))
            }
        }
    }

    /// Nudges the adaptive batch target after a drain of `take` commands
    /// (no-op for fixed batching).
    fn tune_batch_target(&mut self, take: usize) {
        let Batching::Adaptive(a) = &self.batching else {
            return;
        };
        let mut target = self.batch_target;
        if !self.pending.is_empty() {
            // The drain left backlog behind: underbatching — grow. This
            // branch overrides the latency guard below: with a queue
            // building, bigger batches mean *fewer* slots in flight for
            // the same commands, so growing is what relieves slot
            // pressure — shrinking here would open more slots and feed
            // the very congestion the guard reacts to.
            target = (target * 2).min(a.max_batch_cmds);
        } else {
            if take * 4 <= target {
                // Drains run far under target: shrink back toward latency.
                target = (target / 2).max(1);
            }
            // Congestion guard: commit latency far above its observed
            // floor with no backlog queued means the batches (or the
            // pipeline) outgrew the cluster.
            if self.commit_floor_us > 0.0
                && self.commit_ewma_us > 4.0 * self.commit_floor_us
                && self.commit_ewma_us > 1_000.0
            {
                target = (target / 2).max(1);
            }
        }
        self.batch_target = target;
    }

    /// Whether the node should open a slot to propose queued commands
    /// right now (an adaptive batcher may prefer to hold them).
    fn wants_proposal(&self) -> bool {
        self.plan_drain().is_some()
    }

    /// The slot proposal: a planned batch of queued commands (or the idle
    /// filler), encoded as one consensus value. Drained commands move to
    /// the slot's in-flight set so a pipelined slot can never re-propose
    /// them; they are re-queued at apply time if the slot decides
    /// something else.
    fn input_for_slot(&mut self, slot: u64) -> Value {
        let mut cmds: Vec<Value> = Vec::new();
        // The cursor advances only on a real drain: an idle proposal for an
        // out-of-order (e.g. adversarially sprayed in-window) slot must not
        // bar nearer slots from proposing queued commands.
        if slot >= self.propose_cursor {
            if let Some((take, reason)) = self.plan_drain() {
                for _ in 0..take {
                    let cmd = self.pending.pop_front().expect("plan bounds take by len");
                    self.pending_bytes -= cmd.as_bytes().len();
                    cmds.push(cmd);
                }
                self.flush_due = false;
                self.propose_cursor = slot + 1;
                self.in_flight.insert(slot, cmds.clone());
                if let Some(m) = self.opts.metrics.get() {
                    m.batch_size.record(take as u64);
                    match reason {
                        FlushReason::Size => m.batch_flush_size_total.inc(),
                        FlushReason::Bytes => m.batch_flush_bytes_total.inc(),
                        FlushReason::Quiescence => m.batch_flush_quiescence_total.inc(),
                        FlushReason::Timeout => m.batch_flush_timeout_total.inc(),
                    }
                }
                self.tune_batch_target(take);
            }
        }
        if cmds.is_empty() {
            cmds.push(self.idle_input.clone());
        }
        Value::new(fastbft_types::wire::to_bytes(&cmds))
    }

    /// Decodes a decided slot value into its command batch. Values that are
    /// not well-formed batches (possible when a Byzantine leader proposes
    /// raw bytes) are applied as a single opaque command — deterministically
    /// on every replica.
    fn decode_batch(value: &Value) -> Vec<Value> {
        fastbft_types::wire::from_bytes::<Vec<Value>>(value.as_bytes())
            .unwrap_or_else(|_| vec![value.clone()])
    }

    /// Opens further slots, up to the pipeline depth, while the batcher
    /// wants to propose — each drains its own proposal batch. Slots a peer
    /// already opened reactively (with an idle proposal from us) are
    /// skipped; the queued commands go into the next free slot.
    fn fill_pipeline(&mut self, fx: &mut Effects<SlotMessage>) {
        while self.wants_proposal() {
            let slot = self.propose_cursor.max(self.applied);
            if slot >= self.applied + self.pipeline_depth {
                break;
            }
            if self.slots.contains_key(&slot) || self.decided.contains_key(&slot) {
                self.propose_cursor = slot + 1;
                continue;
            }
            self.open_slot(slot, fx);
        }
    }

    fn open_slot(&mut self, slot: u64, fx: &mut Effects<SlotMessage>) {
        if slot < self.applied || self.slots.contains_key(&slot) || self.decided.contains_key(&slot)
        {
            return;
        }
        let input = self.input_for_slot(slot);
        // Rotate first-leadership across slots so every process's commands
        // get committed without waiting for a view change (fairness).
        let mut replica = Replica::with_options(
            self.cfg
                .with_leader_offset(slot.wrapping_add(self.leader_stagger)),
            self.keys.clone(),
            self.dir.clone(),
            input,
            self.opts.clone(),
        );
        let mut inner = Effects::new(fx.id(), fx.n(), fx.now());
        replica.on_start(&mut inner);
        self.slots.insert(slot, replica);
        // The open timestamp feeds the latency histograms *and* the
        // adaptive batcher's congestion signal, so it is kept whenever
        // either consumer exists.
        if self.opts.metrics.is_enabled() || matches!(self.batching, Batching::Adaptive(_)) {
            self.slot_opened.insert(slot, Instant::now());
        }
        self.relay_inner(slot, inner, fx);
        // Replay anything that arrived before the slot opened.
        if let Some(stash) = self.stashed.remove(&slot) {
            self.stashed_total -= stash.len();
            self.note_stash_depth();
            for (from, msg) in stash {
                self.deliver(slot, from, msg, fx);
            }
        }
    }

    fn deliver(&mut self, slot: u64, from: ProcessId, msg: Message, fx: &mut Effects<SlotMessage>) {
        let Some(replica) = self.slots.get_mut(&slot) else {
            return;
        };
        let mut inner = Effects::new(fx.id(), fx.n(), fx.now());
        replica.on_message(from, msg, &mut inner);
        self.relay_inner(slot, inner, fx);
    }

    fn relay_inner(&mut self, slot: u64, inner: Effects<Message>, fx: &mut Effects<SlotMessage>) {
        for effect in inner.outgoing() {
            match effect {
                Outgoing::To(to, msg) => fx.send(
                    *to,
                    SlotMessage::Consensus {
                        slot,
                        inner: msg.clone(),
                    },
                ),
                // Keep broadcasts structural through the slot wrapper so
                // the transport still encodes the payload only once.
                Outgoing::All(msg) => fx.broadcast(SlotMessage::Consensus {
                    slot,
                    inner: msg.clone(),
                }),
            }
        }
        for (delay, timer) in inner.timers_set() {
            fx.set_timer(*delay, TimerId(slot * TIMER_STRIDE + timer.0));
        }
        if let Some(value) = inner.decision_made() {
            self.on_slot_decided(slot, value.clone(), fx);
        }
    }

    /// The at-most-once identity of an untagged command: its content
    /// digest, via the value's memoized digest cache (`command_applied`
    /// followed by `mark_applied` on the same decoded command hashes once,
    /// and a command digested by the protocol layer is never re-hashed
    /// here).
    fn command_key(cmd: &Value) -> Digest {
        *fastbft_crypto::value_digest(cmd)
    }

    /// Whether a client command was already executed — by `(client, seq)`
    /// watermark for tagged commands, by content digest (either dedup
    /// generation) for untagged ones.
    fn command_applied(&self, cmd: &Value) -> bool {
        match parse_client_tag(cmd) {
            Some((client, seq)) => self.clients.get(&client).is_some_and(|d| d.contains(seq)),
            None => {
                let key = Self::command_key(cmd);
                self.applied_cmds.contains(&key) || self.applied_cmds_old.contains(&key)
            }
        }
    }

    /// Records a client command as executed (see [`command_applied`]).
    fn mark_applied(&mut self, cmd: &Value) {
        match parse_client_tag(cmd) {
            Some((client, seq)) => self.clients.entry(client).or_default().insert(seq),
            None => {
                self.applied_cmds.insert(Self::command_key(cmd));
            }
        }
    }

    /// Size of the at-most-once dedup state: untagged digests across both
    /// generations plus above-watermark seqs across clients. For a workload
    /// of tagged, eventually-contiguous sequence numbers this returns to
    /// **zero** — the watermarks prune everything; for untagged traffic it
    /// is bounded by two snapshot intervals' worth of commands.
    pub fn dedup_entries(&self) -> usize {
        self.applied_cmds.len()
            + self.applied_cmds_old.len()
            + self.clients.values().map(|d| d.above.len()).sum::<usize>()
    }

    /// Applies one decided command: at-most-once by identity for client
    /// commands (the idle filler is exempt — it recurs by design), removing
    /// committed commands from the local queue wherever they sit.
    fn apply_command(&mut self, cmd: Value, fx: &mut Effects<SlotMessage>) {
        if cmd != self.idle_input {
            if self.command_applied(&cmd) {
                if let Some(m) = self.opts.metrics.get() {
                    m.dedup_dropped_total.inc();
                }
                return; // already executed in an earlier slot
            }
            self.mark_applied(&cmd);
            if let Some(pos) = self.pending.iter().position(|p| *p == cmd) {
                if let Some(removed) = self.pending.remove(pos) {
                    self.pending_bytes -= removed.as_bytes().len();
                }
            }
            self.client_commands += 1;
        }
        match &mut self.stage {
            ApplyStage::Inline(machine) => {
                machine.apply(&cmd);
            }
            // Off-loop: buffer for one per-slot hand-off (see
            // `flush_exec`); the bookkeeping below stays synchronous, so
            // applied events and the log are identical either way.
            ApplyStage::Offloop(_) => self.exec_buf.push(cmd.clone()),
            ApplyStage::Swapping => unreachable!("transient apply-stage placeholder"),
        }
        fx.record_applied(self.log_offset + self.log.len() as u64, &cmd);
        self.log.push(cmd);
    }

    /// Hands the commands executed for the current slot to the apply
    /// worker as one in-order batch job (no-op inline, where `exec_buf`
    /// is never filled).
    fn flush_exec(&mut self) {
        if self.exec_buf.is_empty() {
            return;
        }
        let batch = mem::take(&mut self.exec_buf);
        if let ApplyStage::Offloop(worker) = &self.stage {
            if let Some(m) = self.opts.metrics.get() {
                m.apply_offload_total.add(batch.len() as u64);
            }
            let depth = worker.submit(ApplyJob::Batch(batch));
            if let Some(m) = self.opts.metrics.get() {
                m.apply_queue_depth.set(depth);
            }
        }
    }

    /// Pulls any ready apply-worker replies without blocking (checkpoint
    /// bytes serialized off-loop); no-op inline.
    fn drain_apply_replies(&mut self, fx: &mut Effects<SlotMessage>) {
        loop {
            let reply = match &self.stage {
                ApplyStage::Offloop(worker) => match worker.try_reply() {
                    Some(reply) => reply,
                    None => return,
                },
                _ => return,
            };
            self.on_apply_reply(reply, fx);
        }
    }

    /// Marries an off-loop snapshot reply to its captured bookkeeping and
    /// finishes the checkpoint (assemble, sign, broadcast).
    fn on_apply_reply(&mut self, reply: ApplyReply, fx: &mut Effects<SlotMessage>) {
        match reply {
            ApplyReply::Snapshot { upto, machine } => {
                let Some(pos) = self.pending_checkpoints.iter().position(|p| p.upto == upto) else {
                    return; // superseded (e.g. by an installed snapshot)
                };
                // The queue is ordered; everything before an answered
                // marker is stale.
                let capture = self
                    .pending_checkpoints
                    .drain(..=pos)
                    .next_back()
                    .expect("inclusive drain is non-empty");
                let payload = encode_snapshot_payload(
                    upto,
                    capture.log_offset,
                    capture.client_commands,
                    machine,
                    capture.dedup,
                    capture.clients,
                );
                if let Some((digest, sig)) = self.adopt_checkpoint(upto, payload) {
                    fx.broadcast(SlotMessage::Checkpoint { upto, digest, sig });
                }
            }
            ApplyReply::Restore(_) => {
                // Restore replies are consumed synchronously at the
                // install site (`restore_machine`); none can arrive here.
            }
        }
    }

    /// Restores the state machine from snapshot bytes, wherever it lives.
    /// Off-loop this blocks on the worker (install is rare and must keep
    /// its atomic reject semantics); snapshot replies that surface while
    /// waiting are processed, not dropped.
    fn restore_machine(&mut self, bytes: &[u8], fx: &mut Effects<SlotMessage>) -> bool {
        if let ApplyStage::Inline(machine) = &mut self.stage {
            return machine.restore(bytes);
        }
        match &self.stage {
            ApplyStage::Offloop(worker) => {
                worker.submit(ApplyJob::Restore(bytes.to_vec()));
            }
            _ => unreachable!("transient apply-stage placeholder"),
        }
        loop {
            let reply = match &self.stage {
                ApplyStage::Offloop(worker) => worker.wait_reply(),
                _ => unreachable!("the stage cannot change while blocked on restore"),
            };
            match reply {
                ApplyReply::Restore(ok) => return ok,
                snapshot_reply => self.on_apply_reply(snapshot_reply, fx),
            }
        }
    }

    /// Joins the apply worker (if any) back inline so post-run state
    /// inspection sees the final machine. Checkpoints whose bytes were
    /// still in flight are finished locally (there is no event loop left
    /// to broadcast on). Called from `Actor::on_shutdown`.
    fn finish_apply_stage(&mut self) {
        if !matches!(self.stage, ApplyStage::Offloop(_)) {
            return;
        }
        let ApplyStage::Offloop(worker) = mem::replace(&mut self.stage, ApplyStage::Swapping)
        else {
            unreachable!("just matched");
        };
        let (machine, leftover) = worker.join();
        self.stage = ApplyStage::Inline(machine);
        for reply in leftover {
            if let ApplyReply::Snapshot { upto, machine } = reply {
                let Some(pos) = self.pending_checkpoints.iter().position(|p| p.upto == upto) else {
                    continue;
                };
                let capture = self
                    .pending_checkpoints
                    .drain(..=pos)
                    .next_back()
                    .expect("inclusive drain is non-empty");
                let payload = encode_snapshot_payload(
                    upto,
                    capture.log_offset,
                    capture.client_commands,
                    machine,
                    capture.dedup,
                    capture.clients,
                );
                self.adopt_checkpoint(upto, payload);
            }
        }
    }

    fn on_slot_decided(&mut self, slot: u64, value: Value, fx: &mut Effects<SlotMessage>) {
        if slot < self.applied || self.decided.contains_key(&slot) {
            return;
        }
        // Commit latency, split by the path the slot's own replica took.
        // Backfill-settled slots have no local replica (and took neither
        // path here), so they record nothing.
        if let Some(at) = self.slot_opened.get(&slot) {
            let us = u64::try_from(at.elapsed().as_micros()).unwrap_or(u64::MAX);
            if matches!(self.batching, Batching::Adaptive(_)) {
                // Feed the batcher's congestion signal (floor + EWMA).
                let us = us as f64;
                self.commit_floor_us = if self.commit_floor_us == 0.0 {
                    us
                } else {
                    self.commit_floor_us.min(us)
                };
                self.commit_ewma_us = if self.commit_ewma_us == 0.0 {
                    us
                } else {
                    0.8 * self.commit_ewma_us + 0.2 * us
                };
            }
            if let Some(m) = self.opts.metrics.get() {
                if let Some(path) = self.slots.get(&slot).and_then(|r| r.decided_path()) {
                    match path {
                        CommitPath::Fast => m.commit_latency_fast_us.record(us),
                        CommitPath::Slow => m.commit_latency_slow_us.record(us),
                    }
                }
            }
        }
        self.decided.insert(slot, value);
        self.advance(fx);
    }

    /// Applies every now-contiguous decided slot in order, snapshots at
    /// interval boundaries, and keeps the pipeline and stash moving.
    fn advance(&mut self, fx: &mut Effects<SlotMessage>) {
        // Opportunistic: finish any checkpoint whose off-loop snapshot
        // bytes came back (cheap try_recv; no-op inline).
        self.drain_apply_replies(fx);
        // Apply contiguous decided slots, one command at a time (a slot
        // carries a batch).
        while let Some(value) = self.decided.remove(&self.applied) {
            let slot = self.applied;
            for cmd in Self::decode_batch(&value) {
                self.apply_command(cmd, fx);
            }
            // Off-loop: this slot's executed commands leave as one ordered
            // batch job, before any snapshot marker the boundary below may
            // enqueue.
            self.flush_exec();
            self.committed_tail.insert(slot, value);
            // Commands this node drained into the slot that the decided
            // value did not commit (another proposal won, or an earlier
            // slot already executed them) go back to the queue front.
            if let Some(mine) = self.in_flight.remove(&slot) {
                for cmd in mine.into_iter().rev() {
                    if !self.command_applied(&cmd) {
                        self.pending_bytes += cmd.as_bytes().len();
                        self.pending.push_front(cmd);
                    }
                }
            }
            self.slots.remove(&slot);
            if let Some(at) = self.slot_opened.remove(&slot) {
                if let Some(m) = self.opts.metrics.get() {
                    let us = u64::try_from(at.elapsed().as_micros()).unwrap_or(u64::MAX);
                    m.apply_latency_us.record(us);
                }
            }
            self.applied += 1;
            if self.applied.is_multiple_of(self.snapshot_interval) {
                self.take_snapshot(fx);
            }
        }
        // Keep the pipeline going while there is work; quiesce when idle
        // (a client submission re-opens the pipeline via `on_client`). An
        // adaptive batcher holding a sub-target batch counts as idle here —
        // but if this advance drained the pipeline empty, `wants_proposal`
        // sees the quiescence and flushes the held batch right now.
        if self.wants_proposal() || !self.in_flight.is_empty() {
            self.open_slot(self.applied, fx);
        }
        self.fill_pipeline(fx);
        // Purge stash buckets the apply loop has overtaken: their slots are
        // settled, the messages can never be delivered, and dead entries
        // must not pin the stash cap (they are the *nearest* slots, which
        // farthest-first eviction would never reclaim).
        while let Some((&stale, _)) = self.stashed.iter().next() {
            if stale >= self.applied {
                break;
            }
            let bucket = self.stashed.remove(&stale).expect("key just read");
            self.stashed_total -= bucket.len();
        }
        self.note_stash_depth();
        // Same for backfill votes on settled slots.
        self.backfill = self.backfill.split_off(&self.applied);
        // The window may have moved: drain newly eligible stashes.
        let eligible: Vec<u64> = self
            .stashed
            .keys()
            .copied()
            .filter(|s| *s < self.applied + SLOT_WINDOW)
            .collect();
        for s in eligible {
            self.open_slot(s, fx);
        }
    }

    /// The sorted dedup constituents of a snapshot payload (must be taken
    /// exactly at a slot boundary, right after dedup rotation).
    fn dedup_parts(&self) -> (Vec<Digest>, Vec<ClientEntry>) {
        let mut dedup: Vec<Digest> = self
            .applied_cmds
            .iter()
            .chain(self.applied_cmds_old.iter())
            .copied()
            .collect();
        dedup.sort_unstable();
        let mut clients: Vec<ClientEntry> = self
            .clients
            .iter()
            .map(|(client, d)| ClientEntry {
                client: *client,
                watermark: d.watermark,
                above: d.above.iter().copied().collect(),
            })
            .collect();
        clients.sort_unstable_by_key(|e| e.client);
        (dedup, clients)
    }

    /// Checkpoints at the current (interval-aligned) apply point: truncates
    /// log/tail/dedup state below it, stores the snapshot, and broadcasts a
    /// signed attestation. Off-loop the machine bytes are serialized by the
    /// apply worker — the truncation and bookkeeping capture stay
    /// synchronous here, and the checkpoint completes (same payload bytes,
    /// hence same digest as inline) when the reply arrives.
    fn take_snapshot(&mut self, fx: &mut Effects<SlotMessage>) {
        let upto = self.applied;
        // Truncate everything the snapshot now covers.
        self.log_offset += self.log.len() as u64;
        self.log.clear();
        self.committed_tail = self.committed_tail.split_off(&upto);
        // Rotate dedup generations: the previous generation ages out, the
        // current one becomes "old". Replicas rotate at identical
        // boundaries, so the reachable dedup set stays identical
        // cluster-wide (determinism).
        self.applied_cmds_old = mem::take(&mut self.applied_cmds);
        let (dedup, clients) = self.dedup_parts();
        if matches!(self.stage, ApplyStage::Offloop(_)) {
            // Capture the bookkeeping now; the worker's snapshot marker is
            // ordered after every batch the boundary covers (flush_exec
            // ran for slot `upto - 1` before this call).
            self.pending_checkpoints.push_back(PendingCheckpoint {
                upto,
                log_offset: self.log_offset,
                client_commands: self.client_commands,
                dedup,
                clients,
            });
            if let ApplyStage::Offloop(worker) = &self.stage {
                let depth = worker.submit(ApplyJob::Snapshot(upto));
                if let Some(m) = self.opts.metrics.get() {
                    m.apply_queue_depth.set(depth);
                }
            }
            fx.set_timer(SimDuration::DELTA, APPLY_TIMER);
            return;
        }
        let machine = match &self.stage {
            ApplyStage::Inline(machine) => machine.snapshot(),
            _ => unreachable!("off-loop handled above"),
        };
        let payload = encode_snapshot_payload(
            upto,
            self.log_offset,
            self.client_commands,
            machine,
            dedup,
            clients,
        );
        if let Some((digest, sig)) = self.adopt_checkpoint(upto, payload) {
            fx.broadcast(SlotMessage::Checkpoint { upto, digest, sig });
        }
    }

    /// The second half of a checkpoint, once the payload bytes exist:
    /// sign, merge parked attestations, store. Returns the digest and own
    /// signature to broadcast, or `None` when an installed snapshot
    /// already moved past `upto` (possible off-loop while bytes were in
    /// flight; never inline).
    fn adopt_checkpoint(&mut self, upto: u64, payload: Vec<u8>) -> Option<(Digest, Signature)> {
        if self.snapshot.as_ref().is_some_and(|s| s.upto >= upto) {
            return None;
        }
        let digest = fastbft_crypto::digest(&payload);
        let sig = checkpoint_signature(&self.keys, upto, &digest);
        let mut sigs = BTreeMap::new();
        sigs.insert(self.keys.id(), sig.clone());
        // Merge attestations peers broadcast before we reached this
        // boundary; drop everything at or below it (consumed or stale).
        for queue in self.pending_attest.values_mut() {
            queue.retain(|(at, d, s)| {
                if *at == upto && *d == digest {
                    sigs.insert(s.signer, s.clone());
                }
                *at > upto
            });
        }
        self.snapshot = Some(NodeSnapshot {
            upto,
            digest,
            payload,
            sigs,
        });
        if let Some(m) = self.opts.metrics.get() {
            m.snapshot_taken_total.inc();
            m.recorder.record(
                "snapshot",
                format!("p{} checkpointed upto={upto}", self.keys.id().0),
            );
        }
        Some((digest, sig))
    }

    /// Handles a peer's checkpoint attestation: merged into the matching
    /// local snapshot, or parked (bounded per signer) until we reach that
    /// boundary ourselves.
    fn on_checkpoint(&mut self, from: ProcessId, upto: u64, digest: Digest, sig: Signature) {
        if sig.signer != from
            || !self
                .dir
                .verify_parts(&[SNAPSHOT_DOMAIN, &upto.to_be_bytes(), &digest], &sig)
        {
            return;
        }
        if let Some(snap) = &mut self.snapshot {
            if snap.upto == upto {
                // A verified attestation for our boundary with a different
                // digest would mean state divergence; such signatures are
                // simply not collected (they could never help a requester).
                if snap.digest == digest {
                    snap.sigs.insert(from, sig);
                }
                return;
            }
            if upto < snap.upto {
                return; // stale boundary
            }
        }
        let queue = self.pending_attest.entry(from).or_default();
        queue.retain(|(at, _, _)| *at != upto);
        queue.push_back((upto, digest, sig));
        while queue.len() > 2 {
            queue.pop_front();
        }
    }

    /// Serves a recovering peer: the latest attested snapshot (if it covers
    /// anything the requester lacks) plus the committed suffix, slot by
    /// slot. Identical re-requests against unchanged local state are
    /// dropped (amplification bound).
    fn on_snapshot_request(&mut self, from: ProcessId, have: u64, fx: &mut Effects<SlotMessage>) {
        if from == fx.id() {
            return;
        }
        let snap_upto = self.snapshot.as_ref().map_or(0, |s| s.upto);
        let state = (have, snap_upto, self.applied);
        if self.served.get(&from) == Some(&state) {
            return;
        }
        self.served.insert(from, state);
        if let Some(snap) = &self.snapshot {
            // Without f+1 attestations the requester would reject the
            // response; its retry timer will re-ask once more checkpoints
            // arrive here.
            if snap.upto > have && snap.sigs.len() > self.cfg.f() {
                fx.send(
                    from,
                    SlotMessage::SnapshotResponse {
                        upto: snap.upto,
                        payload: snap.payload.clone(),
                        sigs: snap.sigs.values().cloned().collect(),
                    },
                );
            }
        }
        // The committed suffix the requester is missing (at most one
        // snapshot interval of values).
        for (&slot, value) in self.committed_tail.range(have..) {
            fx.send(
                from,
                SlotMessage::Backfill {
                    slot,
                    value: value.clone(),
                },
            );
        }
    }

    /// Installs a quorum-attested snapshot that is ahead of us: restores
    /// the machine, adopts the dedup/log bookkeeping, discards everything
    /// below the boundary, and adopts the snapshot as our own (we can now
    /// serve it too).
    fn on_snapshot_response(
        &mut self,
        upto: u64,
        payload: Vec<u8>,
        sigs: Vec<Signature>,
        fx: &mut Effects<SlotMessage>,
    ) {
        if upto <= self.applied
            || !snapshot_response_valid(&self.dir, self.cfg.f(), upto, &payload, &sigs)
        {
            return;
        }
        let Ok(parsed) = fastbft_types::wire::from_bytes::<SnapshotPayload>(&payload) else {
            return;
        };
        if parsed.upto != upto {
            return;
        }
        // Machine first: restore is atomic, so a machine-level rejection
        // leaves this node fully unchanged (off-loop, the install blocks
        // on the worker's verdict to keep exactly that contract).
        if !self.restore_machine(&parsed.machine, fx) {
            return;
        }
        // Checkpoints captured below the installed boundary are obsolete:
        // the snapshot adopted below supersedes them.
        self.pending_checkpoints.retain(|p| p.upto > upto);
        let digest = fastbft_crypto::digest(&payload);
        self.applied = upto;
        self.log.clear();
        self.log_offset = parsed.log_offset;
        self.client_commands = parsed.client_commands;
        self.applied_cmds_old = parsed.dedup.into_iter().collect();
        self.applied_cmds = HashSet::new();
        self.clients = parsed
            .clients
            .into_iter()
            .map(|e| {
                (
                    e.client,
                    ClientDedup {
                        watermark: e.watermark,
                        above: e.above.into_iter().collect(),
                    },
                )
            })
            .collect();
        // Slots below the boundary are settled by the snapshot: re-queue
        // our drained commands the snapshot did not execute, drop the rest
        // of the per-slot state.
        let keep = self.in_flight.split_off(&upto);
        for (_, cmds) in mem::replace(&mut self.in_flight, keep) {
            for cmd in cmds.into_iter().rev() {
                if !self.command_applied(&cmd) {
                    self.pending_bytes += cmd.as_bytes().len();
                    self.pending.push_front(cmd);
                }
            }
        }
        self.slots = self.slots.split_off(&upto);
        self.slot_opened.retain(|s, _| *s >= upto);
        self.decided = self.decided.split_off(&upto);
        self.committed_tail = self.committed_tail.split_off(&upto);
        self.backfill = self.backfill.split_off(&upto);
        self.propose_cursor = self.propose_cursor.max(upto);
        while let Some((&stale, _)) = self.stashed.iter().next() {
            if stale >= upto {
                break;
            }
            let bucket = self.stashed.remove(&stale).expect("key just read");
            self.stashed_total -= bucket.len();
        }
        self.note_stash_depth();
        // Adopt the snapshot: keep the valid received attestations, add our
        // own (we now vouch for this state, and can serve it onward).
        let mut sigmap = BTreeMap::new();
        for sig in sigs {
            if self
                .dir
                .verify_parts(&[SNAPSHOT_DOMAIN, &upto.to_be_bytes(), &digest], &sig)
            {
                sigmap.insert(sig.signer, sig);
            }
        }
        let own = checkpoint_signature(&self.keys, upto, &digest);
        sigmap.insert(own.signer, own);
        self.snapshot = Some(NodeSnapshot {
            upto,
            digest,
            payload,
            sigs: sigmap,
        });
        if let Some(m) = self.opts.metrics.get() {
            m.snapshot_installed_total.inc();
            m.recorder.record(
                "snapshot-install",
                format!("p{} installed snapshot upto={upto}", self.keys.id().0),
            );
        }
        // Anything decided/backfilled at or past the boundary may now be
        // contiguous.
        self.advance(fx);
    }

    /// Collects one backfill vote; applies the value once f+1 distinct
    /// senders agree on it (at least one of them is correct, and a correct
    /// replica only backfills values it committed).
    fn on_backfill(
        &mut self,
        from: ProcessId,
        slot: u64,
        value: Value,
        fx: &mut Effects<SlotMessage>,
    ) {
        if from == fx.id()
            || slot < self.applied
            || slot >= self.applied + MAX_STASH_AHEAD
            || self.decided.contains_key(&slot)
        {
            return;
        }
        let votes = self.backfill.entry(slot).or_default();
        votes.insert(from, value.clone());
        let matching = votes.values().filter(|v| **v == value).count();
        if matching > self.cfg.f() {
            self.backfill.remove(&slot);
            if let Some(m) = self.opts.metrics.get() {
                m.backfill_slots_total.inc();
            }
            self.on_slot_decided(slot, value, fx);
        }
    }

    /// Tracks the highest slot `from` has demonstrably worked on, and
    /// checks the recovery trigger when the claim is far ahead. The guard
    /// keeps this off the steady-state hot path: pipelined peers never run
    /// `RECOVERY_GAP` ahead of a node they share quorums with.
    fn note_peer_tip(&mut self, from: ProcessId, slot: u64, fx: &mut Effects<SlotMessage>) {
        if from == fx.id() {
            return;
        }
        let tip = self.peer_tips.entry(from).or_insert(0);
        if slot > *tip {
            *tip = slot;
        }
        if !self.recovery_armed && slot >= self.applied + RECOVERY_GAP {
            self.maybe_recover(fx);
        }
    }

    /// The (f+1)-th largest peer-claimed tip: at least one *correct*
    /// replica is really working at or past this slot.
    fn quorum_tip(&self) -> u64 {
        let mut tips: Vec<u64> = self.peer_tips.values().copied().collect();
        tips.sort_unstable_by(|a, b| b.cmp(a));
        tips.get(self.cfg.f()).copied().unwrap_or(0)
    }

    /// Requests state transfer if f+1 distinct peers are `RECOVERY_GAP`
    /// ahead (f alone could be Byzantine fiction). Armed until the retry
    /// timer fires, so a behind node asks at most once per timeout.
    fn maybe_recover(&mut self, fx: &mut Effects<SlotMessage>) {
        if self.recovery_armed || self.quorum_tip() < self.applied + RECOVERY_GAP {
            return;
        }
        self.recovery_armed = true;
        fx.broadcast_others(SlotMessage::SnapshotRequest { have: self.applied });
        fx.set_timer(self.opts.base_timeout, RECOVERY_TIMER);
    }
}

impl<S: StateMachine + 'static> Actor<SlotMessage> for SmrNode<S> {
    fn on_start(&mut self, fx: &mut Effects<SlotMessage>) {
        self.open_slot(0, fx);
        self.fill_pipeline(fx);
    }

    fn on_message(&mut self, from: ProcessId, msg: SlotMessage, fx: &mut Effects<SlotMessage>) {
        match msg {
            SlotMessage::Consensus { slot, inner } => {
                self.note_peer_tip(from, slot, fx);
                if slot < self.applied {
                    // The sender is still running consensus on a slot we
                    // settled — typically a replica healing from a
                    // partition whose hole is too small to trip the
                    // far-behind trigger (`RECOVERY_GAP`). Answer with the
                    // committed value; once f + 1 peers do, the hole
                    // closes ([`Self::on_backfill`]). One reply per
                    // inbound frame, so a spamming peer gains no
                    // amplification.
                    if let Some(value) = self.committed_tail.get(&slot) {
                        fx.send(
                            from,
                            SlotMessage::Backfill {
                                slot,
                                value: value.clone(),
                            },
                        );
                    }
                    return;
                }
                if !self.slots.contains_key(&slot) && !self.decided.contains_key(&slot) {
                    if slot < self.applied + SLOT_WINDOW {
                        self.open_slot(slot, fx);
                    } else {
                        self.stash(slot, from, inner);
                        return;
                    }
                }
                self.deliver(slot, from, inner, fx);
            }
            SlotMessage::Checkpoint { upto, digest, sig } => {
                if from != fx.id() {
                    self.note_peer_tip(from, upto, fx);
                    self.on_checkpoint(from, upto, digest, sig);
                }
            }
            SlotMessage::SnapshotRequest { have } => {
                self.on_snapshot_request(from, have, fx);
            }
            SlotMessage::SnapshotResponse {
                upto,
                payload,
                sigs,
            } => {
                self.on_snapshot_response(upto, payload, sigs, fx);
            }
            SlotMessage::Backfill { slot, value } => {
                self.on_backfill(from, slot, value, fx);
            }
        }
    }

    fn on_timer(&mut self, timer: TimerId, fx: &mut Effects<SlotMessage>) {
        if timer == RECOVERY_TIMER {
            // Still behind? Ask again (responders re-serve because our
            // `have` or their state will have moved).
            self.recovery_armed = false;
            self.maybe_recover(fx);
            return;
        }
        if timer == APPLY_TIMER {
            // Off-loop checkpoint backstop: collect ready snapshot bytes,
            // re-arm while any are still outstanding.
            self.drain_apply_replies(fx);
            if !self.pending_checkpoints.is_empty() {
                fx.set_timer(SimDuration::DELTA, APPLY_TIMER);
            }
            return;
        }
        if timer == BATCH_FLUSH_TIMER {
            // Flush-age backstop: commands held by the adaptive batcher
            // flush now even though the target was never reached.
            self.flush_armed = false;
            if matches!(self.batching, Batching::Adaptive(_)) && !self.pending.is_empty() {
                self.flush_due = true;
                self.open_slot(self.applied, fx);
                self.fill_pipeline(fx);
            }
            return;
        }
        let slot = timer.0 / TIMER_STRIDE;
        let inner_timer = TimerId(timer.0 % TIMER_STRIDE);
        let Some(replica) = self.slots.get_mut(&slot) else {
            return;
        };
        let mut inner = Effects::new(fx.id(), fx.n(), fx.now());
        replica.on_timer(inner_timer, &mut inner);
        self.relay_inner(slot, inner, fx);
    }

    fn on_client(&mut self, command: Value, fx: &mut Effects<SlotMessage>) {
        // Ingress backpressure: a bounded pending budget (count and
        // bytes); past it the command is shed and counted, not queued.
        let size = command.as_bytes().len();
        if self.pending.len() >= self.ingress_max_cmds
            || self.pending_bytes.saturating_add(size) > self.ingress_max_bytes
        {
            if let Some(m) = self.opts.metrics.get() {
                m.ingress_shed_total.inc();
                m.ingress_shed_bytes_total.add(size as u64);
            }
            return;
        }
        self.pending_bytes += size;
        self.pending.push_back(command);
        if self.wants_proposal() {
            // Wake the pipeline if it had quiesced; a no-op while it runs.
            self.open_slot(self.applied, fx);
            self.fill_pipeline(fx);
        } else if let Batching::Adaptive(a) = &self.batching {
            // Held for batching: arm the flush-age backstop so the
            // command ships even if the pipeline never quiesces.
            if !self.flush_armed {
                self.flush_armed = true;
                fx.set_timer(a.flush_age, BATCH_FLUSH_TIMER);
            }
        }
    }

    fn on_shutdown(&mut self) {
        self.finish_apply_stage();
    }

    fn label(&self) -> &'static str {
        "smr-node"
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

impl<S: StateMachine + Send + 'static> SmrNode<S> {
    /// Overrides the per-slot replica options. This is also where the
    /// apply stage is (re)configured: `opts.apply_workers > 0` moves the
    /// state machine onto a dedicated in-order apply worker, `0` keeps
    /// (or joins it back) inline.
    #[must_use]
    pub fn with_options(mut self, opts: ReplicaOptions) -> Self {
        self.opts = opts;
        self.reconfigure_apply_stage();
        self
    }

    /// Moves the machine to (or back from) a dedicated apply worker so
    /// the stage matches `opts.apply_workers`.
    fn reconfigure_apply_stage(&mut self) {
        let want_offloop = self.opts.apply_workers > 0;
        if want_offloop == matches!(self.stage, ApplyStage::Offloop(_)) {
            return;
        }
        match mem::replace(&mut self.stage, ApplyStage::Swapping) {
            ApplyStage::Inline(machine) => {
                self.stage =
                    ApplyStage::Offloop(ApplyWorker::spawn(machine, self.opts.metrics.clone()));
            }
            ApplyStage::Offloop(worker) => {
                let (machine, _) = worker.join();
                self.stage = ApplyStage::Inline(machine);
            }
            ApplyStage::Swapping => unreachable!("transient apply-stage placeholder"),
        }
    }
}

impl<S: StateMachine> SmrNode<S> {
    /// Buffers a beyond-window message, enforcing both stash bounds.
    fn stash(&mut self, slot: u64, from: ProcessId, msg: Message) {
        if slot >= self.applied + MAX_STASH_AHEAD {
            // Hostile traffic — or this node is hopelessly behind, which
            // the recovery path (triggered by `note_peer_tip` on this same
            // frame) fixes via state transfer; stashing could not.
            return;
        }
        while self.stashed_total >= MAX_STASHED_MESSAGES {
            // Evict from the farthest slot; if the newcomer *is* the
            // farthest, drop it instead.
            let Some((&farthest, _)) = self.stashed.iter().next_back() else {
                break;
            };
            if farthest <= slot {
                self.note_stash_depth();
                return;
            }
            let bucket = self.stashed.get_mut(&farthest).expect("key just read");
            bucket.pop();
            self.stashed_total -= 1;
            if bucket.is_empty() {
                self.stashed.remove(&farthest);
            }
        }
        self.stashed.entry(slot).or_default().push((from, msg));
        self.stashed_total += 1;
        self.note_stash_depth();
    }

    /// Mirrors the stash size into the metrics gauge (no-op when metrics
    /// are disabled). Called after every `stashed_total` mutation.
    fn note_stash_depth(&self) {
        if let Some(m) = self.opts.metrics.get() {
            m.stash_depth.set(self.stashed_total as u64);
        }
    }
}
