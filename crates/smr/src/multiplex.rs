//! Slot multiplexing: one consensus instance per log position.
//!
//! [`SmrNode`] wraps one [`Replica`] per slot and
//! routes [`SlotMessage`]s between them. Decided slots are applied to the
//! node's [`StateMachine`] strictly in slot order, so all replicas execute
//! the same command sequence — the replicated state machine of the paper's
//! introduction.
//!
//! Three invariants beyond plain slot routing:
//!
//! * **At-most-once execution.** Commands a node proposes are moved into a
//!   per-slot in-flight set (never re-proposed while a slot is pipelined),
//!   and applying dedups by command identity — a command decided in two
//!   slots (possible when slots overlap, or when several nodes propose the
//!   same broadcast command) executes and is logged exactly once.
//! * **Bounded buffering.** Messages for slots beyond the instantiation
//!   window are stashed, but the stash is bounded in both dimensions (slot
//!   horizon and total message count) so a Byzantine peer spraying frames
//!   for arbitrarily distant slots cannot exhaust memory.
//! * **Idle quiescence.** The pipeline opens new slots only while there is
//!   work (pending or in-flight commands, or a peer demonstrably ahead);
//!   an idle cluster stops proposing filler instead of burning CPU — a
//!   client command (see [`Actor::on_client`]) restarts it.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

use fastbft_core::message::Message;
use fastbft_core::replica::{Replica, ReplicaOptions};
use fastbft_crypto::{KeyDirectory, KeyPair};
use fastbft_sim::{Actor, Effects, Outgoing, SimMessage, TimerId};
use fastbft_types::{Config, ProcessId, Value};

use crate::machine::StateMachine;

/// A consensus message tagged with its log slot.
#[derive(Clone, Debug, PartialEq)]
pub struct SlotMessage {
    /// The log position this message belongs to.
    pub slot: u64,
    /// The inner consensus message.
    pub inner: Message,
}

impl SimMessage for SlotMessage {
    fn kind(&self) -> &'static str {
        self.inner.kind()
    }

    fn wire_size(&self) -> usize {
        8 + self.inner.wire_size()
    }
}

// Wire encoding: a slot tag followed by the canonical message encoding, so
// slot-tagged frames travel the authenticated TCP transport exactly like
// single-shot `Message` frames do.
fastbft_types::impl_wire_struct!(SlotMessage { slot, inner });

/// Magic prefix marking a client-tagged command (see [`tag_command`]).
const CLIENT_TAG_MAGIC: &[u8; 4] = b"FBC1";

/// Encodes a client command as `(client id, sequence number, body)` — the
/// structured form of "clients tag id+seq for repeats" from the at-most-once
/// semantics. Tagged commands are deduplicated by `(client, seq)` with a
/// per-client **watermark**, so the dedup state a node keeps for a client is
/// bounded by that client's out-of-order window instead of growing with the
/// log (untagged commands fall back to the unbounded content-digest set).
///
/// Sequence numbers start at 1; a client reusing a `(client, seq)` pair for
/// a different body has only itself to hurt (the second body is treated as
/// a duplicate — deterministically, on every replica).
///
/// **Trust model.** The tag is plain bytes inside an opaque command, so a
/// `(client, seq)` identity is only as trustworthy as the proposals that
/// carry it: a Byzantine leader that commits a *forged* body under some
/// `(client, seq)` consumes that identity, and the client's real command
/// with the same pair will dedup against it (deterministically, on every
/// replica — safety is unaffected, but that client's command is censored).
/// Digest dedup did not grant that power, at the cost of unbounded state.
/// The standard remedy — clients *sign* tagged commands and replicas
/// propose only verified ones — needs per-client keys, which this
/// workspace's cluster-only key directory does not model yet; until then,
/// tag commands only where proposers are trusted or censorship of a
/// specific `(client, seq)` is acceptable, and use untagged commands
/// otherwise.
pub fn tag_command(client: u64, seq: u64, body: &[u8]) -> Value {
    let mut bytes = Vec::with_capacity(4 + 8 + 8 + body.len());
    bytes.extend_from_slice(CLIENT_TAG_MAGIC);
    bytes.extend_from_slice(&client.to_be_bytes());
    bytes.extend_from_slice(&seq.to_be_bytes());
    bytes.extend_from_slice(body);
    Value::new(bytes)
}

/// Parses a command produced by [`tag_command`], returning its
/// `(client, seq)` identity. `None` for untagged (plain) commands.
pub fn parse_client_tag(cmd: &Value) -> Option<(u64, u64)> {
    let bytes = cmd.as_bytes();
    if bytes.len() < 20 || &bytes[..4] != CLIENT_TAG_MAGIC {
        return None;
    }
    let client = u64::from_be_bytes(bytes[4..12].try_into().expect("sized slice"));
    let seq = u64::from_be_bytes(bytes[12..20].try_into().expect("sized slice"));
    Some((client, seq))
}

/// Per-client at-most-once state: every sequence number `<= watermark` has
/// been applied, plus the (small, transient) set of applied seqs above the
/// watermark — non-empty only while commits land out of submission order.
#[derive(Debug, Default)]
struct ClientDedup {
    watermark: u64,
    above: BTreeSet<u64>,
}

impl ClientDedup {
    fn contains(&self, seq: u64) -> bool {
        seq <= self.watermark || self.above.contains(&seq)
    }

    /// Records `seq` as applied and advances the watermark over the now
    /// contiguous prefix, pruning every entry the watermark overtakes.
    fn insert(&mut self, seq: u64) {
        self.above.insert(seq);
        while self.above.remove(&(self.watermark + 1)) {
            self.watermark += 1;
        }
    }
}

/// Default [`SmrNode::with_pipeline_depth`]: a few slots in flight keeps
/// the transport busy (frames from several slots coalesce into one write)
/// without flooding the window when a slot stalls.
const DEFAULT_PIPELINE_DEPTH: u64 = 16;

/// How many slots ahead of the lowest unapplied slot a node will
/// instantiate replicas for. Messages beyond the window are buffered.
const SLOT_WINDOW: u64 = 64;

/// Messages for slots at or beyond `applied + MAX_STASH_AHEAD` are dropped
/// rather than stashed: no correct peer's pipeline runs this far ahead of a
/// node it shares quorums with, so such traffic is hostile or hopeless.
const MAX_STASH_AHEAD: u64 = 4 * SLOT_WINDOW;

/// Total messages the stash may hold across all slots. When full, messages
/// for the farthest slots are evicted first — the nearest slots are the
/// ones that unblock the pipeline.
const MAX_STASHED_MESSAGES: usize = 4096;

/// Timer namespace stride: slot id in the high bits, the replica's own
/// timer generation in the low bits.
const TIMER_STRIDE: u64 = 1 << 32;

/// One process of the replicated state machine. See module docs.
pub struct SmrNode<S: StateMachine> {
    cfg: Config,
    keys: KeyPair,
    dir: KeyDirectory,
    opts: ReplicaOptions,
    machine: S,
    /// Commands this node wants committed, in submission order.
    pending: VecDeque<Value>,
    /// Proposed-when-idle filler command.
    idle_input: Value,
    /// Commands bundled into one consensus value per slot.
    batch_size: usize,
    /// How many consecutive slots may run concurrently while commands are
    /// queued (1 = strictly sequential). Deeper pipelines amortize wakeups
    /// and let the transport's writer threads coalesce frames from several
    /// slots into single writes.
    pipeline_depth: u64,
    /// Open consensus instances.
    slots: BTreeMap<u64, Replica>,
    /// Decided but possibly not yet applied values.
    decided: BTreeMap<u64, Value>,
    /// Next slot to apply.
    applied: u64,
    /// Commands this node drained from `pending` into a slot proposal, by
    /// slot. Re-queued at apply time if the slot decided something else.
    in_flight: BTreeMap<u64, Vec<Value>>,
    /// Slots `< propose_cursor` may no longer drain `pending` (keeps
    /// batches committing in submission order even when slots open out of
    /// order under adversarial scheduling).
    propose_cursor: u64,
    /// Digests of applied **untagged** client commands (at-most-once
    /// guard): 32 bytes per command regardless of command size. Grows with
    /// the log for untagged traffic; clients that want bounded dedup state
    /// tag their commands (see [`tag_command`]) and land in `clients`
    /// instead.
    applied_cmds: HashSet<fastbft_crypto::Digest>,
    /// Watermarked at-most-once state for **tagged** commands, per client:
    /// bounded by each client's out-of-order window, pruned as the
    /// watermark advances.
    clients: HashMap<u64, ClientDedup>,
    /// Messages for slots beyond the window, bounded (see module docs).
    stashed: BTreeMap<u64, Vec<(ProcessId, Message)>>,
    /// Total messages across all `stashed` buckets.
    stashed_total: usize,
    /// The applied command log (for cross-replica assertions).
    log: Vec<Value>,
    /// Client (non-idle) commands applied — the log length minus filler.
    client_commands: u64,
}

impl<S: StateMachine> SmrNode<S> {
    /// Creates a node with a queue of client commands to commit.
    pub fn new(
        cfg: Config,
        keys: KeyPair,
        dir: KeyDirectory,
        machine: S,
        commands: impl IntoIterator<Item = Value>,
        idle_input: Value,
    ) -> Self {
        SmrNode {
            cfg,
            keys,
            dir,
            opts: ReplicaOptions::default(),
            machine,
            pending: commands.into_iter().collect(),
            idle_input,
            batch_size: 1,
            pipeline_depth: DEFAULT_PIPELINE_DEPTH,
            slots: BTreeMap::new(),
            decided: BTreeMap::new(),
            applied: 0,
            in_flight: BTreeMap::new(),
            propose_cursor: 0,
            applied_cmds: HashSet::new(),
            clients: HashMap::new(),
            stashed: BTreeMap::new(),
            stashed_total: 0,
            log: Vec::new(),
            client_commands: 0,
        }
    }

    /// Overrides the per-slot replica options.
    #[must_use]
    pub fn with_options(mut self, opts: ReplicaOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Bundles up to `batch_size` queued commands into each slot's proposal
    /// (amortizing the two message delays over many commands). Default 1.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is 0.
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size >= 1, "batch size must be at least 1");
        self.batch_size = batch_size;
        self
    }

    /// Lets up to `depth` consecutive slots run concurrently while commands
    /// are queued (1 = strictly sequential slots, the pre-pipelining
    /// behavior). Commands still apply in slot order; a slot that decides
    /// someone else's proposal gets its commands re-queued exactly as in
    /// the sequential case. Default 16 (`DEFAULT_PIPELINE_DEPTH`).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is 0.
    #[must_use]
    pub fn with_pipeline_depth(mut self, depth: u64) -> Self {
        assert!(depth >= 1, "pipeline depth must be at least 1");
        self.pipeline_depth = depth.min(SLOT_WINDOW);
        self
    }

    /// Number of *slots* applied so far.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Number of *client* commands applied so far (≥ slots when batching;
    /// idle filler is excluded, matching the runtime handle's
    /// `await_commands` counting).
    pub fn commands_applied(&self) -> u64 {
        self.client_commands
    }

    /// The applied command log.
    pub fn log(&self) -> &[Value] {
        &self.log
    }

    /// The state machine (for assertions).
    pub fn machine(&self) -> &S {
        &self.machine
    }

    /// Commands still waiting to be committed (queued or in flight).
    pub fn pending(&self) -> usize {
        self.pending.len() + self.in_flight.values().map(Vec::len).sum::<usize>()
    }

    /// Messages currently stashed for beyond-window slots (bounded; for
    /// hostile-peer tests and monitoring).
    pub fn stashed_messages(&self) -> usize {
        self.stashed_total
    }

    /// Currently open consensus instances (for quiescence assertions).
    pub fn open_slots(&self) -> usize {
        self.slots.len()
    }

    /// The slot proposal: a batch of up to `batch_size` queued commands
    /// (or the idle filler), encoded as one consensus value. Drained
    /// commands move to the slot's in-flight set so a pipelined slot can
    /// never re-propose them; they are re-queued at apply time if the slot
    /// decides something else.
    fn input_for_slot(&mut self, slot: u64) -> Value {
        let mut cmds: Vec<Value> = Vec::new();
        // The cursor advances only on a real drain: an idle proposal for an
        // out-of-order (e.g. adversarially sprayed in-window) slot must not
        // bar nearer slots from proposing queued commands.
        if slot >= self.propose_cursor && !self.pending.is_empty() {
            let take = self.batch_size.min(self.pending.len());
            cmds.extend(self.pending.drain(..take));
            self.propose_cursor = slot + 1;
            self.in_flight.insert(slot, cmds.clone());
        }
        if cmds.is_empty() {
            cmds.push(self.idle_input.clone());
        }
        Value::new(fastbft_types::wire::to_bytes(&cmds))
    }

    /// Decodes a decided slot value into its command batch. Values that are
    /// not well-formed batches (possible when a Byzantine leader proposes
    /// raw bytes) are applied as a single opaque command — deterministically
    /// on every replica.
    fn decode_batch(value: &Value) -> Vec<Value> {
        fastbft_types::wire::from_bytes::<Vec<Value>>(value.as_bytes())
            .unwrap_or_else(|_| vec![value.clone()])
    }

    /// Opens further slots, up to the pipeline depth, while commands are
    /// queued — each drains its own proposal batch. Slots a peer already
    /// opened reactively (with an idle proposal from us) are skipped; the
    /// queued commands go into the next free slot.
    fn fill_pipeline(&mut self, fx: &mut Effects<SlotMessage>) {
        while !self.pending.is_empty() {
            let slot = self.propose_cursor.max(self.applied);
            if slot >= self.applied + self.pipeline_depth {
                break;
            }
            if self.slots.contains_key(&slot) || self.decided.contains_key(&slot) {
                self.propose_cursor = slot + 1;
                continue;
            }
            self.open_slot(slot, fx);
        }
    }

    fn open_slot(&mut self, slot: u64, fx: &mut Effects<SlotMessage>) {
        if slot < self.applied || self.slots.contains_key(&slot) || self.decided.contains_key(&slot)
        {
            return;
        }
        let input = self.input_for_slot(slot);
        // Rotate first-leadership across slots so every process's commands
        // get committed without waiting for a view change (fairness).
        let mut replica = Replica::with_options(
            self.cfg.with_leader_offset(slot),
            self.keys.clone(),
            self.dir.clone(),
            input,
            self.opts.clone(),
        );
        let mut inner = Effects::new(fx.id(), fx.n(), fx.now());
        replica.on_start(&mut inner);
        self.slots.insert(slot, replica);
        self.relay_inner(slot, inner, fx);
        // Replay anything that arrived before the slot opened.
        if let Some(stash) = self.stashed.remove(&slot) {
            self.stashed_total -= stash.len();
            for (from, msg) in stash {
                self.deliver(slot, from, msg, fx);
            }
        }
    }

    fn deliver(&mut self, slot: u64, from: ProcessId, msg: Message, fx: &mut Effects<SlotMessage>) {
        let Some(replica) = self.slots.get_mut(&slot) else {
            return;
        };
        let mut inner = Effects::new(fx.id(), fx.n(), fx.now());
        replica.on_message(from, msg, &mut inner);
        self.relay_inner(slot, inner, fx);
    }

    fn relay_inner(&mut self, slot: u64, inner: Effects<Message>, fx: &mut Effects<SlotMessage>) {
        for effect in inner.outgoing() {
            match effect {
                Outgoing::To(to, msg) => fx.send(
                    *to,
                    SlotMessage {
                        slot,
                        inner: msg.clone(),
                    },
                ),
                // Keep broadcasts structural through the slot wrapper so
                // the transport still encodes the payload only once.
                Outgoing::All(msg) => fx.broadcast(SlotMessage {
                    slot,
                    inner: msg.clone(),
                }),
            }
        }
        for (delay, timer) in inner.timers_set() {
            fx.set_timer(*delay, TimerId(slot * TIMER_STRIDE + timer.0));
        }
        if let Some(value) = inner.decision_made() {
            self.on_slot_decided(slot, value.clone(), fx);
        }
    }

    /// The at-most-once identity of an untagged command: its content
    /// digest, via the value's memoized digest cache (`command_applied`
    /// followed by `mark_applied` on the same decoded command hashes once,
    /// and a command digested by the protocol layer is never re-hashed
    /// here).
    fn command_key(cmd: &Value) -> fastbft_crypto::Digest {
        *fastbft_crypto::value_digest(cmd)
    }

    /// Whether a client command was already executed — by `(client, seq)`
    /// watermark for tagged commands, by content digest for untagged ones.
    fn command_applied(&self, cmd: &Value) -> bool {
        match parse_client_tag(cmd) {
            Some((client, seq)) => self.clients.get(&client).is_some_and(|d| d.contains(seq)),
            None => self.applied_cmds.contains(&Self::command_key(cmd)),
        }
    }

    /// Records a client command as executed (see [`command_applied`]).
    fn mark_applied(&mut self, cmd: &Value) {
        match parse_client_tag(cmd) {
            Some((client, seq)) => self.clients.entry(client).or_default().insert(seq),
            None => {
                self.applied_cmds.insert(Self::command_key(cmd));
            }
        }
    }

    /// Size of the at-most-once dedup state: untagged digests plus
    /// above-watermark seqs across clients. For a workload of tagged,
    /// eventually-contiguous sequence numbers this returns to **zero** —
    /// the watermarks prune everything — where digest-only dedup grew one
    /// entry per command forever.
    pub fn dedup_entries(&self) -> usize {
        self.applied_cmds.len() + self.clients.values().map(|d| d.above.len()).sum::<usize>()
    }

    /// Applies one decided command: at-most-once by identity for client
    /// commands (the idle filler is exempt — it recurs by design), removing
    /// committed commands from the local queue wherever they sit.
    fn apply_command(&mut self, cmd: Value, fx: &mut Effects<SlotMessage>) {
        if cmd != self.idle_input {
            if self.command_applied(&cmd) {
                return; // already executed in an earlier slot
            }
            self.mark_applied(&cmd);
            if let Some(pos) = self.pending.iter().position(|p| *p == cmd) {
                self.pending.remove(pos);
            }
            self.client_commands += 1;
        }
        self.machine.apply(&cmd);
        fx.record_applied(self.log.len() as u64, &cmd);
        self.log.push(cmd);
    }

    fn on_slot_decided(&mut self, slot: u64, value: Value, fx: &mut Effects<SlotMessage>) {
        if slot < self.applied || self.decided.contains_key(&slot) {
            return;
        }
        self.decided.insert(slot, value);
        // Apply every now-contiguous decided slot in order, one command at
        // a time (a slot carries a batch).
        while let Some(value) = self.decided.remove(&self.applied) {
            let slot = self.applied;
            for cmd in Self::decode_batch(&value) {
                self.apply_command(cmd, fx);
            }
            // Commands this node drained into the slot that the decided
            // value did not commit (another proposal won, or an earlier
            // slot already executed them) go back to the queue front.
            if let Some(mine) = self.in_flight.remove(&slot) {
                for cmd in mine.into_iter().rev() {
                    if !self.command_applied(&cmd) {
                        self.pending.push_front(cmd);
                    }
                }
            }
            self.slots.remove(&slot);
            self.applied += 1;
        }
        // Keep the pipeline going while there is work; quiesce when idle
        // (a client submission re-opens the pipeline via `on_client`).
        if !self.pending.is_empty() || !self.in_flight.is_empty() {
            self.open_slot(self.applied, fx);
        }
        self.fill_pipeline(fx);
        // Purge stash buckets the apply loop has overtaken: their slots are
        // settled, the messages can never be delivered, and dead entries
        // must not pin the stash cap (they are the *nearest* slots, which
        // farthest-first eviction would never reclaim).
        while let Some((&stale, _)) = self.stashed.iter().next() {
            if stale >= self.applied {
                break;
            }
            let bucket = self.stashed.remove(&stale).expect("key just read");
            self.stashed_total -= bucket.len();
        }
        // The window may have moved: drain newly eligible stashes.
        let eligible: Vec<u64> = self
            .stashed
            .keys()
            .copied()
            .filter(|s| *s < self.applied + SLOT_WINDOW)
            .collect();
        for s in eligible {
            self.open_slot(s, fx);
        }
    }

    /// Buffers a beyond-window message, enforcing both stash bounds.
    fn stash(&mut self, slot: u64, from: ProcessId, msg: Message) {
        if slot >= self.applied + MAX_STASH_AHEAD {
            return; // hostile or hopeless: nobody correct is this far ahead
        }
        while self.stashed_total >= MAX_STASHED_MESSAGES {
            // Evict from the farthest slot; if the newcomer *is* the
            // farthest, drop it instead.
            let Some((&farthest, _)) = self.stashed.iter().next_back() else {
                break;
            };
            if farthest <= slot {
                return;
            }
            let bucket = self.stashed.get_mut(&farthest).expect("key just read");
            bucket.pop();
            self.stashed_total -= 1;
            if bucket.is_empty() {
                self.stashed.remove(&farthest);
            }
        }
        self.stashed.entry(slot).or_default().push((from, msg));
        self.stashed_total += 1;
    }
}

impl<S: StateMachine + 'static> Actor<SlotMessage> for SmrNode<S> {
    fn on_start(&mut self, fx: &mut Effects<SlotMessage>) {
        self.open_slot(0, fx);
        self.fill_pipeline(fx);
    }

    fn on_message(&mut self, from: ProcessId, msg: SlotMessage, fx: &mut Effects<SlotMessage>) {
        let SlotMessage { slot, inner } = msg;
        if slot < self.applied {
            return; // already settled and cleaned up
        }
        if !self.slots.contains_key(&slot) && !self.decided.contains_key(&slot) {
            if slot < self.applied + SLOT_WINDOW {
                self.open_slot(slot, fx);
            } else {
                self.stash(slot, from, inner);
                return;
            }
        }
        self.deliver(slot, from, inner, fx);
    }

    fn on_timer(&mut self, timer: TimerId, fx: &mut Effects<SlotMessage>) {
        let slot = timer.0 / TIMER_STRIDE;
        let inner_timer = TimerId(timer.0 % TIMER_STRIDE);
        let Some(replica) = self.slots.get_mut(&slot) else {
            return;
        };
        let mut inner = Effects::new(fx.id(), fx.n(), fx.now());
        replica.on_timer(inner_timer, &mut inner);
        self.relay_inner(slot, inner, fx);
    }

    fn on_client(&mut self, command: Value, fx: &mut Effects<SlotMessage>) {
        self.pending.push_back(command);
        // Wake the pipeline if it had quiesced; a no-op while it runs.
        self.open_slot(self.applied, fx);
        self.fill_pipeline(fx);
    }

    fn label(&self) -> &'static str {
        "smr-node"
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}
