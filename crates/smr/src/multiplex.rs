//! Slot multiplexing: one consensus instance per log position.
//!
//! [`SmrNode`] wraps one [`Replica`] per slot and
//! routes [`SlotMessage`]s between them. Decided slots are applied to the
//! node's [`StateMachine`] strictly in slot order, so all replicas execute
//! the same command sequence — the replicated state machine of the paper's
//! introduction.

use std::collections::{BTreeMap, VecDeque};

use fastbft_core::message::Message;
use fastbft_core::replica::{Replica, ReplicaOptions};
use fastbft_crypto::{KeyDirectory, KeyPair};
use fastbft_sim::{Actor, Effects, SimMessage, TimerId};
use fastbft_types::{Config, ProcessId, Value};

use crate::machine::StateMachine;

/// A consensus message tagged with its log slot.
#[derive(Clone, Debug, PartialEq)]
pub struct SlotMessage {
    /// The log position this message belongs to.
    pub slot: u64,
    /// The inner consensus message.
    pub inner: Message,
}

impl SimMessage for SlotMessage {
    fn kind(&self) -> &'static str {
        self.inner.kind()
    }

    fn wire_size(&self) -> usize {
        8 + self.inner.wire_size()
    }
}

/// How many slots ahead of the lowest unapplied slot a node will
/// instantiate replicas for. Messages beyond the window are buffered.
const SLOT_WINDOW: u64 = 64;

/// Timer namespace stride: slot id in the high bits, the replica's own
/// timer generation in the low bits.
const TIMER_STRIDE: u64 = 1 << 32;

/// One process of the replicated state machine. See module docs.
pub struct SmrNode<S: StateMachine> {
    cfg: Config,
    keys: KeyPair,
    dir: KeyDirectory,
    opts: ReplicaOptions,
    machine: S,
    /// Commands this node wants committed, in submission order.
    pending: VecDeque<Value>,
    /// Proposed-when-idle filler command.
    idle_input: Value,
    /// Commands bundled into one consensus value per slot.
    batch_size: usize,
    /// Open consensus instances.
    slots: BTreeMap<u64, Replica>,
    /// Decided but possibly not yet applied values.
    decided: BTreeMap<u64, Value>,
    /// Next slot to apply (== number of applied commands).
    applied: u64,
    /// Messages for slots beyond the window.
    stashed: BTreeMap<u64, Vec<(ProcessId, Message)>>,
    /// The applied command log (for cross-replica assertions).
    log: Vec<Value>,
}

impl<S: StateMachine> SmrNode<S> {
    /// Creates a node with a queue of client commands to commit.
    pub fn new(
        cfg: Config,
        keys: KeyPair,
        dir: KeyDirectory,
        machine: S,
        commands: impl IntoIterator<Item = Value>,
        idle_input: Value,
    ) -> Self {
        SmrNode {
            cfg,
            keys,
            dir,
            opts: ReplicaOptions::default(),
            machine,
            pending: commands.into_iter().collect(),
            idle_input,
            batch_size: 1,
            slots: BTreeMap::new(),
            decided: BTreeMap::new(),
            applied: 0,
            stashed: BTreeMap::new(),
            log: Vec::new(),
        }
    }

    /// Overrides the per-slot replica options.
    #[must_use]
    pub fn with_options(mut self, opts: ReplicaOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Bundles up to `batch_size` queued commands into each slot's proposal
    /// (amortizing the two message delays over many commands). Default 1.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is 0.
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size >= 1, "batch size must be at least 1");
        self.batch_size = batch_size;
        self
    }

    /// Number of *slots* applied so far.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Number of *commands* applied so far (≥ slots when batching).
    pub fn commands_applied(&self) -> u64 {
        self.log.len() as u64
    }

    /// The applied command log.
    pub fn log(&self) -> &[Value] {
        &self.log
    }

    /// The state machine (for assertions).
    pub fn machine(&self) -> &S {
        &self.machine
    }

    /// Commands still waiting to be committed.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// The slot proposal: a batch of up to `batch_size` queued commands
    /// (or the idle filler), encoded as one consensus value.
    fn input_for_slot(&self, _slot: u64) -> Value {
        let mut cmds: Vec<Value> = self.pending.iter().take(self.batch_size).cloned().collect();
        if cmds.is_empty() {
            cmds.push(self.idle_input.clone());
        }
        Value::new(fastbft_types::wire::to_bytes(&cmds))
    }

    /// Decodes a decided slot value into its command batch. Values that are
    /// not well-formed batches (possible when a Byzantine leader proposes
    /// raw bytes) are applied as a single opaque command — deterministically
    /// on every replica.
    fn decode_batch(value: &Value) -> Vec<Value> {
        fastbft_types::wire::from_bytes::<Vec<Value>>(value.as_bytes())
            .unwrap_or_else(|_| vec![value.clone()])
    }

    fn open_slot(&mut self, slot: u64, fx: &mut Effects<SlotMessage>) {
        if self.slots.contains_key(&slot) || self.decided.contains_key(&slot) {
            return;
        }
        // Rotate first-leadership across slots so every process's commands
        // get committed without waiting for a view change (fairness).
        let mut replica = Replica::with_options(
            self.cfg.with_leader_offset(slot),
            self.keys.clone(),
            self.dir.clone(),
            self.input_for_slot(slot),
            self.opts.clone(),
        );
        let mut inner = Effects::new(fx.id(), fx.n(), fx.now());
        replica.on_start(&mut inner);
        self.slots.insert(slot, replica);
        self.relay_inner(slot, inner, fx);
        // Replay anything that arrived before the slot opened.
        if let Some(stash) = self.stashed.remove(&slot) {
            for (from, msg) in stash {
                self.deliver(slot, from, msg, fx);
            }
        }
    }

    fn deliver(&mut self, slot: u64, from: ProcessId, msg: Message, fx: &mut Effects<SlotMessage>) {
        let Some(replica) = self.slots.get_mut(&slot) else {
            return;
        };
        let mut inner = Effects::new(fx.id(), fx.n(), fx.now());
        replica.on_message(from, msg, &mut inner);
        self.relay_inner(slot, inner, fx);
    }

    fn relay_inner(&mut self, slot: u64, inner: Effects<Message>, fx: &mut Effects<SlotMessage>) {
        for (to, msg) in inner.sent() {
            fx.send(
                *to,
                SlotMessage {
                    slot,
                    inner: msg.clone(),
                },
            );
        }
        for (delay, timer) in inner.timers_set() {
            fx.set_timer(*delay, TimerId(slot * TIMER_STRIDE + timer.0));
        }
        if let Some(value) = inner.decision_made() {
            self.on_slot_decided(slot, value.clone(), fx);
        }
    }

    fn on_slot_decided(&mut self, slot: u64, value: Value, fx: &mut Effects<SlotMessage>) {
        if self.decided.contains_key(&slot) {
            return;
        }
        self.decided.insert(slot, value);
        // Apply every now-contiguous decided slot in order, one command at
        // a time (a slot carries a batch).
        while let Some(value) = self.decided.get(&self.applied).cloned() {
            for cmd in Self::decode_batch(&value) {
                self.machine.apply(&cmd);
                self.log.push(cmd.clone());
                if self.pending.front() == Some(&cmd) {
                    self.pending.pop_front();
                }
            }
            self.slots.remove(&self.applied);
            self.applied += 1;
        }
        // Keep the pipeline going.
        self.open_slot(self.applied, fx);
        // The window may have moved: drain newly eligible stashes.
        let eligible: Vec<u64> = self
            .stashed
            .keys()
            .copied()
            .filter(|s| *s < self.applied + SLOT_WINDOW)
            .collect();
        for s in eligible {
            self.open_slot(s, fx);
        }
    }
}

impl<S: StateMachine + 'static> Actor<SlotMessage> for SmrNode<S> {
    fn on_start(&mut self, fx: &mut Effects<SlotMessage>) {
        self.open_slot(0, fx);
    }

    fn on_message(&mut self, from: ProcessId, msg: SlotMessage, fx: &mut Effects<SlotMessage>) {
        let SlotMessage { slot, inner } = msg;
        if self.decided.contains_key(&slot) && !self.slots.contains_key(&slot) {
            return; // already settled and cleaned up
        }
        if !self.slots.contains_key(&slot) {
            if slot < self.applied + SLOT_WINDOW {
                self.open_slot(slot, fx);
            } else {
                self.stashed.entry(slot).or_default().push((from, inner));
                return;
            }
        }
        self.deliver(slot, from, inner, fx);
    }

    fn on_timer(&mut self, timer: TimerId, fx: &mut Effects<SlotMessage>) {
        let slot = timer.0 / TIMER_STRIDE;
        let inner_timer = TimerId(timer.0 % TIMER_STRIDE);
        let Some(replica) = self.slots.get_mut(&slot) else {
            return;
        };
        let mut inner = Effects::new(fx.id(), fx.n(), fx.now());
        replica.on_timer(inner_timer, &mut inner);
        self.relay_inner(slot, inner, fx);
    }

    fn label(&self) -> &'static str {
        "smr-node"
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}
