//! Multi-thread hammer: no increment is ever lost.
//!
//! Counters and histograms use relaxed atomics — relaxed ordering can
//! reorder *unrelated* observations but a `fetch_add` is still a single
//! atomic RMW, so concurrent increments must all land. This test hammers
//! one shared block from many threads and asserts exact totals.

use std::sync::Arc;
use std::thread;

use fastbft_obs::{Histogram, Metrics, MetricsRegistry};

const THREADS: usize = 8;
const PER_THREAD: u64 = 50_000;

#[test]
fn counters_never_lose_increments() {
    let m = Arc::new(Metrics::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|i| {
            let m = Arc::clone(&m);
            thread::spawn(move || {
                for j in 0..PER_THREAD {
                    m.commit_fast_total.inc();
                    m.bytes_out_total.add(3);
                    m.stash_depth.set_max(i as u64 * PER_THREAD + j);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("hammer thread panicked");
    }
    let expected = THREADS as u64 * PER_THREAD;
    assert_eq!(m.commit_fast_total.get(), expected);
    assert_eq!(m.bytes_out_total.get(), expected * 3);
    assert_eq!(m.stash_depth.get(), expected - 1, "high-water is the max");
}

#[test]
fn histogram_never_loses_samples() {
    let h = Arc::new(Histogram::new());
    let workers: Vec<_> = (0..THREADS)
        .map(|i| {
            let h = Arc::clone(&h);
            thread::spawn(move || {
                for j in 0..PER_THREAD {
                    // Spread across many buckets so threads collide on
                    // the same cells some of the time but not always.
                    h.record((i as u64 * 31 + j * 7) % 100_000);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("hammer thread panicked");
    }
    assert_eq!(h.count(), THREADS as u64 * PER_THREAD);
    assert!(h.quantile(1.0) >= h.quantile(0.5));
}

#[test]
fn registry_scrape_races_with_writers() {
    // A scrape concurrent with recording must see internally consistent
    // output (no panics, parseable lines) — exact values are racy.
    let reg = MetricsRegistry::new(2);
    let writer = {
        let reg = reg.clone();
        thread::spawn(move || {
            for i in 0..20_000u64 {
                reg.metrics(0).commit_fast_total.inc();
                reg.metrics(1).commit_latency_fast_us.record(i % 5_000);
            }
        })
    };
    for _ in 0..20 {
        let text = reg.render_text();
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("malformed line");
            value.parse::<f64>().expect("non-numeric sample");
        }
        let _ = reg.render_json();
    }
    writer.join().expect("writer panicked");
    assert_eq!(reg.total(|m| &m.commit_fast_total), 20_000);
}
