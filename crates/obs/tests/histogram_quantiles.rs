//! Property: histogram quantile estimates bound the true quantiles.
//!
//! The log-scale histogram reports, for the `q`-quantile, the upper bound
//! of the bucket holding the `⌈q·count⌉`-th smallest sample. Over random
//! workloads that must satisfy `true ≤ estimate ≤ true·17/16 + 1`: never
//! an underestimate (latency SLOs read the pessimistic side), never more
//! than one sub-bucket of overshoot.

use fastbft_obs::Histogram;
use proptest::prelude::*;

/// The exact `q`-quantile under the same rank convention the histogram
/// uses: the `⌈q·n⌉`-th smallest sample (1-based, clamped into range).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

/// Workloads spanning the interesting ranges: sub-16 exact buckets,
/// microsecond-scale latencies, and huge outliers.
fn workload() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        prop_oneof![
            0u64..16,
            16u64..4096,
            4096u64..10_000_000,
            1_000_000_000u64..u64::MAX / 2,
        ],
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    /// For every tracked quantile, the estimate brackets the true value:
    /// `true ≤ estimate ≤ true + true/16 + 1`.
    #[test]
    fn quantile_estimates_bound_true_quantiles(samples in workload()) {
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        prop_assert_eq!(h.count(), samples.len() as u64);
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            let truth = exact_quantile(&sorted, q);
            let estimate = h.quantile(q);
            prop_assert!(
                estimate >= truth,
                "q={} underestimated: {} < true {}",
                q, estimate, truth
            );
            let slack = truth / 16 + 1;
            prop_assert!(
                estimate <= truth.saturating_add(slack),
                "q={} overshot the 1/16 band: {} > true {} + {}",
                q, estimate, truth, slack
            );
        }
    }

    /// Sum and max are exact regardless of bucketing.
    #[test]
    fn sum_and_max_are_exact(samples in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        prop_assert_eq!(h.sum(), samples.iter().sum::<u64>());
        prop_assert_eq!(h.max(), *samples.iter().max().unwrap());
    }
}
