//! The observability plane for `fastbft`: per-replica metrics and a
//! flight recorder, cheap enough for the consensus hot path.
//!
//! The paper's whole claim is a *latency shape* — 2-delay commits when the
//! fast quorum cooperates, 3-delay slow-path commits and view changes when
//! it does not. This crate is how the rest of the workspace makes that
//! shape observable instead of inferred:
//!
//! * [`Counter`] / [`Gauge`] — relaxed atomic cells. One increment is a
//!   single uncontended `fetch_add`; safe to leave enabled on the frame
//!   receive path (the PR-5 rule: release readers must not bounce shared
//!   cache lines per frame — so every cell is per-replica, not global).
//! * [`Histogram`] — log-scale buckets (16 linear sub-buckets per
//!   power-of-two octave, HdrHistogram-style) with
//!   [`quantile`](Histogram::quantile) estimates for p50/p99/p999 that are
//!   guaranteed to **bound the true quantile from above** within 1/16
//!   relative error. Recording is three relaxed atomic ops.
//! * [`FlightRecorder`] — a bounded ring buffer of structured protocol
//!   events (view changes, path decisions, snapshot installs, MAC
//!   rejections). Rare-path only: recording takes a mutex.
//! * [`Metrics`] — one instance per replica holding every layer's
//!   instruments, shared as an `Arc` through [`MetricsHandle`] (a cheap
//!   optional handle that defaults to *disabled*, so un-instrumented
//!   construction paths pay one branch per record site).
//! * [`MetricsRegistry`] — the cluster-wide view: `n` replica metrics plus
//!   the two exporters, Prometheus-style text exposition
//!   ([`render_text`](MetricsRegistry::render_text)) and a JSON dump
//!   ([`render_json`](MetricsRegistry::render_json)).
//!
//! ```
//! use fastbft_obs::MetricsRegistry;
//!
//! let registry = MetricsRegistry::new(4);
//! let handle = registry.replica(0); // give this to replica p1
//! if let Some(m) = handle.get() {
//!     m.commit_fast_total.inc();
//!     m.commit_latency_fast_us.record(180);
//! }
//! let text = registry.render_text();
//! assert!(text.contains("fastbft_commit_fast_total{replica=\"p1\"} 1"));
//! ```
//!
//! The crate has **zero dependencies** (not even workspace ones): it sits
//! below every other crate so any layer can record into it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod instruments;
mod recorder;
mod registry;

pub use histogram::Histogram;
pub use instruments::{Counter, Gauge};
pub use recorder::{global_recorder, record_global, Event, FlightRecorder};
pub use registry::{Metrics, MetricsHandle, MetricsRegistry};
