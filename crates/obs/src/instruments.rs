//! The scalar instruments: monotonic counters and last-value gauges.
//!
//! Both are single relaxed `AtomicU64`s. Relaxed ordering is deliberate:
//! metric reads are statistical (a scrape racing an increment may miss it
//! by one), and nothing synchronizes *through* a metric — so the hot path
//! pays one uncontended RMW and no fences. Each instrument lives inside a
//! per-replica [`Metrics`](crate::Metrics) block, never shared across
//! replica threads, so the cache line stays home.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter (events since process start).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: an instantaneous value that can move both ways (queue depth,
/// stash size), or — via [`set_max`](Gauge::set_max) — a high-water mark.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is larger (high-water tracking).
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_set_and_high_water() {
        let g = Gauge::new();
        g.set(7);
        assert_eq!(g.get(), 7);
        g.set_max(3);
        assert_eq!(g.get(), 7, "set_max never lowers");
        g.set_max(19);
        assert_eq!(g.get(), 19);
        g.set(2);
        assert_eq!(g.get(), 2, "set overwrites unconditionally");
    }
}
