//! The flight recorder: a bounded ring of structured protocol events.
//!
//! Where counters answer "how many", the recorder answers "what happened,
//! in what order": view changes, path decisions, snapshot installs, MAC
//! rejections — the events a post-mortem needs. The ring is bounded
//! ([`DEFAULT_CAPACITY`](FlightRecorder::DEFAULT_CAPACITY) events);
//! older entries are overwritten, like an aircraft flight recorder. Each
//! event carries a monotone sequence number, so a snapshot shows exactly
//! how much history was evicted.
//!
//! Recording takes a mutex — the recorder is for **rare** control-plane
//! events, not per-frame traffic (that is what [`Counter`](crate::Counter)
//! is for). A process-wide [`global_recorder`] backs the `log` compat
//! shim's `trace!`/`debug!` macros for call sites with no replica handle.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One recorded protocol event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Monotone per-recorder sequence number (0 = first ever recorded);
    /// gaps at the front of a snapshot mean the ring evicted history.
    pub seq: u64,
    /// Microseconds since the recorder was created.
    pub at_us: u64,
    /// Event taxonomy tag, e.g. `"view-change"`, `"commit-fast"`,
    /// `"snapshot-install"`, `"mac-reject"`, or a log level for events
    /// routed through the `log` shim.
    pub kind: &'static str,
    /// Human-readable detail line.
    pub detail: String,
}

struct Inner {
    events: VecDeque<Event>,
    next_seq: u64,
}

/// A bounded ring buffer of [`Event`]s.
pub struct FlightRecorder {
    inner: Mutex<Inner>,
    capacity: usize,
    start: Instant,
}

impl fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    /// Default ring capacity: enough for every control-plane event of a
    /// long test run, small enough to snapshot casually.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// A recorder with the default capacity.
    pub fn new() -> Self {
        FlightRecorder::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// A recorder holding at most `capacity` events (≥ 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            inner: Mutex::new(Inner {
                events: VecDeque::with_capacity(capacity),
                next_seq: 0,
            }),
            capacity,
            start: Instant::now(),
        }
    }

    /// Appends an event, evicting the oldest if the ring is full.
    pub fn record(&self, kind: &'static str, detail: String) {
        let at_us = u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let mut inner = self.inner.lock().expect("recorder poisoned");
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
        }
        inner.events.push_back(Event {
            seq,
            at_us,
            kind,
            detail,
        });
    }

    /// [`record`](FlightRecorder::record) from preformatted arguments —
    /// the entry point the `log` compat shim macros use.
    pub fn record_args(&self, kind: &'static str, args: fmt::Arguments<'_>) {
        self.record(kind, args.to_string());
    }

    /// A copy of the current ring contents, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        let inner = self.inner.lock().expect("recorder poisoned");
        inner.events.iter().cloned().collect()
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("recorder poisoned").events.len()
    }

    /// Whether nothing has been recorded (or everything was evicted —
    /// impossible, eviction only happens on insert).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever recorded, including evicted ones.
    pub fn total_recorded(&self) -> u64 {
        self.inner.lock().expect("recorder poisoned").next_seq
    }
}

/// The process-wide recorder backing the `log` compat shim: call sites
/// with no replica-scoped [`Metrics`](crate::Metrics) handle (library
/// internals, transport threads) record here.
pub fn global_recorder() -> &'static FlightRecorder {
    static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
    GLOBAL.get_or_init(FlightRecorder::new)
}

/// Records preformatted arguments into the [`global_recorder`] — the
/// function the `log` shim's `trace!`/`debug!` macros expand to.
pub fn record_global(kind: &'static str, args: fmt::Arguments<'_>) {
    global_recorder().record_args(kind, args);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest() {
        let r = FlightRecorder::with_capacity(3);
        for i in 0..5 {
            r.record("test", format!("event {i}"));
        }
        let events = r.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].seq, 2, "two oldest evicted");
        assert_eq!(events[2].detail, "event 4");
        assert_eq!(r.total_recorded(), 5);
    }

    #[test]
    fn timestamps_are_monotone() {
        let r = FlightRecorder::new();
        r.record("a", String::new());
        r.record("b", String::new());
        let events = r.snapshot();
        assert!(events[0].at_us <= events[1].at_us);
    }

    #[test]
    fn global_recorder_accepts_args() {
        record_global("trace", format_args!("replica {} did {}", 1, "x"));
        assert!(global_recorder()
            .snapshot()
            .iter()
            .any(|e| e.kind == "trace" && e.detail == "replica 1 did x"));
    }
}
