//! A log-scale latency histogram with bounded-error quantile estimates.
//!
//! Values (microseconds, byte counts, batch sizes — any `u64`) land in
//! HdrHistogram-style buckets: each power-of-two octave `[2^k, 2^{k+1})`
//! is split into 16 linear sub-buckets, and values below 16 get exact
//! unit buckets. A bucket's width is therefore at most 1/16 of its lower
//! bound, which gives the estimator its guarantee: reporting the **upper
//! bound of the bucket containing the q-th sample** yields an estimate
//! `e` with `true_quantile ≤ e < true_quantile · 17/16 + 1`. The proptest
//! suite (`tests/histogram_quantiles.rs`) checks exactly that envelope
//! against exact quantiles of random workloads.
//!
//! Recording is three relaxed atomic RMWs (bucket, sum, max) — no locks,
//! no allocation — so it can sit on the commit path. Reads (quantiles,
//! totals) walk the 976 buckets at scrape time; scrapes are rare.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per octave: 16 ⇒ ≤ 1/16 relative quantile error.
const SUBS: usize = 16;
/// log2(SUBS): octaves below 2^SUB_BITS get exact unit buckets.
const SUB_BITS: u32 = 4;
/// 16 unit buckets + 16 sub-buckets for each octave 2^4 … 2^63.
const BUCKETS: usize = SUBS + (64 - SUB_BITS as usize) * SUBS;

/// A lock-free log-scale histogram of `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// The bucket a value lands in.
#[inline]
fn index_of(v: u64) -> usize {
    if v < SUBS as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros(); // ≥ SUB_BITS
        let sub = ((v >> (msb - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
        SUBS + (msb - SUB_BITS) as usize * SUBS + sub
    }
}

/// The largest value that lands in bucket `index` (inclusive).
fn upper_bound(index: usize) -> u64 {
    if index < SUBS {
        index as u64
    } else {
        let i = index - SUBS;
        let shift = (i / SUBS) as u32; // msb − SUB_BITS
        let sub = (i % SUBS) as u64;
        let upper = ((SUBS as u64 + sub + 1) as u128) << shift;
        u64::try_from(upper - 1).unwrap_or(u64::MAX)
    }
}

impl Histogram {
    /// An empty histogram (≈ 8 KiB of buckets).
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Three relaxed atomic ops; hot-path safe.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[index_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total number of samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all samples (for computing means externally).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample recorded, exactly (0 if empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Folds every sample of `other` into `self` — scrape-side
    /// aggregation, e.g. a cluster-wide latency distribution built from
    /// per-replica histograms. Bucket-exact: quantiles of the merged
    /// histogram carry the same 1/16 error bound as the inputs.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let c = theirs.load(Ordering::Relaxed);
            if c > 0 {
                mine.fetch_add(c, Ordering::Relaxed);
            }
        }
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.max.fetch_max(other.max(), Ordering::Relaxed);
    }

    /// An upper estimate of the `q`-quantile (`0.0 < q ≤ 1.0`): the upper
    /// bound of the bucket holding the `⌈q·count⌉`-th smallest sample.
    /// Guaranteed ≥ the true quantile and within 1/16 relative error of
    /// it. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return upper_bound(i);
            }
        }
        upper_bound(BUCKETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_geometry_is_contiguous() {
        // Every value maps to a bucket whose range contains it, and
        // bucket upper bounds are strictly increasing.
        let probes = [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            33,
            1000,
            4095,
            4096,
            u32::MAX as u64,
            u64::MAX / 2,
            u64::MAX,
        ];
        for &v in &probes {
            let i = index_of(v);
            assert!(v <= upper_bound(i), "value {v} above its bucket bound");
            if i > 0 {
                assert!(upper_bound(i - 1) < v, "value {v} below its bucket");
            }
        }
        for i in 1..BUCKETS {
            assert!(upper_bound(i - 1) < upper_bound(i));
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.quantile(0.5), 7);
        assert_eq!(h.quantile(1.0), 15);
        assert_eq!(h.max(), 15);
        assert_eq!(h.sum(), (0..16).sum::<u64>());
    }

    #[test]
    fn empty_quantile_is_zero() {
        assert_eq!(Histogram::new().quantile(0.99), 0);
    }

    #[test]
    fn quantile_bounds_from_above() {
        let h = Histogram::new();
        for v in [100u64, 200, 300, 4000, 50_000] {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        assert!((300..=320).contains(&p50), "p50 {p50} outside 1/16 band");
        let p999 = h.quantile(0.999);
        assert!(
            (50_000..=53_248).contains(&p999),
            "p999 {p999} outside band"
        );
    }
}
