//! Per-replica metric blocks, the optional handle layers record through,
//! and the cluster-wide registry with both exporters.
//!
//! Ownership model: a [`MetricsRegistry`] owns one [`Metrics`] block per
//! replica seat. Each block is handed to its replica as a
//! [`MetricsHandle`] (an `Option<Arc<Metrics>>`), threaded through
//! `ReplicaOptions` so it reaches every per-slot `Replica`, the SMR
//! multiplexer, and — via the metered transport constructors — the TCP
//! writer/reader threads. A handle defaults to **disabled**: every record
//! site is `if let Some(m) = handle.get() { … }`, one branch when off.
//!
//! Exposition: [`render_text`](MetricsRegistry::render_text) emits
//! Prometheus-style text (counters and gauges as single series,
//! histograms as summaries with `quantile` labels plus `_sum`/`_count`),
//! every series labeled `replica="pN"`; [`render_json`]
//! (MetricsRegistry::render_json) emits one JSON object with the same
//! data plus each replica's flight-recorder tail.

use std::fmt;
use std::fmt::Write as _;
use std::sync::Arc;

use crate::histogram::Histogram;
use crate::instruments::{Counter, Gauge};
use crate::recorder::FlightRecorder;

/// Every instrument one replica records into, across all layers. Field
/// names are the exposition names minus the `fastbft_` prefix.
#[derive(Debug, Default)]
#[allow(missing_docs)] // each field is documented by its HELP line below
pub struct Metrics {
    // core: commit-path and view-change visibility (the paper's shape).
    pub commit_fast_total: Counter,
    pub commit_slow_total: Counter,
    pub view_change_total: Counter,
    // crypto: the PR-5 memo layers.
    pub cert_cache_hit_total: Counter,
    pub cert_cache_miss_total: Counter,
    pub sig_memo_hit_total: Counter,
    pub sig_memo_miss_total: Counter,
    // smr: the slot multiplexer.
    pub dedup_dropped_total: Counter,
    pub batch_flush_size_total: Counter,
    pub batch_flush_bytes_total: Counter,
    pub batch_flush_quiescence_total: Counter,
    pub batch_flush_timeout_total: Counter,
    pub ingress_shed_total: Counter,
    pub ingress_shed_bytes_total: Counter,
    pub apply_offload_total: Counter,
    pub apply_queue_depth: Gauge,
    // runtime: the inbound verify/decode pool.
    pub verify_offload_total: Counter,
    pub verify_inline_total: Counter,
    pub verify_queue_depth: Gauge,
    pub snapshot_taken_total: Counter,
    pub snapshot_installed_total: Counter,
    pub backfill_slots_total: Counter,
    pub stash_depth: Gauge,
    pub batch_size: Histogram,
    pub commit_latency_fast_us: Histogram,
    pub commit_latency_slow_us: Histogram,
    pub apply_latency_us: Histogram,
    // net: the TCP transport.
    pub frames_out_total: Counter,
    pub bytes_out_total: Counter,
    pub frames_in_total: Counter,
    pub bytes_in_total: Counter,
    pub mac_reject_total: Counter,
    pub reconnect_total: Counter,
    pub send_drop_total: Counter,
    pub send_drop_unreachable_total: Counter,
    pub writer_queue_depth_peak: Gauge,
    pub peer_links_down: Gauge,
    // faults: the injection plane (FaultTransport / FaultPlan).
    pub fault_delay_injected_total: Counter,
    pub fault_drop_injected_total: Counter,
    pub fault_dup_injected_total: Counter,
    pub fault_partition_drop_total: Counter,
    pub fault_links_shaped: Gauge,
    /// This replica's flight recorder (rare control-plane events).
    pub recorder: FlightRecorder,
}

impl Metrics {
    /// A fresh block with everything at zero.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// `(name, help, counter)` for every counter, in exposition order.
    fn counters(&self) -> [(&'static str, &'static str, &Counter); 28] {
        [
            (
                "commit_fast_total",
                "Slots committed on the 2-delay fast path (n - t acks).",
                &self.commit_fast_total,
            ),
            (
                "commit_slow_total",
                "Slots committed via the 3-delay slow path (commit certificate).",
                &self.commit_slow_total,
            ),
            (
                "view_change_total",
                "View changes entered (leader replacements).",
                &self.view_change_total,
            ),
            (
                "cert_cache_hit_total",
                "Certificate verifications answered by the bounded cert cache.",
                &self.cert_cache_hit_total,
            ),
            (
                "cert_cache_miss_total",
                "Certificate verifications that ran cryptographic checks.",
                &self.cert_cache_miss_total,
            ),
            (
                "sig_memo_hit_total",
                "Signature-share verifications skipped by the per-signer memo.",
                &self.sig_memo_hit_total,
            ),
            (
                "sig_memo_miss_total",
                "Signature-share verifications that ran fresh HMAC checks.",
                &self.sig_memo_miss_total,
            ),
            (
                "dedup_dropped_total",
                "Committed commands skipped by identity dedup (at-most-once).",
                &self.dedup_dropped_total,
            ),
            (
                "batch_flush_size_total",
                "Proposal batches flushed because the adaptive target was reached.",
                &self.batch_flush_size_total,
            ),
            (
                "batch_flush_bytes_total",
                "Proposal batches flushed at the max_batch_bytes cap.",
                &self.batch_flush_bytes_total,
            ),
            (
                "batch_flush_quiescence_total",
                "Proposal batches flushed because the pipeline was idle.",
                &self.batch_flush_quiescence_total,
            ),
            (
                "batch_flush_timeout_total",
                "Proposal batches flushed by the flush-age backstop.",
                &self.batch_flush_timeout_total,
            ),
            (
                "ingress_shed_total",
                "Client commands shed at ingress by the pending-queue budget.",
                &self.ingress_shed_total,
            ),
            (
                "apply_offload_total",
                "Decided commands handed to the off-loop apply worker.",
                &self.apply_offload_total,
            ),
            (
                "verify_offload_total",
                "Inbound messages whose signature checks ran on a verify-pool worker.",
                &self.verify_offload_total,
            ),
            (
                "verify_inline_total",
                "Inbound messages verified inline on the event loop (no pool).",
                &self.verify_inline_total,
            ),
            (
                "snapshot_taken_total",
                "Canonical snapshots taken at checkpoint boundaries.",
                &self.snapshot_taken_total,
            ),
            (
                "snapshot_installed_total",
                "Attested snapshots installed during far-behind recovery.",
                &self.snapshot_installed_total,
            ),
            (
                "backfill_slots_total",
                "Slots absorbed from quorum-matched backfill frames.",
                &self.backfill_slots_total,
            ),
            (
                "frames_out_total",
                "TCP frames written (one coalesced frame per writer drain).",
                &self.frames_out_total,
            ),
            (
                "frames_in_total",
                "TCP frames read and MAC-verified.",
                &self.frames_in_total,
            ),
            (
                "mac_reject_total",
                "Inbound frames dropped for a bad session MAC or sender.",
                &self.mac_reject_total,
            ),
            (
                "reconnect_total",
                "Peer links re-established after a drop (first dials excluded).",
                &self.reconnect_total,
            ),
            (
                "send_drop_unreachable_total",
                "Outbound messages dropped because the peer link was down or cooling down.",
                &self.send_drop_unreachable_total,
            ),
            (
                "fault_delay_injected_total",
                "Deliveries delayed by the fault plan (delay, jitter, reorder, bandwidth).",
                &self.fault_delay_injected_total,
            ),
            (
                "fault_drop_injected_total",
                "Deliveries dropped by the fault plan's probabilistic loss.",
                &self.fault_drop_injected_total,
            ),
            (
                "fault_dup_injected_total",
                "Duplicate deliveries injected by the fault plan.",
                &self.fault_dup_injected_total,
            ),
            (
                "fault_partition_drop_total",
                "Deliveries dropped by a hard partition in the fault plan.",
                &self.fault_partition_drop_total,
            ),
        ]
    }

    /// `(name, help, counter)` for byte counters (split out so the text
    /// renderer can group all counters; bytes are still counters).
    fn byte_counters(&self) -> [(&'static str, &'static str, &Counter); 4] {
        [
            (
                "ingress_shed_bytes_total",
                "Command bytes shed at ingress by the pending-queue budget.",
                &self.ingress_shed_bytes_total,
            ),
            (
                "bytes_out_total",
                "Wire bytes written, including frame headers and MACs.",
                &self.bytes_out_total,
            ),
            (
                "bytes_in_total",
                "Wire payload bytes read from verified frames.",
                &self.bytes_in_total,
            ),
            (
                "send_drop_total",
                "Outbound messages dropped (oversized or writer queue full).",
                &self.send_drop_total,
            ),
        ]
    }

    /// `(name, help, gauge)` for every gauge.
    fn gauges(&self) -> [(&'static str, &'static str, &Gauge); 6] {
        [
            (
                "stash_depth",
                "Future-slot messages currently stashed (bounded).",
                &self.stash_depth,
            ),
            (
                "apply_queue_depth",
                "Command batches queued to the apply worker and not yet executed.",
                &self.apply_queue_depth,
            ),
            (
                "verify_queue_depth",
                "Messages submitted to the verify pool and not yet consumed.",
                &self.verify_queue_depth,
            ),
            (
                "writer_queue_depth_peak",
                "High-water mark of any per-peer writer queue, in messages.",
                &self.writer_queue_depth_peak,
            ),
            (
                "peer_links_down",
                "Peer links currently unreachable (writer dialing or cooling down).",
                &self.peer_links_down,
            ),
            (
                "fault_links_shaped",
                "Fault-plan rules active in this node's snapshot (pairs + wildcards).",
                &self.fault_links_shaped,
            ),
        ]
    }

    /// `(name, help, histogram)` for every histogram.
    fn histograms(&self) -> [(&'static str, &'static str, &Histogram); 4] {
        [
            (
                "batch_size",
                "Client commands per proposed slot batch.",
                &self.batch_size,
            ),
            (
                "commit_latency_fast_us",
                "Slot open to fast-path decision, wall-clock microseconds.",
                &self.commit_latency_fast_us,
            ),
            (
                "commit_latency_slow_us",
                "Slot open to slow-path decision, wall-clock microseconds.",
                &self.commit_latency_slow_us,
            ),
            (
                "apply_latency_us",
                "Slot open to state-machine apply, wall-clock microseconds.",
                &self.apply_latency_us,
            ),
        ]
    }
}

/// A cheap, cloneable, optional reference to one replica's [`Metrics`].
///
/// Defaults to disabled (`MetricsHandle::default()` records nothing), so
/// every construction path that predates observability keeps working
/// unchanged; [`MetricsRegistry::replica`] produces enabled handles.
#[derive(Clone, Default)]
pub struct MetricsHandle(Option<Arc<Metrics>>);

impl fmt::Debug for MetricsHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            Some(_) => f.write_str("MetricsHandle(enabled)"),
            None => f.write_str("MetricsHandle(disabled)"),
        }
    }
}

impl From<Arc<Metrics>> for MetricsHandle {
    fn from(metrics: Arc<Metrics>) -> Self {
        MetricsHandle(Some(metrics))
    }
}

impl MetricsHandle {
    /// A disabled handle: every record site short-circuits on one branch.
    pub fn none() -> Self {
        MetricsHandle(None)
    }

    /// An enabled handle over a fresh standalone block (tests, single
    /// replicas); cluster code should use [`MetricsRegistry::replica`].
    pub fn standalone() -> Self {
        MetricsHandle(Some(Arc::new(Metrics::new())))
    }

    /// The block to record into, if enabled.
    #[inline]
    pub fn get(&self) -> Option<&Metrics> {
        self.0.as_deref()
    }

    /// Whether recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }
}

/// The cluster-wide metrics plane: one [`Metrics`] block per replica
/// seat, plus the two exporters. Clones share the same blocks, so a
/// bench or test can keep a clone and scrape while the cluster runs.
#[derive(Clone, Debug)]
pub struct MetricsRegistry {
    replicas: Vec<Arc<Metrics>>,
    /// Consensus groups covered; blocks are stored row-major, shard 0's
    /// `n` seats first. `1` for an unsharded cluster — and then no
    /// `shard` label appears in any exposition, byte-identical to the
    /// pre-sharding output.
    shards: usize,
}

impl MetricsRegistry {
    /// A registry for an `n`-replica cluster (a single consensus group).
    pub fn new(n: usize) -> Self {
        MetricsRegistry::new_sharded(n, 1)
    }

    /// A registry for a sharded deployment: `shards` consensus groups of
    /// `n` replica seats each, every `(shard, seat)` pair with its own
    /// block. With `shards > 1` each exposed series carries a
    /// `shard="sG"` label next to `replica="pN"`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is 0.
    pub fn new_sharded(n: usize, shards: usize) -> Self {
        assert!(shards > 0, "at least one shard");
        MetricsRegistry {
            replicas: (0..n * shards).map(|_| Arc::new(Metrics::new())).collect(),
            shards,
        }
    }

    /// Number of blocks (replica seats × shards).
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the registry covers zero seats.
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Number of consensus groups covered (1 when unsharded).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The `replica="pN"` label set for block `index`, including the
    /// `shard` label when the registry covers more than one group.
    fn labels(&self, index: usize) -> String {
        let n = self.replicas.len() / self.shards;
        if self.shards > 1 {
            format!("replica=\"p{}\",shard=\"s{}\"", index % n + 1, index / n)
        } else {
            format!("replica=\"p{}\"", index + 1)
        }
    }

    /// An enabled handle for replica seat `index` (0-based: seat 0 is
    /// process p1, matching the workspace's actor-vector convention). In
    /// a sharded registry this addresses shard 0.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn replica(&self, index: usize) -> MetricsHandle {
        MetricsHandle(Some(Arc::clone(&self.replicas[index])))
    }

    /// An enabled handle for seat `index` of consensus group `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` or `index` is out of range.
    pub fn shard_replica(&self, shard: usize, index: usize) -> MetricsHandle {
        let n = self.replicas.len() / self.shards;
        assert!(shard < self.shards, "shard {shard} out of range");
        assert!(index < n, "replica {index} out of range");
        MetricsHandle(Some(Arc::clone(&self.replicas[shard * n + index])))
    }

    /// Direct access to seat `index`'s block (assertions, scrapes).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn metrics(&self, index: usize) -> &Metrics {
        &self.replicas[index]
    }

    /// Sum of one counter across every replica, selected by closure:
    /// `registry.total(|m| &m.commit_fast_total)`.
    pub fn total(&self, pick: impl Fn(&Metrics) -> &Counter) -> u64 {
        self.replicas.iter().map(|m| pick(m).get()).sum()
    }

    /// Prometheus-style text exposition: `# HELP` / `# TYPE` headers per
    /// family, one `replica="pN"`-labeled series per seat, histograms as
    /// summaries (`quantile` labels + `_sum` + `_count`).
    pub fn render_text(&self) -> String {
        let mut out = String::with_capacity(16 * 1024);
        if self.replicas.is_empty() {
            return out;
        }
        let probe = &self.replicas[0];
        let counter_families = probe.counters().map(|(name, help, _)| (name, help));
        let byte_families = probe.byte_counters().map(|(name, help, _)| (name, help));
        for (name, help) in counter_families.into_iter().chain(byte_families) {
            let _ = writeln!(out, "# HELP fastbft_{name} {help}");
            let _ = writeln!(out, "# TYPE fastbft_{name} counter");
            for (i, m) in self.replicas.iter().enumerate() {
                let value = m
                    .counters()
                    .iter()
                    .chain(m.byte_counters().iter())
                    .find(|(n, _, _)| *n == name)
                    .map(|(_, _, c)| c.get())
                    .unwrap_or(0);
                let _ = writeln!(out, "fastbft_{name}{{{}}} {value}", self.labels(i));
            }
        }
        for (name, help) in probe.gauges().map(|(name, help, _)| (name, help)) {
            let _ = writeln!(out, "# HELP fastbft_{name} {help}");
            let _ = writeln!(out, "# TYPE fastbft_{name} gauge");
            for (i, m) in self.replicas.iter().enumerate() {
                let value = m
                    .gauges()
                    .iter()
                    .find(|(n, _, _)| *n == name)
                    .map(|(_, _, g)| g.get())
                    .unwrap_or(0);
                let _ = writeln!(out, "fastbft_{name}{{{}}} {value}", self.labels(i));
            }
        }
        for (name, help) in probe.histograms().map(|(name, help, _)| (name, help)) {
            let _ = writeln!(out, "# HELP fastbft_{name} {help}");
            let _ = writeln!(out, "# TYPE fastbft_{name} summary");
            for (i, m) in self.replicas.iter().enumerate() {
                let h = m
                    .histograms()
                    .iter()
                    .find(|(n, _, _)| *n == name)
                    .map(|(_, _, h)| *h)
                    .expect("histogram families are identical across replicas");
                let labels = self.labels(i);
                for (q, label) in [(0.5, "0.5"), (0.99, "0.99"), (0.999, "0.999")] {
                    let _ = writeln!(
                        out,
                        "fastbft_{name}{{{labels},quantile=\"{label}\"}} {}",
                        h.quantile(q)
                    );
                }
                let _ = writeln!(out, "fastbft_{name}_sum{{{labels}}} {}", h.sum());
                let _ = writeln!(out, "fastbft_{name}_count{{{labels}}} {}", h.count());
            }
        }
        out
    }

    /// JSON dump: the same data as the text exposition plus each
    /// replica's flight-recorder tail, as one self-contained object.
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(16 * 1024);
        out.push_str("{\"replicas\":[");
        for (i, m) in self.replicas.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let n = self.replicas.len() / self.shards;
            if self.shards > 1 {
                let _ = write!(
                    out,
                    "{{\"replica\":\"p{}\",\"shard\":\"s{}\",\"counters\":{{",
                    i % n + 1,
                    i / n
                );
            } else {
                let _ = write!(out, "{{\"replica\":\"p{}\",\"counters\":{{", i + 1);
            }
            let mut first = true;
            for (name, _, c) in m.counters().iter().chain(m.byte_counters().iter()) {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "\"{name}\":{}", c.get());
            }
            out.push_str("},\"gauges\":{");
            for (j, (name, _, g)) in m.gauges().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{name}\":{}", g.get());
            }
            out.push_str("},\"histograms\":{");
            for (j, (name, _, h)) in m.histograms().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "\"{name}\":{{\"count\":{},\"sum\":{},\"max\":{},\
                     \"p50\":{},\"p99\":{},\"p999\":{}}}",
                    h.count(),
                    h.sum(),
                    h.max(),
                    h.quantile(0.5),
                    h.quantile(0.99),
                    h.quantile(0.999)
                );
            }
            out.push_str("},\"events\":[");
            for (j, e) in m.recorder.snapshot().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"seq\":{},\"at_us\":{},\"kind\":\"{}\",\"detail\":\"{}\"}}",
                    e.seq,
                    e.at_us,
                    escape_json(e.kind),
                    escape_json(&e.detail)
                );
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_defaults_disabled() {
        let h = MetricsHandle::default();
        assert!(!h.is_enabled());
        assert!(h.get().is_none());
        assert!(MetricsRegistry::new(2).replica(1).is_enabled());
    }

    #[test]
    fn text_exposition_shape() {
        let reg = MetricsRegistry::new(2);
        reg.metrics(0).commit_fast_total.inc();
        reg.metrics(1).commit_latency_fast_us.record(250);
        let text = reg.render_text();
        assert!(text.contains("# TYPE fastbft_commit_fast_total counter"));
        assert!(text.contains("fastbft_commit_fast_total{replica=\"p1\"} 1"));
        assert!(text.contains("fastbft_commit_fast_total{replica=\"p2\"} 0"));
        assert!(text.contains("fastbft_commit_latency_fast_us{replica=\"p2\",quantile=\"0.99\"}"));
        assert!(text.contains("fastbft_commit_latency_fast_us_count{replica=\"p2\"} 1"));
        // Every non-comment line is `name{labels} value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("space-separated");
            assert!(series.starts_with("fastbft_"), "bad series name: {line}");
            assert!(series.contains("{replica=\"p"), "unlabeled series: {line}");
            assert!(value.parse::<f64>().is_ok(), "non-numeric value: {line}");
        }
    }

    #[test]
    fn propose_pipeline_exposition_shape() {
        // The PR-9 propose-pipeline instruments: flush-reason counters,
        // ingress shed counters (count + bytes) and the apply-queue depth
        // gauge must all surface in both exporters.
        let reg = MetricsRegistry::new(1);
        let m = reg.metrics(0);
        m.batch_flush_size_total.add(4);
        m.batch_flush_quiescence_total.inc();
        m.batch_flush_timeout_total.inc();
        m.ingress_shed_total.add(7);
        m.ingress_shed_bytes_total.add(7 * 64);
        m.apply_offload_total.add(12);
        m.apply_queue_depth.set(3);
        let text = reg.render_text();
        assert!(text.contains("# TYPE fastbft_batch_flush_size_total counter"));
        assert!(text.contains("fastbft_batch_flush_size_total{replica=\"p1\"} 4"));
        assert!(text.contains("fastbft_batch_flush_quiescence_total{replica=\"p1\"} 1"));
        assert!(text.contains("fastbft_batch_flush_bytes_total{replica=\"p1\"} 0"));
        assert!(text.contains("fastbft_batch_flush_timeout_total{replica=\"p1\"} 1"));
        assert!(text.contains("fastbft_ingress_shed_total{replica=\"p1\"} 7"));
        assert!(text.contains("fastbft_ingress_shed_bytes_total{replica=\"p1\"} 448"));
        assert!(text.contains("fastbft_apply_offload_total{replica=\"p1\"} 12"));
        assert!(text.contains("# TYPE fastbft_apply_queue_depth gauge"));
        assert!(text.contains("fastbft_apply_queue_depth{replica=\"p1\"} 3"));
        let json = reg.render_json();
        assert!(json.contains("\"ingress_shed_total\":7"));
        assert!(json.contains("\"ingress_shed_bytes_total\":448"));
        assert!(json.contains("\"apply_queue_depth\":3"));
        assert!(json.contains("\"batch_flush_size_total\":4"));
    }

    #[test]
    fn fault_plane_exposition_shape() {
        // The fault-injection plane and the per-link TCP health metrics
        // must surface in both exporters: injected drops/delays/partitions
        // are attributable without grabbing `TcpStats` before spawn.
        let reg = MetricsRegistry::new(1);
        let m = reg.metrics(0);
        m.fault_delay_injected_total.add(11);
        m.fault_drop_injected_total.add(3);
        m.fault_dup_injected_total.inc();
        m.fault_partition_drop_total.add(9);
        m.fault_links_shaped.set(4);
        m.send_drop_unreachable_total.add(6);
        m.peer_links_down.set(2);
        let text = reg.render_text();
        assert!(text.contains("# TYPE fastbft_fault_delay_injected_total counter"));
        assert!(text.contains("fastbft_fault_delay_injected_total{replica=\"p1\"} 11"));
        assert!(text.contains("fastbft_fault_drop_injected_total{replica=\"p1\"} 3"));
        assert!(text.contains("fastbft_fault_dup_injected_total{replica=\"p1\"} 1"));
        assert!(text.contains("fastbft_fault_partition_drop_total{replica=\"p1\"} 9"));
        assert!(text.contains("# TYPE fastbft_fault_links_shaped gauge"));
        assert!(text.contains("fastbft_fault_links_shaped{replica=\"p1\"} 4"));
        assert!(text.contains("fastbft_send_drop_unreachable_total{replica=\"p1\"} 6"));
        assert!(text.contains("# TYPE fastbft_peer_links_down gauge"));
        assert!(text.contains("fastbft_peer_links_down{replica=\"p1\"} 2"));
        let json = reg.render_json();
        assert!(json.contains("\"fault_delay_injected_total\":11"));
        assert!(json.contains("\"fault_drop_injected_total\":3"));
        assert!(json.contains("\"fault_partition_drop_total\":9"));
        assert!(json.contains("\"fault_links_shaped\":4"));
        assert!(json.contains("\"send_drop_unreachable_total\":6"));
        assert!(json.contains("\"peer_links_down\":2"));
    }

    #[test]
    fn sharded_exposition_shape() {
        let reg = MetricsRegistry::new_sharded(2, 2);
        assert_eq!(reg.len(), 4);
        assert_eq!(reg.shards(), 2);
        reg.shard_replica(0, 0)
            .get()
            .unwrap()
            .commit_fast_total
            .inc();
        reg.shard_replica(1, 1)
            .get()
            .unwrap()
            .verify_offload_total
            .add(9);
        reg.shard_replica(1, 0)
            .get()
            .unwrap()
            .verify_queue_depth
            .set(3);
        let text = reg.render_text();
        // Every series carries both labels, replica first.
        assert!(text.contains("fastbft_commit_fast_total{replica=\"p1\",shard=\"s0\"} 1"));
        assert!(text.contains("fastbft_commit_fast_total{replica=\"p1\",shard=\"s1\"} 0"));
        assert!(text.contains("fastbft_verify_offload_total{replica=\"p2\",shard=\"s1\"} 9"));
        assert!(text.contains("fastbft_verify_queue_depth{replica=\"p1\",shard=\"s1\"} 3"));
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("space-separated");
            assert!(series.contains("{replica=\"p"), "unlabeled series: {line}");
            assert!(series.contains(",shard=\"s"), "shardless series: {line}");
            assert!(value.parse::<f64>().is_ok(), "non-numeric value: {line}");
        }
        // The JSON dump carries the same addressing.
        let json = reg.render_json();
        assert!(json.contains("\"replica\":\"p2\",\"shard\":\"s1\""));
        assert!(json.contains("\"verify_offload_total\":9"));
        // An unsharded registry's exposition stays exactly shard-free.
        let flat = MetricsRegistry::new(2).render_text();
        assert!(!flat.contains("shard="), "unsharded output grew a label");
    }

    #[test]
    fn json_dump_is_self_contained() {
        let reg = MetricsRegistry::new(1);
        reg.metrics(0).view_change_total.add(3);
        reg.metrics(0)
            .recorder
            .record("view-change", "entered view 2 \"quoted\"".into());
        let json = reg.render_json();
        assert!(json.contains("\"view_change_total\":3"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.starts_with("{\"replicas\":["));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn total_sums_across_replicas() {
        let reg = MetricsRegistry::new(3);
        reg.metrics(0).commit_fast_total.add(2);
        reg.metrics(2).commit_fast_total.add(5);
        assert_eq!(reg.total(|m| &m.commit_fast_total), 7);
    }
}
